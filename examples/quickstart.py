"""Quickstart: measure a simulated cloud and look up an IP's history.

Builds a small EC2-like cloud, runs WhoWas for a handful of rounds, and
exercises the platform's core promise — "give me the history of status
and content for this IP address over time".

Run:  python examples/quickstart.py
"""

from repro.cloudsim import int_to_ip
from repro.workloads import Campaign, ec2_scenario


def main() -> None:
    # A scaled-down EC2: 2,048 public IPs across 8 regions, 24% occupied.
    scenario = ec2_scenario(total_ips=2048, seed=42, duration_days=21)
    print(f"cloud: {scenario.name}, {len(scenario.targets)} advertised IPs, "
          f"{scenario.simulation.occupied_count()} in use")

    # Scan on days 0, 3, 6, ... 18 (the paper scanned daily or each 3 days).
    campaign = Campaign(scenario)
    result = campaign.run(scan_days=list(range(0, 21, 3)), progress=True)

    # The WhoWas lookup: per-IP history of status and content.
    dataset = result.dataset
    ip = next(
        ip for ip, history in dataset.by_ip.items()
        if len(history) >= 5 and any(o.has_page for o in history)
    )
    print(f"\nhistory of {int_to_ip(ip)}:")
    for record in result.store.history(ip):
        features = record.features
        title = features.title if features else "-"
        print(
            f"  day {record.timestamp:2d}: "
            f"ports={sorted(record.probe.open_ports)} "
            f"code={record.fetch.status_code} title={title!r}"
        )

    # Cluster the observations: which IPs host the same web application?
    clustering = result.clustering()
    stats = clustering.stats
    print(
        f"\nclustering: {stats.responsive_ips} responsive IPs -> "
        f"{stats.top_level_clusters} top-level / "
        f"{stats.second_level_clusters} second-level / "
        f"{stats.final_clusters} final clusters "
        f"(simhash threshold {clustering.threshold})"
    )
    cluster_id = clustering.cluster_of(ip, dataset.round_ids[-1])
    if cluster_id is not None:
        cluster = clustering.clusters[cluster_id]
        peers = sorted(cluster.ips() - {ip})[:5]
        print(f"{int_to_ip(ip)} clusters with "
              f"{[int_to_ip(p) for p in peers]}")


if __name__ == "__main__":
    main()
