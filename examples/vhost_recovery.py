"""Recovering virtual-host ownership with active DNS (§9 extension).

WhoWas visits websites by bare IP, so shared-hosting / virtual-host
setups answer 404 or a placeholder page (§4's second limitation).  But
those pages often leak the intended site's domain — and an active DNS
lookup that resolves the domain back onto the same IP confirms
ownership.  This example runs that pipeline against a simulated cloud
and shows how many otherwise-unlabelable IPs it recovers.

Run:  python examples/vhost_recovery.py
"""

from repro.analysis import DomainCorrelator
from repro.cloudsim import int_to_ip
from repro.workloads import Campaign, ec2_scenario


def main() -> None:
    scenario = ec2_scenario(total_ips=2048, seed=19, duration_days=30)
    print("running campaign ...")
    result = Campaign(scenario).run(scan_days=list(range(0, 30, 3)))
    clustering = result.clustering()

    correlator = DomainCorrelator(
        result.dataset, scenario.dns.resolve_domain, clustering
    )
    report = correlator.correlate()

    print(f"\ncandidate domains found in page bodies: {report.candidates}")
    print(f"resolved by active DNS interrogation:   {report.resolved}")
    confirmed = report.confirmed()
    print(f"ownership confirmed (resolved back):    {len(confirmed)}")
    recovered = report.recovered_error_ips()
    print(f"error-page IPs with recovered owners:   {len(recovered)}")

    print("\nsample confirmations:")
    shown = 0
    for correlation in confirmed:
        if not correlation.recovered_error_ips:
            continue
        ips = ", ".join(int_to_ip(ip) for ip in correlation.recovered_error_ips)
        print(f"  {correlation.domain:<28} -> {ips}")
        shown += 1
        if shown >= 5:
            break
    if shown == 0:
        for correlation in confirmed[:5]:
            ips = ", ".join(int_to_ip(ip) for ip in correlation.confirmed_ips)
            print(f"  {correlation.domain:<28} -> {ips}")


if __name__ == "__main__":
    main()
