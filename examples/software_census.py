"""Web software ecosystem census — the §8.3 workflow, end to end.

Surveys the web servers, backend languages, site templates and
third-party trackers running across two simulated clouds, including
vulnerable-version prevalence.

Run:  python examples/software_census.py
"""

from repro.analysis import (
    SoftwareCensus,
    TrackerAnalyzer,
    analyze_ga_accounts,
)
from repro.workloads import Campaign, azure_scenario, ec2_scenario


def survey(name: str, result) -> None:
    report = SoftwareCensus(result.dataset).report()
    print(f"\n== {name} ==")
    print(f"  servers identified on {report.server_identified_share:.1f}% "
          "of available IPs")
    print("  server families:",
          {k: round(v, 1) for k, v in
           list(report.server_family_shares.items())[:5]})
    print("  top versions:", report.top_servers(4))
    print("  backends:",
          {k: round(v, 1) for k, v in list(report.backend_shares.items())[:4]})
    if report.php_version_shares:
        print("  PHP versions:",
              {k: round(v, 1) for k, v in
               list(report.php_version_shares.items())[:3]})
    print("  templates:",
          {k: round(v, 1) for k, v in
           list(report.template_shares.items())[:4]})
    if report.wordpress_version_counts:
        print(f"  vulnerable WordPress (<3.6): "
              f"{report.wordpress_vulnerable_share:.0f}% (paper >68%)")
    if report.vulnerable_server_ips:
        print("  SERT-listed vulnerable servers:",
              dict(report.vulnerable_server_ips.most_common(3)))

    clustering = result.clustering()
    trackers = TrackerAnalyzer(result.store, clustering)
    hits = trackers.scan_round(result.dataset.round_ids[-1])
    print("  top trackers (last round):")
    for tracker, ips, clusters in hits.table(5):
        print(f"    {tracker:<20} {ips:4d} IPs  {clusters:4d} clusters")
    stats = analyze_ga_accounts(trackers.ga_ids())
    print(f"  Google Analytics: {stats.unique_ids} IDs, "
          f"{stats.accounts} accounts, "
          f"{stats.single_profile_share():.0f}% single-profile "
          "(paper 93.5%)")


def main() -> None:
    print("running EC2 campaign ...")
    ec2 = Campaign(ec2_scenario(total_ips=4096, seed=7)).run()
    survey("EC2 (paper: Apache 55.2%, nginx 21.2%, IIS 12.2%)", ec2)

    print("\nrunning Azure campaign ...")
    azure = Campaign(azure_scenario(total_ips=2048, seed=11)).run()
    survey("Azure (paper: IIS 89%, ASP.NET 94.2%)", azure)


if __name__ == "__main__":
    main()
