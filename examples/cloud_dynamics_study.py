"""Cloud usage dynamics study — the §8.1 workflow, end to end.

Runs a full-length EC2-like campaign (51 rounds over 93 days), then
reproduces the §8.1 analyses: usage growth, churn rates, cluster size
distribution, size-change patterns, within-cluster IP churn, and the
top deployments (Table 15's view).

Run:  python examples/cloud_dynamics_study.py  [--ips 4096]
"""

import argparse
from collections import Counter

from repro.analysis import (
    DynamicsAnalyzer,
    PatternAnalyzer,
    UptimeAnalyzer,
)
from repro.workloads import Campaign, ec2_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ips", type=int, default=4096,
                        help="size of the simulated address space")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    scenario = ec2_scenario(total_ips=args.ips, seed=args.seed)
    print(f"running {len(scenario.scan_days)} rounds over "
          f"{scenario.workload.duration_days} days ...")
    result = Campaign(scenario).run()
    dataset = result.dataset
    clustering = result.clustering()

    # --- usage and growth (Table 7 / Figure 8) ---
    dynamics = DynamicsAnalyzer(dataset, clustering)
    print("\n== usage (paper Table 7) ==")
    for name, summary in dynamics.usage_summary().items():
        print(
            f"  {name:<10} avg {summary.average:8.0f}  "
            f"min {summary.minimum:6.0f}  max {summary.maximum:6.0f}  "
            f"growth {summary.growth_pct:+.1f}%"
        )

    # --- churn (Figure 9) ---
    rates = dynamics.churn_rates()
    print("\n== per-round status churn (paper ~3.0% overall) ==")
    print(f"  responsiveness {rates.responsiveness:.2f}%  "
          f"availability {rates.availability:.2f}%  "
          f"cluster {rates.cluster:.2f}%  overall {rates.overall:.2f}%")

    # --- cluster sizes (§8.1: >3/4 of services use one IP) ---
    sizes = clustering.sizes(dataset.round_count)
    buckets = Counter()
    for size in sizes.values():
        if size <= 1:
            buckets["1"] += 1
        elif size <= 20:
            buckets["2-20"] += 1
        elif size <= 50:
            buckets["21-50"] += 1
        else:
            buckets[">50"] += 1
    total = sum(buckets.values())
    print("\n== average cluster size distribution ==")
    for label in ("1", "2-20", "21-50", ">50"):
        share = buckets.get(label, 0) / total * 100.0
        print(f"  {label:>5}: {share:5.1f}%")

    # --- size-change patterns (Table 11) ---
    breakdown = PatternAnalyzer(dataset, clustering).breakdown()
    print("\n== top size-change patterns (paper Table 11) ==")
    for label, count, share in breakdown.top(5):
        print(f"  {label:<12} {count:5d} ({share:4.1f}%)")
    print(f"  pattern-0 split: {breakdown.ephemeral} ephemeral, "
          f"{breakdown.stable} stable")

    # --- top deployments (Table 15) ---
    uptime = UptimeAnalyzer(
        dataset, clustering,
        region_of=scenario.topology.region_of,
        kind_of=scenario.topology.kind_of,
    )
    print("\n== top 5 deployments by average size (paper Table 15) ==")
    for row in uptime.top_clusters(5):
        print(
            f"  {row.title[:32]:<34} mean {row.mean_size:5.1f} IPs  "
            f"uptime {row.avg_ip_uptime:5.1f}%  "
            f"stable IPs {row.stable_ip_share:5.1f}%  "
            f"regions {row.regions_used}"
        )


if __name__ == "__main__":
    main()
