"""Malicious-activity hunt — the §8.2 workflow, end to end.

Joins a campaign's data with the two blacklist services:

1. every URL extracted from fetched pages is checked against Safe
   Browsing, revealing pages that link to phishing/malware and linchpin
   IPs aggregating many malicious URLs;
2. every responsive IP is checked against VirusTotal (≥ 2-engine
   consensus), then WhoWas classifies each detected IP's content
   behaviour, measures blacklist lag, and *spreads* labels through
   clusters to find additional malicious IPs.

Run:  python examples/malicious_activity_hunt.py
"""

from collections import Counter

from repro.analysis import SafeBrowsingAnalyzer, VirusTotalAnalyzer
from repro.cloudsim import int_to_ip
from repro.workloads import Campaign, ec2_scenario


def main() -> None:
    scenario = ec2_scenario(
        total_ips=4096, seed=17,
        malicious_embedders=20, malicious_hosters=40, linchpin_services=1,
    )
    print(f"running {len(scenario.scan_days)} rounds ...")
    result = Campaign(scenario).run()
    clustering = result.clustering()

    # --- Safe Browsing: pages linking to listed URLs ---
    analyzer = SafeBrowsingAnalyzer(
        result.dataset, scenario.safe_browsing(seed=1), clustering
    )
    findings = analyzer.scan()
    print("\n== Safe Browsing (paper: 196 EC2 IPs, 1,393 URLs) ==")
    print(f"  malicious IPs: {len(findings.malicious_ips)}  "
          f"distinct URLs: {findings.distinct_urls}  "
          f"clusters: {len(findings.clusters)}")
    print(f"  phishing pages: {findings.phishing_pages}  "
          f"malware pages: {findings.malware_pages}")
    lifetimes = findings.lifetimes()
    over7 = sum(1 for v in lifetimes if v > 7) / max(1, len(lifetimes))
    print(f"  {over7 * 100:.0f}% stay malicious > 7 days (paper: 62%)")
    for linchpin in findings.linchpins():
        print(f"  linchpin {int_to_ip(linchpin.ip)} aggregates "
              f"{len(linchpin.urls)} malicious URLs (cf. the 128-URL "
              "Blackhole page)")

    # --- VirusTotal: per-IP reports, behaviours, lag ---
    vt_analyzer = VirusTotalAnalyzer(
        result.dataset, scenario.virustotal(seed=2), clustering,
        region_of=scenario.topology.region_of,
    )
    vt = vt_analyzer.analyze()
    print("\n== VirusTotal (paper: 2,070 EC2 IPs, 0.3% of available) ==")
    print(f"  malicious IPs (>= 2 engines): {vt.malicious_ip_count}")
    by_region = Counter()
    for (region, _), count in vt.by_region_month.items():
        by_region[region] += count
    print("  by region:", dict(by_region.most_common(4)))
    print("  top malicious-URL domains (paper Table 18):")
    for domain, count in vt.top_domains(5):
        print(f"    {domain:<32} {count}")
    behaviour_counts = Counter(vt.behaviour_types.values())
    print(f"  content behaviours: type1={behaviour_counts[1]} "
          f"type2={behaviour_counts[2]} type3={behaviour_counts[3]} "
          "(paper: 34/42/22)")
    spread_total = sum(len(v) for v in vt.spread_labels.values())
    print(f"  label spreading via clusters found {spread_total} extra IPs "
          "(paper: +191)")


if __name__ == "__main__":
    main()
