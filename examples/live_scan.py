"""Scanning real sockets: WhoWas over the network transport.

The same scanner/fetcher pipeline that drives the simulator also speaks
real TCP.  This example starts a local HTTP server and points WhoWas at
127.0.0.1 through :class:`SocketTransport` — the exact setup to use
against live cloud ranges (with the published IP lists as targets and
the polite rate limits left at their defaults).

Run:  python examples/live_scan.py
"""

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.core import (
    FetchConfig,
    PlatformConfig,
    ScanConfig,
    SocketTransport,
    WhoWas,
)

LOCALHOST = (127 << 24) | 1

PAGE = b"""<html><head>
<title>Example Cloud Tenant</title>
<meta name="generator" content="WordPress 3.5.1">
<meta name="keywords" content="demo,example">
</head><body>
<h1>Example tenant</h1>
<script>var _gaq=[['_setAccount','UA-424242-1']];</script>
</body></html>"""


class TenantHandler(BaseHTTPRequestHandler):
    def do_GET(self):  # noqa: N802 (stdlib naming)
        body = b"User-agent: *\nDisallow: /private\n" \
            if self.path == "/robots.txt" else PAGE
        self.send_response(200)
        self.send_header(
            "Content-Type",
            "text/plain" if self.path == "/robots.txt" else "text/html",
        )
        self.send_header("Server", "nginx/1.4.1")
        self.send_header("X-Powered-By", "PHP/5.3.10")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):
        pass


def main() -> None:
    server = ThreadingHTTPServer(("127.0.0.1", 0), TenantHandler)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    port = server.server_address[1]
    print(f"local tenant listening on 127.0.0.1:{port}")

    # port_map redirects the well-known ports to our local server; drop
    # it (and raise targets) to scan real, authorised ranges.
    transport = SocketTransport(port_map={80: port, 443: 1, 22: 1})
    platform = WhoWas(
        transport,
        config=PlatformConfig(
            scan=ScanConfig(probes_per_second=100, probe_timeout=1.0),
            fetch=FetchConfig(workers=8, timeout=5.0),
        ),
    )
    summary = platform.run_round([LOCALHOST], timestamp=0)
    print(f"round complete: responsive={summary.responsive} "
          f"available={summary.available}")

    for record in platform.history(LOCALHOST):
        features = record.features
        assert features is not None
        print("extracted features:")
        print(f"  title        : {features.title}")
        print(f"  server       : {features.server}")
        print(f"  powered by   : {features.powered_by}")
        print(f"  template     : {features.template}")
        print(f"  analytics id : {features.analytics_id}")
        print(f"  simhash      : {features.simhash:024x}")
    server.shutdown()


if __name__ == "__main__":
    main()
