PYTHON ?= python
PYTHONPATH := src

export PYTHONPATH

.PHONY: test chaos bench bench-smoke all

# Tier-1: the fast suite (the chaos storm matrix is deselected by the
# `-m 'not chaos'` default in pyproject.toml).
test:
	$(PYTHON) -m pytest -x -q

# Full fault-injection matrix: seeded storms, per-kind pure storms,
# total blackout, hostile-content storms. A later -m overrides the
# pyproject default; CI passes PYTEST_ARGS="--timeout=300".
chaos:
	$(PYTHON) -m pytest -q -m chaos $(PYTEST_ARGS)

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Quick serial-vs-overlapped round-pipeline throughput comparison;
# regenerates BENCH_pipeline.json at the repo root.
bench-smoke:
	$(PYTHON) benchmarks/bench_pipeline_throughput.py --ips 512 \
		--latency 0.02 --out BENCH_pipeline.json

all: test chaos
