PYTHON ?= python
PYTHONPATH := src

export PYTHONPATH

.PHONY: test chaos slow bench bench-smoke all

# Tier-1: the fast suite (the chaos storm matrix is deselected by the
# `-m 'not chaos'` default in pyproject.toml).
test:
	$(PYTHON) -m pytest -x -q

# Full fault-injection matrix: seeded storms, per-kind pure storms,
# total blackout, hostile-content storms. A later -m overrides the
# pyproject default; CI passes PYTEST_ARGS="--timeout=300".
chaos:
	$(PYTHON) -m pytest -q -m chaos $(PYTEST_ARGS)

# Paper-scale clustering property/equivalence matrix (tier-1 runs a
# reduced version; nightly runs this full one).
slow:
	$(PYTHON) -m pytest -q -m slow $(PYTEST_ARGS)

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Quick serial-vs-overlapped round-pipeline throughput comparison, an
# indexed-vs-exact clustering scaling spot check, a 1-vs-2-worker
# pool scaling spot check, and a telemetry-overhead spot check;
# regenerates BENCH_pipeline.json at the repo root (the committed
# BENCH_clustering.json comes from the full `--sizes 100000 1000000`
# run, BENCH_workers.json from the full 100k-IP 1/2/4/8-worker run,
# BENCH_telemetry.json from the full 50k-IP x5 run, and
# BENCH_serve.json from the full 0.5x/2x/10x offered-rate run
# documented in each benchmark module).
bench-smoke:
	$(PYTHON) benchmarks/bench_pipeline_throughput.py --ips 512 \
		--latency 0.02 --out BENCH_pipeline.json
	$(PYTHON) benchmarks/bench_clustering_scale.py --sizes 20000 \
		--exact-cap 20000 --out /tmp/BENCH_clustering_smoke.json
	$(PYTHON) benchmarks/bench_workers_scale.py --ips 4096 \
		--latency 0.02 --concurrency 24 --shard-size 256 \
		--workers 1 2 --out /tmp/BENCH_workers_smoke.json
	$(PYTHON) benchmarks/bench_telemetry_overhead.py --ips 8192 \
		--repeats 2 --out /tmp/BENCH_telemetry_smoke.json
	$(PYTHON) benchmarks/bench_serve.py --ips 256 --days 4 \
		--rate 50 --duration 1.5 --multiples 0.5 4.0 \
		--out /tmp/BENCH_serve_smoke.json

all: test chaos
