PYTHON ?= python
PYTHONPATH := src

export PYTHONPATH

.PHONY: test chaos bench all

# Tier-1: the fast suite (the chaos storm matrix is deselected by the
# `-m 'not chaos'` default in pyproject.toml).
test:
	$(PYTHON) -m pytest -x -q

# Full fault-injection matrix: seeded storms, per-kind pure storms,
# total blackout, hostile-content storms. A later -m overrides the
# pyproject default; CI passes PYTEST_ARGS="--timeout=300".
chaos:
	$(PYTHON) -m pytest -q -m chaos $(PYTEST_ARGS)

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

all: test chaos
