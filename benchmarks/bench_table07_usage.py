"""Table 7: summary of overall address-space usage.

Paper (EC2): responsive avg 1,113,599 (23.7% of space), available avg
758,144 (16.1%), clusters avg 185,701; growth +3.3% responsive / +4.9%
available / +3.2% clusters.  Azure: 118,290 (23.9%) / 99,720 (20.1%) /
27,048; growth +7.3% / +7.7% / +6.2%.  Shares and growth signs are the
reproduction targets (absolute counts scale with the space).
"""

from repro.analysis import DynamicsAnalyzer

from _render import emit, table

PAPER = {
    "EC2": {"responsive_share": 23.7, "available_share": 16.1,
            "responsive_growth": 3.3, "available_growth": 4.9},
    "Azure": {"responsive_share": 23.9, "available_share": 20.1,
              "responsive_growth": 7.3, "available_growth": 7.7},
}


def test_table07_usage_summary(benchmark, ec2, ec2_clusters, azure,
                               azure_clusters):
    analyzers = {
        "EC2": DynamicsAnalyzer(ec2.dataset, ec2_clusters),
        "Azure": DynamicsAnalyzer(azure.dataset, azure_clusters),
    }

    summaries = benchmark.pedantic(
        lambda: {
            name: analyzer.usage_summary()
            for name, analyzer in analyzers.items()
        },
        rounds=1, iterations=1,
    )

    rows = []
    for cloud, summary in summaries.items():
        space = analyzers[cloud].space_size()
        for key in ("responsive", "available", "clusters"):
            entry = summary[key]
            rows.append([
                cloud, key,
                int(entry.minimum), int(entry.maximum), int(entry.average),
                int(entry.std_dev),
                entry.average / space * 100.0,
                entry.growth_pct,
            ])
    emit(
        "table07_usage",
        table(
            ["Cloud", "Series", "min", "max", "avg", "std",
             "% of space", "growth %"],
            rows,
        ) + [
            "paper: EC2 23.7%/16.1% of space, growth +3.3/+4.9/+3.2%;",
            "       Azure 23.9%/20.1%, growth +7.3/+7.7/+6.2%",
        ],
    )

    for cloud, summary in summaries.items():
        space = analyzers[cloud].space_size()
        responsive_share = summary["responsive"].average / space * 100.0
        assert abs(responsive_share - PAPER[cloud]["responsive_share"]) < 6.0
        # Headline result (1): sizable positive growth in both clouds.
        assert summary["responsive"].growth_pct > 0
        assert summary["available"].growth_pct > 0
        # Azure grows faster in relative terms (paper: 7.3% vs 3.3%).
    assert (
        summaries["Azure"]["responsive"].growth_pct
        > summaries["EC2"]["responsive"].growth_pct * 0.5
    )
