"""Ablation: scan cadence (§4's granularity limitation).

WhoWas probes roughly daily; the paper notes that per-hour billing
means a coarser cadence under-observes churn.  Scanning the *same*
simulated cloud on a daily vs an every-3-days calendar shows the
effect: per-round status-change rates rise with the gap (more changes
accumulate between observations), while the total number of distinct
responsive IPs seen shrinks with fewer rounds.
"""

from repro.analysis import DynamicsAnalyzer
from repro.workloads import Campaign, ec2_scenario

from _render import emit, table


def run_campaign(scan_days, seed=29):
    scenario = ec2_scenario(
        total_ips=2048, seed=seed, duration_days=31,
        malicious_embedders=0, malicious_hosters=0, linchpin_services=0,
    )
    result = Campaign(scenario).run(scan_days=scan_days)
    return result


def test_ablation_scan_cadence(benchmark):
    daily_days = list(range(0, 31))
    sparse_days = list(range(0, 31, 3))

    def sweep():
        daily = run_campaign(daily_days)
        sparse = run_campaign(sparse_days)
        return {
            "daily": DynamicsAnalyzer(daily.dataset).churn_rates(),
            "every-3-days": DynamicsAnalyzer(sparse.dataset).churn_rates(),
            "daily_ips": len(daily.dataset.by_ip),
            "sparse_ips": len(sparse.dataset.by_ip),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        ["daily", results["daily"].responsiveness,
         results["daily"].availability, results["daily_ips"]],
        ["every-3-days", results["every-3-days"].responsiveness,
         results["every-3-days"].availability, results["sparse_ips"]],
    ]
    emit(
        "ablation_cadence",
        table(
            ["cadence", "responsiveness churn %", "availability churn %",
             "distinct IPs seen"],
            rows,
        ),
    )

    # Coarser cadence accumulates more change per observed round-pair.
    assert (
        results["every-3-days"].responsiveness
        >= results["daily"].responsiveness * 0.9
    )
    # And observes fewer distinct IPs over the same period.
    assert results["sparse_ips"] <= results["daily_ips"]
