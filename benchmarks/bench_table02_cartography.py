"""Table 2: breakdown of public EC2 prefixes by VPC, per region.

Paper (at /22 granularity): USEast 280 prefixes / 13.7% of region IPs,
USWest_Oregon 256 / 36.4%, EU 124 / 20.8%, AsiaTokyo 98 / 32.0%,
AsiaSingapore 82 / 33.9%, USWest_NC 72 / 22.5%, AsiaSydney 64 / 33.3%,
SouthAmerica 56 / 31.9%.  The reproduction runs the same DNS decision
rule over the scaled topology; prefix *counts* scale with the space,
the *shares* should match the paper's column.
"""

from repro.analysis import Cartographer

from _render import emit, table

PAPER_SHARES = {
    "USEast": 13.7,
    "USWest_Oregon": 36.4,
    "EU": 20.8,
    "AsiaTokyo": 32.0,
    "AsiaSingapore": 33.9,
    "USWest_NC": 22.5,
    "AsiaSydney": 33.3,
    "SouthAmerica": 31.9,
}


def test_table02_vpc_prefixes(benchmark, ec2):
    scenario = ec2.scenario
    cartographer = Cartographer(scenario.topology, scenario.dns)

    measured = benchmark.pedantic(
        lambda: cartographer.map_prefixes(sample_per_prefix=4),
        rounds=1, iterations=1,
    )
    summary = cartographer.summarize(measured)

    rows = []
    for region, (prefixes, share) in sorted(
        summary.items(), key=lambda kv: -kv[1][0]
    ):
        rows.append([region, prefixes, share, PAPER_SHARES[region]])
    emit(
        "table02_cartography",
        table(["Region", "VPC prefixes", "% region IPs", "paper %"], rows),
    )

    for region, (_, share) in summary.items():
        assert abs(share - PAPER_SHARES[region]) < 15.0
    # Sanity: the measured map equals the topology's ground truth.
    truth = scenario.topology.vpc_prefix_summary()
    assert summary == truth
