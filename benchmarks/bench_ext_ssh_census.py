"""Extension (§9): the non-web-services census over SSH banners.

Not a paper table — the paper lists "expanding WhoWas to analyze
non-web services" as future work.  The platform reads the banner every
22-only responsive IP volunteers and tabulates sshd products and
version staleness, mirroring the §8.3 web-software findings.
"""

from repro.analysis.census import SshCensus

from _render import emit, table


def test_ext_ssh_census(benchmark, ec2, azure):
    reports = benchmark.pedantic(
        lambda: {
            "EC2": SshCensus(ec2.dataset).report(),
            "Azure": SshCensus(azure.dataset).report(),
        },
        rounds=1, iterations=1,
    )

    rows = []
    for cloud, report in reports.items():
        for banner, count in report.top_banners(5):
            rows.append([cloud, banner, count])
    lines = table(["Cloud", "SSH banner", "#<IP,round>"], rows)
    for cloud, report in reports.items():
        lines.append(
            f"[{cloud}] banners read from "
            f"{report.banner_identified_share:.1f}% of 22-only IPs; "
            f"products {({k: round(v, 1) for k, v in report.product_shares.items()})}; "
            f"stale OpenSSH (<=5.9): {report.stale_openssh_share:.1f}%"
        )
    emit("ext_ssh_census", lines)

    for report in reports.values():
        assert report.banner_identified_share > 80.0
        assert report.product_shares.get("OpenSSH", 0.0) > 50.0
        # Version staleness mirrors the web ecosystem (§8.3).
        assert report.stale_openssh_share > 40.0
