"""Worker-pool scaling: one round at 100k IPs across 1/2/4/8 workers.

Against the pure in-memory simulator every operation completes from
CPU, so extra processes cannot help — real scans win with a worker
pool because each worker holds its *own* budget of in-flight network
waits (probe timeouts, GET round-trips).  This bench restores that
shape: :class:`LatencyTransport` injects a fixed ``asyncio.sleep``
into every operation and the per-process concurrency is capped, so a
single process is latency-bound and each added worker multiplies the
total in-flight budget.  Every run produces the byte-identical record
set (asserted), making records/sec directly comparable.

Run standalone to (re)generate the committed results file::

    python benchmarks/bench_workers_scale.py --out BENCH_workers.json

Also collected by pytest as a smoke test (small scale, loose bound).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # standalone execution without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import MeasurementStore, WhoWas
from repro.core.config import (
    FetchConfig,
    PlatformConfig,
    ScanConfig,
    WorkerConfig,
)
from repro.workloads import build_sim_scenario


class LatencyTransport:
    """Adds a fixed event-loop latency to every network operation."""

    def __init__(self, inner, delay: float):
        self.inner = inner
        self.delay = delay

    def on_round_start(self, round_id: int) -> None:
        hook = getattr(self.inner, "on_round_start", None)
        if callable(hook):
            hook(round_id)

    async def probe(self, ip, port, timeout):
        await asyncio.sleep(self.delay)
        return await self.inner.probe(ip, port, timeout)

    async def banner(self, ip, port, timeout):
        await asyncio.sleep(self.delay)
        return await self.inner.banner(ip, port, timeout)

    async def get(self, ip, scheme, path, **kwargs):
        await asyncio.sleep(self.delay)
        return await self.inner.get(ip, scheme, path, **kwargs)


@dataclass(frozen=True)
class LatencySimFactory:
    """Picklable transport factory for spawned workers: rebuild the
    scenario from parameters, advance it, and wrap it in the same
    injected latency the coordinator's baseline run used."""

    params: dict
    latency: float

    def __call__(self, timestamp: int):
        scenario = build_sim_scenario(dict(self.params))
        scenario.simulation.advance_to(timestamp)
        return LatencyTransport(scenario.transport, self.latency)


def _config(
    workers: int, concurrency: int, shard_size: int
) -> PlatformConfig:
    return PlatformConfig(
        scan=ScanConfig(probes_per_second=1e12, concurrency=concurrency),
        fetch=FetchConfig(workers=concurrency),
        shard_size=shard_size,
        workers=WorkerConfig(count=workers),
    )


def run_once(
    *,
    workers: int,
    total_ips: int,
    latency: float,
    concurrency: int,
    seed: int,
    shard_size: int,
) -> dict:
    """One full round over a fresh scenario; returns timing + stats."""
    params = {"cloud": "ec2", "ips": total_ips, "seed": seed}
    factory = LatencySimFactory(params, latency)
    scenario = build_sim_scenario(dict(params))
    transport = LatencyTransport(scenario.transport, latency)
    config = _config(workers, concurrency, shard_size)
    with tempfile.TemporaryDirectory() as tmp:
        store = MeasurementStore(str(Path(tmp) / "bench.sqlite"))
        platform = WhoWas(
            transport, store, config, transport_factory=factory
        )
        started = time.perf_counter()
        summary = platform.run_round(
            list(scenario.targets), timestamp=scenario.scan_days[0]
        )
        elapsed = time.perf_counter() - started
        rows = sorted(
            row["ip"] for info in store.rounds()
            for row in (r.to_row() for r in store.records(info.round_id))
        )
        platform.close()
        store.close()
    stats = summary.pipeline
    return {
        "mode": stats.mode,
        "workers": workers,
        "records": stats.records_written,
        "responsive_ips": rows,
        "seconds": round(elapsed, 4),
        "records_per_second": round(stats.records_written / elapsed, 2),
        "worker_restarts": stats.worker_restarts,
        "partitions_merged": stats.partitions_merged,
    }


def run_benchmark(
    total_ips: int = 100_000,
    latency: float = 0.025,
    concurrency: int = 32,
    seed: int = 7,
    shard_size: int = 1024,
    worker_counts: tuple[int, ...] = (1, 2, 4, 8),
) -> dict:
    runs = []
    for count in worker_counts:
        run = run_once(
            workers=count, total_ips=total_ips, latency=latency,
            concurrency=concurrency, seed=seed, shard_size=shard_size,
        )
        runs.append(run)
    # Byte-equivalence across pool sizes is part of the contract.
    baseline_ips = runs[0].pop("responsive_ips")
    for run in runs[1:]:
        assert run.pop("responsive_ips") == baseline_ips, (
            f"workers={run['workers']} diverged from the serial record set"
        )
    base_rate = runs[0]["records_per_second"]
    for run in runs:
        run["speedup"] = round(
            run["records_per_second"] / base_rate if base_rate else 0.0, 3
        )
    return {
        "benchmark": "workers_scale",
        "total_ips": total_ips,
        "shard_size": shard_size,
        "latency_seconds": latency,
        "per_process_concurrency": concurrency,
        "seed": seed,
        "runs": runs,
    }


def test_two_workers_beat_one_smoke():
    """Small-scale smoke: with network waits injected, two supervised
    workers must out-run the single-process pipeline while producing
    the identical record set (the run_benchmark equivalence assert)."""
    result = run_benchmark(
        total_ips=2048, latency=0.02, concurrency=24,
        shard_size=128, worker_counts=(1, 2),
    )
    runs = {run["workers"]: run for run in result["runs"]}
    assert runs[2]["records"] == runs[1]["records"]
    assert runs[2]["speedup"] > 1.2, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ips", type=int, default=100_000)
    parser.add_argument("--latency", type=float, default=0.025,
                        help="injected per-operation latency in seconds")
    parser.add_argument("--concurrency", type=int, default=32,
                        help="per-process in-flight operation cap")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--shard-size", type=int, default=1024)
    parser.add_argument("--workers", type=int, nargs="+",
                        default=[1, 2, 4, 8])
    parser.add_argument("--out", default=None,
                        help="write the JSON result here (default: stdout)")
    args = parser.parse_args(argv)
    result = run_benchmark(
        total_ips=args.ips, latency=args.latency,
        concurrency=args.concurrency, seed=args.seed,
        shard_size=args.shard_size, worker_counts=tuple(args.workers),
    )
    payload = json.dumps(result, indent=2, sort_keys=True)
    if args.out:
        Path(args.out).write_text(payload + "\n")
        for run in result["runs"]:
            print(f"workers={run['workers']}: "
                  f"{run['records_per_second']:8.1f} rec/s "
                  f"({run['speedup']:.2f}x)")
        print(f"-> {args.out}")
    else:
        print(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
