"""Ablation: what each clustering stage contributes (§5's refinement).

The authors started with simhash-only clustering, then added the five
top-level features, then the temporal merge heuristic.  The simulator's
ground truth lets us score each variant: purity (no over-merging) and
fragmentation (no over-splitting).  Expectation: features raise purity
versus simhash-only; the merge step lowers fragmentation without
hurting purity.
"""

from repro.analysis import WebpageClusterer, score_clustering

from _render import emit, table


def test_ablation_clustering_stages(benchmark, ec2):
    dataset = ec2.dataset
    log = ec2.scenario.simulation.log
    variants = {
        "simhash-only": WebpageClusterer(use_features=False, use_merge=False),
        "features, no merge": WebpageClusterer(use_merge=False),
        "features + merge (full)": WebpageClusterer(),
    }

    scores = benchmark.pedantic(
        lambda: {
            name: score_clustering(dataset, clusterer.cluster(dataset), log)
            for name, clusterer in variants.items()
        },
        rounds=1, iterations=1,
    )

    rows = [
        [name, score.purity, score.fragmentation, score.clusters]
        for name, score in scores.items()
    ]
    emit(
        "ablation_clustering",
        table(["Variant", "purity", "fragmentation", "#clusters"], rows),
    )

    full = scores["features + merge (full)"]
    simhash_only = scores["simhash-only"]
    no_merge = scores["features, no merge"]
    # Top-level features must not hurt purity, and the full pipeline
    # should be highly pure against ground truth.
    assert full.purity >= simhash_only.purity - 0.02
    assert full.purity > 0.9
    # The merge step can only reduce (or keep) the cluster count.
    assert full.clusters <= no_merge.clusters
    assert full.fragmentation <= no_merge.fragmentation + 1e-9
