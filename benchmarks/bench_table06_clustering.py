"""Table 6: the clustering funnel — responsive IPs, unique simhashes,
top-level / 2nd-level / final cluster counts.

Paper: EC2 1,359,888 IPs / 1,767,072 hashes / 236,227 / 256,335 /
243,164; Azure 154,753 / 210,418 / 30,581 / 39,183 / 31,728.  Absolute
counts scale with the simulated space; the *ordering relations* must
hold: hashes > responsive IPs is specific to the paper's per-IP content
variety, while the funnel orderings (2nd-level > top-level,
final < 2nd-level) are structural and checked here.
"""

from repro.analysis import WebpageClusterer

from _render import emit, table


def test_table06_clustering_funnel(benchmark, ec2, azure):
    datasets = {"EC2": ec2.dataset, "Azure": azure.dataset}

    stats = benchmark.pedantic(
        lambda: {
            name: WebpageClusterer().cluster(dataset).stats
            for name, dataset in datasets.items()
        },
        rounds=1, iterations=1,
    )

    paper = {
        "EC2": [1_359_888, 1_767_072, 236_227, 256_335, 243_164],
        "Azure": [154_753, 210_418, 30_581, 39_183, 31_728],
    }
    rows = []
    for cloud, stat in stats.items():
        measured = [
            stat.responsive_ips,
            stat.unique_simhashes,
            stat.top_level_clusters,
            stat.second_level_clusters,
            stat.final_clusters,
        ]
        for label, value, reference in zip(
            ("Responsive IPs", "Unique simhashes", "Top-level clusters",
             "2nd-level clusters", "Final clusters"),
            measured,
            paper[cloud],
        ):
            rows.append([cloud, label, value, reference])
    emit("table06_clustering",
         table(["Cloud", "Quantity", "measured", "paper"], rows))

    for stat in stats.values():
        assert stat.second_level_clusters >= stat.top_level_clusters
        assert stat.final_clusters <= stat.second_level_clusters
        assert stat.unique_simhashes >= stat.top_level_clusters
