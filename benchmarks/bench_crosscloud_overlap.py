"""§8.1 cross-cloud overlap: clusters present on both EC2 and Azure.

Paper: 980 clusters use both clouds; 85% (834) use the same average
number of IPs in each (all ≤ 5 IPs); 110 use more IPs in EC2 — one VPN
service over 2,000 more — and no cluster migrated between clouds.

This bench runs *linked* campaigns (shared tenants planted in both
clouds) and recovers the overlap via the content matcher.
"""

from repro.analysis import find_cross_cloud_clusters
from repro.workloads import Campaign, azure_scenario, ec2_scenario, link_clouds

from _render import emit, table


def test_crosscloud_overlap(benchmark, repro_scale):
    ec2 = ec2_scenario(total_ips=int(4096 * repro_scale), seed=7)
    azure = azure_scenario(total_ips=int(2048 * repro_scale), seed=11)
    linked = link_clouds(ec2, azure, shared_services=14, seed=1)
    ec2_result = Campaign(ec2).run()
    azure_result = Campaign(azure).run()

    overlap = benchmark.pedantic(
        lambda: find_cross_cloud_clusters(
            ec2_result.dataset, ec2_result.clustering(),
            azure_result.dataset, azure_result.clustering(),
        ),
        rounds=1, iterations=1,
    )

    rows = [
        [m.title[:36], round(m.avg_size_a, 1), round(m.avg_size_b, 1),
         "yes" if m.same_footprint else "no"]
        for m in sorted(overlap.matches, key=lambda m: -abs(m.size_gap))[:8]
    ]
    emit(
        "crosscloud_overlap",
        [
            f"services linked into both clouds: {linked}",
            f"cross-cloud clusters found: {overlap.count} (paper: 980)",
            f"same average footprint: {overlap.same_footprint_share():.1f}% "
            "(paper: 85%)",
        ]
        + table(["Title", "EC2 avg IPs", "Azure avg IPs", "same?"], rows),
    )

    assert overlap.count >= linked * 0.5
    assert overlap.same_footprint_share() > 50.0
    # The mirrored VPN giant gives the paper's one large EC2-side gap.
    gap = overlap.largest_gap()
    assert gap is not None
    assert gap.size_gap > 2.0
