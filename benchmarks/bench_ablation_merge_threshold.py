"""Ablation: the merge heuristic's Hamming threshold (§5 uses 3 bits,
citing Manku et al.'s near-duplicate threshold).

Sweeping the threshold shows the trade-off: 0 disables merging entirely
(maximal fragmentation), small values merge only true revisions, large
values risk merging distinct pages that share an IP and a feature.
"""

from repro.analysis import WebpageClusterer, score_clustering

from _render import emit, table


def test_ablation_merge_threshold(benchmark, ec2):
    dataset = ec2.dataset
    log = ec2.scenario.simulation.log
    thresholds = (0, 1, 3, 5, 8, 16)

    def sweep():
        results = {}
        for threshold in thresholds:
            clusterer = WebpageClusterer(merge_threshold=threshold)
            clustering = clusterer.cluster(dataset)
            results[threshold] = (
                score_clustering(dataset, clustering, log),
                clustering.stats,
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [threshold, score.purity, score.fragmentation,
         stats.merged_clusters, stats.final_clusters]
        for threshold, (score, stats) in results.items()
    ]
    emit(
        "ablation_merge_threshold",
        table(["threshold", "purity", "fragmentation", "merged", "final"],
              rows),
    )

    # Cluster counts decrease monotonically with the threshold.
    finals = [results[t][1].merged_clusters for t in thresholds]
    assert all(a >= b for a, b in zip(finals, finals[1:]))
    # The paper's threshold of 3 keeps purity essentially intact.
    assert results[3][0].purity >= results[0][0].purity - 0.02
    # Fragmentation at threshold 3 is no worse than with merging off.
    assert results[3][0].fragmentation <= results[0][0].fragmentation
