"""Figure 10: per-round cluster availability changes.

Paper: the fraction of clusters flipping available/unavailable between
adjacent rounds averages 4.6% on EC2 and 7.3% on Azure (relative to all
clusters observed over the whole campaign).
"""

from repro.analysis import DynamicsAnalyzer

from _render import emit, series

PAPER = {"EC2": 4.6, "Azure": 7.3}


def test_fig10_cluster_availability_change(benchmark, ec2, ec2_clusters,
                                           azure, azure_clusters):
    analyzers = {
        "EC2": DynamicsAnalyzer(ec2.dataset, ec2_clusters),
        "Azure": DynamicsAnalyzer(azure.dataset, azure_clusters),
    }

    data = benchmark.pedantic(
        lambda: {
            name: analyzer.cluster_change_series()
            for name, analyzer in analyzers.items()
        },
        rounds=1, iterations=1,
    )

    lines = []
    for cloud, values in data.items():
        average = sum(values) / len(values)
        lines.append(
            f"[{cloud}] average change {average:.2f}% "
            f"(paper {PAPER[cloud]}%)"
        )
        lines.append(series(f"  {cloud} % clusters changed", values, every=5))
    emit("fig10_cluster_change", lines)

    for cloud, values in data.items():
        average = sum(values) / len(values)
        assert 1.0 < average < 15.0
        assert max(values) < 40.0
