"""Table 17: VirusTotal-flagged IPs per EC2 region per month.

Paper: 2,070 malicious IPs total (≥ 2 engines), 0.3% of average
available IPs; USEast dominates (1,422), followed by EU (200) and
USWest_Oregon (192); monthly counts grow from October to December.
Azure: zero VirusTotal-flagged IPs.
"""

from repro.analysis import VirusTotalAnalyzer

from _render import emit, table


def test_table17_vt_by_region(benchmark, ec2, ec2_clusters, azure):
    analyzer = VirusTotalAnalyzer(
        ec2.dataset,
        ec2.scenario.virustotal(seed=3),
        ec2_clusters,
        region_of=ec2.scenario.topology.region_of,
    )

    findings = benchmark.pedantic(analyzer.analyze, rounds=1, iterations=1)

    months = sorted({m for _, m in findings.by_region_month})
    rows = []
    region_table = findings.region_month_table()
    for region, by_month in sorted(
        region_table.items(), key=lambda kv: -sum(kv[1].values())
    ):
        rows.append(
            [region] + [by_month.get(m, 0) for m in months]
            + [sum(by_month.values())]
        )
    emit(
        "table17_malicious_regions",
        table(["Region"] + [f"month{m}" for m in months] + ["total"], rows)
        + [f"total malicious IPs: {findings.malicious_ip_count} "
           "(paper: 2,070 on EC2, 0 on Azure; USEast leads)"],
    )

    assert findings.malicious_ip_count > 0
    totals = {
        region: sum(by_month.values())
        for region, by_month in region_table.items()
    }
    # USEast is the largest region and hosts the most malicious IPs.
    assert max(totals, key=totals.get) == "USEast"
    # The Azure scenario plants no VT-visible hosters (paper found none).
    azure_analyzer = VirusTotalAnalyzer(
        azure.dataset, azure.scenario.virustotal(seed=3)
    )
    assert len(azure_analyzer.collect_reports()) == 0
