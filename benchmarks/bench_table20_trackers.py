"""Table 20: top third-party trackers on the last measurement round,
plus the Google Analytics account analysis of §8.3.

Paper (EC2, Dec 31 2013): google-analytics 127,604 IPs / 55,406
clusters; facebook 24,130 / 13,462; twitter 14,706 / 8,520; doubleclick
5,342 / 2,189; ... 77% of tracker-using pages embed one tracker.  GA
IDs split into 64,716 accounts, 93.5% with a single profile.
"""

from repro.analysis import TrackerAnalyzer, analyze_ga_accounts

from _render import emit, table

PAPER_ORDER = ["google-analytics", "facebook", "twitter", "doubleclick"]


def test_table20_trackers(benchmark, ec2, ec2_clusters, azure,
                          azure_clusters):
    analyzers = {
        "EC2": TrackerAnalyzer(ec2.store, ec2_clusters),
        "Azure": TrackerAnalyzer(azure.store, azure_clusters),
    }
    last_rounds = {
        "EC2": ec2.dataset.round_ids[-1],
        "Azure": azure.dataset.round_ids[-1],
    }

    hits = benchmark.pedantic(
        lambda: {
            name: analyzer.scan_round(last_rounds[name])
            for name, analyzer in analyzers.items()
        },
        rounds=1, iterations=1,
    )

    rows = []
    for cloud, found in hits.items():
        for name, ips, clusters in found.table(10):
            rows.append([cloud, name, ips, clusters])
    lines = table(["Cloud", "Tracker", "#IP", "#Clusters"], rows)
    for cloud, found in hits.items():
        shares = found.multi_tracker_shares()
        lines.append(
            f"[{cloud}] trackers per page: "
            + ", ".join(f"{n}: {share:.0f}%" for n, share in shares.items())
            + " (paper EC2: 1: 77%, 2: 16%, 3: 6%)"
        )
    ga_stats = analyze_ga_accounts(analyzers["EC2"].ga_ids())
    lines.append(
        f"[EC2] GA: {ga_stats.unique_ids} IDs on {ga_stats.unique_ips} IPs, "
        f"{ga_stats.accounts} accounts, single-profile "
        f"{ga_stats.single_profile_share():.1f}% (paper 93.5%)"
    )
    emit("table20_trackers", lines)

    for cloud, found in hits.items():
        top = found.table(10)
        assert top[0][0] == "google-analytics"
        names = [name for name, _, _ in top]
        # The paper's leaders rank high in both clouds.
        present = [n for n in PAPER_ORDER if n in names]
        assert names[: len(present)] == present or set(PAPER_ORDER[:3]) <= set(
            names[:5]
        )
    assert ga_stats.single_profile_share() > 60.0
