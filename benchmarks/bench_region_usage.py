"""§8.1 "Region and VPC usage": how clusters use provider regions.

Paper: 97.0% of all clusters use a single region; among the top 5% by
size only 21.5% use more than one; 98.37% of EC2 clusters keep the same
region set over time (0.7% add one, 0.76% drop one).
"""

from repro.analysis import RegionAnalyzer

from _render import emit


def test_region_usage(benchmark, ec2, ec2_clusters):
    analyzer = RegionAnalyzer(
        ec2.dataset, ec2_clusters, ec2.scenario.topology.region_of
    )

    usage = benchmark.pedantic(analyzer.usage, rounds=1, iterations=1)

    emit(
        "region_usage",
        [
            f"single-region clusters: {usage.single_region_share:.1f}% "
            "(paper 97.0%)",
            f"top-5% clusters spanning regions: "
            f"{usage.top_multi_region_share:.1f}% (paper 21.5%)",
            f"same region set over time: {usage.same_region_share():.2f}% "
            "(paper 98.37%)",
            "region-count changes: "
            + ", ".join(
                f"{delta:+d}: {share:.2f}%"
                for delta, share in sorted(usage.change_shares.items())
                if delta != 0
            ),
        ],
    )

    assert usage.single_region_share > 85.0
    assert usage.same_region_share() > 90.0
    # Big deployments span regions far more often than the population.
    assert usage.top_multi_region_share > (100.0 - usage.single_region_share)
