"""Figure 14 / §8.1 VPC adoption: classic-only vs VPC-only vs mixed
clusters over time, plus the overall split and transitions.

Paper: 177,246 clusters (72.9%) classic-only, 59,547 (24.5%) VPC-only,
6,371 (2.6%) mixed; classic-only declining while VPC-only and mixed
grow; 1,024 clusters transitioned classic->VPC vs 483 the other way.
"""

from repro.analysis import VpcUsageAnalyzer

from _render import emit, series, table

PAPER_SPLIT = {"classic-only": 72.9, "vpc-only": 24.5, "mixed": 2.6}


def test_fig14_vpc_cluster_series(benchmark, ec2, ec2_clusters,
                                  ec2_cartography):
    analyzer = VpcUsageAnalyzer(ec2.dataset, ec2_clusters, ec2_cartography)

    totals, per_round, moves = benchmark.pedantic(
        lambda: (
            analyzer.cluster_kind_totals(),
            analyzer.cluster_kind_series(),
            analyzer.transitions(),
        ),
        rounds=1, iterations=1,
    )

    total = sum(totals.values())
    rows = [
        [kind, count, count / total * 100.0, PAPER_SPLIT[kind]]
        for kind, count in totals.items()
    ]
    lines = table(["Kind", "clusters", "measured %", "paper %"], rows)
    for kind in ("classic-only", "vpc-only", "mixed"):
        lines.append(series(f"  {kind}", per_round[kind], every=5))
    lines.append(
        f"transitions classic->vpc {moves['classic_to_vpc']}, "
        f"vpc->classic {moves['vpc_to_classic']} "
        "(paper: 1024 vs 483)"
    )
    emit("fig14_vpc_clusters", lines)

    shares = {k: v / total * 100.0 for k, v in totals.items()}
    assert shares["classic-only"] > shares["vpc-only"] > shares["mixed"]
    assert abs(shares["classic-only"] - 72.9) < 15.0
    # VPC-only clusters grow over the campaign (new accounts).
    vpc_series = per_round["vpc-only"]
    assert vpc_series[-1] >= vpc_series[0]
