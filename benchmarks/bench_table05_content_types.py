"""Table 5: top-5 content types among collected webpages.

Paper: EC2 text/html 95.9, text/plain 2.1, application/json 1.0,
application/xml 0.3, text/xml 0.3, other 0.4; Azure text/html 97.8, ...
"""

from repro.analysis import DynamicsAnalyzer

from _render import emit, table

PAPER_EC2 = {
    "text/html": 95.9,
    "text/plain": 2.1,
    "application/json": 1.0,
    "application/xml": 0.3,
    "text/xml": 0.3,
}


def test_table05_content_types(benchmark, ec2, azure):
    analyzers = {
        "EC2": DynamicsAnalyzer(ec2.dataset),
        "Azure": DynamicsAnalyzer(azure.dataset),
    }

    tables = benchmark.pedantic(
        lambda: {
            name: analyzer.content_type_table()
            for name, analyzer in analyzers.items()
        },
        rounds=1, iterations=1,
    )

    rows = []
    for cloud, measured in tables.items():
        for content_type, share in measured:
            paper = PAPER_EC2.get(content_type, "") if cloud == "EC2" else ""
            rows.append([cloud, content_type, share, paper])
    emit(
        "table05_content_types",
        table(["Cloud", "Content type", "measured %", "paper % (EC2)"], rows),
    )

    for cloud, measured in tables.items():
        top_type, top_share = measured[0]
        assert top_type == "text/html"
        assert top_share > 90.0
