"""Table 15: the top-10 EC2 deployments by average cluster size.

Paper columns: total/mean/median/min/max IPs, average IP uptime %
(73.8 down to 13.1), max IP departure % (6.3 up to 86.3), stable-IP %
(mostly low; 89.1% for the stablest), regions used (1-8), mean VPC IPs.
The reproduction plants scaled versions of the same ten deployments and
must recover them at the top of the ranking with the same qualitative
spread: uptimes from >90% down to <40%, some deployments with massive
per-round departure, and low long-run IP stability except the stablest.
"""

from repro.analysis import UptimeAnalyzer

from _render import emit, table


def test_table15_top_clusters(benchmark, ec2, ec2_clusters):
    scenario = ec2.scenario
    analyzer = UptimeAnalyzer(
        ec2.dataset,
        ec2_clusters,
        region_of=scenario.topology.region_of,
        kind_of=scenario.topology.kind_of,
    )

    rows_data = benchmark.pedantic(
        lambda: analyzer.top_clusters(10), rounds=1, iterations=1
    )

    rows = []
    for index, usage in enumerate(rows_data, start=1):
        rows.append([
            index,
            usage.total_ips,
            usage.mean_size,
            usage.median_size,
            usage.min_size,
            usage.max_size,
            usage.avg_ip_uptime,
            usage.max_ip_departure,
            usage.stable_ip_share,
            usage.regions_used,
            usage.mean_vpc_ips,
        ])
    emit(
        "table15_large_clusters",
        table(
            ["#", "Total IP", "Mean", "Median", "Min", "Max",
             "Uptime%", "MaxDep%", "Stable%", "Regions", "VPC"],
            rows,
        ),
    )

    # The planted giants dominate the top of the ranking.
    assert rows_data[0].mean_size > rows_data[-1].mean_size
    assert rows_data[0].mean_size >= 20
    # Qualitative spread of the paper's table:
    uptimes = [u.avg_ip_uptime for u in rows_data]
    assert max(uptimes) > 60.0          # some giants are stable
    assert min(uptimes) < 45.0          # others churn heavily
    departures = [u.max_ip_departure for u in rows_data]
    assert max(departures) > 40.0       # elastic deployments rotate IPs
    regions = [u.regions_used for u in rows_data]
    assert max(regions) >= 3            # multi-region giants exist
    assert min(regions) == 1
    # Total unique IPs exceeds the per-round footprint for churny giants.
    churny = max(rows_data, key=lambda u: u.max_ip_departure)
    assert churny.total_ips > churny.mean_size
