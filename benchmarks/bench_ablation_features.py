"""Ablation: alternative clustering goals (§5's closing remark).

The paper notes the programmatic interface makes it easy to "cluster
with other goals in mind, such as simply finding related content
(dropping the server feature) or only using Analytics IDs".  This bench
scores those variants against the simulator's ownership ground truth:
Analytics-ID-only clustering finds *owners* (multiple sites of one GA
account can merge — purity dips while fragmentation improves for
GA-carrying sites), and dropping the server feature merges related
content served by different stacks.
"""

from repro.analysis import WebpageClusterer, score_clustering

from _render import emit, table


def test_ablation_feature_goals(benchmark, ec2):
    dataset = ec2.dataset
    log = ec2.scenario.simulation.log
    variants = {
        "all five features": WebpageClusterer(),
        "without server": WebpageClusterer(
            feature_subset=("title", "template", "keywords", "analytics_id")
        ),
        "analytics-id only": WebpageClusterer(
            feature_subset=("analytics_id",)
        ),
        "title only": WebpageClusterer(feature_subset=("title",)),
    }

    def sweep():
        results = {}
        for name, clusterer in variants.items():
            clustering = clusterer.cluster(dataset)
            results[name] = (
                score_clustering(dataset, clustering, log),
                clustering.stats,
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [name, score.purity, score.fragmentation,
         stats.merged_clusters, stats.final_clusters]
        for name, (score, stats) in results.items()
    ]
    emit(
        "ablation_features",
        table(["Goal", "purity", "fragmentation", "pre-clean", "final"],
              rows),
    )

    full_score, full_stats = results["all five features"]
    assert full_score.purity > 0.9
    # Coarser level-1 keys can only merge, never split, so the
    # *pre-cleaning* cluster count is monotone (cleaning is title-based
    # and does not apply when the title is masked out).
    assert results["without server"][1].merged_clusters <= \
        full_stats.merged_clusters
    assert results["analytics-id only"][1].merged_clusters <= \
        results["without server"][1].merged_clusters
    # Dropping features trades purity for recall of related content.
    assert results["analytics-id only"][0].purity <= full_score.purity + 1e-9
