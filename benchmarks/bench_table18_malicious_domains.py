"""Table 18: top-10 domains of malicious URLs found by VirusTotal.

Paper: dl.dropboxusercontent.com (993 URLs) and dl.dropbox.com (936)
lead — file-hosting services running on EC2 distribute most malware —
followed by fake-download sites (download-instantly.com 295, tr.im 268,
www.wishdownload.com 223, ...).
"""

from repro.analysis import VirusTotalAnalyzer
from repro.cloudsim.malicious import MALICIOUS_DOMAINS

from _render import emit, table

PAPER_TOP = [domain for domain, _ in MALICIOUS_DOMAINS[:10]]


def test_table18_malicious_domains(benchmark, ec2, ec2_clusters):
    analyzer = VirusTotalAnalyzer(
        ec2.dataset,
        ec2.scenario.virustotal(seed=3),
        ec2_clusters,
        region_of=ec2.scenario.topology.region_of,
    )

    findings = benchmark.pedantic(analyzer.analyze, rounds=1, iterations=1)

    top = findings.top_domains(10)
    rows = [
        [rank, domain, count,
         PAPER_TOP[rank - 1] if rank <= len(PAPER_TOP) else ""]
        for rank, (domain, count) in enumerate(top, start=1)
    ]
    emit("table18_malicious_domains",
         table(["#", "Domain", "URL count", "paper rank holder"], rows))

    assert top
    measured_domains = {domain for domain, _ in top}
    # The file-hosting heavyweights dominate as in the paper.
    assert measured_domains & {
        "dl.dropboxusercontent.com", "dl.dropbox.com",
    }
    counts = [count for _, count in top]
    assert counts == sorted(counts, reverse=True)
