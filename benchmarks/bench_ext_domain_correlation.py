"""Extension (§9): active-DNS correlation and vhost-ownership recovery.

Not a paper table — §9 lists "correlate WhoWas data with other sources
such as passive or active DNS interrogation" as future work, and §4
notes that virtual-host 404 pages sometimes leak the intended domain.
This bench runs the collect → resolve → confirm pipeline and reports
how many error-page IPs had their ownership recovered.
"""

from repro.analysis import DomainCorrelator

from _render import emit


def test_ext_domain_correlation(benchmark, ec2, ec2_clusters):
    correlator = DomainCorrelator(
        ec2.dataset,
        ec2.scenario.dns.resolve_domain,
        ec2_clusters,
    )

    report = benchmark.pedantic(correlator.correlate, rounds=1, iterations=1)

    confirmed = report.confirmed()
    recovered = report.recovered_error_ips()
    emit(
        "ext_domain_correlation",
        [
            f"candidate domains from page bodies: {report.candidates}",
            f"resolved by active DNS:             {report.resolved}",
            f"ownership confirmed (resolve-back): {len(confirmed)}",
            f"error-page IPs recovered:           {len(recovered)}",
        ],
    )

    assert report.candidates > 0
    assert confirmed
    # Every confirmed correlation is genuine per simulator ground truth.
    simulation = ec2.scenario.simulation
    for correlation in confirmed:
        service = simulation.service_for_domain(correlation.domain)
        assert service is not None
        held = {
            interval.ip
            for interval in
            simulation.log.intervals_for_service(service.service_id)
        }
        assert set(correlation.confirmed_ips) <= held
    # The extension's point: some vhost-style error IPs gain ownership.
    assert recovered
