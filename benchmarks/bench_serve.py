"""Serving-layer latency/shed benchmark under seeded offered load.

Builds a small campaign database, starts :class:`~repro.serve.ServeApp`
on an ephemeral port, and drives the seeded open-loop workload
generator at several offered rates spanning under- and over-load
(relative to the configured admission rate).  For each rate the
committed result records the response-status mix and per-status latency
percentiles — the numbers behind the serving contract: under overload
the p99 of *served* requests stays within the deadline budget because
the excess is explicitly shed as 429/503, never queued into oblivion.

Run standalone to (re)generate the committed results file::

    python benchmarks/bench_serve.py --out BENCH_serve.json

Also collected by pytest as a smoke test (short duration, loose
bounds).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # standalone execution without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import main as repro_main
from repro.core.config import ServeConfig
from repro.serve import RqsWorkload, ServeApp, run_workload

#: Path mix approximating real query traffic: mostly WhoWas IP
#: lookups, some round browsing, occasional aggregates.
PATH_MIX = {
    "/ip/54.0.0.4": 4.0,
    "/ip/54.0.1.17": 2.0,
    "/ip/10.99.0.1": 1.0,
    "/rounds": 2.0,
    "/rounds/1": 1.0,
    "/clusters/1?column=server": 1.0,
}


def build_database(tmp: Path, *, ips: int, days: int, seed: int) -> str:
    path = str(tmp / "bench_serve.sqlite")
    code = repro_main([
        "simulate", "--cloud", "ec2", "--ips", str(ips),
        "--days", str(days), "--seed", str(seed), "--out", path,
    ])
    if code != 0:
        raise RuntimeError(f"simulate failed with exit code {code}")
    return path


async def drive_one_rate(
    db_path: str, *, admitted_rate: float, offered_multiple: float,
    duration: float, deadline: float, seed: int,
) -> dict:
    config = ServeConfig(
        port=0, rate_per_second=admitted_rate, burst=admitted_rate / 4,
        accept_queue=16, default_deadline=deadline,
    )
    app = ServeApp(db_path, config)
    await app.start()
    try:
        offered = admitted_rate * offered_multiple
        # mean_users * rate_per_user = offered; keep per-user rate
        # modest so the Poisson user count carries the burstiness.
        rate_per_user = 20.0
        workload = RqsWorkload(
            mean_users=offered / rate_per_user,
            rate_per_user=rate_per_user,
            duration=duration,
            paths=PATH_MIX,
            seed=seed,
        )
        began = time.perf_counter()
        report = await run_workload(
            "127.0.0.1", app.port, workload, timeout=max(10.0, deadline * 4)
        )
        elapsed = time.perf_counter() - began
    finally:
        await app.close()
    result = report.to_dict()
    result.update({
        "offered_multiple": offered_multiple,
        "offered_rate": round(offered, 1),
        "achieved_rate": round(report.sent / elapsed, 1) if elapsed else 0.0,
        "served_pct": round(100.0 * report.count(200) / max(report.sent, 1), 1),
        "shed_pct": round(
            100.0 * (report.count(429) + report.count(503))
            / max(report.sent, 1), 1,
        ),
    })
    return result


def run_benchmark(
    *, ips: int = 1024, days: int = 8, seed: int = 29,
    admitted_rate: float = 100.0, duration: float = 4.0,
    deadline: float = 0.5,
    multiples: tuple[float, ...] = (0.5, 2.0, 10.0),
) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        db_path = build_database(
            Path(tmp), ips=ips, days=days, seed=seed
        )

        async def all_rates():
            runs = []
            for index, multiple in enumerate(multiples):
                runs.append(await drive_one_rate(
                    db_path,
                    admitted_rate=admitted_rate,
                    offered_multiple=multiple,
                    duration=duration,
                    deadline=deadline,
                    seed=seed * 1000 + index,
                ))
            return runs

        runs = asyncio.run(all_rates())
    return {
        "benchmark": "serve_overload",
        "ips": ips,
        "days": days,
        "seed": seed,
        "admitted_rate": admitted_rate,
        "deadline_seconds": deadline,
        "duration_seconds": duration,
        "contract": "zero malformed responses at every offered rate; "
                    "p99 of served (200) requests within the deadline "
                    "budget even at 10x overload",
        "runs": runs,
    }


def test_serve_bench_smoke():
    """Short-duration smoke: the shedding contract holds at 4x
    overload (the committed BENCH_serve.json holds the real numbers
    at more rates and longer windows)."""
    result = run_benchmark(
        ips=256, days=4, admitted_rate=50.0, duration=1.5,
        multiples=(0.5, 4.0),
    )
    for run in result["runs"]:
        assert run["malformed"] == 0, result
        assert set(run["statuses"]) <= {"200", "429", "503"}, result
    overloaded = result["runs"][-1]
    assert overloaded["shed_pct"] > 0, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ips", type=int, default=1024)
    parser.add_argument("--days", type=int, default=8)
    parser.add_argument("--seed", type=int, default=29)
    parser.add_argument("--rate", type=float, default=100.0,
                        help="admission rate the server is configured for")
    parser.add_argument("--duration", type=float, default=4.0,
                        help="seconds of offered load per rate point")
    parser.add_argument("--deadline", type=float, default=0.5,
                        help="per-request deadline budget (seconds)")
    parser.add_argument("--multiples", type=float, nargs="+",
                        default=[0.5, 2.0, 10.0],
                        help="offered-rate multiples of the admission rate")
    parser.add_argument("--out", default=None,
                        help="write the JSON result here (default: stdout)")
    args = parser.parse_args(argv)
    result = run_benchmark(
        ips=args.ips, days=args.days, seed=args.seed,
        admitted_rate=args.rate, duration=args.duration,
        deadline=args.deadline, multiples=tuple(args.multiples),
    )
    payload = json.dumps(result, indent=2, sort_keys=True)
    if args.out:
        Path(args.out).write_text(payload + "\n")
        for run in result["runs"]:
            p99 = run["latency_ms"].get("200", {}).get("p99", float("nan"))
            print(f"{run['offered_multiple']:>5.1f}x "
                  f"({run['offered_rate']:7.1f} rq/s): "
                  f"served {run['served_pct']:5.1f}%  "
                  f"shed {run['shed_pct']:5.1f}%  "
                  f"p99(200) {p99:8.1f} ms  "
                  f"malformed {run['malformed']}")
        print(f"-> {args.out}")
    else:
        print(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
