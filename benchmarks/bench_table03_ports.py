"""Table 3: average % of responsive IPs per round opening each port set.

Paper: EC2 22-only 25.9 / 80-only 38.0 / 443-only 5.5 / 80&443 30.6;
Azure 9.3 / 45.8 / 16.5 / 28.4.
"""

from repro.analysis import DynamicsAnalyzer

from _render import emit, table

PAPER = {
    "EC2": {"22-only": 25.9, "80-only": 38.0, "443-only": 5.5, "80&443": 30.6},
    "Azure": {"22-only": 9.3, "80-only": 45.8, "443-only": 16.5, "80&443": 28.4},
}


def test_table03_port_profiles(benchmark, ec2, azure):
    analyzers = {
        "EC2": DynamicsAnalyzer(ec2.dataset),
        "Azure": DynamicsAnalyzer(azure.dataset),
    }

    tables = benchmark.pedantic(
        lambda: {name: a.port_profile_table() for name, a in analyzers.items()},
        rounds=1, iterations=1,
    )

    rows = []
    for cloud, measured in tables.items():
        for label in ("22-only", "80-only", "443-only", "80&443"):
            rows.append([cloud, label, measured[label], PAPER[cloud][label]])
    emit("table03_ports", table(["Cloud", "Ports", "measured %", "paper %"],
                                rows))

    for cloud, measured in tables.items():
        # Shape: same ranking of port profiles as the paper.
        order = sorted(measured, key=measured.get, reverse=True)
        paper_order = sorted(PAPER[cloud], key=PAPER[cloud].get, reverse=True)
        assert order == paper_order
        for label, value in measured.items():
            # Multi-IP services make per-IP shares noisy at bench scale.
            assert abs(value - PAPER[cloud][label]) < 12.0
