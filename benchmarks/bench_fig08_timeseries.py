"""Figure 8: per-round time series of responsive IPs, available IPs and
clusters, with the Friday/Saturday departure dips.

Paper: low variation (0.3-0.5% σ), visible dips on EC2 at Oct 4, Nov 8,
Nov 30, Dec 14, Dec 28 (days 4/39/61/75/89) and on Azure at Nov 29 and
Dec 7 (days 29/37), each followed by clusters never returning.
"""

from repro.analysis import DynamicsAnalyzer

from _render import emit, series


def test_fig08_timeseries(benchmark, ec2, ec2_clusters, azure, azure_clusters):
    analyzers = {
        "EC2": DynamicsAnalyzer(ec2.dataset, ec2_clusters),
        "Azure": DynamicsAnalyzer(azure.dataset, azure_clusters),
    }

    data = benchmark.pedantic(
        lambda: {
            name: (
                analyzer.responsive_series(),
                analyzer.available_series(),
                analyzer.cluster_series(),
            )
            for name, analyzer in analyzers.items()
        },
        rounds=1, iterations=1,
    )

    lines = []
    for cloud, (responsive, available, clusters) in data.items():
        lines.append(f"[{cloud}] rounds={len(responsive)}")
        lines.append(series("  responsive", responsive, every=5))
        lines.append(series("  available ", available, every=5))
        lines.append(series("  clusters  ", clusters, every=5))
    emit("fig08_timeseries", lines)

    for cloud, (responsive, available, clusters) in data.items():
        campaign = ec2 if cloud == "EC2" else azure
        clustering = ec2_clusters if cloud == "EC2" else azure_clusters
        dataset = campaign.dataset
        events = campaign.scenario.workload.departure_events
        # §8.1 interprets the dips as clusters that "become unavailable
        # ... and never return": permanent departures must spike in the
        # scan window right after each configured event day.
        last_seen: dict[int, int] = {}
        for cluster in clustering.clusters.values():
            last_round = max(
                dataset.timestamp_of(rid) for _, rid in cluster.members
            )
            last_seen[last_round] = last_seen.get(last_round, 0) + 1
        horizon = campaign.scenario.scan_days[-1] - 7

        def window_sum(center: int) -> int:
            # Centered window: at a 3-day cadence a cluster killed on
            # the event day was last *seen* up to one round earlier.
            return sum(
                count for day, count in last_seen.items()
                if -4 <= day - center <= 3
            )

        ordinary_windows = [
            window_sum(start)
            for start in range(10, horizon)
            if all(abs(start - event_day) > 9 for event_day in events)
        ]
        ordinary_windows.sort()
        baseline = (
            ordinary_windows[len(ordinary_windows) // 2]
            if ordinary_windows else 0
        )
        event_sums = [
            window_sum(event_day) for event_day in events
            # Events hard against the campaign start are inseparable
            # from round-0 one-shot clusters; skip them.
            if 10 <= event_day < horizon
        ]
        # Collectively, event windows lose clusters above the
        # ordinary-week median (individual events can be small).
        assert event_sums
        assert sum(event_sums) / len(event_sums) > baseline
        # Low per-round variation, as in the paper.
        mean = sum(responsive) / len(responsive)
        sigma = (sum((v - mean) ** 2 for v in responsive) / len(responsive)) ** 0.5
        assert sigma / mean < 0.06
