"""Figure 19: blacklist lag CDFs per content-behaviour type.

Left: days between a malicious page appearing (per WhoWas) and its
first VirusTotal detection — paper: ~90% of type 1 and type 3 pages
detected within 3 days, only ~50% of type 2 (their pages blink in and
out, evading scans).  Right: days a page stays up after its last
detection — most type 1/3 pages are removed soon after; only ~40% of
type 2 pages are ever removed.
"""

from repro.analysis import VirusTotalAnalyzer

from _render import cdf_summary, emit


def test_fig19_blacklist_lag(benchmark, ec2, ec2_clusters):
    analyzer = VirusTotalAnalyzer(
        ec2.dataset,
        ec2.scenario.virustotal(seed=3),
        ec2_clusters,
        region_of=ec2.scenario.topology.region_of,
    )

    findings = benchmark.pedantic(analyzer.analyze, rounds=1, iterations=1)

    lines = [
        f"behaviour types: "
        f"{sum(1 for v in findings.behaviour_types.values() if v == 1)} "
        f"type-1, "
        f"{sum(1 for v in findings.behaviour_types.values() if v == 2)} "
        f"type-2, "
        f"{sum(1 for v in findings.behaviour_types.values() if v == 3)} "
        f"type-3 (paper: 34 / 42 / 22)",
    ]
    for kind in (1, 2, 3):
        lines.append(
            f"type {kind} lag-to-first-detection: "
            f"{cdf_summary(findings.lag_before[kind])}"
        )
    for kind in (1, 2, 3):
        lines.append(
            f"type {kind} days-alive-after-last-detection: "
            f"{cdf_summary(findings.lag_after[kind])}"
        )
    emit("fig19_blacklist_lag", lines)

    # All three behaviour types are observed.
    kinds = set(findings.behaviour_types.values())
    assert {1, 2} <= kinds
    before_all = [
        v for kind in (1, 2, 3) for v in findings.lag_before[kind]
    ]
    assert before_all
    # Detection lags are short overall (days, not months).
    assert sorted(before_all)[len(before_all) // 2] < 21
    # Type 2 (appear/disappear) pages linger after last detection more
    # often than type 1, matching the paper's right-hand CDF — checked
    # in expectation when both populations are non-trivial.
    after1, after2 = findings.lag_after[1], findings.lag_after[2]
    if len(after1) >= 5 and len(after2) >= 5:
        mean1 = sum(after1) / len(after1)
        mean2 = sum(after2) / len(after2)
        assert mean2 >= mean1 * 0.5
