"""Figure 12: CDF of average IP uptime for clusters of size >= 2.

Paper: ~50% of such clusters exceed 90% average IP uptime (with 27-30%
between 95% and 99%); the other half spreads widely; larger clusters
churn more (size >= 50 average ≈ 62%).
"""

from repro.analysis import UptimeAnalyzer

from _render import cdf_summary, emit


def test_fig12_ip_uptime_cdf(benchmark, ec2, ec2_clusters, azure,
                             azure_clusters):
    analyzers = {
        "EC2": UptimeAnalyzer(ec2.dataset, ec2_clusters),
        "Azure": UptimeAnalyzer(azure.dataset, azure_clusters),
    }

    data = benchmark.pedantic(
        lambda: {
            name: analyzer.average_ip_uptime_distribution(min_size=2.0)
            for name, analyzer in analyzers.items()
        },
        rounds=1, iterations=1,
    )

    lines = []
    for cloud, values in data.items():
        high = sum(1 for v in values if v >= 90.0) / len(values) * 100.0
        lines.append(
            f"[{cloud}] {cdf_summary(values)} | >=90% uptime: "
            f"{high:.1f}% of clusters (paper ~50%)"
        )
    # Large clusters churn more (paper: size >= 50 averages 62%).
    for cloud, analyzer in analyzers.items():
        campaign = ec2 if cloud == "EC2" else azure
        round_count = campaign.dataset.round_count
        big = [
            analyzer.average_ip_uptime(c)
            for c in (ec2_clusters if cloud == "EC2"
                      else azure_clusters).clusters.values()
            if c.average_size(round_count) >= 15
        ]
        if big:
            lines.append(
                f"[{cloud}] clusters of size >= 15: mean uptime "
                f"{sum(big) / len(big):.1f}% (paper, size >= 50: 62%)"
            )
    emit("fig12_ip_uptime", lines)

    for cloud, values in data.items():
        assert values
        high = sum(1 for v in values if v >= 90.0) / len(values)
        assert high > 0.3
        # The spread below 90% exists too (Figure 12's long tail).
        assert min(values) < 80.0
