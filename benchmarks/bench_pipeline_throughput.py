"""Round-pipeline throughput: serial engine vs streaming overlap.

The cloud simulator answers from CPU with no I/O waits, so stage
overlap alone cannot make it faster — real deployments win because the
scanner's probe timeouts, the fetcher's GETs and the store's fsyncs
all *wait* while other stages could be working.  This bench restores
that shape with :class:`LatencyTransport`, which injects a fixed
``asyncio.sleep`` into every probe/GET/banner, then times one full
round with ``pipeline.overlap`` off and on over the identical scenario.

Run standalone to (re)generate the committed results file::

    python benchmarks/bench_pipeline_throughput.py --out BENCH_pipeline.json

Also collected by pytest as a smoke test (small scale, loose bound).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # standalone execution without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import WhoWas
from repro.core.config import (
    FetchConfig,
    PipelineConfig,
    PlatformConfig,
    ScanConfig,
)
from repro.workloads import ec2_scenario


class LatencyTransport:
    """Adds a fixed event-loop latency to every network operation."""

    def __init__(self, inner, delay: float):
        self.inner = inner
        self.delay = delay

    def on_round_start(self, round_id: int) -> None:
        hook = getattr(self.inner, "on_round_start", None)
        if callable(hook):
            hook(round_id)

    async def probe(self, ip, port, timeout):
        await asyncio.sleep(self.delay)
        return await self.inner.probe(ip, port, timeout)

    async def banner(self, ip, port, timeout):
        await asyncio.sleep(self.delay)
        return await self.inner.banner(ip, port, timeout)

    async def get(self, ip, scheme, path, **kwargs):
        await asyncio.sleep(self.delay)
        return await self.inner.get(ip, scheme, path, **kwargs)


def _config(overlap: bool, shard_size: int) -> PlatformConfig:
    return PlatformConfig(
        scan=ScanConfig(probes_per_second=1e12, concurrency=4096),
        fetch=FetchConfig(workers=4096),
        grab_ssh_banners=True,
        shard_size=shard_size,
        pipeline=PipelineConfig(overlap=overlap),
    )


def run_once(
    *,
    overlap: bool,
    total_ips: int,
    latency: float,
    seed: int,
    shard_size: int,
) -> dict:
    """One full round over a fresh scenario; returns timing + stats."""
    scenario = ec2_scenario(total_ips=total_ips, seed=seed)
    transport = LatencyTransport(scenario.transport, latency)
    platform = WhoWas(
        transport, config=_config(overlap, shard_size)
    )
    started = time.perf_counter()
    summary = platform.run_round(
        list(scenario.targets), timestamp=scenario.scan_days[0]
    )
    elapsed = time.perf_counter() - started
    platform.close()
    stats = summary.pipeline
    return {
        "mode": stats.mode,
        "records": stats.records_written,
        "seconds": round(elapsed, 4),
        "records_per_second": round(stats.records_written / elapsed, 2),
        "writer_flushes": stats.writer_flushes,
        "writer_max_batch": stats.writer_max_batch,
        "stages": {
            name: {
                "busy_seconds": round(stage.busy_seconds, 4),
                "queue_peak": stage.queue_peak,
                "backpressure_waits": stage.backpressure_waits,
            }
            for name, stage in sorted(stats.stages.items())
        },
    }


def run_benchmark(
    total_ips: int = 1024,
    latency: float = 0.02,
    seed: int = 7,
    shard_size: int = 64,
) -> dict:
    serial = run_once(
        overlap=False, total_ips=total_ips, latency=latency,
        seed=seed, shard_size=shard_size,
    )
    overlapped = run_once(
        overlap=True, total_ips=total_ips, latency=latency,
        seed=seed, shard_size=shard_size,
    )
    speedup = (
        overlapped["records_per_second"] / serial["records_per_second"]
        if serial["records_per_second"] else 0.0
    )
    return {
        "benchmark": "pipeline_throughput",
        "total_ips": total_ips,
        "shard_size": shard_size,
        "latency_seconds": latency,
        "seed": seed,
        "serial": serial,
        "overlapped": overlapped,
        "speedup": round(speedup, 3),
    }


def test_overlap_beats_serial_smoke():
    """Small-scale smoke: the streaming pipeline must out-run the
    serial engine once network waits exist (loose bound, real sleeps)."""
    result = run_benchmark(total_ips=192, latency=0.01, shard_size=32)
    assert result["overlapped"]["records"] == result["serial"]["records"]
    assert result["speedup"] > 1.1, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ips", type=int, default=1024)
    parser.add_argument("--latency", type=float, default=0.02,
                        help="injected per-operation latency in seconds")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--shard-size", type=int, default=64)
    parser.add_argument("--out", default=None,
                        help="write the JSON result here (default: stdout)")
    args = parser.parse_args(argv)
    result = run_benchmark(
        total_ips=args.ips, latency=args.latency,
        seed=args.seed, shard_size=args.shard_size,
    )
    payload = json.dumps(result, indent=2, sort_keys=True)
    if args.out:
        Path(args.out).write_text(payload + "\n")
        print(f"serial:     {result['serial']['records_per_second']:8.1f} rec/s")
        print(f"overlapped: {result['overlapped']['records_per_second']:8.1f} rec/s")
        print(f"speedup:    {result['speedup']:.2f}x -> {args.out}")
    else:
        print(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
