"""Telemetry overhead: the zero-overhead-by-default contract, measured.

Runs the same single-round in-process campaign three ways — telemetry
disabled (the default no-op handles), metrics enabled, and metrics plus
the JSONL trace sink — against the zero-latency simulator, where every
per-item counter increment lands on the pipeline's critical path.  Runs
are interleaved and the median records/sec of each mode is compared;
the contract is that enabling metrics costs **under 3%** throughput.

Every mode must also produce the byte-identical record set (asserted):
telemetry observes the pipeline, it never participates in it.

Run standalone to (re)generate the committed results file::

    python benchmarks/bench_telemetry_overhead.py --out BENCH_telemetry.json

Also collected by pytest as a smoke test (small scale, loose bound).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # standalone execution without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import MeasurementStore, WhoWas, telemetry
from repro.core.config import (
    FetchConfig,
    PlatformConfig,
    ScanConfig,
    TelemetryConfig,
)
from repro.workloads import build_sim_scenario

MODES = ("disabled", "metrics", "metrics+trace")


def _config(shard_size: int, tel_config: TelemetryConfig) -> PlatformConfig:
    return PlatformConfig(
        scan=ScanConfig(probes_per_second=1e12, concurrency=2048),
        fetch=FetchConfig(workers=2048),
        shard_size=shard_size,
        telemetry=tel_config,
    )


def run_once(mode: str, *, total_ips: int, seed: int,
             shard_size: int) -> dict:
    """One in-process round; returns elapsed time plus the sorted
    responsive-IP set for the byte-equivalence assert."""
    params = {"cloud": "ec2", "ips": total_ips, "seed": seed}
    scenario = build_sim_scenario(dict(params))
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = (
            str(Path(tmp) / "bench.trace.jsonl")
            if mode == "metrics+trace" else None
        )
        tel_config = TelemetryConfig(
            enabled=(mode != "disabled"), trace_path=trace_path
        )
        # The platform activates from its config, but start from a
        # clean slate so one mode never inherits another's registry.
        telemetry.reset()
        store = MeasurementStore(str(Path(tmp) / "bench.sqlite"))
        platform = WhoWas(
            scenario.transport, store, _config(shard_size, tel_config)
        )
        started = time.perf_counter()
        summary = platform.run_round(
            list(scenario.targets), timestamp=scenario.scan_days[0]
        )
        elapsed = time.perf_counter() - started
        rows = sorted(
            row["ip"] for info in store.rounds()
            for row in (r.to_row() for r in store.records(info.round_id))
        )
        platform.close()
        store.close()
        telemetry.reset()
    return {
        "records": summary.pipeline.records_written,
        "seconds": elapsed,
        "responsive_ips": rows,
    }


def run_benchmark(
    total_ips: int = 50_000,
    seed: int = 7,
    shard_size: int = 1024,
    repeats: int = 3,
) -> dict:
    # Interleave the modes and rotate their order each cycle so drift
    # (cache warmth, CPU frequency, background load) spreads evenly
    # instead of biasing whichever mode runs last.
    samples: dict[str, list[dict]] = {mode: [] for mode in MODES}
    for cycle in range(repeats):
        order = MODES[cycle % len(MODES):] + MODES[:cycle % len(MODES)]
        for mode in order:
            samples[mode].append(run_once(
                mode, total_ips=total_ips, seed=seed,
                shard_size=shard_size,
            ))
    baseline_ips = samples["disabled"][0]["responsive_ips"]
    for mode in MODES:
        for sample in samples[mode]:
            assert sample.pop("responsive_ips") == baseline_ips, (
                f"mode {mode} changed the record set"
            )
    runs = []
    for mode in MODES:
        rates = [
            sample["records"] / sample["seconds"]
            for sample in samples[mode]
        ]
        runs.append({
            "mode": mode,
            "records": samples[mode][0]["records"],
            "median_seconds": round(
                statistics.median(s["seconds"] for s in samples[mode]), 4
            ),
            "median_records_per_second": round(statistics.median(rates), 2),
            "rates": [round(rate, 2) for rate in rates],
        })
    base = runs[0]["median_records_per_second"]
    for run in runs:
        run["overhead_pct"] = round(
            100.0 * (1.0 - run["median_records_per_second"] / base), 2
        ) if base else 0.0
    return {
        "benchmark": "telemetry_overhead",
        "total_ips": total_ips,
        "shard_size": shard_size,
        "seed": seed,
        "repeats": repeats,
        "contract_max_overhead_pct": 3.0,
        "runs": runs,
    }


def test_metrics_overhead_is_small_smoke():
    """Small-scale smoke: enabled metrics must stay within a loose
    overhead bound (the committed BENCH_telemetry.json holds the real
    <3% number at full scale — tiny runs are noise-dominated)."""
    result = run_benchmark(total_ips=4096, repeats=2)
    runs = {run["mode"]: run for run in result["runs"]}
    assert runs["metrics"]["records"] == runs["disabled"]["records"]
    assert runs["metrics"]["overhead_pct"] < 15.0, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ips", type=int, default=50_000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--shard-size", type=int, default=1024)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default=None,
                        help="write the JSON result here (default: stdout)")
    args = parser.parse_args(argv)
    result = run_benchmark(
        total_ips=args.ips, seed=args.seed,
        shard_size=args.shard_size, repeats=args.repeats,
    )
    payload = json.dumps(result, indent=2, sort_keys=True)
    if args.out:
        Path(args.out).write_text(payload + "\n")
        for run in result["runs"]:
            print(f"{run['mode']:>14}: "
                  f"{run['median_records_per_second']:9.1f} rec/s "
                  f"({run['overhead_pct']:+.2f}%)")
        print(f"-> {args.out}")
    else:
        print(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
