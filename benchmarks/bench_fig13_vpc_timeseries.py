"""Figure 13: EC2 responsive/available IPs over time, split VPC/classic.

Paper: classic carries the bulk (~600-1000K responsive) while VPC holds
~100-300K; both series are stable with classic >> VPC throughout.
"""

from repro.analysis import VpcUsageAnalyzer

from _render import emit, series


def test_fig13_vpc_ip_timeseries(benchmark, ec2, ec2_clusters,
                                 ec2_cartography):
    analyzer = VpcUsageAnalyzer(ec2.dataset, ec2_clusters, ec2_cartography)

    data = benchmark.pedantic(analyzer.ip_series, rounds=1, iterations=1)

    lines = [
        series("classic responsive", data["classic_responsive"], every=5),
        series("classic available ", data["classic_available"], every=5),
        series("vpc responsive    ", data["vpc_responsive"], every=5),
        series("vpc available     ", data["vpc_available"], every=5),
    ]
    emit("fig13_vpc_timeseries", lines)

    for classic, vpc in zip(data["classic_responsive"],
                            data["vpc_responsive"]):
        assert classic > vpc          # classic dominates throughout
    for responsive, available in zip(data["vpc_responsive"],
                                     data["vpc_available"]):
        assert available <= responsive
    # VPC usage grows over the campaign (new accounts are VPC-only).
    vpc = data["vpc_responsive"]
    first_third = sum(vpc[: len(vpc) // 3]) / (len(vpc) // 3)
    last_third = sum(vpc[-(len(vpc) // 3):]) / (len(vpc) // 3)
    assert last_third >= first_third * 0.95
