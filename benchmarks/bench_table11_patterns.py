"""Table 11: top-5 cluster size-change patterns (PAA + tendency vectors).

Paper (EC2): 0: 49.9%, 0,1,0: 15.0%, 0,-1,0: 13.7%, 0,1,0,-1,0: 5.2%,
0,-1,1,0: 4.1%.  Azure: 53.9 / 13.9 / 12.5 / 3.8 / 4.3.  Pattern-0
clusters split into ephemerals (11.4% of all clusters on EC2, 13.1% on
Azure) and relatively stable clusters.
"""

from repro.analysis import PatternAnalyzer

from _render import emit, table

PAPER = {
    "EC2": {"0": 49.9, "0,1,0": 15.0, "0,-1,0": 13.7,
            "0,1,0,-1,0": 5.2, "0,-1,1,0": 4.1},
    "Azure": {"0": 53.9, "0,1,0": 13.9, "0,-1,0": 12.5,
              "0,1,0,-1,0": 3.8, "0,-1,1,0": 4.3},
}


def test_table11_size_change_patterns(benchmark, ec2, ec2_clusters, azure,
                                      azure_clusters):
    analyzers = {
        "EC2": PatternAnalyzer(ec2.dataset, ec2_clusters),
        "Azure": PatternAnalyzer(azure.dataset, azure_clusters),
    }

    breakdowns = benchmark.pedantic(
        lambda: {
            name: analyzer.breakdown() for name, analyzer in analyzers.items()
        },
        rounds=1, iterations=1,
    )

    rows = []
    for cloud, breakdown in breakdowns.items():
        shares = {
            label: count / breakdown.total_clusters * 100.0
            for label, count in breakdown.counts.items()
        }
        for label in PAPER[cloud]:
            rows.append([cloud, label, shares.get(label, 0.0),
                         PAPER[cloud][label]])
        rows.append([
            cloud, "(ephemeral)",
            breakdown.ephemeral / breakdown.total_clusters * 100.0,
            11.4 if cloud == "EC2" else 13.1,
        ])
    emit("table11_patterns",
         table(["Cloud", "Pattern", "measured %", "paper %"], rows))

    for cloud, breakdown in breakdowns.items():
        shares = {
            label: count / breakdown.total_clusters * 100.0
            for label, count in breakdown.counts.items()
        }
        # Shape: flat dominates; up- and down-steps follow.
        top = max(shares, key=shares.get)
        assert top == "0"
        assert shares["0"] > 25.0
        assert shares.get("0,1,0", 0) > shares.get("0,1,0,-1,0", 0)
        assert shares.get("0,-1,0", 0) > shares.get("0,-1,1,0", 0)
        # Pattern-0 splits into ephemeral + stable as in §8.1.
        assert breakdown.ephemeral > 0
        assert breakdown.stable > breakdown.ephemeral
