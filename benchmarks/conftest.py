"""Shared fixtures for the benchmark/reproduction harness.

One EC2-like and one Azure-like campaign are run once per session at
"bench scale" (default 8192 / 4096 IPs — pass ``--repro-scale`` to grow
or shrink) with the paper's full scan calendars (51 / 46 rounds), then
every bench reproduces its table or figure from the shared results.
"""

from __future__ import annotations

import pytest

from repro.analysis import Cartographer
from repro.workloads import Campaign, CampaignResult, azure_scenario, ec2_scenario


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        type=float,
        default=1.0,
        help="scale factor for the simulated address spaces "
        "(1.0 = 8192 EC2 / 4096 Azure IPs)",
    )


@pytest.fixture(scope="session")
def repro_scale(request) -> float:
    return request.config.getoption("--repro-scale")


@pytest.fixture(scope="session")
def ec2(repro_scale) -> CampaignResult:
    scenario = ec2_scenario(total_ips=int(8192 * repro_scale), seed=7)
    return Campaign(scenario).run()


@pytest.fixture(scope="session")
def azure(repro_scale) -> CampaignResult:
    scenario = azure_scenario(total_ips=int(4096 * repro_scale), seed=11)
    return Campaign(scenario).run()


@pytest.fixture(scope="session")
def ec2_clusters(ec2):
    return ec2.clustering()


@pytest.fixture(scope="session")
def azure_clusters(azure):
    return azure.clustering()


@pytest.fixture(scope="session")
def ec2_cartography(ec2):
    scenario = ec2.scenario
    cartographer = Cartographer(scenario.topology, scenario.dns)
    return cartographer.map_prefixes(sample_per_prefix=4)
