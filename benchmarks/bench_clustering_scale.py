"""Clustering at scale: banded-LSH index vs brute-force all-pairs.

Single-linkage simhash clustering is the §5 bottleneck: brute force
compares every pair (O(n²) Hamming distances), while the banded index
only confirms candidates that collide on at least one of the
``threshold + 1`` disjoint bands — with 100% recall by pigeonhole, so
both paths produce *identical* partitions.  This bench times
``cluster_by_threshold(exact=True)`` against ``exact=False`` over
synthetic corpora with planted near-duplicate structure (WhoWas-shaped:
a few hundred distinct deployments, many perturbed revisions each) and
verifies partition equality wherever the exact path is affordable.

Run standalone to (re)generate the committed results file::

    python benchmarks/bench_clustering_scale.py \
        --sizes 100000 1000000 --out BENCH_clustering.json

Above ``--exact-cap`` the brute-force run is skipped (at 1M records it
would need ~5 × 10¹¹ distance computations) and the exact time is
extrapolated quadratically from the largest measured size.  Also
collected by pytest as a smoke test (small scale, loose bound).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # standalone execution without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.gap_statistic import cluster_by_threshold
from repro.core.simhash import HASH_BITS

DEFAULT_SIZES = [100_000, 1_000_000]
DEFAULT_EXACT_CAP = 100_000
DEFAULT_THRESHOLD = 4


def synthetic_corpus(size: int, *, seed: int,
                     revisions: int = 64, max_flips: int = 3) -> list[int]:
    """WhoWas-shaped fingerprint population.

    ``size / revisions`` independent base pages, each observed as a run
    of revisions within ``max_flips`` bit flips of the base — the same
    planted-cluster shape the §5 funnel sees (distinct deployments far
    apart, their revisions within the merge threshold).
    """
    rng = random.Random(seed)
    hashes: list[int] = []
    while len(hashes) < size:
        base = rng.getrandbits(HASH_BITS)
        for _ in range(min(rng.randint(1, revisions), size - len(hashes))):
            value = base
            for position in rng.sample(range(HASH_BITS),
                                       rng.randint(0, max_flips)):
                value ^= 1 << position
            hashes.append(value)
    return hashes


def _canonical(clusters: list[list[int]]) -> list[tuple[int, ...]]:
    return sorted(tuple(sorted(members)) for members in clusters)


def run_size(size: int, *, threshold: int, seed: int,
             exact_cap: int) -> dict:
    """Time both paths at one corpus size; verify equality if both ran."""
    hashes = synthetic_corpus(size, seed=seed)

    started = time.perf_counter()
    indexed = cluster_by_threshold(hashes, threshold, exact=False)
    indexed_seconds = time.perf_counter() - started

    row: dict = {
        "records": size,
        "clusters": len(indexed),
        "indexed_seconds": round(indexed_seconds, 3),
    }
    if size <= exact_cap:
        started = time.perf_counter()
        exact = cluster_by_threshold(hashes, threshold, exact=True)
        exact_seconds = time.perf_counter() - started
        if _canonical(exact) != _canonical(indexed):
            raise AssertionError(
                f"partition mismatch at n={size}: indexed clustering "
                "diverged from brute force"
            )
        row["exact_seconds"] = round(exact_seconds, 3)
        row["speedup"] = round(exact_seconds / indexed_seconds, 1)
        row["partitions_identical"] = True
    else:
        row["exact_seconds"] = None
        row["speedup"] = None
        row["partitions_identical"] = None
    return row


def run_benchmark(sizes: list[int], *, threshold: int = DEFAULT_THRESHOLD,
                  seed: int = 20140805,
                  exact_cap: int = DEFAULT_EXACT_CAP) -> dict:
    rows = [
        run_size(size, threshold=threshold, seed=seed, exact_cap=exact_cap)
        for size in sorted(sizes)
    ]
    # Extrapolate the skipped brute-force runs quadratically from the
    # largest measured size, so the asymptotic gap is visible in the
    # committed table without a week-long run.
    measured = [r for r in rows if r["exact_seconds"] is not None]
    if measured:
        anchor = measured[-1]
        for row in rows:
            if row["exact_seconds"] is None:
                scale = (row["records"] / anchor["records"]) ** 2
                projected = anchor["exact_seconds"] * scale
                row["exact_seconds_projected"] = round(projected, 1)
                row["speedup_projected"] = round(
                    projected / row["indexed_seconds"], 1
                )
    return {
        "benchmark": "clustering_scale",
        "hash_bits": HASH_BITS,
        "threshold": threshold,
        "bands": threshold + 1,
        "seed": seed,
        "sizes": rows,
    }


def test_indexed_beats_exact_smoke():
    """Small-scale smoke: identical partitions, and the index must
    already clearly win at 20k records (loose bound; the asymptotic
    gap at 100k+ lives in the committed BENCH_clustering.json)."""
    result = run_benchmark([20_000], exact_cap=20_000)
    row = result["sizes"][0]
    assert row["partitions_identical"] is True
    assert row["speedup"] >= 2.0, row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=DEFAULT_SIZES)
    parser.add_argument("--threshold", type=int, default=DEFAULT_THRESHOLD,
                        help="single-linkage merge threshold in bits")
    parser.add_argument("--seed", type=int, default=20140805)
    parser.add_argument("--exact-cap", type=int, default=DEFAULT_EXACT_CAP,
                        help="largest size at which brute force still runs")
    parser.add_argument("--out", default=None,
                        help="write the JSON result here (default: stdout)")
    args = parser.parse_args(argv)
    result = run_benchmark(
        args.sizes, threshold=args.threshold,
        seed=args.seed, exact_cap=args.exact_cap,
    )
    payload = json.dumps(result, indent=2, sort_keys=True)
    if args.out:
        Path(args.out).write_text(payload + "\n")
        for row in result["sizes"]:
            exact = row["exact_seconds"]
            exact_txt = (
                f"{exact:10.2f}s" if exact is not None
                else f"~{row.get('exact_seconds_projected', 0):.0f}s (proj)"
            )
            speed = row["speedup"] or row.get("speedup_projected")
            print(
                f"n={row['records']:>9,}  indexed {row['indexed_seconds']:8.2f}s"
                f"  exact {exact_txt}  speedup {speed}x"
            )
        print(f"-> {args.out}")
    else:
        print(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
