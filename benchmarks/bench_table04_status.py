"""Table 4: average % of HTTP-responding IPs per status-code class.

Paper: EC2 200: 64.7 / 4xx: 28.0 / 5xx: 7.2 / other: 0.10;
Azure 60.6 / 30.2 / 9.2 / 0.02.
"""

from repro.analysis import DynamicsAnalyzer

from _render import emit, table

PAPER = {
    "EC2": {"200": 64.7, "4xx": 28.0, "5xx": 7.2, "other": 0.10},
    "Azure": {"200": 60.6, "4xx": 30.2, "5xx": 9.2, "other": 0.02},
}


def test_table04_status_codes(benchmark, ec2, azure):
    analyzers = {
        "EC2": DynamicsAnalyzer(ec2.dataset),
        "Azure": DynamicsAnalyzer(azure.dataset),
    }

    tables = benchmark.pedantic(
        lambda: {name: a.status_code_table() for name, a in analyzers.items()},
        rounds=1, iterations=1,
    )

    rows = []
    for cloud, measured in tables.items():
        for label in ("200", "4xx", "5xx", "other"):
            rows.append([cloud, label, measured[label], PAPER[cloud][label]])
    emit("table04_status", table(["Cloud", "Code", "measured %", "paper %"],
                                 rows))

    for cloud, measured in tables.items():
        assert measured["200"] > measured["4xx"] > measured["5xx"]
        for label in ("200", "4xx", "5xx"):
            assert abs(measured[label] - PAPER[cloud][label]) < 8.0
