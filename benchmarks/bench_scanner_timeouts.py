"""§4's scanner-calibration experiment: probe timeout and retry effect.

Paper: on a 5% sample of EC2 IPs (235,070), raising the probe timeout
from 2 s to 8 s adds only +0.61% responsive IPs; probing 5 times (one
initial probe plus 4 more) adds only +0.27% — justifying the 2 s /
no-retry defaults.
"""

import asyncio

from repro.core.config import ScanConfig
from repro.core.scanner import Scanner

from _render import emit


def sample_ips(scenario, fraction: float = 0.05) -> list[int]:
    """Evenly-spaced sample of the advertised space (the paper sampled
    5% of every /24)."""
    targets = scenario.targets
    step = max(1, int(1 / fraction))
    return targets[::step]


def scan(scenario, ips, **config_overrides):
    config = ScanConfig(
        probes_per_second=1e12, concurrency=2048, **config_overrides
    )
    scanner = Scanner(scenario.transport, config)
    outcomes = asyncio.run(scanner.scan(ips))
    return {o.ip for o in outcomes if o.responsive}


def test_scanner_timeout_experiment(benchmark, ec2):
    scenario = ec2.scenario
    ips = sample_ips(scenario)

    base = benchmark.pedantic(
        lambda: scan(scenario, ips, probe_timeout=2.0),
        rounds=1, iterations=1,
    )
    longer = scan(scenario, ips, probe_timeout=8.0)
    retried = scan(scenario, ips, probe_timeout=2.0, retries=4)

    timeout_gain = (len(longer) - len(base)) / len(base) * 100.0
    retry_gain = (len(retried) - len(base)) / len(base) * 100.0
    emit(
        "scanner_timeouts",
        [
            f"sampled IPs: {len(ips)} (5% of the space)",
            f"responsive at 2 s: {len(base)}",
            f"responsive at 8 s: {len(longer)} (+{timeout_gain:.2f}%, "
            "paper +0.61%)",
            f"responsive with 4 retries: {len(retried)} "
            f"(+{retry_gain:.2f}%, paper +0.27%)",
        ],
    )

    # Longer timeouts and retries recover only a sliver of hosts,
    # vindicating the polite defaults.
    assert 0.0 <= timeout_gain < 2.5
    assert 0.0 <= retry_gain < 1.5
    assert longer >= base
