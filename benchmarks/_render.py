"""Table/series rendering for the reproduction benches.

Every bench prints the rows or series the paper reports (side by side
with the paper's published values where they exist) and appends the same
text to ``benchmarks/results/<bench>.txt`` so a full run leaves a
browsable record.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, lines: list[str]) -> str:
    """Print a bench's output block and persist it."""
    text = "\n".join([f"=== {name} ==="] + lines) + "\n"
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    return text


def table(headers: list[str], rows: list[list]) -> list[str]:
    """Format rows as a fixed-width text table."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered))
        if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return lines


def series(label: str, values: list[float], every: int = 1) -> str:
    shown = values[::every]
    return f"{label}: " + " ".join(_cell(v) for v in shown)


def cdf_summary(values: list[float], points=(0.25, 0.5, 0.75, 0.9)) -> str:
    """Quartile summary standing in for a plotted CDF."""
    if not values:
        return "(empty)"
    ordered = sorted(values)
    parts = [f"n={len(ordered)}"]
    for quantile in points:
        index = min(len(ordered) - 1, int(quantile * len(ordered)))
        parts.append(f"p{int(quantile * 100)}={_cell(ordered[index])}")
    return " ".join(parts)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.1f}" if abs(value) >= 10 else f"{value:.2f}"
    return str(value)
