"""Figure 16: CDF of lifetimes of IPs hosting Safe-Browsing-flagged
content, split classic/VPC on EC2, plus Azure.

Paper: EC2 — 196 malicious IPs (149 classic, 47 VPC) across 51
clusters, 1,393 distinct malicious URLs; 62% stay malicious > 7 days,
46% > 14 days; VPC lifetimes slightly shorter (max 45 days vs 93).
Azure — 13 IPs / 14 URLs, ~70% > 7 days.
"""

from repro.analysis import SafeBrowsingAnalyzer

from _render import cdf_summary, emit


def test_fig16_malicious_lifetimes(benchmark, ec2, ec2_clusters, azure,
                                   azure_clusters):
    analyzers = {
        "EC2": SafeBrowsingAnalyzer(
            ec2.dataset, ec2.scenario.safe_browsing(seed=1), ec2_clusters
        ),
        "Azure": SafeBrowsingAnalyzer(
            azure.dataset, azure.scenario.safe_browsing(seed=1),
            azure_clusters,
        ),
    }

    findings = benchmark.pedantic(
        lambda: {name: a.scan() for name, a in analyzers.items()},
        rounds=1, iterations=1,
    )

    lines = []
    for cloud, found in findings.items():
        lifetimes = found.lifetimes()
        over7 = sum(1 for v in lifetimes if v > 7) / max(1, len(lifetimes))
        lines.append(
            f"[{cloud}] malicious IPs {len(found.malicious_ips)}, "
            f"distinct URLs {found.distinct_urls}, "
            f"clusters {len(found.clusters)}, "
            f"phishing/malware pages "
            f"{found.phishing_pages}/{found.malware_pages}"
        )
        lines.append(f"  lifetimes: {cdf_summary(lifetimes)}; "
                     f">7 days: {over7 * 100:.0f}% (paper EC2 62%)")
    split = analyzers["EC2"].lifetimes_by_kind(
        findings["EC2"], ec2.scenario.topology.kind_of
    )
    lines.append(
        f"[EC2] classic {len(split['classic'])} IPs "
        f"({cdf_summary(split['classic'])}); "
        f"vpc {len(split['vpc'])} IPs ({cdf_summary(split['vpc'])})"
    )
    emit("fig16_malicious_lifetime", lines)

    ec2_found = findings["EC2"]
    azure_found = findings["Azure"]
    # EC2 hosts more malicious activity than Azure (paper: 196 vs 13).
    assert len(ec2_found.malicious_ips) > len(azure_found.malicious_ips)
    assert ec2_found.distinct_urls > azure_found.distinct_urls
    # Long lifetimes: a majority of malicious IPs persist beyond a week.
    lifetimes = ec2_found.lifetimes()
    assert sum(1 for v in lifetimes if v > 7) / len(lifetimes) > 0.35
    # Both networking kinds appear among EC2 malicious IPs (149 vs 47).
    assert split["classic"]
