"""Figure 9 / §8.1 "IP status churn": per-round status-change rates.

Paper: overall churn ≈ 3.0% of all IPs on both clouds; EC2 averages
2.5% responsiveness / 1.0% availability / 0.1% cluster changes, Azure
2.2% / 1.7% / 0.3%.  Relative to IPs responsive in either round the
overall rate becomes 11.9% (EC2) / 12.2% (Azure).
"""

from repro.analysis import DynamicsAnalyzer

from _render import emit, series, table

PAPER = {
    "EC2": (2.5, 1.0, 0.1, 3.0),
    "Azure": (2.2, 1.7, 0.3, 3.0),
}


def test_fig09_churn(benchmark, ec2, ec2_clusters, azure, azure_clusters):
    analyzers = {
        "EC2": DynamicsAnalyzer(ec2.dataset, ec2_clusters),
        "Azure": DynamicsAnalyzer(azure.dataset, azure_clusters),
    }

    rates = benchmark.pedantic(
        lambda: {
            name: (analyzer.churn_rates(), analyzer.churn_series())
            for name, analyzer in analyzers.items()
        },
        rounds=1, iterations=1,
    )

    rows = []
    lines = []
    for cloud, (rate, churn_series) in rates.items():
        paper_resp, paper_avail, paper_cluster, paper_overall = PAPER[cloud]
        rows.append([cloud, "responsiveness", rate.responsiveness, paper_resp])
        rows.append([cloud, "availability", rate.availability, paper_avail])
        rows.append([cloud, "cluster", rate.cluster, paper_cluster])
        rows.append([cloud, "overall", rate.overall, paper_overall])
        rows.append([cloud, "overall (relative)", rate.overall_relative,
                     11.9 if cloud == "EC2" else 12.2])
        lines.append(series(
            f"[{cloud}] responsive-change %",
            [entry["responsiveness"] for entry in churn_series],
            every=5,
        ))
    emit(
        "fig09_churn",
        table(["Cloud", "Rate", "measured %", "paper %"], rows) + lines,
    )

    for cloud, (rate, _) in rates.items():
        # Shape: churn is small, responsiveness-dominated, with cluster
        # changes an order of magnitude rarer.
        assert 0.3 < rate.overall < 6.0
        assert rate.cluster < rate.responsiveness
        assert rate.cluster < 1.0
        assert rate.overall_relative > rate.overall
