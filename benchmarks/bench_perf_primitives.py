"""Performance micro-benchmarks of the platform's hot primitives.

Not paper reproductions — these time the operations a real WhoWas
deployment leans on (the paper stored 900 GB over 51 rounds):
simhash fingerprinting, Hamming-distance clustering, feature
extraction, and the round-table store.  Unlike the reproduction benches
(single-shot pedantic runs), these use pytest-benchmark's repeated
timing to give stable numbers.
"""

import random

from repro.analysis.gap_statistic import cluster_by_threshold
from repro.core.features import FeatureExtractor
from repro.core.records import (
    FetchResult,
    FetchStatus,
    PageFeatures,
    ProbeOutcome,
    ProbeStatus,
    RoundRecord,
)
from repro.core.simhash import hamming_distance, simhash
from repro.core.store import MeasurementStore

WORDS = (
    "cloud tenant deploys scalable service with automated pipeline "
    "monitoring billing report console project api docs forum"
).split()


def make_page(seed: int, tokens: int = 300) -> str:
    rng = random.Random(seed)
    body = " ".join(rng.choice(WORDS) for _ in range(tokens))
    return f"<html><head><title>page {seed}</title></head><body>{body}</body></html>"


def test_perf_simhash(benchmark):
    page = make_page(1, tokens=300)
    fingerprint = benchmark(simhash, page)
    assert fingerprint > 0


def test_perf_hamming(benchmark):
    a = random.Random(1).getrandbits(96)
    b = random.Random(2).getrandbits(96)
    distance = benchmark(hamming_distance, a, b)
    assert 0 <= distance <= 96


def test_perf_single_linkage(benchmark):
    rng = random.Random(3)
    hashes = [rng.getrandbits(96) for _ in range(200)]
    clusters = benchmark(cluster_by_threshold, hashes, 8)
    assert clusters


def test_perf_feature_extraction(benchmark):
    fetch = FetchResult(
        ip=1,
        status=FetchStatus.OK,
        status_code=200,
        headers={"Server": "nginx/1.4.1", "Content-Type": "text/html",
                 "X-Powered-By": "PHP/5.3.10"},
        body=make_page(5),
    )

    def extract():
        # A fresh extractor per call so memoisation cannot short-circuit.
        return FeatureExtractor(memoize=False).extract(fetch)

    features = benchmark(extract)
    assert features.title == "page 5"


def test_perf_store_write(benchmark):
    records = [
        RoundRecord(
            ip=ip,
            round_id=1,
            timestamp=0,
            probe=ProbeOutcome(ip=ip, status=ProbeStatus.RESPONSIVE,
                               open_ports=frozenset({80})),
            fetch=FetchResult(ip=ip, status=FetchStatus.OK, status_code=200,
                              headers={"Content-Type": "text/html"},
                              body=make_page(ip, tokens=60)),
            features=PageFeatures(title=f"t{ip}", simhash=ip * 7919),
        )
        for ip in range(500)
    ]

    def write():
        store = MeasurementStore()
        info = store.write_round(1, 0, 1000, records)
        store.close()
        return info

    info = benchmark(write)
    assert info.responsive_count == 500


def test_perf_history_lookup(benchmark):
    store = MeasurementStore()
    for round_id in range(20):
        records = [
            RoundRecord(
                ip=ip,
                round_id=round_id,
                timestamp=round_id,
                probe=ProbeOutcome(ip=ip, status=ProbeStatus.RESPONSIVE,
                                   open_ports=frozenset({80})),
                fetch=FetchResult(ip=ip, status=FetchStatus.OK,
                                  status_code=200,
                                  headers={"Content-Type": "text/html"},
                                  body="<title>x</title>"),
                features=PageFeatures(title="x", simhash=ip),
            )
            for ip in range(200)
        ]
        store.write_round(round_id, round_id, 400, records)

    history = benchmark(store.history, 77)
    assert len(history) == 20
