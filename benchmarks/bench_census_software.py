"""§8.3 software census: servers, backends, templates, staleness.

Paper (EC2): servers identified on 89.9% of available IPs — Apache
55.2%, nginx 21.2%, Microsoft-IIS 12.2%, MochiWeb 4.4% (one PaaS);
backends: PHP 52.6%, ASP.NET 29.0%, Phusion Passenger 8.1%; >40% of
Apache on 2.2.*; 60% of PHP on 5.3.*; WordPress 71.1% of templates with
>68% on vulnerable (<3.6) versions; seven of SERT's top-10 vulnerable
servers in use.  Azure: Microsoft-IIS 89%, ASP.NET 94.2%.
"""

from repro.analysis import SoftwareCensus

from _render import emit, table

PAPER_EC2_FAMILIES = {"Apache": 55.2, "nginx": 21.2, "Microsoft-IIS": 12.2,
                      "MochiWeb": 4.4}


def test_census_software(benchmark, ec2, azure):
    reports = benchmark.pedantic(
        lambda: {
            "EC2": SoftwareCensus(ec2.dataset).report(),
            "Azure": SoftwareCensus(azure.dataset).report(),
        },
        rounds=1, iterations=1,
    )

    lines = []
    rows = []
    for cloud, report in reports.items():
        for family, share in list(report.server_family_shares.items())[:6]:
            paper = PAPER_EC2_FAMILIES.get(family, "") if cloud == "EC2" else (
                89.0 if family == "Microsoft-IIS" else ""
            )
            rows.append([cloud, family, share, paper])
    lines += table(["Cloud", "Server family", "measured %", "paper %"], rows)
    ec2_report = reports["EC2"]
    lines.append(
        f"EC2 servers identified on {ec2_report.server_identified_share:.1f}% "
        "of available IPs (paper 89.9%)"
    )
    lines.append("EC2 top server versions: " + ", ".join(
        f"{name} ({count})" for name, count in ec2_report.top_servers(5)
    ))
    lines.append("EC2 backends: " + ", ".join(
        f"{name} {share:.1f}%"
        for name, share in list(ec2_report.backend_shares.items())[:4]
    ))
    lines.append("EC2 PHP versions: " + ", ".join(
        f"{name} {share:.1f}%"
        for name, share in list(ec2_report.php_version_shares.items())[:4]
    ))
    lines.append(
        "EC2 templates: " + ", ".join(
            f"{name} {share:.1f}%"
            for name, share in list(ec2_report.template_shares.items())[:4]
        )
        + f"; vulnerable WordPress {ec2_report.wordpress_vulnerable_share:.0f}%"
        " (paper >68%)"
    )
    lines.append("EC2 SERT-vulnerable servers in use: " + ", ".join(
        f"{name} ({count} IPs)"
        for name, count in ec2_report.vulnerable_server_ips.most_common(4)
    ))
    emit("census_software", lines)

    shares = ec2_report.server_family_shares
    assert shares["Apache"] > shares["nginx"] > shares["Microsoft-IIS"]
    assert "MochiWeb" in shares              # the pinned PaaS provider
    assert ec2_report.server_identified_share > 75.0
    apache_22 = sum(
        count for name, count in ec2_report.server_version_counts.items()
        if name.startswith("Apache/2.2")
    )
    apache_24 = sum(
        count for name, count in ec2_report.server_version_counts.items()
        if name.startswith("Apache/2.4")
    )
    assert apache_22 > apache_24             # stale versions dominate
    assert ec2_report.vulnerable_server_ips  # SERT list members in use
    azure_report = reports["Azure"]
    assert azure_report.server_family_shares["Microsoft-IIS"] > 60.0
    assert azure_report.backend_shares.get("ASP.NET", 0.0) > 60.0
