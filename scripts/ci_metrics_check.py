"""CI watchdog for the live metrics endpoint.

Scrapes a running ``repro simulate --metrics-port`` campaign until the
endpoint goes away (the campaign finished), then asserts:

* the endpoint was reachable and scraped at least ``--min-scrapes`` times,
* every required core series appeared at least once,
* every counter-like sample (``*_total``, ``*_sum``, ``*_count``,
  ``*_bucket``) was monotonically non-decreasing across scrapes.

Exit code 0 on success, 1 with a diagnostic on any violation.

Usage::

    python -m repro simulate ... --metrics-port 9109 &
    python scripts/ci_metrics_check.py --url http://127.0.0.1:9109/metrics
"""

from __future__ import annotations

import argparse
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

try:
    from repro.core.telemetry import parse_prometheus
except ImportError:  # standalone execution without an installed package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.core.telemetry import parse_prometheus

REQUIRED_SERIES = (
    "repro_rounds_total",
    "repro_records_written_total",
    "repro_stage_items_total",
    "repro_stage_shards_total",
    "repro_store_commits_total",
    "repro_worker_events_total",
    "repro_workers_running",
)

MONOTONIC_SUFFIXES = ("_total", "_sum", "_count", "_bucket")


def scrape(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=5) as response:
        return parse_prometheus(response.read().decode("utf-8"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", required=True)
    parser.add_argument("--interval", type=float, default=0.5)
    parser.add_argument("--startup-timeout", type=float, default=60.0,
                        help="seconds to wait for the endpoint to appear")
    parser.add_argument("--deadline", type=float, default=600.0,
                        help="overall wall-clock budget")
    parser.add_argument("--min-scrapes", type=int, default=3)
    parser.add_argument("--require", nargs="*", default=None,
                        help="override the required series list")
    args = parser.parse_args(argv)
    required = tuple(args.require) if args.require else REQUIRED_SERIES

    started = time.monotonic()
    scrapes = 0
    seen_series: set[str] = set()
    last: dict = {}
    violations: list[str] = []

    while time.monotonic() - started < args.deadline:
        try:
            samples = scrape(args.url)
        except (urllib.error.URLError, OSError):
            if scrapes:
                break  # endpoint gone: the campaign finished
            if time.monotonic() - started > args.startup_timeout:
                print(f"FAIL: {args.url} never became reachable",
                      file=sys.stderr)
                return 1
            time.sleep(args.interval)
            continue
        scrapes += 1
        for (name, labels), value in samples.items():
            seen_series.add(name)
            if name.endswith(MONOTONIC_SUFFIXES):
                previous = last.get((name, labels))
                if previous is not None and value < previous:
                    violations.append(
                        f"{name}{dict(labels)} went {previous} -> {value} "
                        f"(scrape {scrapes})"
                    )
                last[(name, labels)] = value
        time.sleep(args.interval)

    missing = [series for series in required if series not in seen_series]
    print(f"scraped {args.url} {scrapes} time(s); "
          f"{len(seen_series)} series seen")
    if scrapes < args.min_scrapes:
        print(f"FAIL: only {scrapes} scrapes (< {args.min_scrapes}); "
              f"campaign too short for a meaningful check?",
              file=sys.stderr)
        return 1
    if missing:
        print(f"FAIL: required series never appeared: {missing}",
              file=sys.stderr)
        return 1
    if violations:
        print("FAIL: counter(s) went backwards:", file=sys.stderr)
        for violation in violations[:20]:
            print(f"  {violation}", file=sys.stderr)
        return 1
    print(f"OK: all {len(required)} required series present, "
          f"counters monotonic across {scrapes} scrapes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
