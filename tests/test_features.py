"""Tests for the per-page feature extraction (§4's ten features)."""

from __future__ import annotations

from repro.core.features import FeatureExtractor, extract_links
from repro.core.records import UNKNOWN, FetchResult, FetchStatus
from repro.core.simhash import simhash

PAGE = """
<html><head>
<title>  My   Shop  </title>
<meta name="description" content="great deals online">
<meta name="keywords" content="shop,deals,cheap">
<meta name="generator" content="WordPress 3.5.1">
</head><body>
<a href="http://example.com/page">link</a>
<a href="https://other.example.org/x?y=1">other</a>
<a href="/relative/path">rel</a>
<script>var _gaq=[['_setAccount', 'UA-123456-2']];</script>
</body></html>
"""

HEADERS = {
    "Server": "Apache/2.2.22",
    "X-Powered-By": "PHP/5.3.10",
    "Content-Type": "text/html",
    "Date": "x",
}


def fetch(body: str | None = PAGE, headers=None) -> FetchResult:
    return FetchResult(
        ip=1,
        status=FetchStatus.OK,
        status_code=200,
        headers=HEADERS if headers is None else headers,
        body=body,
    )


class TestFeatureExtraction:
    def test_all_ten_features(self):
        features = FeatureExtractor().extract(fetch())
        assert features.powered_by == "PHP/5.3.10"             # (1)
        assert features.description == "great deals online"     # (2)
        assert features.header_string == (                      # (3)
            "content-type#date#server#x-powered-by"
        )
        assert features.html_length == len(PAGE)                # (4)
        assert features.title == "My Shop"                      # (5)
        assert features.template == "WordPress 3.5.1"           # (6)
        assert features.server == "Apache/2.2.22"               # (7)
        assert features.keywords == "shop,deals,cheap"          # (8)
        assert features.analytics_id == "UA-123456-2"           # (9)
        assert features.simhash == simhash(PAGE)                # (10)

    def test_missing_marked_unknown(self):
        features = FeatureExtractor().extract(
            fetch(body="<html><body>plain</body></html>", headers={})
        )
        assert features.title == UNKNOWN
        assert features.description == UNKNOWN
        assert features.keywords == UNKNOWN
        assert features.template == UNKNOWN
        assert features.analytics_id == UNKNOWN
        assert features.server == UNKNOWN
        assert features.powered_by == UNKNOWN
        assert features.header_string == UNKNOWN

    def test_empty_body(self):
        features = FeatureExtractor().extract(fetch(body=""))
        assert features.simhash == 0
        assert features.html_length == 0

    def test_header_lookup_case_insensitive(self):
        features = FeatureExtractor().extract(
            fetch(headers={"SERVER": "nginx", "x-powered-by": "Express"})
        )
        assert features.server == "nginx"
        assert features.powered_by == "Express"

    def test_level1_key(self):
        features = FeatureExtractor().extract(fetch())
        assert features.level1_key() == (
            "My Shop",
            "WordPress 3.5.1",
            "Apache/2.2.22",
            "shop,deals,cheap",
            "UA-123456-2",
        )

    def test_title_whitespace_collapsed(self):
        features = FeatureExtractor().extract(
            fetch(body="<title>a\n\n  b</title>")
        )
        assert features.title == "a b"

    def test_simhash_memoized(self):
        extractor = FeatureExtractor()
        first = extractor.extract(fetch())
        second = extractor.extract(fetch())
        assert first.simhash == second.simhash
        assert len(extractor._simhash_cache) == 1

    def test_simhash_cache_bounded_lru(self):
        extractor = FeatureExtractor(max_cache_entries=4)
        for n in range(10):
            extractor.extract(fetch(body=f"<html>page {n}</html>"))
        assert len(extractor._simhash_cache) == 4
        # Re-touching an entry keeps it resident past newer insertions.
        extractor.extract(fetch(body="<html>page 6</html>"))
        extractor.extract(fetch(body="<html>page 99</html>"))
        keys = list(extractor._simhash_cache)
        import hashlib
        key6 = hashlib.blake2b(
            b"<html>page 6</html>", digest_size=16
        ).digest()
        assert key6 in keys

    def test_cache_size_must_be_positive(self):
        import pytest
        with pytest.raises(ValueError):
            FeatureExtractor(max_cache_entries=0)

    def test_surrogates_do_not_break_memoization(self):
        extractor = FeatureExtractor()
        body = "<html>\udcff lone surrogate</html>"
        first = extractor.extract(fetch(body=body))
        second = extractor.extract(fetch(body=body))
        assert first.simhash == second.simhash

    def test_ga_id_formats(self):
        features = FeatureExtractor().extract(
            fetch(body="<html>UA-9999-1</html>")
        )
        assert features.analytics_id == "UA-9999-1"

    def test_meta_attribute_order_reversed(self):
        # Real pages commonly write content= before name=; the ordered
        # single-regex parser used to drop these silently.
        body = """<html><head>
        <meta content="deals first" name="description">
        <meta content="a,b" name="keywords">
        <meta content="Joomla! 2.5" name="generator">
        </head></html>"""
        features = FeatureExtractor().extract(fetch(body=body))
        assert features.description == "deals first"
        assert features.keywords == "a,b"
        assert features.template == "Joomla! 2.5"

    def test_meta_quoting_variants(self):
        body = (
            "<meta name='description' content='single quoted'>"
            "<meta name=keywords content=bare>"
            '<meta NAME="Generator" CONTENT="WP">'
        )
        features = FeatureExtractor().extract(fetch(body=body))
        assert features.description == "single quoted"
        assert features.keywords == "bare"
        assert features.template == "WP"

    def test_meta_without_name_or_content_ignored(self):
        body = (
            "<meta charset='utf-8'>"
            "<meta name='description'>"
            "<meta name='viewport' content='width=device-width'>"
        )
        features = FeatureExtractor().extract(fetch(body=body))
        assert features.description == UNKNOWN


class TestExtractLinks:
    def test_absolute_links_only(self):
        links = extract_links(PAGE)
        assert links == [
            "http://example.com/page",
            "https://other.example.org/x?y=1",
        ]

    def test_no_links(self):
        assert extract_links("<html></html>") == []

    def test_single_quotes(self):
        assert extract_links("<a href='http://a.b/c'>x</a>") == ["http://a.b/c"]
