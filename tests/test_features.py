"""Tests for the per-page feature extraction (§4's ten features)."""

from __future__ import annotations

from repro.core.features import FeatureExtractor, extract_links
from repro.core.records import UNKNOWN, FetchResult, FetchStatus
from repro.core.simhash import simhash

PAGE = """
<html><head>
<title>  My   Shop  </title>
<meta name="description" content="great deals online">
<meta name="keywords" content="shop,deals,cheap">
<meta name="generator" content="WordPress 3.5.1">
</head><body>
<a href="http://example.com/page">link</a>
<a href="https://other.example.org/x?y=1">other</a>
<a href="/relative/path">rel</a>
<script>var _gaq=[['_setAccount', 'UA-123456-2']];</script>
</body></html>
"""

HEADERS = {
    "Server": "Apache/2.2.22",
    "X-Powered-By": "PHP/5.3.10",
    "Content-Type": "text/html",
    "Date": "x",
}


def fetch(body: str | None = PAGE, headers=None) -> FetchResult:
    return FetchResult(
        ip=1,
        status=FetchStatus.OK,
        status_code=200,
        headers=HEADERS if headers is None else headers,
        body=body,
    )


class TestFeatureExtraction:
    def test_all_ten_features(self):
        features = FeatureExtractor().extract(fetch())
        assert features.powered_by == "PHP/5.3.10"             # (1)
        assert features.description == "great deals online"     # (2)
        assert features.header_string == (                      # (3)
            "content-type#date#server#x-powered-by"
        )
        assert features.html_length == len(PAGE)                # (4)
        assert features.title == "My Shop"                      # (5)
        assert features.template == "WordPress 3.5.1"           # (6)
        assert features.server == "Apache/2.2.22"               # (7)
        assert features.keywords == "shop,deals,cheap"          # (8)
        assert features.analytics_id == "UA-123456-2"           # (9)
        assert features.simhash == simhash(PAGE)                # (10)

    def test_missing_marked_unknown(self):
        features = FeatureExtractor().extract(
            fetch(body="<html><body>plain</body></html>", headers={})
        )
        assert features.title == UNKNOWN
        assert features.description == UNKNOWN
        assert features.keywords == UNKNOWN
        assert features.template == UNKNOWN
        assert features.analytics_id == UNKNOWN
        assert features.server == UNKNOWN
        assert features.powered_by == UNKNOWN
        assert features.header_string == UNKNOWN

    def test_empty_body(self):
        features = FeatureExtractor().extract(fetch(body=""))
        assert features.simhash == 0
        assert features.html_length == 0

    def test_header_lookup_case_insensitive(self):
        features = FeatureExtractor().extract(
            fetch(headers={"SERVER": "nginx", "x-powered-by": "Express"})
        )
        assert features.server == "nginx"
        assert features.powered_by == "Express"

    def test_level1_key(self):
        features = FeatureExtractor().extract(fetch())
        assert features.level1_key() == (
            "My Shop",
            "WordPress 3.5.1",
            "Apache/2.2.22",
            "shop,deals,cheap",
            "UA-123456-2",
        )

    def test_title_whitespace_collapsed(self):
        features = FeatureExtractor().extract(
            fetch(body="<title>a\n\n  b</title>")
        )
        assert features.title == "a b"

    def test_simhash_memoized(self):
        extractor = FeatureExtractor()
        first = extractor.extract(fetch())
        second = extractor.extract(fetch())
        assert first.simhash == second.simhash
        assert len(extractor._simhash_cache) == 1

    def test_ga_id_formats(self):
        features = FeatureExtractor().extract(
            fetch(body="<html>UA-9999-1</html>")
        )
        assert features.analytics_id == "UA-9999-1"


class TestExtractLinks:
    def test_absolute_links_only(self):
        links = extract_links(PAGE)
        assert links == [
            "http://example.com/page",
            "https://other.example.org/x?y=1",
        ]

    def test_no_links(self):
        assert extract_links("<html></html>") == []

    def test_single_quotes(self):
        assert extract_links("<a href='http://a.b/c'>x</a>") == ["http://a.b/c"]
