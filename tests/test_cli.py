"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def db_path(tmp_path_factory) -> str:
    path = str(tmp_path_factory.mktemp("cli") / "campaign.sqlite")
    code = main([
        "simulate", "--cloud", "ec2", "--ips", "1024", "--days", "8",
        "--seed", "3", "--out", path,
    ])
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "--out", "x.sqlite"])
        assert args.cloud == "ec2"
        assert args.ips == 4096


class TestSimulate(object):
    def test_creates_database(self, db_path):
        from repro.core import MeasurementStore

        store = MeasurementStore(db_path)
        rounds = store.rounds()
        assert len(rounds) >= 2
        assert rounds[0].responsive_count > 0
        store.close()

    def test_azure_cloud(self, tmp_path):
        path = str(tmp_path / "azure.sqlite")
        code = main([
            "simulate", "--cloud", "azure", "--ips", "512", "--days", "6",
            "--out", path,
        ])
        assert code == 0


class TestChaosSimulate:
    def test_chaos_rate_marks_degraded_rounds(self, tmp_path, capsys):
        path = str(tmp_path / "stormy.sqlite")
        code = main([
            "simulate", "--cloud", "ec2", "--ips", "512", "--days", "8",
            "--seed", "3", "--chaos-rate", "0.9", "--chaos-seed", "7",
            "--out", path,
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "chaos: injecting" in output
        assert "degraded rounds" in output

        # The degraded flag is persisted, so `report` surfaces it too.
        assert main(["report", path, "--no-cluster"]) == 0
        assert "degraded rounds:" in capsys.readouterr().out

    def test_zero_chaos_rate_is_clean(self, db_path, capsys):
        """The module fixture ran without --chaos-rate: no degraded
        rounds and no chaos banner."""
        assert main(["report", db_path, "--no-cluster"]) == 0
        assert "degraded" not in capsys.readouterr().out


class TestReport:
    def test_report_runs(self, db_path, capsys):
        assert main(["report", db_path]) == 0
        output = capsys.readouterr().out
        assert "responsive" in output
        assert "port profiles" in output
        assert "clusters:" in output

    def test_report_without_clustering(self, db_path, capsys):
        assert main(["report", db_path, "--no-cluster"]) == 0
        assert "clusters:" not in capsys.readouterr().out

    def test_empty_database(self, tmp_path, capsys):
        from repro.core import MeasurementStore

        path = str(tmp_path / "empty.sqlite")
        MeasurementStore(path).close()
        assert main(["report", path]) == 1


class TestLookup:
    def test_lookup_known_ip(self, db_path, capsys):
        from repro.core import MeasurementStore

        store = MeasurementStore(db_path)
        ip = sorted(store.responsive_ips(store.rounds()[0].round_id))[0]
        store.close()
        from repro.cloudsim.addressing import int_to_ip

        assert main(["lookup", db_path, int_to_ip(ip)]) == 0
        output = capsys.readouterr().out
        assert "day" in output
        assert "ports=" in output

    def test_lookup_unknown_ip(self, db_path, capsys):
        assert main(["lookup", db_path, "9.9.9.9"]) == 0
        assert "never responsive" in capsys.readouterr().out


class TestAggregate:
    def test_emits_valid_private_json(self, db_path, capsys):
        assert main(["aggregate", db_path, "--cloud", "EC2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cloud"] == "EC2"
        assert "http://" not in json.dumps(payload)


class TestScan:
    def test_scan_localhost(self, tmp_path, capsys):
        """The real-network scan subcommand against a local server."""
        import threading
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802
                body = b"<html><title>cli scan</title></html>"
                self.send_response(200)
                self.send_header("Content-Type", "text/html")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):
                pass

        server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            targets = tmp_path / "targets.txt"
            targets.write_text("127.0.0.1\n")
            out = str(tmp_path / "scan.sqlite")
            # Redirect the well-known ports to the ephemeral test server
            # by monkeypatching the transport the CLI constructs.
            import repro.cli as cli
            from repro.core import SocketTransport

            port = server.server_address[1]
            original = cli.SocketTransport
            cli.SocketTransport = lambda: SocketTransport(
                port_map={80: port, 443: 1, 22: 1}
            )
            try:
                code = cli.main([
                    "scan", "--targets", str(targets), "--out", out,
                ])
            finally:
                cli.SocketTransport = original
            assert code == 0
            assert "responsive=1" in capsys.readouterr().out
        finally:
            server.shutdown()

    def test_scan_empty_targets(self, tmp_path):
        targets = tmp_path / "none.txt"
        targets.write_text("")
        code = main([
            "scan", "--targets", str(targets),
            "--out", str(tmp_path / "x.sqlite"),
        ])
        assert code == 1


class TestReportExport:
    def test_export_csv_series(self, db_path, tmp_path, capsys):
        out = tmp_path / "csv"
        assert main(["report", db_path, "--export", str(out)]) == 0
        assert "CSV series" in capsys.readouterr().out
        assert (out / "fig08_timeseries.csv").exists()
