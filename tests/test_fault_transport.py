"""Unit tests for the fault-injection transport (repro.core.faults)."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.faults import (
    HOSTILE_CONTENT_KINDS,
    FaultKind,
    FaultPlan,
    FaultRule,
    FaultyTransport,
    chaos_plan,
    hostile_plan,
)
from repro.core.transport import (
    BodyTruncated,
    ConnectionRefused,
    ConnectTimeout,
    ProtocolError,
    TransportError,
    classify_error,
)

from _fakes import FakeTransport


def make_faulty(*rules, seed: int = 0) -> tuple[FaultyTransport, FakeTransport]:
    inner = FakeTransport()
    inner.add_host(1, {80}, body="<html><title>ok</title></html>")
    faulty = FaultyTransport(inner, FaultPlan(seed=seed, rules=tuple(rules)))
    faulty.on_round_start(1)
    return faulty, inner


def always(kind: FaultKind, **kwargs) -> FaultRule:
    return FaultRule(kind=kind, probability=1.0, **kwargs)


async def get_root(transport, ip: int = 1):
    return await transport.get(
        ip, "http", "/", timeout=5.0, max_body=1024
    )


class TestErrorTaxonomy:
    def test_kinds_are_distinct(self):
        kinds = {
            TransportError.kind, ConnectTimeout.kind, ConnectionRefused.kind,
            ProtocolError.kind, BodyTruncated.kind,
        }
        assert len(kinds) == 5

    def test_subclasses_catchable_as_transport_error(self):
        for exc_type in (ConnectTimeout, ConnectionRefused, ProtocolError,
                         BodyTruncated):
            with pytest.raises(TransportError):
                raise exc_type("boom")

    def test_classify_error(self):
        assert classify_error(ConnectTimeout("x")) == "connect-timeout"
        assert classify_error(ValueError("x")) == "transport-error"
        assert classify_error(TransportError("x")) == "transport-error"


class TestFaultKindMapping:
    def test_connect_timeout(self):
        faulty, _ = make_faulty(always(FaultKind.CONNECT_TIMEOUT))
        with pytest.raises(ConnectTimeout):
            asyncio.run(get_root(faulty))

    def test_connection_refused(self):
        faulty, _ = make_faulty(always(FaultKind.CONNECTION_REFUSED))
        with pytest.raises(ConnectionRefused):
            asyncio.run(get_root(faulty))

    def test_reset_is_protocol_error(self):
        faulty, _ = make_faulty(always(FaultKind.RESET))
        with pytest.raises(ProtocolError):
            asyncio.run(get_root(faulty))

    def test_truncated_body(self):
        faulty, _ = make_faulty(always(FaultKind.TRUNCATED_BODY))
        with pytest.raises(BodyTruncated):
            asyncio.run(get_root(faulty))

    def test_garbage_headers_is_protocol_error(self):
        faulty, _ = make_faulty(always(FaultKind.GARBAGE_HEADERS))
        with pytest.raises(ProtocolError):
            asyncio.run(get_root(faulty))

    def test_status_storm_returns_valid_503(self):
        faulty, _ = make_faulty(always(FaultKind.STATUS_STORM))
        response = asyncio.run(get_root(faulty))
        assert response.status_code == 503
        assert response.content_type == "text/html"

    def test_slow_response_below_timeout_succeeds(self):
        faulty, _ = make_faulty(
            always(FaultKind.SLOW_RESPONSE, delay=0.001)
        )
        response = asyncio.run(get_root(faulty))
        assert response.status_code == 200
        assert faulty.injected["slow-response"] == 1

    def test_slow_response_beyond_timeout_times_out(self):
        rule = always(FaultKind.SLOW_RESPONSE, delay=10.0)
        faulty, _ = make_faulty(rule)
        with pytest.raises(ConnectTimeout):
            asyncio.run(get_root(faulty))


class TestProbeFaults:
    def test_connection_faults_hit_probes(self):
        faulty, _ = make_faulty(always(FaultKind.CONNECT_TIMEOUT))
        with pytest.raises(ConnectTimeout):
            asyncio.run(faulty.probe(1, 80, timeout=2.0))

    def test_response_faults_never_hit_probes(self):
        """Truncation/garbage/5xx are response-level; a bare handshake
        cannot observe them, so probes pass through untouched."""
        faulty, inner = make_faulty(
            always(FaultKind.TRUNCATED_BODY),
            always(FaultKind.GARBAGE_HEADERS),
            always(FaultKind.STATUS_STORM),
        )
        assert asyncio.run(faulty.probe(1, 80, timeout=2.0))
        assert inner.probe_calls == [(1, 80)]

    def test_banner_sees_connection_faults(self):
        faulty, _ = make_faulty(always(FaultKind.CONNECTION_REFUSED))
        with pytest.raises(ConnectionRefused):
            asyncio.run(faulty.banner(1, 22, timeout=2.0))


class TestScoping:
    def test_per_ip(self):
        faulty, inner = make_faulty(
            always(FaultKind.CONNECTION_REFUSED, ips={2})
        )
        inner.add_host(2, {80})
        assert asyncio.run(faulty.probe(1, 80, timeout=2.0))
        with pytest.raises(ConnectionRefused):
            asyncio.run(faulty.probe(2, 80, timeout=2.0))

    def test_per_port(self):
        faulty, inner = make_faulty(
            always(FaultKind.CONNECT_TIMEOUT, ports={443})
        )
        inner.open_ports[1].add(443)
        assert asyncio.run(faulty.probe(1, 80, timeout=2.0))
        with pytest.raises(ConnectTimeout):
            asyncio.run(faulty.probe(1, 443, timeout=2.0))

    def test_per_round(self):
        faulty, _ = make_faulty(
            always(FaultKind.CONNECT_TIMEOUT, rounds={2})
        )
        assert asyncio.run(faulty.probe(1, 80, timeout=2.0))   # round 1
        faulty.on_round_start(2)
        with pytest.raises(ConnectTimeout):
            asyncio.run(faulty.probe(1, 80, timeout=2.0))
        faulty.on_round_start(3)
        assert asyncio.run(faulty.probe(1, 80, timeout=2.0))

    def test_rule_scope_accepts_any_iterable(self):
        rule = FaultRule(FaultKind.RESET, ips=[1, 2], ports=(80,), rounds={1})
        assert rule.matches(1, 80, 1)
        assert not rule.matches(3, 80, 1)
        assert not rule.matches(1, 22, 1)
        assert not rule.matches(1, 80, 9)


class TestDeterminism:
    def run_storm(self, seed: int) -> list[str]:
        """One scripted fetch sequence; returns per-request outcomes."""
        inner = FakeTransport()
        for ip in range(1, 21):
            inner.add_host(ip, {80})
        plan = chaos_plan(seed, rate=0.5, delay=0.0)
        faulty = FaultyTransport(inner, plan)
        outcomes: list[str] = []

        async def run():
            for round_id in (1, 2):
                faulty.on_round_start(round_id)
                for ip in range(1, 21):
                    try:
                        response = await get_root(faulty, ip)
                        outcomes.append(f"status:{response.status_code}")
                    except TransportError as exc:
                        outcomes.append(classify_error(exc))

        asyncio.run(run())
        return outcomes

    def test_same_seed_same_outcomes(self):
        assert self.run_storm(7) == self.run_storm(7)

    def test_different_seed_different_outcomes(self):
        assert self.run_storm(7) != self.run_storm(8)

    def test_attempts_drawn_independently(self):
        """A 50% rule must not fail the same request forever: retries
        (attempt counter) get fresh draws."""
        inner = FakeTransport()
        inner.add_host(1, {80})
        plan = FaultPlan(seed=3, rules=(
            FaultRule(FaultKind.CONNECTION_REFUSED, probability=0.5),
        ))
        faulty = FaultyTransport(inner, plan)
        faulty.on_round_start(1)

        async def run():
            results = []
            for _ in range(20):
                try:
                    await get_root(faulty)
                    results.append(True)
                except TransportError:
                    results.append(False)
            return results

        results = asyncio.run(run())
        assert True in results and False in results


class TestPlanValidation:
    def test_probability_range(self):
        with pytest.raises(ValueError):
            FaultRule(FaultKind.RESET, probability=1.5)
        with pytest.raises(ValueError):
            FaultRule(FaultKind.RESET, probability=-0.1)

    def test_negative_delay(self):
        with pytest.raises(ValueError):
            FaultRule(FaultKind.SLOW_RESPONSE, delay=-1.0)

    def test_chaos_plan_covers_all_kinds(self):
        # chaos_plan owns the network kinds; hostile_plan owns the
        # hostile-content kinds.  Together they cover the taxonomy.
        plan = chaos_plan(0, rate=0.1)
        hostile = hostile_plan(0, rate=0.1)
        assert {rule.kind for rule in plan.rules} == (
            set(FaultKind) - HOSTILE_CONTENT_KINDS
        )
        assert {rule.kind for rule in hostile.rules} == HOSTILE_CONTENT_KINDS

    def test_chaos_plan_scope(self):
        plan = chaos_plan(0, rate=1.0, ips={5}, rounds={2})
        assert plan.fault_for("get", 5, 80, 2, 0) is not None
        assert plan.fault_for("get", 6, 80, 2, 0) is None
        assert plan.fault_for("get", 5, 80, 1, 0) is None


class TestAuditCounters:
    def test_injected_and_passthrough(self):
        faulty, _ = make_faulty(
            always(FaultKind.STATUS_STORM, rounds={1})
        )
        async def run():
            await get_root(faulty)        # round 1: storm
            faulty.on_round_start(2)
            await get_root(faulty)        # round 2: clean
        asyncio.run(run())
        assert faulty.injected["5xx-storm"] == 1
        assert faulty.passthrough["get"] == 1

    def test_probe_call_budget_tracking(self):
        faulty, _ = make_faulty()
        async def run():
            for _ in range(3):
                await faulty.probe(1, 80, timeout=2.0)
        asyncio.run(run())
        assert faulty.probe_calls[(1, 1)] == 3
