"""Tests for service population synthesis."""

from __future__ import annotations

import random
import statistics

import pytest

from repro.cloudsim.population import (
    GiantSpec,
    PopulationBuilder,
    WorkloadSpec,
)
from repro.cloudsim.services import Elasticity, PORT_PROFILES_EC2
from repro.cloudsim.software import EC2_CATALOG

REGIONS = [("east", 0.6), ("west", 0.4)]


def builder(spec: WorkloadSpec | None = None, seed: int = 0) -> PopulationBuilder:
    return PopulationBuilder(
        spec or WorkloadSpec(cloud="EC2"),
        EC2_CATALOG,
        PORT_PROFILES_EC2,
        REGIONS,
        supports_vpc=True,
        rng=random.Random(seed),
    )


class TestBuildInitial:
    def test_covers_target(self):
        services = builder().build_initial(500)
        covered = sum(s.base_size for s in services if s.alive_on(0))
        assert covered >= 500
        assert covered < 500 + 350  # no wild overshoot

    def test_mostly_singletons(self):
        """§8.1: 78.8% of clusters use a single IP on average."""
        services = builder().build_initial(2000)
        singles = sum(1 for s in services if s.base_size == 1)
        assert singles / len(services) > 0.7

    def test_ephemeral_fraction(self):
        spec = WorkloadSpec(cloud="EC2", ephemeral_fraction=0.114)
        services = builder(spec).build_initial(2000)
        ephemeral = [
            s for s in services
            if s.death_day is not None and s.birth_day >= 0
        ]
        share = len(ephemeral) / len(services)
        assert 0.05 < share < 0.2
        assert all(s.death_day - s.birth_day <= 6 for s in ephemeral)

    def test_giants_included(self):
        spec = WorkloadSpec(
            cloud="EC2",
            giants=(
                GiantSpec("PaaS", 50, 2, "classic", 0.01, 0.99,
                          Elasticity.STABLE),
            ),
        )
        services = builder(spec).build_initial(300)
        paas = [s for s in services if s.category == "PaaS"]
        assert len(paas) == 1
        assert paas[0].base_size == 50
        assert len(paas[0].regions) == 2

    def test_networking_mix(self):
        services = builder().build_initial(3000)
        networkings = {s.networking for s in services}
        assert networkings == {"classic", "vpc", "mixed"}
        classic = sum(1 for s in services if s.networking == "classic")
        assert classic / len(services) > 0.6

    def test_region_assignment(self):
        services = builder().build_initial(2000)
        single_region = sum(1 for s in services if len(s.regions) == 1)
        assert single_region / len(services) > 0.9  # §8.1: 97%
        assert all(set(s.regions) <= {"east", "west"} for s in services)

    def test_web_services_have_profiles(self):
        services = builder().build_initial(1000)
        for service in services:
            if service.port_profile.serves_web:
                assert service.profile is not None
                assert service.stack is not None
            else:
                assert service.profile is None
                assert service.category == "ssh"

    def test_deterministic(self):
        a = builder(seed=5).build_initial(400)
        b = builder(seed=5).build_initial(400)
        assert [s.base_size for s in a] == [s.base_size for s in b]
        assert [s.regions for s in a] == [s.regions for s in b]


class TestMalicious:
    def spec(self) -> WorkloadSpec:
        return WorkloadSpec(
            cloud="EC2",
            malicious_embedders=10,
            malicious_hosters=15,
            linchpin_services=2,
        )

    def test_counts(self):
        services = builder(self.spec()).build_initial(3000)
        embedders = [
            s for s in services
            if s.malicious is not None and s.malicious.on_page
        ]
        hosters = [s for s in services if s.category == "vt-hoster"]
        linchpins = [
            s for s in services
            if s.malicious is not None and s.malicious.linchpin
        ]
        assert len(embedders) == 12          # 10 embedders + 2 linchpins
        assert len(hosters) == 15
        assert len(linchpins) == 2

    def test_linchpin_has_many_urls(self):
        services = builder(self.spec()).build_initial(3000)
        linchpin = next(
            s for s in services
            if s.malicious is not None and s.malicious.linchpin
        )
        assert len(linchpin.malicious.urls) >= 20

    def test_hosters_invisible_on_page(self):
        services = builder(self.spec()).build_initial(3000)
        for service in services:
            if service.category == "vt-hoster":
                assert service.malicious is not None
                assert not service.malicious.on_page


class TestArrivals:
    def test_arrival_alive_from_birth(self):
        b = builder()
        b.build_initial(200)
        arrival = b.make_arrival(40)
        assert arrival.birth_day == 40
        assert arrival.death_day is None
        assert arrival.alive_on(40)
        assert not arrival.alive_on(39)

    def test_arrivals_mostly_singletons(self):
        b = builder()
        b.build_initial(200)
        sizes = [b.make_arrival(10).base_size for _ in range(200)]
        assert statistics.mean(sizes) < 1.8

    def test_arrival_rate_expectation(self):
        spec = WorkloadSpec(cloud="EC2", arrival_rate=0.5)
        b = builder(spec)
        rng = random.Random(0)
        counts = [b.arrivals_for_day(10, rng) for _ in range(400)]
        assert statistics.mean(counts) == pytest.approx(5.0, rel=0.15)
