"""Tests for the depth-limited crawler (§9 "deeper crawling")."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.config import FetchConfig
from repro.core.crawler import Crawler
from repro.core.features import extract_internal_links
from repro.core.records import FetchStatus, ProbeOutcome, ProbeStatus

from _fakes import FakeTransport


def outcome(ip: int, ports={80}) -> ProbeOutcome:
    return ProbeOutcome(
        ip=ip, status=ProbeStatus.RESPONSIVE, open_ports=frozenset(ports)
    )


def site(transport: FakeTransport, ip: int, pages: dict[str, str]) -> None:
    transport.open_ports[ip] = {80}
    from repro.core.transport import HttpResponse

    for path, body in pages.items():
        transport.pages[(ip, path)] = HttpResponse(
            200, {"Content-Type": "text/html", "Server": "t/1"},
            body.encode(),
        )


class TestExtractInternalLinks:
    def test_relative_paths_only(self):
        html = (
            '<a href="/about">a</a> <a href="http://x.y/z">e</a> '
            '<a href="//cdn.example/app.js">p</a> <a href="/about">dup</a>'
        )
        assert extract_internal_links(html) == ["/about"]

    def test_order_preserved(self):
        html = '<a href="/b">b</a><a href="/a">a</a>'
        assert extract_internal_links(html) == ["/b", "/a"]


class TestCrawler:
    def make_site(self) -> FakeTransport:
        transport = FakeTransport()
        site(transport, 1, {
            "/": '<html><a href="/about">about</a>'
                 '<a href="/blog">blog</a></html>',
            "/about": "<html>about us</html>",
            "/blog": '<html><a href="/blog/post1">post</a></html>',
            "/blog/post1": "<html>the post</html>",
        })
        return transport

    def test_depth_one(self):
        crawler = Crawler(self.make_site(), max_depth=1, max_pages=10)
        result = asyncio.run(crawler.crawl_ip(outcome(1)))
        assert set(result.pages) == {"/", "/about", "/blog"}
        assert result.root is not None
        assert result.pages["/about"].status_code == 200

    def test_depth_two_follows_nested(self):
        crawler = Crawler(self.make_site(), max_depth=2, max_pages=10)
        result = asyncio.run(crawler.crawl_ip(outcome(1)))
        assert "/blog/post1" in result.pages

    def test_page_budget(self):
        crawler = Crawler(self.make_site(), max_depth=3, max_pages=2)
        result = asyncio.run(crawler.crawl_ip(outcome(1)))
        assert result.page_count == 2

    def test_missing_page_recorded_as_error(self):
        transport = FakeTransport()
        site(transport, 1, {"/": '<a href="/gone">x</a>'})
        crawler = Crawler(transport)
        result = asyncio.run(crawler.crawl_ip(outcome(1)))
        assert result.pages["/gone"].status is FetchStatus.ERROR

    def test_robots_respected(self):
        transport = self.make_site()
        transport.robots[1] = __import__(
            "repro.core.transport", fromlist=["HttpResponse"]
        ).HttpResponse(
            200, {"Content-Type": "text/plain"},
            b"User-agent: *\nDisallow: /\n",
        )
        crawler = Crawler(transport)
        result = asyncio.run(crawler.crawl_ip(outcome(1)))
        assert result.root.status is FetchStatus.ROBOTS_DISALLOWED
        assert result.page_count == 1     # nothing crawled

    def test_ssh_only_not_crawled(self):
        crawler = Crawler(FakeTransport())
        result = asyncio.run(crawler.crawl_ip(outcome(1, ports={22})))
        assert result.root.status is FetchStatus.NOT_ATTEMPTED
        assert result.page_count == 1

    def test_combined_text(self):
        crawler = Crawler(self.make_site(), max_depth=1, max_pages=10)
        result = asyncio.run(crawler.crawl_ip(outcome(1)))
        text = result.combined_text()
        assert "about us" in text
        assert "blog" in text

    def test_crawl_many(self):
        transport = self.make_site()
        site(transport, 2, {"/": "<html>solo</html>"})
        crawler = Crawler(transport)
        results = crawler.crawl_sync([outcome(1), outcome(2)])
        assert [r.ip for r in results] == [1, 2]
        assert results[1].page_count == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Crawler(FakeTransport(), max_depth=-1)
        with pytest.raises(ValueError):
            Crawler(FakeTransport(), max_pages=0)

    def test_against_simulated_cloud(self, ec2_campaign):
        """Simulated sites expose subpages the crawler can walk."""
        scenario = ec2_campaign.scenario
        simulation = scenario.simulation
        target = None
        for service in simulation.live_services():
            if (service.serves_web and service.profile is not None
                    and service.profile.status_code == 200
                    and service.profile.subpages
                    and not service.profile.robots_disallow
                    and service.availability >= 0.99
                    and 80 in service.port_profile.open_ports
                    and simulation.footprint(service.service_id)):
                target = service
                break
        if target is None:
            pytest.skip("no crawlable service at this seed")
        ip = simulation.footprint(target.service_id)[0]
        crawler = Crawler(scenario.transport, FetchConfig(workers=4))
        result = asyncio.run(crawler.crawl_ip(outcome(ip)))
        assert result.page_count >= 1 + len(target.profile.subpages)
        for path in target.profile.subpages:
            assert result.pages[path].status_code == 200
