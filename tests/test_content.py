"""Tests for synthetic webpage generation."""

from __future__ import annotations

import random
from collections import Counter

from repro.cloudsim.content import (
    ContentFactory,
    ContentProfile,
    DEFAULT_PAGES,
    GoogleAnalyticsRegistry,
    TRACKER_CATALOG,
)
from repro.core.simhash import hamming_distance, simhash


def factory(seed: int = 1, **kwargs) -> ContentFactory:
    return ContentFactory(random.Random(seed), **kwargs)


class TestContentProfile:
    def test_render_deterministic(self):
        profile = factory().make_profile()
        assert profile.render(0, 0) == profile.render(0, 0)

    def test_revision_changes_little(self):
        profile = factory(3).make_profile()
        base = simhash(profile.render(0, 0))
        revised = simhash(profile.render(0, 1))
        assert 0 < hamming_distance(base, revised) <= 12

    def test_redesign_changes_much(self):
        profile = factory(4).make_profile()
        base = simhash(profile.render(0, 0))
        redesigned = simhash(profile.render(1, 0))
        assert hamming_distance(base, redesigned) > 20

    def test_html_carries_metadata(self):
        for _ in range(30):
            profile = factory(5).make_profile()
            if profile.status_code != 200 or profile.content_type != "text/html":
                continue
            html = profile.render()
            assert f"<title>{profile.title}</title>" in html
            if profile.keywords:
                assert profile.keywords in html
            if profile.analytics_id:
                assert profile.analytics_id in html
            break

    def test_malicious_links_embedded(self):
        profile = factory(6).make_profile()
        bad = ("http://evil.example.net/payload.exe",)
        html = profile.with_malicious_links(bad).render()
        assert bad[0] in html
        assert bad[0] not in profile.render()

    def test_json_content(self):
        profile = ContentProfile(
            title="api", description="", keywords="", template="",
            analytics_id="", body_seed=1, content_type="application/json",
        )
        body = profile.render()
        assert body.startswith("{")
        assert "api" in body

    def test_xml_content(self):
        profile = ContentProfile(
            title="svc", description="", keywords="", template="",
            analytics_id="", body_seed=1, content_type="application/xml",
        )
        assert profile.render().startswith("<?xml")


class TestContentFactory:
    def test_default_pages_canonical(self):
        profile = factory().make_profile(default_family="nginx")
        title, _ = DEFAULT_PAGES["nginx"]
        assert profile.title == title
        assert profile.analytics_id == ""

    def test_two_default_page_services_share_content(self):
        """Default pages must collide across tenants so the cleaning
        step has the large default clusters of §5 to remove."""
        a = factory(1).make_profile(default_family="Apache")
        b = factory(2).make_profile(default_family="Apache")
        assert a.title == b.title
        assert simhash(a.render()) == simhash(b.render())

    def test_error_profile(self):
        profile = factory().make_profile(status_behavior="404")
        assert profile.status_code == 404
        assert "Not Found" in profile.title

    def test_unique_titles(self):
        f = factory(8)
        titles = [
            f.make_profile().title for _ in range(50)
        ]
        assert len(set(titles)) > 40

    def test_tracker_share(self):
        f = factory(9, tracker_share=1.0)
        profiles = [f.make_profile() for _ in range(50)]
        with_ga = [p for p in profiles if p.status_code == 200 and p.analytics_id]
        ok = [p for p in profiles if p.status_code == 200]
        assert len(with_ga) == len(ok)

    def test_tracker_scripts_embed_fingerprints(self):
        f = factory(10, tracker_share=1.0)
        fingerprints = {spec.fingerprint_url for spec, _ in TRACKER_CATALOG}
        seen = False
        for _ in range(100):
            profile = f.make_profile()
            for script in profile.tracker_scripts:
                assert any(fp in script for fp in fingerprints)
                seen = True
        assert seen

    def test_robots_disallow_rate(self):
        f = factory(11, robots_disallow_rate=1.0)
        profile = f.make_profile()
        assert profile.robots_disallow


class TestGoogleAnalyticsRegistry:
    def test_id_format(self):
        registry = GoogleAnalyticsRegistry(random.Random(0))
        for _ in range(100):
            ga_id = registry.issue()
            assert ga_id.startswith("UA-")
            parts = ga_id.split("-")
            assert len(parts) == 3
            assert parts[1].isdigit() and parts[2].isdigit()

    def test_ids_unique(self):
        registry = GoogleAnalyticsRegistry(random.Random(1))
        ids = [registry.issue() for _ in range(500)]
        assert len(set(ids)) == len(ids)

    def test_most_accounts_single_profile(self):
        """§8.3: ~93.5% of GA accounts use a single profile."""
        registry = GoogleAnalyticsRegistry(random.Random(2))
        accounts = Counter()
        for _ in range(2000):
            account = registry.issue().split("-")[1]
            accounts[account] += 1
        singles = sum(1 for count in accounts.values() if count == 1)
        assert singles / len(accounts) > 0.75


class TestSubpages:
    def test_render_subpage(self):
        f = factory(21)
        profile = None
        for _ in range(50):
            candidate = f.make_profile()
            if candidate.status_code == 200 and candidate.subpages:
                profile = candidate
                break
        assert profile is not None
        path = profile.subpages[0]
        body = profile.render_subpage(path)
        assert profile.title in body
        assert path.strip("/").capitalize() in body

    def test_subpage_unknown_path_raises(self):
        profile = factory(22).make_profile()
        import pytest

        with pytest.raises(KeyError):
            profile.render_subpage("/nope")

    def test_subpage_differs_from_home(self):
        f = factory(23)
        for _ in range(50):
            profile = f.make_profile()
            if profile.status_code == 200 and profile.subpages \
                    and profile.content_type == "text/html":
                home = simhash(profile.render())
                sub = simhash(profile.render_subpage(profile.subpages[0]))
                assert hamming_distance(home, sub) > 10
                return
        raise AssertionError("no subpage profile drawn")
