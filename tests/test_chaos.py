"""Chaos suite: the full pipeline under seeded fault storms.

The headline invariants, asserted for every storm:

1. the campaign completes without an exception — a hostile network can
   degrade a round, never crash it;
2. the per-IP probe budget survives (once per round, at most 3 ports);
3. rounds that blow the error budget are flagged ``degraded`` and the
   flag round-trips through the store;
4. every stored failure is attributed to a typed error class;
5. feature extraction never sees injected garbage as a valid page.

The quick acceptance test runs in tier-1; the full fault matrix is
behind ``-m chaos`` (see README: "running the chaos suite").
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import (
    FaultKind,
    FaultPlan,
    FaultRule,
    FaultyTransport,
    FetchStatus,
    MeasurementStore,
    chaos_plan,
)
from repro.core.transport import (
    BodyTruncated,
    ConnectionRefused,
    ConnectTimeout,
    ProtocolError,
    TransportError,
)
from repro.core.guard import StageDeadlineExceeded
from repro.workloads import Campaign, ec2_scenario
from repro.workloads.campaign import simulation_config

KNOWN_CLASSES = {
    TransportError.kind, ConnectTimeout.kind, ConnectionRefused.kind,
    ProtocolError.kind, BodyTruncated.kind, StageDeadlineExceeded.kind,
}


def storm_campaign(
    *,
    plan: FaultPlan,
    total_ips: int = 256,
    rounds: int = 3,
    seed: int = 11,
    error_budget: float = 0.5,
    fetch_retries: int = 0,
):
    """Run a small simulated campaign behind a FaultyTransport."""
    scenario = ec2_scenario(
        total_ips=total_ips,
        seed=seed,
        duration_days=3 * rounds,
        malicious_embedders=0,
        malicious_hosters=0,
        linchpin_services=0,
        with_giants=False,
    )
    faulty = FaultyTransport(scenario.transport, plan)
    scenario.transport = faulty
    config = simulation_config()
    config = dataclasses.replace(
        config,
        round_error_budget=error_budget,
        fetch=dataclasses.replace(
            config.fetch, retries=fetch_retries, retry_base_delay=0.0
        ),
    )
    campaign = Campaign(scenario, config=config)
    result = campaign.run(scan_days=scenario.scan_days[:rounds])
    return result, faulty


def assert_chaos_invariants(result, faulty) -> None:
    """The invariants every fault storm must preserve."""
    store = result.store
    infos = store.rounds()
    assert len(infos) == result.round_count

    # Per-IP probe budget: once per round, at most 3 ports, no retries.
    for (round_id, ip), calls in faulty.probe_calls.items():
        assert calls <= 3, (round_id, ip, calls)

    for summary, info in zip(result.summaries, infos):
        # The degraded flag round-trips through the store.
        assert info.degraded == summary.degraded
        assert info.error_count == summary.errors
        records = list(store.records(info.round_id))
        ips = [record.ip for record in records]
        assert len(ips) == len(set(ips)), "duplicate IP within a round"
        for record in records:
            if record.fetch.status is FetchStatus.ERROR:
                # Failures are attributed to a typed error class...
                assert record.fetch.error_class in KNOWN_CLASSES
                # ...and injected garbage never reaches the features.
                assert record.fetch.body is None
                assert record.features is None
            else:
                assert record.fetch.error_class is None
            if record.probe.error_class is not None:
                assert record.probe.error_class in KNOWN_CLASSES


class TestAcceptance:
    """The ISSUE acceptance scenario — runs in tier-1."""

    def test_five_fault_classes_three_rounds(self):
        plan = chaos_plan(seed=42, rate=0.3, delay=0.0)
        result, faulty = storm_campaign(plan=plan, rounds=3)

        # The storm actually injected ≥ 5 distinct fault classes.
        fired = {kind for kind, count in faulty.injected.items() if count}
        assert len(fired) >= 5, fired

        assert_chaos_invariants(result, faulty)

        # A 30%-per-kind storm overwhelms the 50% budget: every round
        # both completes and is flagged degraded, in summary and store.
        assert all(s.degraded for s in result.summaries)
        assert all(info.degraded for info in result.store.rounds())
        assert all(s.errors > 0 for s in result.summaries)

        # Stored records carry the typed attribution for ≥ 2 distinct
        # fetch-level classes (connection + response level faults).
        stored_classes = set()
        for info in result.store.rounds():
            for record in result.store.records(info.round_id):
                if record.fetch.error_class:
                    stored_classes.add(record.fetch.error_class)
        assert len(stored_classes) >= 2, stored_classes

    def test_clean_campaign_not_degraded(self):
        result, faulty = storm_campaign(plan=FaultPlan(seed=0), rounds=2)
        assert not any(s.degraded for s in result.summaries)
        assert sum(faulty.injected.values()) == 0
        assert_chaos_invariants(result, faulty)

    def test_round_scoped_storm_degrades_only_that_round(self):
        plan = chaos_plan(seed=5, rate=0.9, delay=0.0, rounds={2})
        result, faulty = storm_campaign(plan=plan, rounds=3)
        assert_chaos_invariants(result, faulty)
        degraded = [s.info.round_id for s in result.summaries if s.degraded]
        assert degraded == [2]

    def test_budget_of_one_never_degrades(self):
        plan = chaos_plan(seed=9, rate=0.9, delay=0.0)
        result, _ = storm_campaign(plan=plan, rounds=2, error_budget=1.0)
        assert not any(s.degraded for s in result.summaries)
        assert all(s.errors > 0 for s in result.summaries)

    def test_retries_recover_fetches(self):
        """With the (off-by-default) retry policy on, a 50% refused
        storm loses fewer pages than with the paper's no-retry rule."""
        plan = FaultPlan(seed=17, rules=(
            FaultRule(FaultKind.CONNECTION_REFUSED, probability=0.5,
                      ports=frozenset({80, 443})),
        ))
        # The rule also refuses probes, so keep it to GET-relevant ports
        # and compare fetched-page counts across the same seeds.
        no_retry, _ = storm_campaign(plan=plan, rounds=2)
        with_retry, _ = storm_campaign(plan=plan, rounds=2, fetch_retries=3)
        assert sum(s.available for s in with_retry.summaries) > sum(
            s.available for s in no_retry.summaries
        )


@pytest.mark.chaos
class TestFaultMatrix:
    """Dozens of seeded fault plans over full mini-campaigns."""

    @pytest.mark.parametrize("plan_seed", range(8))
    @pytest.mark.parametrize("rate", [0.15, 0.5, 0.9])
    def test_storm(self, plan_seed: int, rate: float):
        plan = chaos_plan(seed=plan_seed, rate=rate, delay=0.0)
        result, faulty = storm_campaign(
            plan=plan, total_ips=128, rounds=3, seed=23 + plan_seed
        )
        assert_chaos_invariants(result, faulty)
        assert sum(faulty.injected.values()) > 0

    @pytest.mark.parametrize("kind", list(FaultKind))
    def test_single_kind_storm(self, kind: FaultKind):
        """Each fault class alone: pipeline survives a pure storm."""
        plan = FaultPlan(seed=31, rules=(
            FaultRule(kind, probability=0.7, delay=0.0),
        ))
        result, faulty = storm_campaign(plan=plan, total_ips=128, rounds=2)
        assert_chaos_invariants(result, faulty)

    def test_total_blackout_still_completes(self):
        """100% connect timeouts: zero responsive IPs, three degraded
        rounds, no exception."""
        plan = FaultPlan(seed=1, rules=(
            FaultRule(FaultKind.CONNECT_TIMEOUT, probability=1.0),
        ))
        result, faulty = storm_campaign(plan=plan, total_ips=128, rounds=3)
        assert_chaos_invariants(result, faulty)
        assert all(s.responsive == 0 for s in result.summaries)
        assert all(s.degraded for s in result.summaries)

    def test_storm_database_loads_like_any_other(self):
        """A chaos-era database is a normal database: history lookups
        and per-round reads work on degraded rounds."""
        plan = chaos_plan(seed=3, rate=0.5, delay=0.0)
        result, _ = storm_campaign(plan=plan, total_ips=128, rounds=3)
        store = result.store
        seen = 0
        for info in store.rounds():
            for record in store.records(info.round_id):
                history = store.history(record.ip)
                assert history, record.ip
                seen += 1
                if seen >= 25:
                    return
