"""Tests for IPv4 address-space modelling."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cloudsim.addressing import (
    AddressSpace,
    Prefix,
    Region,
    int_to_ip,
    ip_to_int,
)


class TestConversions:
    def test_round_trip(self):
        assert int_to_ip(ip_to_int("54.12.0.255")) == "54.12.0.255"

    @given(st.integers(0, 2**32 - 1))
    def test_round_trip_property(self, value):
        assert ip_to_int(int_to_ip(value)) == value


class TestPrefix:
    def test_parse(self):
        prefix = Prefix.parse("10.0.0.0/24")
        assert prefix.size == 256
        assert prefix.first == ip_to_int("10.0.0.0")
        assert prefix.last == ip_to_int("10.0.0.255")

    def test_contains(self):
        prefix = Prefix.parse("192.168.1.0/24")
        assert ip_to_int("192.168.1.77") in prefix
        assert ip_to_int("192.168.2.1") not in prefix

    def test_unaligned_rejected(self):
        with pytest.raises(ValueError):
            Prefix(ip_to_int("10.0.0.1"), 24)

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            Prefix(0, 40)

    def test_iteration(self):
        prefix = Prefix.parse("10.0.0.0/30")
        assert list(prefix) == [prefix.first + i for i in range(4)]

    def test_subprefixes(self):
        prefix = Prefix.parse("10.0.0.0/22")
        subs = list(prefix.subprefixes(24))
        assert len(subs) == 4
        assert all(s.length == 24 for s in subs)
        assert subs[0].first == prefix.first
        assert subs[-1].last == prefix.last

    def test_subprefixes_shorter_rejected(self):
        with pytest.raises(ValueError):
            list(Prefix.parse("10.0.0.0/24").subprefixes(22))

    def test_str(self):
        assert str(Prefix.parse("10.1.0.0/16")) == "10.1.0.0/16"


def make_space() -> AddressSpace:
    return AddressSpace(
        [
            Region.from_cidrs("east", ["54.0.0.0/24", "54.0.2.0/24"]),
            Region.from_cidrs("west", ["54.1.0.0/24"]),
        ]
    )


class TestAddressSpace:
    def test_size(self):
        assert make_space().size == 768

    def test_membership(self):
        space = make_space()
        assert ip_to_int("54.0.0.5") in space
        assert ip_to_int("54.0.1.5") not in space  # gap between prefixes
        assert ip_to_int("54.1.0.200") in space

    def test_region_lookup(self):
        space = make_space()
        assert space.region_of(ip_to_int("54.0.2.9")).name == "east"
        assert space.region_of(ip_to_int("54.1.0.9")).name == "west"
        assert space.region_of(ip_to_int("9.9.9.9")) is None

    def test_prefix_lookup(self):
        space = make_space()
        prefix = space.prefix_of(ip_to_int("54.0.2.9"))
        assert prefix is not None
        assert str(prefix) == "54.0.2.0/24"

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace(
                [
                    Region.from_cidrs("a", ["10.0.0.0/23"]),
                    Region.from_cidrs("b", ["10.0.1.0/24"]),
                ]
            )

    def test_address_at_and_index_of_inverse(self):
        space = make_space()
        for index in (0, 1, 255, 256, 500, 767):
            assert space.index_of(space.address_at(index)) == index

    def test_address_at_out_of_range(self):
        with pytest.raises(IndexError):
            make_space().address_at(768)

    def test_index_of_absent(self):
        with pytest.raises(KeyError):
            make_space().index_of(ip_to_int("54.0.1.0"))

    def test_addresses_enumeration(self):
        space = make_space()
        addresses = list(space.addresses())
        assert len(addresses) == space.size
        assert addresses == sorted(addresses)

    def test_region_by_name(self):
        space = make_space()
        assert space.region("east").size == 512
        with pytest.raises(KeyError):
            space.region("north")

    @given(st.integers(0, 767))
    def test_indexed_access_in_space(self, index):
        space = make_space()
        assert space.address_at(index) in space
