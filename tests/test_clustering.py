"""Tests for the 2-level clustering heuristic, merging and cleaning (§5)."""

from __future__ import annotations

import random

from repro.analysis.clustering import WebpageClusterer
from repro.core.simhash import HASH_BITS

from _obs import make_dataset, obs


def near(base: int, bits: int, seed: int = 0) -> int:
    rng = random.Random(seed)
    value = base
    for position in rng.sample(range(HASH_BITS), bits):
        value ^= 1 << position
    return value


HASH_A = random.Random(1).getrandbits(96)
HASH_B = random.Random(2).getrandbits(96)
HASH_C = random.Random(3).getrandbits(96)


class TestLevel1:
    def test_same_features_same_hash_one_cluster(self):
        dataset = make_dataset([
            obs(1, 0, title="shop", server="nginx", simhash=HASH_A),
            obs(2, 0, title="shop", server="nginx", simhash=HASH_A),
        ])
        result = WebpageClusterer(level2_threshold=3).cluster(dataset)
        assert result.cluster_of(1, 0) == result.cluster_of(2, 0)
        assert result.stats.top_level_clusters == 1

    def test_different_titles_different_clusters(self):
        dataset = make_dataset([
            obs(1, 0, title="shop", simhash=HASH_A),
            obs(2, 0, title="blog", simhash=HASH_A),
        ])
        result = WebpageClusterer(level2_threshold=3).cluster(dataset)
        assert result.cluster_of(1, 0) != result.cluster_of(2, 0)
        assert result.stats.top_level_clusters == 2

    def test_all_five_features_used(self):
        base = dict(title="t", template="wp", server="nginx",
                    keywords="k", analytics_id="UA-1-1", simhash=HASH_A)
        variants = []
        for index, field in enumerate(
            ("title", "template", "server", "keywords", "analytics_id")
        ):
            changed = dict(base)
            changed[field] = "different"
            variants.append(obs(10 + index, 0, **changed))
        dataset = make_dataset([obs(1, 0, **base)] + variants)
        result = WebpageClusterer(level2_threshold=3).cluster(dataset)
        reference = result.cluster_of(1, 0)
        for index in range(5):
            assert result.cluster_of(10 + index, 0) != reference


class TestLevel2:
    def test_distant_hashes_split(self):
        dataset = make_dataset([
            obs(1, 0, title="shop", simhash=HASH_A),
            obs(2, 0, title="shop", simhash=HASH_B),
        ])
        result = WebpageClusterer(level2_threshold=3).cluster(dataset)
        assert result.cluster_of(1, 0) != result.cluster_of(2, 0)
        assert result.stats.top_level_clusters == 1
        assert result.stats.second_level_clusters == 2

    def test_near_hashes_stay_together(self):
        dataset = make_dataset([
            obs(1, 0, title="shop", simhash=HASH_A),
            obs(2, 0, title="shop", simhash=near(HASH_A, 2)),
        ])
        result = WebpageClusterer(level2_threshold=3).cluster(dataset)
        assert result.cluster_of(1, 0) == result.cluster_of(2, 0)

    def test_threshold_tuned_when_unset(self):
        rng = random.Random(9)
        observations = []
        for index in range(15):
            base = rng.getrandbits(96)
            observations.append(
                obs(index * 2, 0, title=f"site{index}", simhash=base)
            )
            observations.append(
                obs(index * 2 + 1, 0, title=f"site{index}",
                    simhash=near(base, 3, seed=index))
            )
        result = WebpageClusterer().cluster(make_dataset(observations))
        assert result.threshold >= 3


class TestMergeHeuristic:
    def test_revision_merged(self):
        """Same IP, small simhash move, same server => one cluster,
        despite the title change splitting level 1."""
        dataset = make_dataset([
            obs(1, 0, title="shop v1", server="nginx", simhash=HASH_A),
            obs(1, 1, title="shop v2", server="nginx",
                simhash=near(HASH_A, 2)),
        ])
        result = WebpageClusterer(level2_threshold=3).cluster(dataset)
        assert result.cluster_of(1, 0) == result.cluster_of(1, 1)

    def test_no_merge_beyond_three_bits(self):
        dataset = make_dataset([
            obs(1, 0, title="shop v1", server="nginx", simhash=HASH_A),
            obs(1, 1, title="shop v2", server="nginx",
                simhash=near(HASH_A, 8)),
        ])
        result = WebpageClusterer(level2_threshold=3).cluster(dataset)
        assert result.cluster_of(1, 0) != result.cluster_of(1, 1)

    def test_no_merge_without_shared_feature(self):
        dataset = make_dataset([
            obs(1, 0, title="shop v1", server="nginx", simhash=HASH_A),
            obs(1, 1, title="shop v2", server="apache",
                simhash=near(HASH_A, 2)),
        ])
        result = WebpageClusterer(level2_threshold=3).cluster(dataset)
        assert result.cluster_of(1, 0) != result.cluster_of(1, 1)

    def test_unknown_features_do_not_merge(self):
        """Two pages sharing only 'unknown' values share nothing."""
        dataset = make_dataset([
            obs(1, 0, title="a", simhash=HASH_A),
            obs(1, 1, title="b", simhash=near(HASH_A, 2)),
        ])
        result = WebpageClusterer(level2_threshold=3).cluster(dataset)
        assert result.cluster_of(1, 0) != result.cluster_of(1, 1)

    def test_different_ips_not_merged(self):
        dataset = make_dataset([
            obs(1, 0, title="shop v1", server="nginx", simhash=HASH_A),
            obs(2, 1, title="shop v2", server="nginx",
                simhash=near(HASH_A, 2)),
        ])
        result = WebpageClusterer(level2_threshold=3).cluster(dataset)
        assert result.cluster_of(1, 0) != result.cluster_of(2, 1)

    def test_merge_disabled_for_ablation(self):
        dataset = make_dataset([
            obs(1, 0, title="shop v1", server="nginx", simhash=HASH_A),
            obs(1, 1, title="shop v2", server="nginx",
                simhash=near(HASH_A, 2)),
        ])
        result = WebpageClusterer(
            level2_threshold=3, use_merge=False
        ).cluster(dataset)
        assert result.cluster_of(1, 0) != result.cluster_of(1, 1)


class TestCleaning:
    def test_error_titles_removed(self):
        dataset = make_dataset([
            obs(1, 0, title="404 Not Found", simhash=HASH_A),
            obs(2, 0, title="healthy site", simhash=HASH_B),
        ])
        result = WebpageClusterer(level2_threshold=3).cluster(dataset)
        assert result.cluster_of(1, 0) is None
        assert result.cluster_of(2, 0) is not None
        assert len(result.removed) == 1

    def test_big_default_page_cluster_removed(self):
        observations = [
            obs(ip, 0, title="Welcome to nginx!", simhash=HASH_C)
            for ip in range(30)
        ]
        observations.append(obs(99, 0, title="real site", simhash=HASH_B))
        result = WebpageClusterer(
            level2_threshold=3, clean_min_daily_ips=20
        ).cluster(make_dataset(observations))
        assert result.cluster_of(0, 0) is None
        assert result.cluster_of(99, 0) is not None

    def test_small_default_page_cluster_kept(self):
        """Only *large* default-page clusters are cleaned (§5)."""
        observations = [
            obs(ip, 0, title="Welcome to nginx!", simhash=HASH_C)
            for ip in range(3)
        ]
        result = WebpageClusterer(
            level2_threshold=3, clean_min_daily_ips=20
        ).cluster(make_dataset(observations))
        assert result.cluster_of(0, 0) is not None


class TestStats:
    def test_funnel_counts(self):
        dataset = make_dataset([
            obs(1, 0, title="a", simhash=HASH_A),
            obs(1, 1, title="a", simhash=HASH_A),
            obs(2, 0, title="a", simhash=HASH_B),
            obs(3, 0, title="error page", simhash=HASH_C),
        ])
        result = WebpageClusterer(level2_threshold=3).cluster(dataset)
        stats = result.stats
        assert stats.responsive_ips == 3
        assert stats.unique_simhashes == 3
        assert stats.top_level_clusters == 2
        assert stats.second_level_clusters == 3
        assert stats.final_clusters == 2      # error cluster cleaned

    def test_cluster_accessors(self):
        dataset = make_dataset([
            obs(1, 0, title="a", simhash=HASH_A),
            obs(2, 0, title="a", simhash=HASH_A),
            obs(1, 1, title="a", simhash=HASH_A),
        ])
        result = WebpageClusterer(level2_threshold=3).cluster(dataset)
        cid = result.cluster_of(1, 0)
        cluster = result.clusters[cid]
        assert cluster.ips() == {1, 2}
        assert cluster.rounds() == {0, 1}
        assert cluster.ips_in_round(0) == {1, 2}
        assert cluster.size_by_round([0, 1]) == [2, 1]
        assert cluster.average_size(2) == 1.5


class TestGroundTruthQuality:
    def test_recovers_simulated_services(self, ec2_campaign, ec2_clustering):
        """Score clustering against the simulator's ownership ground
        truth: majority-owner purity should be high."""
        dataset = ec2_campaign.dataset
        simulation = ec2_campaign.scenario.simulation
        log = simulation.log
        total = 0
        pure = 0
        for cluster in ec2_clustering.clusters.values():
            owners: dict[int, int] = {}
            members = list(cluster.members)
            for ip, rid in members:
                owner = log.owner_on(ip, dataset.timestamp_of(rid))
                if owner is not None:
                    owners[owner] = owners.get(owner, 0) + 1
            if not owners:
                continue
            majority = max(owners.values())
            total += sum(owners.values())
            pure += majority
        assert total > 0
        assert pure / total > 0.95


class TestFeatureSubset:
    """§5: the interface supports clustering with other goals — e.g.
    dropping the server feature, or using only Analytics IDs."""

    def test_analytics_only(self):
        dataset = make_dataset([
            obs(1, 0, title="site a", analytics_id="UA-1-1", simhash=HASH_A),
            obs(2, 0, title="site b", analytics_id="UA-1-1", simhash=HASH_A),
            obs(3, 0, title="site a", analytics_id="UA-2-1", simhash=HASH_A),
        ])
        clusterer = WebpageClusterer(
            level2_threshold=96, feature_subset=("analytics_id",)
        )
        result = clusterer.cluster(dataset)
        assert result.cluster_of(1, 0) == result.cluster_of(2, 0)
        assert result.cluster_of(3, 0) != result.cluster_of(1, 0)

    def test_drop_server_feature(self):
        dataset = make_dataset([
            obs(1, 0, title="same", server="nginx", simhash=HASH_A),
            obs(2, 0, title="same", server="apache", simhash=HASH_A),
        ])
        full = WebpageClusterer(level2_threshold=3).cluster(dataset)
        assert full.cluster_of(1, 0) != full.cluster_of(2, 0)
        related = WebpageClusterer(
            level2_threshold=3,
            feature_subset=("title", "template", "keywords", "analytics_id"),
        ).cluster(dataset)
        assert related.cluster_of(1, 0) == related.cluster_of(2, 0)

    def test_unknown_feature_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            WebpageClusterer(feature_subset=("hostname",))


class TestMergeBoundary:
    """Pin `_should_merge`'s boundary semantics: the Hamming bound is
    **inclusive** (distance == merge_threshold merges, +1 does not),
    and empty/missing (UNKNOWN) feature values never count as shared —
    matching the vectorized batch kernel bit for bit."""

    def _pair(self, bits: int, *, server_b: str = "nginx",
              title_a: str = "shop v1", title_b: str = "shop v2"):
        earlier = obs(1, 0, title=title_a, server="nginx", simhash=HASH_A)
        later = obs(1, 1, title=title_b, server=server_b,
                    simhash=near(HASH_A, bits, seed=42))
        return earlier, later

    def test_merge_at_exact_threshold_inclusive(self):
        """distance == 3 with the default merge_threshold=3 merges."""
        earlier, later = self._pair(3)
        result = WebpageClusterer(level2_threshold=0).cluster(
            make_dataset([earlier, later])
        )
        assert result.cluster_of(1, 0) == result.cluster_of(1, 1)

    def test_no_merge_one_past_threshold(self):
        """distance == 4 with merge_threshold=3 must NOT merge."""
        earlier, later = self._pair(4)
        result = WebpageClusterer(level2_threshold=0).cluster(
            make_dataset([earlier, later])
        )
        assert result.cluster_of(1, 0) != result.cluster_of(1, 1)

    def test_custom_threshold_boundary(self):
        for threshold in (0, 1, 5):
            at = WebpageClusterer(
                level2_threshold=0, merge_threshold=threshold
            ).cluster(make_dataset(list(self._pair(threshold))))
            past = WebpageClusterer(
                level2_threshold=0, merge_threshold=threshold
            ).cluster(make_dataset(list(self._pair(threshold + 1))))
            assert at.cluster_of(1, 0) == at.cluster_of(1, 1)
            assert past.cluster_of(1, 0) != past.cluster_of(1, 1)

    def test_all_unknown_features_never_shared(self):
        """Identical simhashes but all-UNKNOWN features: UNKNOWN ==
        UNKNOWN is not 'sharing a feature', even at distance 0."""
        dataset = make_dataset([
            obs(1, 0, simhash=HASH_A),
            obs(1, 1, simhash=HASH_A),
        ])
        # use_features=False keeps both in one level-1 group; force a
        # split at level 2 impossible at distance 0, so check the
        # predicate directly instead.
        clusterer = WebpageClusterer(level2_threshold=0)
        earlier = obs(1, 0, title="a", simhash=HASH_A)
        later = obs(1, 1, title="b", simhash=HASH_A)
        assignment = {earlier.key(): 0, later.key(): 1}
        assert clusterer._should_merge(earlier, later, assignment) is False
        del dataset

    def test_predicate_direct_boundaries(self):
        clusterer = WebpageClusterer(level2_threshold=0, merge_threshold=3)
        earlier = obs(1, 0, title="v1", server="nginx", simhash=HASH_A)
        at = obs(1, 1, title="v2", server="nginx",
                 simhash=near(HASH_A, 3, seed=7))
        past = obs(1, 2, title="v3", server="nginx",
                   simhash=near(HASH_A, 4, seed=7))
        assignment = {earlier.key(): 0, at.key(): 1, past.key(): 2}
        assert clusterer._should_merge(earlier, at, assignment) is True
        assert clusterer._should_merge(earlier, past, assignment) is False
        # Same second-level cluster: nothing to merge regardless.
        same = {earlier.key(): 0, at.key(): 0}
        assert clusterer._should_merge(earlier, at, same) is False

    def test_injected_distance_must_match_scalar(self):
        """The vectorized path precomputes distances; injecting the
        true scalar distance gives the same verdict as omitting it."""
        from repro.core.simhash import hamming_distance

        clusterer = WebpageClusterer(level2_threshold=0)
        earlier = obs(1, 0, title="v1", server="nginx", simhash=HASH_A)
        later = obs(1, 1, title="v2", server="nginx",
                    simhash=near(HASH_A, 3, seed=9))
        assignment = {earlier.key(): 0, later.key(): 1}
        distance = hamming_distance(HASH_A, later.features.simhash)
        assert clusterer._should_merge(earlier, later, assignment) == \
            clusterer._should_merge(earlier, later, assignment,
                                    distance=distance)
