"""Tests for the SSH banner extension (§9 non-web services)."""

from __future__ import annotations

import asyncio
from collections import Counter

import pytest

from repro.analysis.census import SshCensus
from repro.core.transport import TransportError

from _obs import make_dataset, obs


class TestSimulatedBanners:
    def test_banner_served_on_port_22(self, ec2_campaign):
        simulation = ec2_campaign.scenario.simulation
        transport = ec2_campaign.scenario.transport
        target = next(
            (s for s in simulation.live_services()
             if s.port_profile.value == "22-only"
             and simulation.footprint(s.service_id)),
            None,
        )
        if target is None:
            pytest.skip("no 22-only service at this seed")
        ip = simulation.footprint(target.service_id)[0]
        banner = asyncio.run(transport.banner(ip, 22, timeout=8.0))
        assert banner == target.ssh_banner
        assert banner.startswith("SSH-")

    def test_no_banner_on_web_port(self, ec2_campaign):
        simulation = ec2_campaign.scenario.simulation
        transport = ec2_campaign.scenario.transport
        ip = next(iter(simulation.assignments()))
        with pytest.raises(TransportError):
            asyncio.run(transport.banner(ip, 80, timeout=2.0))

    def test_idle_ip_refuses_banner(self, ec2_campaign):
        simulation = ec2_campaign.scenario.simulation
        transport = ec2_campaign.scenario.transport
        assigned = set(simulation.assignments())
        idle = next(
            a for a in simulation.topology.space.addresses()
            if a not in assigned
        )
        with pytest.raises(TransportError):
            asyncio.run(transport.banner(idle, 22, timeout=2.0))


class TestBannerCollection:
    def test_campaign_records_banners(self, ec2_campaign):
        """simulation_config enables banner grabbing; 22-only records
        must carry banners through store round-trips."""
        dataset = ec2_campaign.dataset
        with_banner = [
            o for o in dataset.observations()
            if o.port_profile == "22-only" and o.ssh_banner
        ]
        assert with_banner
        assert all(o.ssh_banner.startswith("SSH-") for o in with_banner)

    def test_web_records_have_no_banner(self, ec2_campaign):
        dataset = ec2_campaign.dataset
        for o in dataset.observations():
            if o.port_profile in ("80&443", "443-only"):
                assert o.ssh_banner is None


class TestSshCensus:
    def build_dataset(self):
        rows = [
            obs(1, 0, status_code=None, has_page=False,
                port_profile="22-only", ssh_banner="SSH-2.0-OpenSSH_5.3"),
            obs(2, 0, status_code=None, has_page=False,
                port_profile="22-only", ssh_banner="SSH-2.0-OpenSSH_6.4"),
            obs(3, 0, status_code=None, has_page=False,
                port_profile="22-only",
                ssh_banner="SSH-2.0-dropbear_2012.55"),
            obs(4, 0, title="web", simhash=9, port_profile="80-only"),
        ]
        return make_dataset(rows)

    def test_report(self):
        report = SshCensus(self.build_dataset()).report()
        assert report.banner_identified_share == 100.0
        assert report.product_shares["OpenSSH"] == pytest.approx(200 / 3)
        assert report.product_shares["dropbear"] == pytest.approx(100 / 3)
        # OpenSSH 5.3 is stale, 6.4 is not -> 50% of OpenSSH banners.
        assert report.stale_openssh_share == pytest.approx(50.0)

    def test_web_ips_ignored(self):
        report = SshCensus(self.build_dataset()).report()
        assert sum(report.banner_counts.values()) == 3

    def test_campaign_census(self, ec2_campaign):
        report = SshCensus(ec2_campaign.dataset).report()
        assert report.banner_identified_share > 80.0
        assert report.product_shares.get("OpenSSH", 0) > 80.0
        assert report.top_banners(3)
        versions = Counter(report.banner_counts)
        assert any("OpenSSH_5" in name for name in versions)
