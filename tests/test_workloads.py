"""Tests for scenario builders and the campaign driver."""

from __future__ import annotations

import pytest

from repro.workloads import (
    Campaign,
    azure_scenario,
    ec2_scenario,
    scan_calendar,
    simulation_config,
)


class TestScanCalendar:
    def test_sparse_then_daily(self):
        days = scan_calendar(30, step=3, daily_from=20)
        assert days[:3] == [0, 3, 6]
        assert days[-3:] == [27, 28, 29]

    def test_paper_ec2_round_count(self):
        scenario = ec2_scenario(total_ips=1024, seed=1)
        assert len(scenario.scan_days) == 51        # §6

    def test_paper_azure_round_count(self):
        scenario = azure_scenario(total_ips=1024, seed=1)
        assert len(scenario.scan_days) == 46        # §6


class TestScenarios:
    def test_ec2_regions(self):
        scenario = ec2_scenario(total_ips=2048, seed=2)
        assert {r.name for r in scenario.topology.space.regions} == {
            "USEast", "USWest_Oregon", "EU", "AsiaTokyo", "USWest_NC",
            "AsiaSingapore", "AsiaSydney", "SouthAmerica",
        }

    def test_targets_cover_space(self):
        scenario = ec2_scenario(total_ips=1024, seed=2)
        assert len(scenario.targets) == scenario.topology.space.size

    def test_giants_planted(self):
        scenario = ec2_scenario(total_ips=4096, seed=2)
        categories = {
            s.category for s in scenario.simulation.services.values()
        }
        assert "PaaS" in categories
        assert "VPN" in categories

    def test_giants_optional(self):
        scenario = ec2_scenario(total_ips=2048, seed=2, with_giants=False)
        assert "PaaS" not in {
            s.category for s in scenario.simulation.services.values()
        }

    def test_azure_no_vpc(self):
        scenario = azure_scenario(total_ips=1024, seed=2)
        assert all(
            s.networking == "classic"
            for s in scenario.simulation.services.values()
        )

    def test_blacklist_services_available(self, ec2_campaign):
        scenario = ec2_campaign.scenario
        assert scenario.safe_browsing(seed=1) is not None
        assert scenario.virustotal(seed=1) is not None

    def test_departure_events_within_duration(self):
        scenario = ec2_scenario(total_ips=1024, seed=2, duration_days=30)
        assert all(
            day < 30 for day in scenario.workload.departure_events
        )


class TestCampaign:
    def test_round_count_and_summaries(self, ec2_campaign):
        assert ec2_campaign.round_count == len(
            ec2_campaign.scenario.scan_days
        )
        for summary in ec2_campaign.summaries:
            assert summary.responsive >= summary.available

    def test_store_has_all_rounds(self, ec2_campaign):
        rounds = ec2_campaign.store.rounds()
        assert [r.timestamp for r in rounds] == \
            ec2_campaign.scenario.scan_days

    def test_dataset_cached(self, ec2_campaign):
        assert ec2_campaign.dataset is ec2_campaign.dataset

    def test_clustering_cached(self, ec2_campaign):
        assert ec2_campaign.clustering() is ec2_campaign.clustering()

    def test_clustering_overrides_not_cached(self, ec2_campaign):
        custom = ec2_campaign.clustering(level2_threshold=1)
        assert custom is not ec2_campaign.clustering()

    def test_custom_scan_days(self):
        scenario = ec2_scenario(total_ips=512, seed=3, duration_days=10)
        result = Campaign(scenario).run(scan_days=[0, 5])
        assert result.round_count == 2

    def test_simulation_config_fast(self):
        config = simulation_config()
        assert config.scan.probes_per_second >= 1e9
        assert config.scan.probe_timeout == 2.0   # paper semantics kept

    def test_probe_budget_respected(self, ec2_campaign):
        """Politeness audit: at most 3 probes and 2 GETs per IP/round."""
        transport = ec2_campaign.scenario.transport
        targets = len(ec2_campaign.scenario.targets)
        rounds = ec2_campaign.round_count
        assert transport.probe_count <= targets * rounds * 3
        responsive_total = sum(s.responsive for s in ec2_campaign.summaries)
        assert transport.get_count <= responsive_total * 2


class TestDeterminism:
    def test_same_seed_same_campaign(self):
        def run():
            scenario = ec2_scenario(total_ips=512, seed=9, duration_days=12)
            return Campaign(scenario).run()

        a, b = run(), run()
        assert [s.responsive for s in a.summaries] == [
            s.responsive for s in b.summaries
        ]
        assert [s.available for s in a.summaries] == [
            s.available for s in b.summaries
        ]

    @pytest.mark.parametrize("builder", [ec2_scenario, azure_scenario])
    def test_scenarios_construct(self, builder):
        scenario = builder(total_ips=512, seed=4)
        assert scenario.simulation.occupied_count() > 0
