"""Tests for the software ecosystem census (§8.3)."""

from __future__ import annotations

import pytest

from repro.analysis.census import SoftwareCensus, server_family

from _obs import make_dataset, obs


class TestServerFamily:
    @pytest.mark.parametrize(
        "header,family",
        [
            ("Apache/2.2.22", "Apache"),
            ("Apache-Coyote/1.1", "Apache"),
            ("apache", "Apache"),
            ("nginx/1.4.1", "nginx"),
            ("Microsoft-IIS/8.0", "Microsoft-IIS"),
            ("MochiWeb/1.0 (Any of you quaids got a smint?)", "MochiWeb"),
            ("lighttpd/1.4.28", "lighttpd"),
            ("SomeCustom/9.9", "SomeCustom"),
        ],
    )
    def test_families(self, header, family):
        assert server_family(header) == family


class TestSoftwareCensus:
    def build_dataset(self):
        rows = [
            obs(1, 0, title="a", server="Apache/2.2.22",
                powered_by="PHP/5.3.10", simhash=1),
            obs(2, 0, title="b", server="Apache/2.4.7", simhash=2),
            obs(3, 0, title="c", server="nginx/1.4.1",
                powered_by="Express", simhash=3),
            obs(4, 0, title="d", server="Microsoft-IIS/6.0",
                powered_by="ASP.NET", simhash=4),
            obs(5, 0, title="e", simhash=5,
                template="WordPress 3.5.1"),
            obs(6, 0, title="f", simhash=6,
                template="WordPress 3.7.1"),
            obs(7, 0, title="g", simhash=7,
                template="Drupal 7 (http://drupal.org)"),
            # Unavailable row must be ignored entirely.
            obs(8, 0, title="x", server="Apache/1.3.42",
                status_code=None, has_page=False),
        ]
        return make_dataset(rows)

    def test_server_identification_share(self):
        report = SoftwareCensus(self.build_dataset()).report()
        # 4 of 7 available rows carry a Server header.
        assert report.server_identified_share == pytest.approx(4 / 7 * 100)

    def test_family_shares(self):
        report = SoftwareCensus(self.build_dataset()).report()
        assert report.server_family_shares["Apache"] == pytest.approx(50.0)
        assert report.server_family_shares["nginx"] == pytest.approx(25.0)

    def test_backends(self):
        report = SoftwareCensus(self.build_dataset()).report()
        assert report.backend_shares["PHP"] == pytest.approx(100 / 3)
        assert report.php_version_shares == {"PHP/5.3.10": 100.0}

    def test_vulnerable_servers_flagged(self):
        report = SoftwareCensus(self.build_dataset()).report()
        assert report.vulnerable_server_ips["Apache/2.2.22"] == 1
        assert report.vulnerable_server_ips["Microsoft-IIS/6.0"] == 1
        assert "Apache/2.4.7" not in report.vulnerable_server_ips

    def test_wordpress_vulnerability_share(self):
        """WordPress below 3.6 is vulnerable (CVE-2013-4338 family)."""
        report = SoftwareCensus(self.build_dataset()).report()
        assert report.wordpress_vulnerable_share == pytest.approx(50.0)

    def test_template_shares(self):
        report = SoftwareCensus(self.build_dataset()).report()
        assert report.template_shares["WordPress"] == pytest.approx(200 / 3)
        assert report.template_shares["Drupal"] == pytest.approx(100 / 3)


class TestCensusOnCampaign:
    def test_ec2_shape(self, ec2_dataset):
        """§8.3's EC2 rankings: Apache > nginx > IIS; PHP leads
        backends; WordPress leads templates; stale versions common."""
        report = SoftwareCensus(ec2_dataset).report()
        shares = report.server_family_shares
        assert shares["Apache"] > shares["nginx"] > shares["Microsoft-IIS"]
        assert report.server_identified_share > 70.0
        backends = report.backend_shares
        php_share = sum(v for k, v in backends.items() if k.startswith("PHP"))
        assert php_share > backends.get("ASP.NET", 0.0)
        if len(report.wordpress_version_counts) >= 3:
            # Needs enough distinct WordPress sites to be meaningful;
            # the tiny test campaign may draw only one or two.
            assert report.wordpress_vulnerable_share > 20.0
        assert report.top_servers(3)

    def test_azure_shape(self, azure_campaign):
        """§8.3: IIS dominates Azure; ASP.NET leads backends."""
        report = SoftwareCensus(azure_campaign.dataset).report()
        shares = report.server_family_shares
        assert shares["Microsoft-IIS"] > 60.0
        assert report.backend_shares.get("ASP.NET", 0) > 50.0
