"""Tests for third-party tracker fingerprinting and GA accounts (§8.3)."""

from __future__ import annotations

import pytest

from repro.analysis.trackers import (
    TRACKER_FINGERPRINTS,
    TrackerAnalyzer,
    analyze_ga_accounts,
)


class TestFingerprints:
    def test_table20_trackers_present(self):
        expected = {
            "google-analytics", "facebook", "twitter", "doubleclick",
            "quantserve", "scorecardresearch", "imrworldwide",
            "serving-sys", "atdmt", "yieldmanager",
        }
        assert expected <= set(TRACKER_FINGERPRINTS)

    def test_fingerprints_are_urls(self):
        for name, fingerprint in TRACKER_FINGERPRINTS.items():
            if name == "google-analytics":
                continue
            assert fingerprint.startswith("http://")


class TestTrackerAnalyzer:
    def test_scan_last_round(self, ec2_campaign, ec2_clustering):
        analyzer = TrackerAnalyzer(ec2_campaign.store, ec2_clustering)
        last_round = ec2_campaign.dataset.round_ids[-1]
        hits = analyzer.scan_round(last_round)
        assert "google-analytics" in hits.ips_by_tracker
        table = hits.table(10)
        assert table[0][0] == "google-analytics"   # Table 20's leader
        counts = [ips for _, ips, _ in table]
        assert counts == sorted(counts, reverse=True)

    def test_clusters_attached(self, ec2_campaign, ec2_clustering):
        analyzer = TrackerAnalyzer(ec2_campaign.store, ec2_clustering)
        last_round = ec2_campaign.dataset.round_ids[-1]
        hits = analyzer.scan_round(last_round)
        for name, ips, clusters in hits.table(10):
            assert clusters <= ips

    def test_multi_tracker_shares(self, ec2_campaign):
        analyzer = TrackerAnalyzer(ec2_campaign.store)
        hits = analyzer.scan_round(ec2_campaign.dataset.round_ids[-1])
        shares = hits.multi_tracker_shares()
        assert shares
        assert sum(shares.values()) == pytest.approx(100.0)
        # §8.3: most tracker-using pages embed a single tracker.
        assert shares.get(1, 0.0) > 50.0

    def test_ga_ids_collected(self, ec2_campaign):
        analyzer = TrackerAnalyzer(ec2_campaign.store)
        ids = analyzer.ga_ids()
        assert ids
        assert all(ga_id.startswith("UA-") for ga_id in ids)


class TestGaAccounts:
    def test_account_split(self):
        stats = analyze_ga_accounts(
            {
                "UA-10000-1": {1},
                "UA-10000-2": {2},
                "UA-20000-1": {3, 4},
                "UA-30000-1": {5},
                "not-a-ga-id": {6},
            }
        )
        assert stats.accounts == 3
        assert stats.unique_ids == 5
        assert stats.unique_ips == 5
        assert stats.profile_distribution[1] == pytest.approx(200 / 3)
        assert stats.profile_distribution[2] == pytest.approx(100 / 3)

    def test_campaign_accounts(self, ec2_campaign):
        analyzer = TrackerAnalyzer(ec2_campaign.store)
        stats = analyze_ga_accounts(analyzer.ga_ids())
        assert stats.accounts > 0
        # §8.3: ~93.5% of accounts use one profile.
        assert stats.single_profile_share() > 60.0
