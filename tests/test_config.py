"""Tests for platform configuration and its paper defaults."""

from __future__ import annotations

import pytest

from repro.core.config import FetchConfig, PlatformConfig, ScanConfig


class TestScanConfig:
    def test_paper_defaults(self):
        config = ScanConfig()
        assert config.probe_timeout == 2.0
        assert config.probes_per_second == 250.0
        assert config.retries == 0
        assert config.web_ports == (80, 443)
        assert config.fallback_ports == (22,)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"probe_timeout": 0},
            {"probe_timeout": -1},
            {"probes_per_second": 0},
            {"concurrency": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ScanConfig(**kwargs)


class TestFetchConfig:
    def test_paper_defaults(self):
        config = FetchConfig()
        assert config.workers == 250
        assert config.timeout == 10.0
        assert config.max_body_bytes == 512 * 1024
        assert config.respect_robots

    def test_user_agent_has_contact(self):
        """§7: the UA carries a research note with a contact address."""
        user_agent = FetchConfig().user_agent
        assert "contact" in user_agent
        assert "opt out" in user_agent

    @pytest.mark.parametrize(
        "kwargs",
        [{"workers": 0}, {"timeout": 0}, {"max_body_bytes": 0}],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FetchConfig(**kwargs)

    def test_should_download_text(self):
        config = FetchConfig()
        assert config.should_download("text/html")
        assert config.should_download("text/plain; charset=utf-8")
        assert config.should_download("TEXT/XML")

    def test_should_not_download_binary(self):
        """§4: application/audio/image/video bodies are never stored."""
        config = FetchConfig()
        assert not config.should_download("image/png")
        assert not config.should_download("video/mp4")
        assert not config.should_download("audio/mpeg")
        assert not config.should_download("application/octet-stream")

    def test_text_like_application_types_allowed(self):
        """Table 5 shows application/json and application/xml stored."""
        config = FetchConfig()
        assert config.should_download("application/json")
        assert config.should_download("application/xml")
        assert config.should_download("application/xhtml+xml")

    def test_missing_content_type_downloaded(self):
        assert FetchConfig().should_download("")


class TestPlatformConfig:
    def test_default_composition(self):
        config = PlatformConfig()
        assert config.scan.probe_timeout == 2.0
        assert config.fetch.workers == 250
        assert config.blacklist == frozenset()
