"""Behavior pins for the shared jittered-backoff helper.

``core/backoff.py`` consolidated three formerly independent
implementations (fetch retry, store busy-retry, worker partition
reassignment).  These tests re-state each call site's *original*
formula literally and assert the shared helper (and the call site
through its public seam) still produces the exact same delays — the
refactor must not shift a single retry schedule.
"""

from __future__ import annotations

import random

import pytest

from repro.core.backoff import backoff_delay, retry_after_seconds
from repro.core.config import FetchConfig
from repro.core.fetcher import Fetcher


class TestBackoffDelay:
    def test_exponential_growth_and_cap(self):
        delays = [
            backoff_delay(a, base=0.1, cap=2.0, jitter_min=1.0,
                          jitter_max=1.0)
            for a in range(8)
        ]
        assert delays[:5] == [
            pytest.approx(0.1), pytest.approx(0.2), pytest.approx(0.4),
            pytest.approx(0.8), pytest.approx(1.6),
        ]
        assert delays[5:] == [pytest.approx(2.0)] * 3  # capped

    def test_keyed_jitter_is_deterministic(self):
        a = backoff_delay(3, base=0.5, cap=30.0, key="k:1")
        b = backoff_delay(3, base=0.5, cap=30.0, key="k:1")
        c = backoff_delay(3, base=0.5, cap=30.0, key="k:2")
        assert a == b
        assert a != c

    def test_jitter_band_is_respected(self):
        for attempt in range(6):
            for key in ("x", "y", "z"):
                raw = min(0.5 * 2 ** attempt, 8.0)
                delay = backoff_delay(attempt, base=0.5, cap=8.0, key=key,
                                      jitter_min=0.5, jitter_max=1.5)
                assert 0.5 * raw <= delay <= 1.5 * raw

    def test_caller_rng_draws_from_that_rng(self):
        rng = random.Random(42)
        expected_draw = random.Random(42).random()
        delay = backoff_delay(2, base=0.05, cap=1.0, rng=rng)
        assert delay == pytest.approx(
            min(0.05 * 4, 1.0) * (0.5 + expected_draw)
        )

    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            backoff_delay(-1, base=0.1, cap=1.0)
        with pytest.raises(ValueError):
            backoff_delay(0, base=-0.1, cap=1.0)
        with pytest.raises(ValueError):
            backoff_delay(0, base=0.1, cap=1.0, jitter_min=2.0,
                          jitter_max=1.0)


class TestCallSitePins:
    """Each former implementation, restated literally, must match."""

    def test_fetcher_formula_unchanged(self):
        config = FetchConfig()
        fetcher = Fetcher(transport=None, config=config)
        for ip in (0, 167772161, 4294967295):
            for attempt in range(5):
                # Original Fetcher._backoff_delay, verbatim:
                base = config.retry_base_delay * (2 ** attempt)
                base = min(base, config.retry_max_delay)
                jitter = random.Random(
                    f"fetch-retry:{ip}:{attempt}"
                ).random()
                legacy = base * (0.5 + 0.5 * jitter)
                assert fetcher._backoff_delay(ip, attempt) == pytest.approx(
                    legacy, rel=0, abs=0
                )

    def test_worker_formula_unchanged(self):
        for round_id, partition, attempt in [
            (1, 0, 0), (1, 3, 2), (12, 7, 5),
        ]:
            # Original WorkerSupervisor._backoff_delay, verbatim
            # (retry_backoff_base=0.5, retry_backoff_max=8.0 defaults
            # in WorkerConfig):
            base = min(0.5 * (2 ** attempt), 8.0)
            jitter = random.Random(
                f"backoff:{round_id}:{partition}:{attempt}"
            ).random()
            legacy = base * (0.5 + jitter)
            assert backoff_delay(
                attempt, base=0.5, cap=8.0,
                key=f"backoff:{round_id}:{partition}:{attempt}",
            ) == pytest.approx(legacy, rel=0, abs=0)

    def test_store_busy_retry_formula_unchanged(self):
        # Original MeasurementStore._commit loop: delay starts at
        # busy_backoff_base, sleeps delay * (0.5 + rng.random()), then
        # doubles capped at busy_backoff_max — i.e. attempt N sleeps
        # min(base * 2**N, max) scaled by the N-th draw of the shared
        # instance RNG.
        legacy_rng = random.Random(7)
        new_rng = random.Random(7)
        base, cap = 0.05, 1.0
        delay = base
        for attempt in range(8):
            legacy = delay * (0.5 + legacy_rng.random())
            delay = min(delay * 2, cap)
            assert backoff_delay(
                attempt, base=base, cap=cap, rng=new_rng
            ) == pytest.approx(legacy, rel=0, abs=0)


class TestRetryAfter:
    def test_integral_and_at_least_one_second(self):
        for attempt in range(10):
            hint = retry_after_seconds(
                attempt, base=0.5, cap=8.0, key=f"shed:{attempt}"
            )
            assert isinstance(hint, int)
            assert 1 <= hint <= 12  # cap 8s * jitter 1.5, ceiled

    def test_grows_with_attempts(self):
        early = retry_after_seconds(0, base=0.5, cap=8.0, key="s")
        late = retry_after_seconds(9, base=0.5, cap=8.0, key="s")
        assert late >= early
