"""Unit and property tests for the 96-bit simhash (§4)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.simhash import (
    HASH_BITS,
    hamming_distance,
    shingles,
    simhash,
    tokenize,
)

WORDS = "alpha beta gamma delta epsilon zeta eta theta iota kappa".split()


def make_text(rng: random.Random, length: int) -> str:
    return " ".join(rng.choice(WORDS) for _ in range(length))


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Hello, World! 42") == ["hello", "world", "42"]

    def test_strips_html_tags(self):
        tokens = tokenize("<html><body>Hello</body></html>")
        assert "hello" in tokens
        assert "<html>" not in tokens

    def test_keeps_markup_when_asked(self):
        tokens = tokenize("<b>x</b>", strip_markup=False)
        assert tokens == ["b", "x", "b"]

    def test_empty(self):
        assert tokenize("") == []


class TestShingles:
    def test_width_three(self):
        assert list(shingles(["a", "b", "c", "d"], 3)) == ["a b c", "b c d"]

    def test_short_document_single_shingle(self):
        assert list(shingles(["a", "b"], 3)) == ["a b"]

    def test_empty(self):
        assert list(shingles([], 3)) == []

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            list(shingles(["a"], 0))


class TestSimhash:
    def test_deterministic(self):
        text = "the quick brown fox jumps over the lazy dog"
        assert simhash(text) == simhash(text)

    def test_within_bit_range(self):
        value = simhash("some web page content here")
        assert 0 <= value < (1 << HASH_BITS)

    def test_empty_is_zero(self):
        assert simhash("") == 0
        assert simhash("<html></html>") == 0

    def test_identical_pages_distance_zero(self):
        page = "<html><body>welcome to my site</body></html>"
        assert hamming_distance(simhash(page), simhash(page)) == 0

    def test_small_edit_small_distance(self):
        rng = random.Random(5)
        base_words = [rng.choice(WORDS) for _ in range(300)]
        edited = list(base_words)
        edited[150] = "changed"
        distance = hamming_distance(
            simhash(" ".join(base_words)), simhash(" ".join(edited))
        )
        assert distance <= 10

    def test_unrelated_pages_far_apart(self):
        rng = random.Random(9)
        distances = []
        for _ in range(10):
            a = make_text(rng, 200) + " unique-a"
            b = make_text(rng, 200) + " unique-b"
            distances.append(hamming_distance(simhash(a), simhash(b)))
        assert min(distances) > 10

    @given(st.integers(0, (1 << HASH_BITS) - 1))
    def test_hamming_identity(self, value):
        assert hamming_distance(value, value) == 0

    @given(
        st.integers(0, (1 << HASH_BITS) - 1),
        st.integers(0, (1 << HASH_BITS) - 1),
    )
    def test_hamming_symmetry(self, a, b):
        assert hamming_distance(a, b) == hamming_distance(b, a)

    @given(
        st.integers(0, (1 << HASH_BITS) - 1),
        st.integers(0, (1 << HASH_BITS) - 1),
        st.integers(0, (1 << HASH_BITS) - 1),
    )
    def test_hamming_triangle_inequality(self, a, b, c):
        assert hamming_distance(a, c) <= (
            hamming_distance(a, b) + hamming_distance(b, c)
        )

    @given(
        st.integers(0, (1 << HASH_BITS) - 1),
        st.integers(0, (1 << HASH_BITS) - 1),
    )
    def test_hamming_bounded(self, a, b):
        assert 0 <= hamming_distance(a, b) <= HASH_BITS

    @settings(max_examples=25)
    @given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                   min_size=0, max_size=500))
    def test_simhash_total_function(self, text):
        value = simhash(text)
        assert 0 <= value < (1 << HASH_BITS)
        assert simhash(text) == value
