"""Unit and property tests for the 96-bit simhash (§4)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.simhash import (
    HASH_BITS,
    hamming_distance,
    shingles,
    simhash,
    tokenize,
)

WORDS = "alpha beta gamma delta epsilon zeta eta theta iota kappa".split()


def make_text(rng: random.Random, length: int) -> str:
    return " ".join(rng.choice(WORDS) for _ in range(length))


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Hello, World! 42") == ["hello", "world", "42"]

    def test_strips_html_tags(self):
        tokens = tokenize("<html><body>Hello</body></html>")
        assert "hello" in tokens
        assert "<html>" not in tokens

    def test_keeps_markup_when_asked(self):
        tokens = tokenize("<b>x</b>", strip_markup=False)
        assert tokens == ["b", "x", "b"]

    def test_empty(self):
        assert tokenize("") == []


class TestShingles:
    def test_width_three(self):
        assert list(shingles(["a", "b", "c", "d"], 3)) == ["a b c", "b c d"]

    def test_short_document_single_shingle(self):
        assert list(shingles(["a", "b"], 3)) == ["a b"]

    def test_empty(self):
        assert list(shingles([], 3)) == []

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            list(shingles(["a"], 0))


class TestSimhash:
    def test_deterministic(self):
        text = "the quick brown fox jumps over the lazy dog"
        assert simhash(text) == simhash(text)

    def test_within_bit_range(self):
        value = simhash("some web page content here")
        assert 0 <= value < (1 << HASH_BITS)

    def test_empty_is_zero(self):
        assert simhash("") == 0
        assert simhash("<html></html>") == 0

    def test_identical_pages_distance_zero(self):
        page = "<html><body>welcome to my site</body></html>"
        assert hamming_distance(simhash(page), simhash(page)) == 0

    def test_small_edit_small_distance(self):
        rng = random.Random(5)
        base_words = [rng.choice(WORDS) for _ in range(300)]
        edited = list(base_words)
        edited[150] = "changed"
        distance = hamming_distance(
            simhash(" ".join(base_words)), simhash(" ".join(edited))
        )
        assert distance <= 10

    def test_unrelated_pages_far_apart(self):
        rng = random.Random(9)
        distances = []
        for _ in range(10):
            a = make_text(rng, 200) + " unique-a"
            b = make_text(rng, 200) + " unique-b"
            distances.append(hamming_distance(simhash(a), simhash(b)))
        assert min(distances) > 10

    @given(st.integers(0, (1 << HASH_BITS) - 1))
    def test_hamming_identity(self, value):
        assert hamming_distance(value, value) == 0

    @given(
        st.integers(0, (1 << HASH_BITS) - 1),
        st.integers(0, (1 << HASH_BITS) - 1),
    )
    def test_hamming_symmetry(self, a, b):
        assert hamming_distance(a, b) == hamming_distance(b, a)

    @given(
        st.integers(0, (1 << HASH_BITS) - 1),
        st.integers(0, (1 << HASH_BITS) - 1),
        st.integers(0, (1 << HASH_BITS) - 1),
    )
    def test_hamming_triangle_inequality(self, a, b, c):
        assert hamming_distance(a, c) <= (
            hamming_distance(a, b) + hamming_distance(b, c)
        )

    @given(
        st.integers(0, (1 << HASH_BITS) - 1),
        st.integers(0, (1 << HASH_BITS) - 1),
    )
    def test_hamming_bounded(self, a, b):
        assert 0 <= hamming_distance(a, b) <= HASH_BITS

    @settings(max_examples=25)
    @given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                   min_size=0, max_size=500))
    def test_simhash_total_function(self, text):
        value = simhash(text)
        assert 0 <= value < (1 << HASH_BITS)
        assert simhash(text) == value


# Edge fingerprints for the packed-kernel equivalence checks: zeros,
# all-ones, single bits at word boundaries, and half-word patterns.
EDGE_PATTERNS = [
    0,
    (1 << HASH_BITS) - 1,
    1,
    1 << 63,
    1 << 64,
    1 << (HASH_BITS - 1),
    (1 << 64) - 1,
    ((1 << 32) - 1) << 64,
    0x5555_5555_5555_5555_5555_5555,
    0xAAAA_AAAA_AAAA_AAAA_AAAA_AAAA,
]


class TestPackedKernels:
    """The numpy popcount kernels must match the scalar
    :func:`hamming_distance` bit for bit."""

    def setup_method(self):
        from repro.core.simhash import numpy_available

        if not numpy_available():
            pytest.skip("numpy >= 2.0 not available")

    def test_pack_roundtrip_words(self):
        from repro.core.simhash import HASH_WORDS, pack_hashes

        packed = pack_hashes(EDGE_PATTERNS)
        assert packed.shape == (len(EDGE_PATTERNS), HASH_WORDS)
        for row, value in zip(packed, EDGE_PATTERNS):
            rebuilt = int(row[0]) | (int(row[1]) << 64)
            assert rebuilt == value

    def test_rows_kernel_on_edge_patterns(self):
        from repro.core.simhash import hamming_rows, pack_hashes

        pairs = [(a, b) for a in EDGE_PATTERNS for b in EDGE_PATTERNS]
        left = pack_hashes([a for a, _ in pairs])
        right = pack_hashes([b for _, b in pairs])
        got = hamming_rows(left, right).tolist()
        want = [hamming_distance(a, b) for a, b in pairs]
        assert got == want

    def test_cross_kernel_on_edge_patterns(self):
        from repro.core.simhash import hamming_cross, pack_hashes

        packed = pack_hashes(EDGE_PATTERNS)
        matrix = hamming_cross(packed, packed)
        for i, a in enumerate(EDGE_PATTERNS):
            for j, b in enumerate(EDGE_PATTERNS):
                assert int(matrix[i, j]) == hamming_distance(a, b)

    @given(st.lists(st.integers(0, (1 << HASH_BITS) - 1),
                    min_size=1, max_size=40))
    @settings(max_examples=40)
    def test_rows_kernel_fuzz(self, values):
        from repro.core.simhash import hamming_rows, pack_hashes

        rotated = values[1:] + values[:1]
        got = hamming_rows(pack_hashes(values), pack_hashes(rotated)).tolist()
        want = [hamming_distance(a, b) for a, b in zip(values, rotated)]
        assert got == want

    @given(st.lists(st.integers(0, (1 << HASH_BITS) - 1),
                    min_size=1, max_size=16),
           st.lists(st.integers(0, (1 << HASH_BITS) - 1),
                    min_size=1, max_size=16))
    @settings(max_examples=25)
    def test_cross_kernel_fuzz(self, left, right):
        from repro.core.simhash import hamming_cross, pack_hashes

        matrix = hamming_cross(pack_hashes(left), pack_hashes(right))
        assert matrix.shape == (len(left), len(right))
        for i, a in enumerate(left):
            for j, b in enumerate(right):
                assert int(matrix[i, j]) == hamming_distance(a, b)


class TestNoNumpyKernels:
    """Without numpy the kernels refuse loudly and the gate reports it;
    algorithm callers must then take their scalar fallbacks."""

    def test_kernels_raise_without_numpy(self, monkeypatch):
        import importlib

        simhash_mod = importlib.import_module("repro.core.simhash")
        monkeypatch.setattr(simhash_mod, "_np", None)
        assert not simhash_mod.numpy_available()
        with pytest.raises(RuntimeError):
            simhash_mod.pack_hashes([1, 2, 3])
        with pytest.raises(RuntimeError):
            simhash_mod.hamming_rows(None, None)
        with pytest.raises(RuntimeError):
            simhash_mod.hamming_cross(None, None)

    def test_scalar_distance_unaffected(self, monkeypatch):
        import importlib

        simhash_mod = importlib.import_module("repro.core.simhash")
        monkeypatch.setattr(simhash_mod, "_np", None)
        assert simhash_mod.hamming_distance(0, (1 << HASH_BITS) - 1) == \
            HASH_BITS
