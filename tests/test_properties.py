"""Cross-cutting property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloudsim.instances import IpPool
from repro.core.records import (
    FetchResult,
    FetchStatus,
    PageFeatures,
    ProbeOutcome,
    ProbeStatus,
    RoundRecord,
)
from repro.core.store import MeasurementStore

# ---------------------------------------------------------------------------
# strategies

_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126,
                           exclude_characters="#\n"),
    min_size=0, max_size=40,
)

_ports = st.frozensets(st.sampled_from([22, 80, 443]), min_size=1)


@st.composite
def round_records(draw):
    ip = draw(st.integers(1, 2**32 - 1))
    ports = draw(_ports)
    has_body = draw(st.booleans())
    body = draw(_text) + "x" if has_body else None
    features = None
    if has_body:
        features = PageFeatures(
            title=draw(_text) or "unknown",
            server=draw(_text) or "unknown",
            keywords=draw(_text) or "unknown",
            simhash=draw(st.integers(0, 2**96 - 1)),
            html_length=len(body),
        )
    return RoundRecord(
        ip=ip,
        round_id=draw(st.integers(1, 99)),
        timestamp=draw(st.integers(0, 365)),
        probe=ProbeOutcome(ip=ip, status=ProbeStatus.RESPONSIVE,
                           open_ports=ports),
        fetch=FetchResult(
            ip=ip,
            status=FetchStatus.OK if has_body else FetchStatus.ERROR,
            url=f"http://host-{ip}/",
            status_code=draw(st.sampled_from([200, 301, 404, 500, None])),
            headers={"Content-Type": "text/html"} if has_body else {},
            body=body,
            error=None if has_body else "connection reset",
        ),
        features=features,
        ssh_banner=draw(st.one_of(st.none(),
                                  st.just("SSH-2.0-OpenSSH_5.9"))),
    )


class TestRecordRoundTrip:
    @settings(max_examples=60)
    @given(round_records())
    def test_to_row_from_row_identity(self, record):
        restored = RoundRecord.from_row(record.to_row())
        assert restored.ip == record.ip
        assert restored.round_id == record.round_id
        assert restored.timestamp == record.timestamp
        assert restored.probe == record.probe
        assert restored.fetch.status == record.fetch.status
        assert restored.fetch.status_code == record.fetch.status_code
        assert restored.fetch.body == record.fetch.body
        assert restored.features == record.features
        assert restored.ssh_banner == record.ssh_banner

    @settings(max_examples=20)
    @given(st.lists(round_records(), min_size=1, max_size=10,
                    unique_by=lambda r: r.ip))
    def test_store_round_trip(self, records):
        normalised = [
            RoundRecord(
                ip=r.ip, round_id=1, timestamp=0, probe=r.probe,
                fetch=r.fetch, features=r.features, ssh_banner=r.ssh_banner,
            )
            for r in records
        ]
        store = MeasurementStore()
        store.write_round(1, 0, 100, normalised)
        restored = {r.ip: r for r in store.records(1)}
        assert set(restored) == {r.ip for r in normalised}
        for record in normalised:
            assert restored[record.ip].features == record.features
            assert restored[record.ip].probe.open_ports == \
                record.probe.open_ports
        store.close()


class TestIpPoolProperties:
    @settings(max_examples=40)
    @given(
        st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=40,
                 unique=True),
        st.lists(st.booleans(), max_size=60),
        st.integers(0, 2**31),
    )
    def test_conservation(self, addresses, operations, seed):
        """Acquire/release never loses, duplicates, or invents IPs."""
        pool = IpPool({"classic": list(addresses)}, random.Random(seed))
        held: set[int] = set()
        for acquire in operations:
            if acquire:
                address = pool.acquire("classic")
                if address is not None:
                    assert address not in held
                    assert address in addresses
                    held.add(address)
            elif held:
                address = held.pop()
                pool.release(address)
            assert pool.available("classic") == len(addresses) - len(held)

    @settings(max_examples=20)
    @given(st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=20,
                    unique=True))
    def test_exhaustion_then_refill(self, addresses):
        pool = IpPool({"classic": list(addresses)}, random.Random(0))
        taken = [pool.acquire("classic") for _ in addresses]
        assert sorted(taken) == sorted(addresses)
        assert pool.acquire("classic") is None
        for address in taken:
            pool.release(address)
        assert pool.available("classic") == len(addresses)
