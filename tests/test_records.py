"""Tests for pipeline record types and their persistence round-trip."""

from __future__ import annotations

from repro.core.records import (
    FetchResult,
    FetchStatus,
    PageFeatures,
    Port,
    ProbeOutcome,
    ProbeStatus,
    RoundRecord,
)


def outcome(ports) -> ProbeOutcome:
    status = ProbeStatus.RESPONSIVE if ports else ProbeStatus.UNRESPONSIVE
    return ProbeOutcome(ip=1, status=status, open_ports=frozenset(ports))


class TestProbeOutcome:
    def test_port_profiles(self):
        assert outcome({80}).port_profile() == "80-only"
        assert outcome({443}).port_profile() == "443-only"
        assert outcome({80, 443}).port_profile() == "80&443"
        assert outcome({22}).port_profile() == "22-only"
        assert outcome({80, 22}).port_profile() == "80-only"
        assert outcome(set()).port_profile() == "none"

    def test_scheme_prefers_http(self):
        """§4: http:// when port 80 was open (even alongside 443)."""
        assert outcome({80, 443}).scheme == "http"
        assert outcome({80}).scheme == "http"
        assert outcome({443}).scheme == "https"
        assert outcome({22}).scheme is None

    def test_wants_fetch(self):
        assert outcome({80}).wants_fetch
        assert outcome({443}).wants_fetch
        assert not outcome({22}).wants_fetch

    def test_skipped_not_responsive(self):
        skipped = ProbeOutcome(ip=1, status=ProbeStatus.SKIPPED)
        assert not skipped.responsive


class TestFetchResult:
    def test_available_requires_response(self):
        ok = FetchResult(ip=1, status=FetchStatus.OK, status_code=404)
        assert ok.available
        error = FetchResult(ip=1, status=FetchStatus.ERROR, error="timeout")
        assert not error.available
        robots = FetchResult(ip=1, status=FetchStatus.ROBOTS_DISALLOWED)
        assert not robots.available

    def test_status_classes(self):
        def result(code):
            return FetchResult(ip=1, status=FetchStatus.OK, status_code=code)

        assert result(200).status_class() == "200"
        assert result(404).status_class() == "4xx"
        assert result(503).status_class() == "5xx"
        assert result(301).status_class() == "other"
        assert FetchResult(ip=1, status=FetchStatus.ERROR).status_class() == "other"

    def test_content_type_normalised(self):
        result = FetchResult(
            ip=1,
            status=FetchStatus.OK,
            status_code=200,
            headers={"Content-Type": "TEXT/HTML; charset=utf-8"},
        )
        assert result.content_type == "text/html"


class TestRoundRecordRoundTrip:
    def make_record(self, with_features: bool) -> RoundRecord:
        probe = ProbeOutcome(
            ip=42, status=ProbeStatus.RESPONSIVE, open_ports=frozenset({80, 443})
        )
        fetch = FetchResult(
            ip=42,
            status=FetchStatus.OK,
            url="http://0.0.0.42/",
            status_code=200,
            headers={"Server": "nginx/1.4.1", "Content-Type": "text/html"},
            body="<html><title>hi</title></html>" if with_features else None,
        )
        features = None
        if with_features:
            features = PageFeatures(
                title="hi", server="nginx/1.4.1", simhash=123456789
            )
        return RoundRecord(
            ip=42, round_id=3, timestamp=9, probe=probe, fetch=fetch,
            features=features,
        )

    def test_round_trip_with_features(self):
        record = self.make_record(with_features=True)
        restored = RoundRecord.from_row(record.to_row())
        assert restored.ip == record.ip
        assert restored.probe.open_ports == record.probe.open_ports
        assert restored.fetch.status_code == 200
        assert restored.fetch.headers["Server"] == "nginx/1.4.1"
        assert restored.features == record.features

    def test_round_trip_without_features(self):
        """Rows without stored bodies must not fabricate features."""
        record = self.make_record(with_features=False)
        restored = RoundRecord.from_row(record.to_row())
        assert restored.features is None

    def test_port_enum_values(self):
        assert Port.HTTP == 80
        assert Port.HTTPS == 443
        assert Port.SSH == 22
