"""Tests for the service model: elasticity targets, malicious behaviour."""

from __future__ import annotations

import pytest

from repro.cloudsim.services import (
    Elasticity,
    MaliciousBehavior,
    PortProfile,
    ServiceSpec,
    target_size,
)


def make_service(elasticity: Elasticity, base_size: int = 4,
                 **overrides) -> ServiceSpec:
    fields = dict(
        service_id=1,
        cloud="EC2",
        category="web",
        regions=("east",),
        networking="classic",
        base_size=base_size,
        elasticity=elasticity,
        birth_day=-10,
        death_day=None,
        port_profile=PortProfile.HTTP_ONLY,
        profile=None,
        stack=None,
        step_day=30,
        step2_day=60,
        step_factor=1.5,
    )
    fields.update(overrides)
    return ServiceSpec(**fields)


class TestTargetSize:
    def test_dead_service_zero(self):
        service = make_service(Elasticity.STABLE, death_day=20)
        assert target_size(service, 25) == 0
        assert target_size(service, 19) == 4

    def test_unborn_zero(self):
        service = make_service(Elasticity.STABLE, birth_day=50)
        assert target_size(service, 10) == 0

    def test_stable_constant(self):
        service = make_service(Elasticity.STABLE)
        assert all(target_size(service, d) == 4 for d in range(0, 90, 10))

    def test_step_up(self):
        service = make_service(Elasticity.STEP_UP)
        assert target_size(service, 29) == 4
        assert target_size(service, 30) == 6
        assert target_size(service, 80) == 6

    def test_step_down(self):
        service = make_service(Elasticity.STEP_DOWN)
        assert target_size(service, 29) == 4
        assert target_size(service, 30) == 2

    def test_step_down_singleton_reaches_zero(self):
        service = make_service(Elasticity.STEP_DOWN, base_size=1)
        assert target_size(service, 29) == 1
        assert target_size(service, 31) == 0

    def test_bump(self):
        service = make_service(Elasticity.BUMP)
        assert target_size(service, 10) == 4
        assert target_size(service, 45) == 6
        assert target_size(service, 70) == 4

    def test_dip(self):
        service = make_service(Elasticity.DIP)
        assert target_size(service, 10) == 4
        assert target_size(service, 45) == 2
        assert target_size(service, 70) == 4

    def test_noisy_deterministic_within_week(self):
        service = make_service(Elasticity.NOISY, base_size=10)
        assert target_size(service, 14) == target_size(service, 15)
        values = {target_size(service, d) for d in range(0, 70, 7)}
        assert len(values) > 1  # it does move across weeks
        assert all(v >= 1 for v in values)

    def test_delta_capped(self):
        service = make_service(Elasticity.STEP_UP, base_size=100,
                               step_factor=1.9)
        assert target_size(service, 40) <= 103


class TestPortProfile:
    def test_open_ports(self):
        assert PortProfile.SSH_ONLY.open_ports == {22}
        assert PortProfile.HTTP_ONLY.open_ports == {80, 22}
        assert PortProfile.HTTPS_ONLY.open_ports == {443}
        assert PortProfile.BOTH.open_ports == {80, 443}

    def test_serves_web(self):
        assert not PortProfile.SSH_ONLY.serves_web
        assert PortProfile.HTTP_ONLY.serves_web


class TestMaliciousBehavior:
    def urls(self, count: int) -> tuple[str, ...]:
        return tuple(f"http://evil.example/{i}" for i in range(count))

    def test_type1_constant(self):
        behavior = MaliciousBehavior(kind=1, category="malware",
                                     urls=self.urls(3))
        assert behavior.active_urls(0) == behavior.active_urls(50)

    def test_type2_toggles(self):
        behavior = MaliciousBehavior(kind=2, category="malware",
                                     urls=self.urls(2), toggle_period=5)
        assert behavior.active_urls(0)      # on phase
        assert not behavior.active_urls(5)  # off phase
        assert behavior.active_urls(10)     # on again

    def test_type3_rotates(self):
        behavior = MaliciousBehavior(kind=3, category="malware",
                                     urls=self.urls(9), rotation_period=10)
        first = behavior.active_urls(0)
        later = behavior.active_urls(10)
        assert first and later
        assert first != later

    def test_removal_clears(self):
        behavior = MaliciousBehavior(kind=1, category="malware",
                                     urls=self.urls(2),
                                     removal_day_in_life=20)
        assert behavior.active_urls(19)
        assert behavior.active_urls(20) == ()
        assert behavior.active_urls(90) == ()

    def test_no_urls(self):
        behavior = MaliciousBehavior(kind=1, category="malware", urls=())
        assert behavior.active_urls(0) == ()


class TestServiceSpec:
    def test_alive_window(self):
        service = make_service(Elasticity.STABLE, birth_day=5, death_day=10)
        assert not service.alive_on(4)
        assert service.alive_on(5)
        assert service.alive_on(9)
        assert not service.alive_on(10)

    def test_day_in_life(self):
        service = make_service(Elasticity.STABLE, birth_day=5)
        assert service.day_in_life(12) == 7

    def test_serves_web_needs_profile(self):
        service = make_service(Elasticity.STABLE)
        assert not service.serves_web  # profile is None

    @pytest.mark.parametrize("profile", [PortProfile.SSH_ONLY])
    def test_ssh_only_never_serves_web(self, profile):
        service = make_service(Elasticity.STABLE, port_profile=profile)
        assert not service.serves_web
