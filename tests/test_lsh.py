"""Property/golden tier for banded-LSH simhash clustering.

The indexed path is only allowed to exist because it is *provably*
byte-equivalent to brute force: the band layout guarantees 100% recall
for pairs within the clustering threshold (pigeonhole over
``threshold + 1`` disjoint bands), and every candidate is confirmed
with the exact Hamming kernel.  These properties pin that story:

- candidate generation finds **every** pair at distance ≤ threshold,
  for random corpora and random band parameters;
- ``cluster(exact=False)`` produces the identical ``ClusteringResult``
  partition as ``cluster(exact=True)`` on WhoWas-shaped datasets;
- the multi-threshold profile (one shared index) matches per-threshold
  brute force;
- everything also holds on the no-numpy scalar fallback.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.clustering import WebpageClusterer
from repro.analysis.gap_statistic import (
    cluster_by_threshold,
    cluster_profile,
)
from repro.analysis.lsh import SimhashIndex, band_layout
import importlib

from repro.core.simhash import HASH_BITS, hamming_distance

#: The kernel module itself — ``repro.core``'s ``simhash`` attribute is
#: the *function* re-exported by the package, so go via importlib.
simhash_mod = importlib.import_module("repro.core.simhash")

from _obs import make_dataset, obs

fingerprints = st.integers(0, 2**HASH_BITS - 1)


@st.composite
def corpora(draw, min_size=1, max_bases=8, max_members=5, max_flips=8):
    """Fingerprint populations with planted near-duplicate structure —
    uniform random 96-bit values almost never collide, so perturb a few
    bases to exercise the merge/chaining paths."""
    bases = draw(
        st.lists(fingerprints, min_size=min_size, max_size=max_bases)
    )
    hashes: list[int] = []
    for base in bases:
        for _ in range(draw(st.integers(1, max_members))):
            positions = draw(
                st.lists(st.integers(0, HASH_BITS - 1), max_size=max_flips,
                         unique=True)
            )
            value = base
            for position in positions:
                value ^= 1 << position
            hashes.append(value)
    return hashes


def brute_pairs(hashes, threshold):
    return {
        (i, j)
        for i in range(len(hashes))
        for j in range(i + 1, len(hashes))
        if hamming_distance(hashes[i], hashes[j]) <= threshold
    }


def partition(clusters):
    """Order-insensitive canonical form of a list-of-clusters."""
    return sorted(tuple(sorted(c)) for c in clusters)


def result_partition(result):
    """Canonical form of a ClusteringResult: member sets of the kept
    clusters, member sets of the removed clusters, and the stats row."""
    kept = frozenset(
        frozenset(c.members) for c in result.clusters.values()
    )
    removed = frozenset(
        frozenset(c.members) for c in result.removed.values()
    )
    return kept, removed, result.stats, result.threshold


class TestBandLayout:
    @given(st.integers(0, HASH_BITS - 1))
    def test_layout_partitions_the_bits(self, threshold):
        spans = band_layout(threshold)
        assert len(spans) >= threshold + 1
        covered = []
        for start, width in spans:
            assert width >= 1
            assert width <= 64  # keys must fit one machine word
            covered.extend(range(start, start + width))
        assert covered == list(range(HASH_BITS))

    @given(st.integers(0, 20), st.integers(0, 40))
    def test_extra_bands_allowed(self, threshold, extra):
        bands = min(threshold + 1 + extra, HASH_BITS)
        bands = max(bands, 2)
        spans = band_layout(threshold, bands=bands)
        assert len(spans) == bands

    def test_too_few_bands_rejected(self):
        with pytest.raises(ValueError):
            band_layout(5, bands=4)

    def test_degenerate_threshold_rejected(self):
        with pytest.raises(ValueError):
            band_layout(HASH_BITS)


class TestRecall:
    @given(corpora(), st.integers(0, 12), st.integers(0, 12))
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    def test_candidate_recall_is_total(self, hashes, threshold, extra):
        """For random corpora and random band parameters the index
        reports exactly the brute-force pair set — recall 1.0 by the
        pigeonhole guarantee, precision 1.0 by the exact confirm."""
        bands = max(min(threshold + 1 + extra, HASH_BITS), 2)
        index = SimhashIndex(hashes, threshold, bands=bands)
        lefts, rights, distances = index.matching_pairs()
        found = set(zip(lefts, rights))
        assert found == brute_pairs(hashes, threshold)
        for i, j, d in zip(lefts, rights, distances):
            assert d == hamming_distance(hashes[i], hashes[j])
            assert d <= threshold

    @given(corpora(), st.integers(1, 10))
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    def test_recall_carries_to_smaller_thresholds(self, hashes, threshold):
        """An index built for t answers any t' <= t exactly."""
        index = SimhashIndex(hashes, threshold)
        smaller = threshold // 2
        lefts, rights, _ = index.matching_pairs(smaller)
        assert set(zip(lefts, rights)) == brute_pairs(hashes, smaller)

    def test_larger_threshold_rejected(self):
        index = SimhashIndex([1, 2, 3], 4)
        with pytest.raises(ValueError):
            index.matching_pairs(5)


class TestClusterEquivalence:
    @given(corpora(), st.integers(0, 12))
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    def test_indexed_partition_equals_exact(self, hashes, threshold):
        exact = cluster_by_threshold(hashes, threshold, exact=True)
        indexed = cluster_by_threshold(hashes, threshold, exact=False)
        assert partition(exact) == partition(indexed)

    @given(corpora(min_size=2), st.lists(st.integers(0, 12), min_size=1,
                                         max_size=4))
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    def test_profile_matches_per_threshold_brute_force(self, hashes,
                                                       thresholds):
        profile = cluster_profile(hashes, thresholds, exact=False)
        for threshold in set(thresholds):
            expected = cluster_by_threshold(hashes, threshold, exact=True)
            assert partition(profile[threshold]) == partition(expected)

    def test_auto_cutoff_switches_paths(self):
        rng = random.Random(5)
        hashes = [rng.getrandbits(HASH_BITS) for _ in range(40)]
        below = cluster_by_threshold(hashes, 4, exact=None, exact_cutoff=100)
        above = cluster_by_threshold(hashes, 4, exact=None, exact_cutoff=10)
        assert partition(below) == partition(above)


@st.composite
def datasets(draw):
    """WhoWas-shaped observation sets: few feature values (so level-1
    groups overlap), planted simhash structure, multiple rounds per IP
    (so the temporal merge heuristic fires)."""
    titles = ("shop", "blog", UNKNOWN_TITLE)
    servers = ("nginx", "apache")
    bases = draw(st.lists(fingerprints, min_size=1, max_size=4))
    observations = []
    count = draw(st.integers(2, 24))
    for index in range(count):
        base = bases[draw(st.integers(0, len(bases) - 1))]
        positions = draw(
            st.lists(st.integers(0, HASH_BITS - 1), max_size=5, unique=True)
        )
        value = base
        for position in positions:
            value ^= 1 << position
        observations.append(
            obs(
                ip=draw(st.integers(1, 6)),
                round_id=draw(st.integers(0, 3)),
                title=titles[draw(st.integers(0, 2))],
                server=servers[draw(st.integers(0, 1))],
                simhash=value,
            )
        )
    unique = {}
    for o in observations:
        unique[o.key()] = o
    return make_dataset(list(unique.values()))


UNKNOWN_TITLE = "unknown"


class TestClusteringResultEquivalence:
    """`cluster(indexed)` must produce the identical ClusteringResult
    (same cluster membership per round) as `cluster(exact=True)`."""

    @given(datasets(), st.integers(0, 8))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_same_result_on_random_datasets(self, dataset, threshold):
        exact = WebpageClusterer(
            level2_threshold=threshold, exact=True
        ).cluster(dataset)
        indexed = WebpageClusterer(
            level2_threshold=threshold, exact=False, exact_cutoff=0
        ).cluster(dataset)
        assert result_partition(exact) == result_partition(indexed)

    @given(datasets())
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_same_result_with_tuned_threshold(self, dataset):
        """Equivalence also holds when the threshold itself is tuned
        from the population (both paths must tune identically)."""
        exact = WebpageClusterer(exact=True).cluster(dataset)
        indexed = WebpageClusterer(exact=False, exact_cutoff=0).cluster(dataset)
        assert exact.threshold == indexed.threshold
        assert result_partition(exact) == result_partition(indexed)


class TestNoNumpyFallback:
    def test_fallback_matches_vectorized(self, monkeypatch):
        rng = random.Random(11)
        hashes = []
        for _ in range(120):
            base = rng.getrandbits(HASH_BITS)
            hashes.append(base)
            hashes.append(base ^ (1 << rng.randrange(HASH_BITS)))
        with_numpy = partition(cluster_by_threshold(hashes, 4, exact=False))
        with_numpy_exact = partition(cluster_by_threshold(hashes, 4,
                                                          exact=True))
        monkeypatch.setattr(simhash_mod, "_np", None)
        assert not simhash_mod.numpy_available()
        scalar = partition(cluster_by_threshold(hashes, 4, exact=False))
        scalar_exact = partition(cluster_by_threshold(hashes, 4, exact=True))
        assert scalar == with_numpy
        assert scalar_exact == with_numpy_exact

    def test_fallback_full_clusterer(self, monkeypatch):
        rng = random.Random(12)
        observations = []
        for index in range(40):
            base = rng.getrandbits(HASH_BITS)
            observations.append(
                obs(index, 0, title="site", server="nginx", simhash=base)
            )
            observations.append(
                obs(index, 1, title="site", server="nginx",
                    simhash=base ^ (1 << rng.randrange(HASH_BITS)))
            )
        dataset = make_dataset(observations)
        vectorized = result_partition(
            WebpageClusterer(level2_threshold=3, exact=False,
                             exact_cutoff=0).cluster(dataset)
        )
        monkeypatch.setattr(simhash_mod, "_np", None)
        fallback = result_partition(
            WebpageClusterer(level2_threshold=3, exact=False,
                             exact_cutoff=0).cluster(dataset)
        )
        fallback_exact = result_partition(
            WebpageClusterer(level2_threshold=3, exact=True).cluster(dataset)
        )
        assert fallback == vectorized
        assert fallback_exact == vectorized


@pytest.mark.slow
class TestAtScale:
    """Paper-scale corpora: too slow for tier-1, nightly runs them."""

    def test_equivalence_on_large_corpus(self):
        rng = random.Random(99)
        hashes = []
        while len(hashes) < 6000:
            base = rng.getrandbits(HASH_BITS)
            for _ in range(rng.randint(1, 4)):
                value = base
                for position in rng.sample(range(HASH_BITS),
                                           rng.randint(0, 4)):
                    value ^= 1 << position
                hashes.append(value)
        for threshold in (2, 4, 8):
            exact = cluster_by_threshold(hashes, threshold, exact=True)
            indexed = cluster_by_threshold(hashes, threshold, exact=False)
            assert partition(exact) == partition(indexed)

    @given(corpora(max_bases=30, max_members=8), st.integers(0, 16))
    @settings(max_examples=200, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_recall_extended_matrix(self, hashes, threshold):
        index = SimhashIndex(hashes, threshold)
        lefts, rights, _ = index.matching_pairs()
        assert set(zip(lefts, rights)) == brute_pairs(hashes, threshold)
