"""Helpers to build in-memory datasets for analysis tests."""

from __future__ import annotations

from repro.analysis.dataset import Dataset, Observation
from repro.core.records import UNKNOWN, PageFeatures
from repro.core.store import RoundInfo


def obs(
    ip: int,
    round_id: int,
    timestamp: int | None = None,
    *,
    title: str = UNKNOWN,
    template: str = UNKNOWN,
    server: str = UNKNOWN,
    keywords: str = UNKNOWN,
    analytics_id: str = UNKNOWN,
    powered_by: str = UNKNOWN,
    simhash: int = 0,
    available: bool = True,
    status_code: int | None = 200,
    port_profile: str = "80-only",
    content_type: str = "text/html",
    links: tuple[str, ...] = (),
    has_page: bool = True,
    ssh_banner: str | None = None,
    domains: tuple[str, ...] = (),
) -> Observation:
    features = None
    if has_page:
        features = PageFeatures(
            title=title,
            template=template,
            server=server,
            keywords=keywords,
            analytics_id=analytics_id,
            powered_by=powered_by,
            simhash=simhash,
        )
    status_class = "200"
    if status_code is None:
        status_class = "other"
    elif 400 <= status_code < 500:
        status_class = "4xx"
    elif 500 <= status_code < 600:
        status_class = "5xx"
    return Observation(
        ip=ip,
        round_id=round_id,
        timestamp=round_id if timestamp is None else timestamp,
        port_profile=port_profile,
        available=available and status_code is not None,
        status_code=status_code,
        status_class=status_class,
        content_type=content_type,
        fetch_status="ok" if status_code is not None else "error",
        features=features,
        links=links,
        ssh_banner=ssh_banner,
        domains=domains,
    )


def make_dataset(observations: list[Observation],
                 targets_probed: int = 100) -> Dataset:
    seen: dict[int, int] = {}
    for observation in observations:
        seen.setdefault(observation.round_id, observation.timestamp)
    rounds = [
        RoundInfo(rid, ts, targets_probed, 0)
        for rid, ts in sorted(seen.items())
    ]
    return Dataset(rounds, observations)
