"""Integration tests: SocketTransport against a localhost HTTP server."""

from __future__ import annotations

import asyncio
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.core.transport import SocketTransport, TransportError

LOCALHOST = (127 << 24) | 1


class Handler(BaseHTTPRequestHandler):
    def do_GET(self):  # noqa: N802 (stdlib naming)
        if self.path == "/robots.txt":
            body = b"User-agent: *\nDisallow: /private\n"
            self.send_response(200)
            self.send_header("Content-Type", "text/plain")
        elif self.path == "/chunky":
            self.send_response(200)
            self.send_header("Content-Type", "text/html")
            self.send_header("Transfer-Encoding", "chunked")
            self.end_headers()
            for chunk in (b"<html>", b"hello chunked", b"</html>"):
                self.wfile.write(b"%x\r\n%s\r\n" % (len(chunk), chunk))
            self.wfile.write(b"0\r\n\r\n")
            return
        elif self.path == "/big":
            body = b"x" * 100_000
            self.send_response(200)
            self.send_header("Content-Type", "text/plain")
        else:
            body = b"<html><title>local</title>served by test</html>"
            self.send_response(200)
            self.send_header("Content-Type", "text/html")
            self.send_header("Server", "TestServer/1.0")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):  # silence test output
        pass


@pytest.fixture(scope="module")
def http_server():
    server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server.server_address[1]
    server.shutdown()


class TestSocketTransport:
    def test_probe_open_port(self, http_server):
        transport = SocketTransport(port_map={80: http_server})
        assert asyncio.run(transport.probe(LOCALHOST, 80, timeout=2.0))

    def test_probe_closed_port(self):
        transport = SocketTransport(port_map={80: 1})  # port 1: closed
        assert not asyncio.run(transport.probe(LOCALHOST, 80, timeout=0.5))

    def test_get_page(self, http_server):
        transport = SocketTransport(port_map={80: http_server})
        response = asyncio.run(
            transport.get(LOCALHOST, "http", "/", timeout=5.0, max_body=65536)
        )
        assert response.status_code == 200
        assert b"local" in response.body
        assert response.header("Server") == "TestServer/1.0"
        assert response.content_type == "text/html"

    def test_get_robots(self, http_server):
        transport = SocketTransport(port_map={80: http_server})
        response = asyncio.run(
            transport.get(LOCALHOST, "http", "/robots.txt", timeout=5.0,
                          max_body=65536)
        )
        assert b"Disallow" in response.body

    def test_chunked_transfer(self, http_server):
        transport = SocketTransport(port_map={80: http_server})
        response = asyncio.run(
            transport.get(LOCALHOST, "http", "/chunky", timeout=5.0,
                          max_body=65536)
        )
        assert b"hello chunked" in response.body

    def test_body_capped(self, http_server):
        transport = SocketTransport(port_map={80: http_server})
        response = asyncio.run(
            transport.get(LOCALHOST, "http", "/big", timeout=5.0,
                          max_body=1024)
        )
        assert len(response.body) <= 1024

    def test_get_refused_raises(self):
        transport = SocketTransport(port_map={80: 1})
        with pytest.raises(TransportError):
            asyncio.run(
                transport.get(LOCALHOST, "http", "/", timeout=1.0,
                              max_body=1024)
            )

    def test_custom_headers_sent(self, http_server):
        seen = {}

        class EchoHandler(Handler):
            def do_GET(self):  # noqa: N802
                seen["ua"] = self.headers.get("User-Agent")
                super().do_GET()

        server = ThreadingHTTPServer(("127.0.0.1", 0), EchoHandler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            transport = SocketTransport(port_map={80: server.server_address[1]})
            asyncio.run(
                transport.get(
                    LOCALHOST, "http", "/", timeout=5.0, max_body=1024,
                    headers={"User-Agent": "WhoWas-test"},
                )
            )
            assert seen["ua"] == "WhoWas-test"
        finally:
            server.shutdown()


class TestWhoWasOverSockets:
    def test_full_pipeline_against_local_server(self, http_server):
        """The real-network transport drives the full platform."""
        from repro.core import (
            FetchConfig,
            PlatformConfig,
            ScanConfig,
            WhoWas,
        )

        transport = SocketTransport(port_map={80: http_server, 443: 1, 22: 1})
        platform = WhoWas(
            transport,
            config=PlatformConfig(
                scan=ScanConfig(probes_per_second=1e6, probe_timeout=1.0),
                fetch=FetchConfig(workers=4, timeout=5.0),
            ),
        )
        summary = platform.run_round([LOCALHOST], timestamp=0)
        assert summary.responsive == 1
        assert summary.available == 1
        history = platform.history(LOCALHOST)
        assert len(history) == 1
        assert history[0].features.title == "local"
