"""Backend conformance: every storage engine honours the same contract.

The suite runs the journaled round protocol, quarantine, verification,
and the materialized read models against each registered backend, then
proves **row equivalence**: the same seeded campaign written through
sqlite and through the columnar engine produces identical records,
round statistics, per-IP histories, and cluster aggregates — including
when the rounds run across supervised worker processes and when a
write crashes between shards and resumes.
"""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.core import proc_chaos_plan, ProcFaultKind
from repro.core.records import PageFeatures, QuarantineRecord
from repro.core.store import (
    BACKENDS,
    ColumnarStore,
    MeasurementStore,
    default_backend,
    detect_backend,
    open_store,
)
from repro.core.store.base import rows_checksum
from repro.workloads import Campaign, SimTransportFactory, ec2_scenario
from test_recovery import SCENARIO_PARAMS, small_config
from test_store import record
from test_workers import SIM_PARAMS, mp_config

ALL_BACKENDS = sorted(BACKENDS)


def store_path(backend: str, tmp_path, name: str = "db") -> str:
    suffix = ".col" if backend == "columnar" else ".sqlite"
    return str(tmp_path / f"{name}{suffix}")


def make_store(backend: str, tmp_path, name: str = "db"):
    return open_store(store_path(backend, tmp_path, name), backend=backend)


@pytest.fixture(params=ALL_BACKENDS)
def backend(request):
    return request.param


def tamper_base_row(store, round_id: int, ip: int) -> None:
    """Flip one base-table cell behind the journal's back, per engine."""
    if store.BACKEND == "sqlite":
        table = store.round_info(round_id).table_name
        store._conn.execute(
            f"UPDATE {table} SET title = 'tampered' WHERE ip = ?", (ip,)
        )
        store._conn.commit()
        return
    round_dir = store._round_dir(round_id)
    shard_file = sorted(round_dir.glob("s*.json"))[0]
    data = json.loads(shard_file.read_text(encoding="utf-8"))
    column = data["columns"]["title"]
    column[0] = "tampered"
    shard_file.write_text(json.dumps(data), encoding="utf-8")
    store.close()


def tamper_view_summary(store, round_id: int) -> None:
    """Corrupt the materialized round summary, per engine."""
    if store.BACKEND == "sqlite":
        store._conn.execute(
            "UPDATE view_round_summary SET responsive = responsive + 5 "
            "WHERE round_id = ?", (round_id,)
        )
        store._conn.commit()
        return
    views_file = store._round_dir(round_id) / "views.json"
    views = json.loads(views_file.read_text(encoding="utf-8"))
    views["summary"]["responsive"] += 5
    views_file.write_text(json.dumps(views), encoding="utf-8")
    store.close()


class TestProtocolConformance:
    """The round journal contract, identically on every engine."""

    def test_begin_write_finalize(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        store.begin_round(1, 0, 10, shard_size=2)
        assert store.open_rounds()[0].round_id == 1
        assert store.rounds() == []            # invisible until finalized
        store.write_shard(1, 0, [record(1, 1, 0), record(2, 1, 0)])
        store.write_shard(1, 1, [record(3, 1, 0)], errors=2, operations=9)
        info = store.finalize_round(1)
        assert info.responsive_count == 3
        assert info.error_count == 2
        assert store.open_rounds() == []
        assert store.responsive_ips(1) == {1, 2, 3}
        store.close()

    def test_write_shard_is_idempotent(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        store.begin_round(1, 0, 10)
        assert store.write_shard(1, 0, [record(1, 1, 0)]) is True
        assert store.write_shard(1, 0, [record(1, 1, 0)]) is False
        store.finalize_round(1)
        assert len(list(store.records(1))) == 1
        # Idempotent re-write never double-folds the read models.
        assert store.round_stats(1)["responsive"] == 1
        store.close()

    def test_crash_between_shards_resumes_on_reopen(self, backend, tmp_path):
        path = store_path(backend, tmp_path)
        store = open_store(path, backend=backend)
        store.begin_round(1, 0, 2, shard_size=1)
        store.write_shard(1, 0, [record(7, 1, 0)])
        del store                          # crash: never finalized/closed

        reopened = open_store(path)        # engine auto-detected
        assert reopened.BACKEND == backend
        assert reopened.rounds() == []
        assert reopened.completed_shards(1) == {0}
        reopened.write_shard(1, 1, [record(8, 1, 0)])
        assert reopened.finalize_round(1).responsive_count == 2
        assert reopened.verify_round(1).ok
        reopened.close()

    def test_quarantine_round_trip(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        store.write_round(1, 0, 10, [record(5, 1, 0)])
        store.add_quarantine(QuarantineRecord(
            ip=5, round_id=1, timestamp=0, stage="extract",
            verdict="trapped", error_class="ValueError", error="boom",
        ))
        (entry,) = store.quarantine_rows(1)
        assert (entry.ip, entry.stage, entry.error_class) == (
            5, "extract", "ValueError"
        )
        assert entry.entry_id is not None and not entry.replayed
        assert store.quarantine_count(1) == 1
        store.mark_quarantine_replayed(entry.entry_id)
        assert store.quarantine_rows(1, include_replayed=False) == []
        (replayed,) = store.quarantine_rows(1)
        assert replayed.replayed
        store.close()

    def test_meta_round_trip(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        assert store.get_meta("k") is None
        store.set_meta("k", "v1")
        store.set_meta("k", "v2")
        assert store.get_meta("k") == "v2"
        assert store.meta()["k"] == "v2"
        store.close()

    def test_readonly_reads_and_refuses_writes(self, backend, tmp_path):
        path = store_path(backend, tmp_path)
        store = open_store(path, backend=backend)
        store.write_round(1, 0, 10, [record(3, 1, 0)])
        store.close()
        reader = open_store(path, readonly=True)
        assert reader.BACKEND == backend
        assert reader.responsive_ips(1) == {3}
        assert reader.round_stats(1)["responsive"] == 1
        with pytest.raises(Exception):
            reader.write_round(2, 3, 10, [])
        with pytest.raises(ValueError):
            reader.rebuild_views()
        reader.close()

    def test_readonly_missing_store_raises(self, backend, tmp_path):
        path = store_path(backend, tmp_path, "absent")
        with pytest.raises((sqlite3.OperationalError, FileNotFoundError)):
            open_store(path, backend=backend, readonly=True)


class TestVerification:
    def test_clean_round_verifies_including_views(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        store.write_round(1, 0, 10, [record(i, 1, 0) for i in range(1, 6)])
        report = store.verify_round(1)
        assert report.ok and report.view_issues == []
        store.close()

    def test_tampered_base_row_is_detected(self, backend, tmp_path):
        path = store_path(backend, tmp_path)
        store = open_store(path, backend=backend)
        store.write_round(1, 0, 10, [record(i, 1, 0) for i in range(1, 4)])
        tamper_base_row(store, 1, 1)
        reopened = open_store(path)
        report = reopened.verify_round(1)
        assert not report.ok
        assert report.corrupt
        reopened.close()

    def test_stale_view_is_detected_and_rebuildable(self, backend, tmp_path):
        path = store_path(backend, tmp_path)
        store = open_store(path, backend=backend)
        store.write_round(1, 0, 10, [record(i, 1, 0) for i in range(1, 4)])
        tamper_view_summary(store, 1)
        reopened = open_store(path)
        report = reopened.verify_round(1)
        assert not report.ok
        assert any("round_summary" in issue for issue in report.view_issues)
        # The escape hatch restores the invariant from base data.
        assert reopened.rebuild_views() >= 1
        assert reopened.verify_round(1).ok
        reopened.close()


class TestReadModels:
    def test_round_stats_come_from_the_summary_view(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        store.write_round(1, 0, 10, [record(i, 1, 0) for i in range(1, 5)])
        stats = store.round_stats(1)
        assert stats == {
            "responsive": 4, "available": 4, "fetched": 4, "quarantined": 0,
        }
        store.close()

    def test_ip_history_rows_are_light_and_ordered(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        store.write_round(1, 0, 10, [record(5, 1, 0, "a")])
        store.write_round(2, 3, 10, [])
        store.write_round(3, 6, 10, [record(5, 3, 6, "b")])
        rows = store.ip_history_rows(5)
        assert [(r["round_id"], r["timestamp"], r["title"]) for r in rows] \
            == [(1, 0, "a"), (3, 6, "b")]
        assert rows[0]["open_ports"] == "80"
        assert rows[0]["status_code"] == 200
        store.close()

    def test_aggregates_match_between_view_and_rebuild(self, backend,
                                                       tmp_path):
        store = make_store(backend, tmp_path)
        titles = ["a", "a", "a", "b", "b", "c"]
        store.write_round(
            1, 0, 10,
            [record(i + 1, 1, 0, t) for i, t in enumerate(titles)],
        )
        incremental = store.aggregate_column(1, "title", limit=10)
        assert incremental[:3] == [("a", 3), ("b", 2), ("c", 1)]
        histories = {ip: store.ip_history_rows(ip) for ip in range(1, 7)}
        store.rebuild_views()
        assert store.aggregate_column(1, "title", limit=10) == incremental
        assert {
            ip: store.ip_history_rows(ip) for ip in range(1, 7)
        } == histories
        assert store.verify_round(1).ok
        store.close()

    def test_update_features_refolds_views(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        store.write_round(1, 0, 10, [record(5, 1, 0, "before"),
                                     record(6, 1, 0, "other")])
        store.update_features(1, 5, PageFeatures(title="after", simhash=1))
        (row,) = [r for r in store.ip_history_rows(5)]
        assert row["title"] == "after"
        values = dict(store.aggregate_column(1, "title", limit=10))
        assert values == {"after": 1, "other": 1}
        assert store.verify_round(1).ok
        store.close()


class TestEngineSelection:
    def test_detects_each_backend_on_disk(self, backend, tmp_path):
        path = store_path(backend, tmp_path)
        store = open_store(path, backend=backend)
        store.write_round(1, 0, 1, [])
        store.close()
        assert detect_backend(path) == backend

    def test_memory_is_always_sqlite(self):
        assert detect_backend(":memory:") == "sqlite"
        store = open_store(":memory:")
        assert isinstance(store, MeasurementStore)
        store.close()

    def test_env_selects_default_backend(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE_BACKEND", "columnar")
        assert default_backend() == "columnar"
        store = open_store(str(tmp_path / "fresh"))
        assert isinstance(store, ColumnarStore)
        store.close()

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown store backend"):
            open_store(str(tmp_path / "x"), backend="parquet")


# ----------------------------------------------------------------------
# cross-backend row equivalence over a real seeded campaign


def campaign_snapshot(path: str) -> dict:
    """Everything an analysis or the serve layer can observe, digested
    through the engine-neutral interface."""
    with open_store(path, readonly=True) as store:
        snapshot = {
            "rounds": [
                (i.round_id, i.timestamp, i.targets_probed,
                 i.responsive_count, i.degraded, i.error_count, i.status)
                for i in store.rounds()
            ],
        }
        ips = set()
        for info in store.rounds():
            rid = info.round_id
            rows = [r.to_row() for r in store.records(rid)]
            snapshot[f"rows:{rid}"] = rows_checksum(rows)
            snapshot[f"stats:{rid}"] = store.round_stats(rid)
            for column in ("server", "template", "status_code"):
                snapshot[f"agg:{rid}:{column}"] = store.aggregate_column(
                    rid, column, limit=50
                )
            ips |= store.responsive_ips(rid)
        snapshot["histories"] = {
            ip: store.ip_history_rows(ip) for ip in sorted(ips)
        }
    return snapshot


def run_campaign(path: str, backend: str, *, config=None, chaos=None):
    store = open_store(path, backend=backend)
    kwargs = {}
    if config is not None and config.workers.count > 1:
        kwargs["transport_factory"] = SimTransportFactory(SIM_PARAMS)
    Campaign(
        ec2_scenario(**SCENARIO_PARAMS),
        store=store,
        config=config or small_config(),
        proc_chaos=chaos,
        **kwargs,
    ).run()
    store.close()


@pytest.fixture(scope="module")
def sqlite_reference(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("ref") / "reference.sqlite")
    run_campaign(path, "sqlite")
    return campaign_snapshot(path)


class TestCrossBackendEquivalence:
    def test_columnar_campaign_matches_sqlite(self, tmp_path,
                                              sqlite_reference):
        path = store_path("columnar", tmp_path, "campaign")
        run_campaign(path, "columnar")
        assert campaign_snapshot(path) == sqlite_reference
        with open_store(path, readonly=True) as store:
            for info in store.rounds():
                assert store.verify_round(info.round_id).ok

    def test_columnar_two_worker_campaign_matches(self, tmp_path,
                                                  sqlite_reference):
        """The supervised merge path folds the columnar read models
        shard by shard, identically to the in-process writer."""
        path = store_path("columnar", tmp_path, "mp")
        run_campaign(path, "columnar", config=mp_config(2))
        assert campaign_snapshot(path) == sqlite_reference
        with open_store(path, readonly=True) as store:
            for info in store.rounds():
                assert store.verify_round(info.round_id).ok

    @pytest.mark.chaos
    def test_columnar_survives_worker_sigkill(self, tmp_path,
                                              sqlite_reference):
        """A worker SIGKILLed mid-partition restarts and the merged
        columnar store — views included — still matches serial sqlite."""
        path = store_path("columnar", tmp_path, "killed")
        chaos = proc_chaos_plan(
            11, kinds=(ProcFaultKind.KILL_MID_SHARD,),
            rounds={2}, partitions={0}, attempts={0},
        )
        run_campaign(path, "columnar", config=mp_config(2), chaos=chaos)
        assert campaign_snapshot(path) == sqlite_reference
        with open_store(path, readonly=True) as store:
            for info in store.rounds():
                assert store.verify_round(info.round_id).ok
