"""Hostile-content hardening: the pipeline against booby-trapped pages.

Covers the acceptance criteria of the supervision layer: a campaign
poisoned with hostile content completes every round with zero unhandled
exceptions, every poisoned page lands in the dead-letter quarantine,
and ``repro quarantine list|replay`` round-trips the entries.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FetchStatus,
    MeasurementStore,
    QuarantineRecord,
    RoundRecord,
    hostile_plan,
)
from repro.core.faults import FaultKind, _hostile_response
from repro.core.features import FeatureExtractor
from repro.core.fetcher import decode_body
from repro.core.guard import GuardVerdict, Supervisor
from repro.core.records import (
    FetchResult,
    PageFeatures,
    ProbeOutcome,
    ProbeStatus,
)
from repro.cli import main as cli_main

from test_chaos import assert_chaos_invariants, storm_campaign

#: One representative poison body per attack family, plus edge shapes.
HOSTILE_CORPUS = [
    "<title>" + "A" * 1_048_576,                       # megabyte title
    "<html>" + "<div class='d'>" * 20_000 + "<p x",    # unterminated nest
    "\x00" * 4096,                                     # null flood
    "\x00é\udcff" * 300,                               # mixed garbage
    "<meta content='x' name='description'"             # unclosed meta
    + "<meta " * 5_000,
    "<" * 100_000,                                     # bare-bracket flood
    "<title>" * 50_000,                                # title-open flood
    "</title>" * 50_000,                               # close-only flood
    "a" * 1_000_000,                                   # huge tagless text
    "",                                                # empty
]


def hostile_fetch(body: str) -> FetchResult:
    return FetchResult(
        ip=9, status=FetchStatus.OK, url="http://x/", status_code=200,
        headers={"Content-Type": "text/html"}, body=body,
    )


class TestHostileCorpus:
    @pytest.mark.parametrize("body", HOSTILE_CORPUS)
    def test_extract_never_raises(self, body):
        features = FeatureExtractor().extract(hostile_fetch(body))
        assert features.html_length == len(body)

    @pytest.mark.parametrize("body", HOSTILE_CORPUS)
    def test_inspect_returns_a_verdict(self, body):
        verdict = Supervisor().inspect(hostile_fetch(body))
        assert isinstance(verdict, GuardVerdict)

    def test_each_injected_payload_trips_its_verdict(self):
        expected = {
            FaultKind.HEADER_BOMB: GuardVerdict.HEADER_BOMB,
            FaultKind.MARKUP_BOMB: GuardVerdict.MARKUP_BOMB,
            FaultKind.ENCODING_GARBAGE: GuardVerdict.BINARY_GARBAGE,
            FaultKind.TITLE_BOMB: GuardVerdict.TITLE_BOMB,
        }
        guard = Supervisor()
        for kind, verdict in expected.items():
            response = _hostile_response(kind, 512 * 1024)
            fetch = FetchResult(
                ip=1, status=FetchStatus.OK, url="http://x/",
                status_code=response.status_code,
                headers=dict(response.headers),
                body=decode_body(
                    response.body, response.header("content-type")
                ),
            )
            assert guard.inspect(fetch) is verdict, kind


class TestHostileProperties:
    @settings(max_examples=80, deadline=None)
    @given(st.text(max_size=2000))
    def test_extract_total_over_arbitrary_text(self, body):
        features = FeatureExtractor().extract(hostile_fetch(body))
        assert features.html_length == len(body)

    @settings(max_examples=80, deadline=None)
    @given(st.text(max_size=2000))
    def test_inspect_total_over_arbitrary_text(self, body):
        assert isinstance(
            Supervisor().inspect(hostile_fetch(body)), GuardVerdict
        )

    @settings(max_examples=30, deadline=None)
    @given(st.binary(max_size=2000), st.text(max_size=40))
    def test_decode_body_total(self, raw, charset):
        text = decode_body(raw, f"text/html; charset={charset}")
        assert isinstance(text, str)


def hostile_campaign(rate: float = 0.1, **kwargs):
    return storm_campaign(plan=hostile_plan(23, rate=rate), **kwargs)


class TestHostileCampaign:
    def test_poisoned_campaign_quarantines_every_hit(self):
        # Acceptance: hostile faults at 10% of fetches — every round
        # completes, every poisoned page GET has a quarantine entry.
        result, faulty = hostile_campaign(0.1)
        assert_chaos_invariants(result, faulty)
        store = result.store

        page_hits = {
            (round_id, ip)
            for round_id, ip, path, _ in faulty.hostile_hits
            if path == "/"
        }
        assert page_hits, "storm poisoned no page fetches?"
        quarantined = {
            (entry.round_id, entry.ip)
            for entry in store.quarantine_rows()
        }
        missing = page_hits - quarantined
        assert not missing, f"poisoned pages missing from quarantine: {missing}"

        # Summaries expose the counts, and they match the store.
        total = sum(summary.quarantined for summary in result.summaries)
        assert total == store.quarantine_count() >= len(page_hits)

    def test_quarantined_pages_keep_their_round_records(self):
        # Hostile content costs (at most) its own features, never the
        # row: every quarantined extract-stage page still has a record.
        result, faulty = hostile_campaign(0.1)
        store = result.store
        for entry in store.quarantine_rows():
            if entry.stage != "extract":
                continue
            record = store.record(entry.round_id, entry.ip)
            assert record is not None
            assert record.fetch.status is FetchStatus.OK

    @pytest.mark.chaos
    def test_pure_hostile_storm_full_rate(self):
        # Every single fetch poisoned: the campaign still completes.
        result, faulty = hostile_campaign(1.0, rounds=2)
        assert_chaos_invariants(result, faulty)
        assert result.store.quarantine_count() > 0

    @pytest.mark.chaos
    def test_hostile_plus_network_storm(self):
        # Hostile content and network faults together; first matching
        # rule wins, the pipeline survives both.
        from repro.core import FaultPlan, chaos_plan

        hostile = hostile_plan(5, rate=0.1)
        network = chaos_plan(5, rate=0.15)
        mixed = FaultPlan(seed=5, rules=hostile.rules + network.rules)
        result, faulty = storm_campaign(plan=mixed)
        assert_chaos_invariants(result, faulty)


class TestQuarantineStore:
    def entry(self, **kwargs) -> QuarantineRecord:
        defaults = dict(
            ip=7, round_id=1, timestamp=0, stage="extract",
            verdict="markup-bomb", error_class=None, error=None,
            payload="<div>" * 8,
        )
        defaults.update(kwargs)
        return QuarantineRecord(**defaults)

    def test_round_trip(self):
        store = MeasurementStore()
        entry_id = store.add_quarantine(self.entry())
        (loaded,) = store.quarantine_rows()
        assert loaded.entry_id == entry_id
        assert loaded.ip == 7 and loaded.verdict == "markup-bomb"
        assert not loaded.replayed

    def test_filters(self):
        store = MeasurementStore()
        store.add_quarantine(self.entry(round_id=1))
        done = store.add_quarantine(self.entry(round_id=2))
        store.mark_quarantine_replayed(done)
        assert store.quarantine_count() == 2
        assert store.quarantine_count(round_id=2) == 1
        assert len(store.quarantine_rows(include_replayed=False)) == 1
        assert [e.round_id for e in store.quarantine_rows(1)] == [1]

    def test_shard_replay_does_not_duplicate_quarantine(self):
        # Quarantine inserts ride the shard transaction, so re-writing
        # a committed shard (the crash/resume path) is a no-op for them.
        store = MeasurementStore()
        store.begin_round(1, 0, 4, shard_size=4)
        wrote = store.write_shard(
            1, 0, [], quarantine=[self.entry()]
        )
        assert wrote
        wrote = store.write_shard(
            1, 0, [], quarantine=[self.entry(), self.entry()]
        )
        assert not wrote
        assert store.quarantine_count() == 1


def _record(ip: int, round_id: int, body: str) -> RoundRecord:
    return RoundRecord(
        ip=ip, round_id=round_id, timestamp=0,
        probe=ProbeOutcome(
            ip=ip, status=ProbeStatus.RESPONSIVE,
            open_ports=frozenset({80}),
        ),
        fetch=FetchResult(
            ip=ip, status=FetchStatus.OK, url=f"http://h{ip}/",
            status_code=200, headers={"Content-Type": "text/html"},
            body=body,
        ),
        features=PageFeatures(html_length=len(body)),  # sentinel
    )


class TestQuarantineCli:
    def make_db(self, tmp_path) -> str:
        path = str(tmp_path / "rounds.db")
        store = MeasurementStore(path)
        body = "<html><title>recovered</title></html>"
        store.write_round(1, 0, 2, [_record(16909060, 1, body)])
        store.add_quarantine(QuarantineRecord(
            ip=16909060, round_id=1, timestamp=0, stage="extract",
            verdict="task-error", error_class="RecursionError",
        ))
        store.add_quarantine(QuarantineRecord(
            ip=16909061, round_id=1, timestamp=0, stage="fetch",
            verdict="stage-deadline", error_class="StageDeadlineExceeded",
        ))
        store.close()
        return path

    def test_list(self, tmp_path, capsys):
        db = self.make_db(tmp_path)
        assert cli_main(["quarantine", "list", db]) == 0
        out = capsys.readouterr().out
        assert "2 entries" in out
        assert "1.2.3.4" in out and "task-error" in out
        assert "pending" in out

    def test_replay_round_trip(self, tmp_path, capsys):
        db = self.make_db(tmp_path)
        assert cli_main(["quarantine", "replay", db]) == 0
        out = capsys.readouterr().out
        assert "replayed 1 entries" in out
        assert "1 skipped" in out  # fetch-stage entry has no body

        store = MeasurementStore(db)
        # The sentinel features were replaced by a real extraction...
        record = store.record(1, 16909060)
        assert record.features.title == "recovered"
        # ...the entry is marked replayed and drops out of the default
        # replay set, so a second replay is a no-op.
        pending = store.quarantine_rows(include_replayed=False)
        assert [e.stage for e in pending] == ["fetch"]
        store.close()
        assert cli_main(["quarantine", "replay", db]) == 0
        assert "replayed 0 entries" in capsys.readouterr().out

    def test_list_empty(self, tmp_path, capsys):
        path = str(tmp_path / "empty.db")
        MeasurementStore(path).close()
        assert cli_main(["quarantine", "list", path]) == 0
        assert "empty" in capsys.readouterr().out

    def test_round_filter(self, tmp_path, capsys):
        db = self.make_db(tmp_path)
        assert cli_main(["quarantine", "list", db, "--round", "99"]) == 0
        assert "empty" in capsys.readouterr().out
