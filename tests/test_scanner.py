"""Tests for the probing scanner (§4 semantics)."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.core.config import ScanConfig
from repro.core.records import ProbeStatus
from repro.core.scanner import RateLimiter, Scanner
from repro.core.transport import ConnectionRefused, ConnectTimeout

from _fakes import FakeTransport


def fast_config(**overrides) -> ScanConfig:
    defaults = dict(probes_per_second=1e9, probe_timeout=2.0)
    defaults.update(overrides)
    return ScanConfig(**defaults)


class TestScanIp:
    def test_web_host(self):
        transport = FakeTransport()
        transport.add_host(1, {80})
        scanner = Scanner(transport, fast_config())
        outcome = asyncio.run(scanner.scan_ip(1))
        assert outcome.status is ProbeStatus.RESPONSIVE
        assert outcome.open_ports == {80}

    def test_ssh_fallback_only_when_web_closed(self):
        """§4: the SSH probe is sent only if both web probes fail."""
        transport = FakeTransport()
        transport.add_host(1, {22})
        scanner = Scanner(transport, fast_config())
        outcome = asyncio.run(scanner.scan_ip(1))
        assert outcome.open_ports == {22}
        assert [port for _, port in transport.probe_calls] == [80, 443, 22]

    def test_no_ssh_probe_when_web_open(self):
        transport = FakeTransport()
        transport.add_host(1, {80, 443})
        scanner = Scanner(transport, fast_config())
        asyncio.run(scanner.scan_ip(1))
        assert [port for _, port in transport.probe_calls] == [80, 443]

    def test_unresponsive(self):
        transport = FakeTransport()
        scanner = Scanner(transport, fast_config())
        outcome = asyncio.run(scanner.scan_ip(5))
        assert outcome.status is ProbeStatus.UNRESPONSIVE
        assert not outcome.open_ports

    def test_at_most_three_probes_per_ip(self):
        """Ethics invariant (§7): at most 3 probes per IP per round."""
        transport = FakeTransport()
        scanner = Scanner(transport, fast_config())
        asyncio.run(scanner.scan_ip(9))
        assert len(transport.probe_calls) == 3

    def test_blacklisted_ip_never_probed(self):
        transport = FakeTransport()
        transport.add_host(7, {80})
        scanner = Scanner(transport, fast_config(), blacklist=[7])
        outcome = asyncio.run(scanner.scan_ip(7))
        assert outcome.status is ProbeStatus.SKIPPED
        assert transport.probe_calls == []

    def test_no_retries_by_default(self):
        """§4: failed probes are not retried."""
        transport = FakeTransport()
        transport.add_host(3, {80})
        transport.fail_first[(3, 80)] = 1
        transport.fail_first[(3, 443)] = 1
        transport.fail_first[(3, 22)] = 1
        scanner = Scanner(transport, fast_config())
        outcome = asyncio.run(scanner.scan_ip(3))
        assert outcome.status is ProbeStatus.UNRESPONSIVE
        assert len(transport.probe_calls) == 3

    def test_retries_recover_flaky_hosts(self):
        transport = FakeTransport()
        transport.add_host(3, {80})
        transport.fail_first[(3, 80)] = 1
        scanner = Scanner(transport, fast_config(retries=1))
        outcome = asyncio.run(scanner.scan_ip(3))
        assert outcome.status is ProbeStatus.RESPONSIVE


class TestProbeErrorClass:
    def test_classified_failure_recorded_on_outcome(self):
        transport = FakeTransport()
        transport.probe_raises[(4, 80)] = ConnectTimeout("injected")
        transport.probe_raises[(4, 443)] = ConnectTimeout("injected")
        transport.probe_raises[(4, 22)] = ConnectionRefused("injected")
        scanner = Scanner(transport, fast_config())
        outcome = asyncio.run(scanner.scan_ip(4))
        assert outcome.status is ProbeStatus.UNRESPONSIVE
        # The last classified error wins (the SSH fallback's refusal).
        assert outcome.error_class == "connection-refused"
        assert scanner.probe_errors == 3

    def test_raising_probe_counts_as_failed_not_crash(self):
        """A transport that raises typed errors must not break the scan
        or the probe budget."""
        transport = FakeTransport()
        transport.probe_raises[(4, 80)] = ConnectTimeout("injected")
        transport.add_host(4, {443})
        scanner = Scanner(transport, fast_config())
        outcome = asyncio.run(scanner.scan_ip(4))
        assert outcome.status is ProbeStatus.RESPONSIVE
        assert outcome.open_ports == {443}
        # Responsive IPs don't carry a probe error class.
        assert outcome.error_class is None
        assert len(transport.probe_calls) == 2

    def test_silent_failures_have_no_error_class(self):
        transport = FakeTransport()
        scanner = Scanner(transport, fast_config())
        outcome = asyncio.run(scanner.scan_ip(9))
        assert outcome.status is ProbeStatus.UNRESPONSIVE
        assert outcome.error_class is None
        assert scanner.probe_errors == 0


class TestScanMany:
    def test_order_preserved(self):
        transport = FakeTransport()
        transport.add_host(2, {80})
        transport.add_host(4, {22})
        scanner = Scanner(transport, fast_config())
        outcomes = scanner.scan_sync([4, 2, 6])
        assert [o.ip for o in outcomes] == [4, 2, 6]
        assert outcomes[0].open_ports == {22}
        assert outcomes[1].open_ports == {80}
        assert outcomes[2].status is ProbeStatus.UNRESPONSIVE

    def test_probe_counter(self):
        transport = FakeTransport()
        transport.add_host(1, {80})
        scanner = Scanner(transport, fast_config())
        scanner.scan_sync([1, 2])
        # ip 1: 80 (open) + 443 (closed) = 2; ip 2: 3 probes.
        assert scanner.probes_sent == 5


class TestRateLimiter:
    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            RateLimiter(0)

    def test_limits_rate(self):
        async def run():
            limiter = RateLimiter(200.0, burst=1)
            start = time.monotonic()
            for _ in range(21):
                await limiter.acquire()
            return time.monotonic() - start

        elapsed = asyncio.run(run())
        # 20 extra tokens at 200/s need ~0.1 s.
        assert elapsed >= 0.08

    def test_unlimited_rate_is_fast(self):
        async def run():
            limiter = RateLimiter(1e9)
            start = time.monotonic()
            for _ in range(1000):
                await limiter.acquire()
            return time.monotonic() - start

        assert asyncio.run(run()) < 0.5

    def test_burst_capacity_spent_immediately(self):
        """A full bucket allows exactly `burst` acquires without
        sleeping; the next one must wait a full token period."""
        async def run():
            limiter = RateLimiter(50.0, burst=5)
            loop = asyncio.get_running_loop()
            start = loop.time()
            for _ in range(5):
                await limiter.acquire()
            burst_elapsed = loop.time() - start
            await limiter.acquire()           # 6th: needs 1/50 s refill
            total_elapsed = loop.time() - start
            return burst_elapsed, total_elapsed

        burst_elapsed, total_elapsed = asyncio.run(run())
        assert burst_elapsed < 0.01
        assert total_elapsed >= 0.015

    def test_tokens_refill_over_loop_time(self):
        """Idle time earns tokens back (up to capacity): after draining
        the bucket, waiting 2 token-periods buys 2 immediate acquires."""
        async def run():
            limiter = RateLimiter(100.0, burst=2)
            loop = asyncio.get_running_loop()
            await limiter.acquire()
            await limiter.acquire()           # bucket empty
            await asyncio.sleep(0.025)        # refills ~2.5 → capped at 2
            start = loop.time()
            await limiter.acquire()
            await limiter.acquire()
            fast = loop.time() - start
            start = loop.time()
            await limiter.acquire()           # 3rd: bucket empty again
            slow = loop.time() - start
            return fast, slow

        fast, slow = asyncio.run(run())
        assert fast < 0.01
        assert slow >= 0.005

    def test_refill_capped_at_capacity(self):
        """A long idle period must not bank unbounded burst credit."""
        async def run():
            limiter = RateLimiter(100.0, burst=2)
            await limiter.acquire()
            await asyncio.sleep(0.1)          # would earn 10 tokens uncapped
            loop = asyncio.get_running_loop()
            start = loop.time()
            for _ in range(4):                # capacity 2 → 2 fast + 2 slow
                await limiter.acquire()
            return loop.time() - start

        # 2 tokens free, 2 at 100/s → ≥ ~0.02 s minus scheduling slop.
        assert asyncio.run(run()) >= 0.015

    def test_rate_bounded_under_concurrent_acquire(self):
        """The §7 politeness invariant: N concurrent acquirers cannot
        push the observed probe rate above the configured pps."""
        rate, burst, tasks = 400.0, 1.0, 41

        async def worker(limiter, stamps):
            await limiter.acquire()
            stamps.append(asyncio.get_running_loop().time())

        async def run():
            limiter = RateLimiter(rate, burst=burst)
            stamps: list[float] = []
            await asyncio.gather(
                *(worker(limiter, stamps) for _ in range(tasks))
            )
            return stamps

        stamps = asyncio.run(run())
        assert len(stamps) == tasks
        elapsed = max(stamps) - min(stamps)
        # 40 post-burst tokens at 400/s need ≥ 0.1 s (80% slack for
        # scheduling jitter biasing the measurement *down* is impossible:
        # sleeps only ever overshoot, so this bound is safe).
        assert elapsed >= (tasks - burst) / rate * 0.95
        # And in any sliding 25 ms window, at most rate*0.025 + burst
        # acquisitions happened.
        window = 0.025
        ordered = sorted(stamps)
        for i, start in enumerate(ordered):
            in_window = sum(1 for t in ordered[i:] if t - start <= window)
            assert in_window <= rate * window + burst + 1
