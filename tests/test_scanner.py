"""Tests for the probing scanner (§4 semantics)."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.core.config import ScanConfig
from repro.core.records import ProbeStatus
from repro.core.scanner import RateLimiter, Scanner

from _fakes import FakeTransport


def fast_config(**overrides) -> ScanConfig:
    defaults = dict(probes_per_second=1e9, probe_timeout=2.0)
    defaults.update(overrides)
    return ScanConfig(**defaults)


class TestScanIp:
    def test_web_host(self):
        transport = FakeTransport()
        transport.add_host(1, {80})
        scanner = Scanner(transport, fast_config())
        outcome = asyncio.run(scanner.scan_ip(1))
        assert outcome.status is ProbeStatus.RESPONSIVE
        assert outcome.open_ports == {80}

    def test_ssh_fallback_only_when_web_closed(self):
        """§4: the SSH probe is sent only if both web probes fail."""
        transport = FakeTransport()
        transport.add_host(1, {22})
        scanner = Scanner(transport, fast_config())
        outcome = asyncio.run(scanner.scan_ip(1))
        assert outcome.open_ports == {22}
        assert [port for _, port in transport.probe_calls] == [80, 443, 22]

    def test_no_ssh_probe_when_web_open(self):
        transport = FakeTransport()
        transport.add_host(1, {80, 443})
        scanner = Scanner(transport, fast_config())
        asyncio.run(scanner.scan_ip(1))
        assert [port for _, port in transport.probe_calls] == [80, 443]

    def test_unresponsive(self):
        transport = FakeTransport()
        scanner = Scanner(transport, fast_config())
        outcome = asyncio.run(scanner.scan_ip(5))
        assert outcome.status is ProbeStatus.UNRESPONSIVE
        assert not outcome.open_ports

    def test_at_most_three_probes_per_ip(self):
        """Ethics invariant (§7): at most 3 probes per IP per round."""
        transport = FakeTransport()
        scanner = Scanner(transport, fast_config())
        asyncio.run(scanner.scan_ip(9))
        assert len(transport.probe_calls) == 3

    def test_blacklisted_ip_never_probed(self):
        transport = FakeTransport()
        transport.add_host(7, {80})
        scanner = Scanner(transport, fast_config(), blacklist=[7])
        outcome = asyncio.run(scanner.scan_ip(7))
        assert outcome.status is ProbeStatus.SKIPPED
        assert transport.probe_calls == []

    def test_no_retries_by_default(self):
        """§4: failed probes are not retried."""
        transport = FakeTransport()
        transport.add_host(3, {80})
        transport.fail_first[(3, 80)] = 1
        transport.fail_first[(3, 443)] = 1
        transport.fail_first[(3, 22)] = 1
        scanner = Scanner(transport, fast_config())
        outcome = asyncio.run(scanner.scan_ip(3))
        assert outcome.status is ProbeStatus.UNRESPONSIVE
        assert len(transport.probe_calls) == 3

    def test_retries_recover_flaky_hosts(self):
        transport = FakeTransport()
        transport.add_host(3, {80})
        transport.fail_first[(3, 80)] = 1
        scanner = Scanner(transport, fast_config(retries=1))
        outcome = asyncio.run(scanner.scan_ip(3))
        assert outcome.status is ProbeStatus.RESPONSIVE


class TestScanMany:
    def test_order_preserved(self):
        transport = FakeTransport()
        transport.add_host(2, {80})
        transport.add_host(4, {22})
        scanner = Scanner(transport, fast_config())
        outcomes = scanner.scan_sync([4, 2, 6])
        assert [o.ip for o in outcomes] == [4, 2, 6]
        assert outcomes[0].open_ports == {22}
        assert outcomes[1].open_ports == {80}
        assert outcomes[2].status is ProbeStatus.UNRESPONSIVE

    def test_probe_counter(self):
        transport = FakeTransport()
        transport.add_host(1, {80})
        scanner = Scanner(transport, fast_config())
        scanner.scan_sync([1, 2])
        # ip 1: 80 (open) + 443 (closed) = 2; ip 2: 3 probes.
        assert scanner.probes_sent == 5


class TestRateLimiter:
    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            RateLimiter(0)

    def test_limits_rate(self):
        async def run():
            limiter = RateLimiter(200.0, burst=1)
            start = time.monotonic()
            for _ in range(21):
                await limiter.acquire()
            return time.monotonic() - start

        elapsed = asyncio.run(run())
        # 20 extra tokens at 200/s need ~0.1 s.
        assert elapsed >= 0.08

    def test_unlimited_rate_is_fast(self):
        async def run():
            limiter = RateLimiter(1e9)
            start = time.monotonic()
            for _ in range(1000):
                await limiter.acquire()
            return time.monotonic() - start

        assert asyncio.run(run()) < 0.5
