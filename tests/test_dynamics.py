"""Tests for the usage-dynamics analyses (Tables 3-7, Figures 8-10)."""

from __future__ import annotations

import pytest

from repro.analysis.clustering import WebpageClusterer
from repro.analysis.dynamics import DynamicsAnalyzer, SeriesSummary

from _obs import make_dataset, obs


class TestSeriesSummary:
    def test_statistics(self):
        summary = SeriesSummary.of([10.0, 20.0, 30.0])
        assert summary.minimum == 10
        assert summary.maximum == 30
        assert summary.average == 20
        assert summary.growth == 20
        assert summary.growth_pct == pytest.approx(200.0)
        assert summary.std_dev == pytest.approx(8.1649, rel=1e-3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SeriesSummary.of([])

    def test_zero_start_growth(self):
        assert SeriesSummary.of([0.0, 5.0]).growth_pct == 0.0


def simple_dataset():
    return make_dataset(
        [
            # round 0: ips 1,2 responsive; 1 available
            obs(1, 0, title="a", simhash=10),
            obs(2, 0, title="b", simhash=1 << 90, status_code=None,
                has_page=False, port_profile="22-only"),
            # round 1: ip 1 still there, ip 3 appears
            obs(1, 1, title="a", simhash=10),
            obs(3, 1, title="c", simhash=1 << 50),
        ],
        targets_probed=10,
    )


class TestSeries:
    def test_responsive_series(self):
        analyzer = DynamicsAnalyzer(simple_dataset())
        assert analyzer.responsive_series() == [2, 2]

    def test_available_series(self):
        analyzer = DynamicsAnalyzer(simple_dataset())
        assert analyzer.available_series() == [1, 2]

    def test_cluster_series(self):
        dataset = simple_dataset()
        clustering = WebpageClusterer(level2_threshold=3).cluster(dataset)
        analyzer = DynamicsAnalyzer(dataset, clustering)
        assert analyzer.cluster_series() == [1, 2]

    def test_cluster_series_requires_clustering(self):
        with pytest.raises(ValueError):
            DynamicsAnalyzer(simple_dataset()).cluster_series()

    def test_usage_summary_keys(self):
        dataset = simple_dataset()
        clustering = WebpageClusterer(level2_threshold=3).cluster(dataset)
        summary = DynamicsAnalyzer(dataset, clustering).usage_summary()
        assert set(summary) == {"responsive", "available", "clusters"}


class TestTables:
    def test_port_profile_table(self):
        analyzer = DynamicsAnalyzer(simple_dataset())
        table = analyzer.port_profile_table()
        assert table["22-only"] == pytest.approx(25.0)   # 1 of 2, 0 of 2
        assert table["80-only"] == pytest.approx(75.0)
        assert table["443-only"] == 0.0

    def test_status_code_table_sums_to_100(self):
        analyzer = DynamicsAnalyzer(simple_dataset())
        table = analyzer.status_code_table()
        assert sum(table.values()) == pytest.approx(100.0)
        assert table["200"] == 100.0

    def test_content_type_table(self):
        dataset = make_dataset([
            obs(1, 0, title="a", simhash=1),
            obs(2, 0, title="b", simhash=2, content_type="application/json"),
            obs(3, 0, title="c", simhash=3),
        ])
        table = dict(DynamicsAnalyzer(dataset).content_type_table())
        assert table["text/html"] == pytest.approx(66.67, rel=1e-2)
        assert table["application/json"] == pytest.approx(33.33, rel=1e-2)


class TestChurn:
    def test_churn_series(self):
        dataset = make_dataset(
            [
                obs(1, 0, title="a", simhash=1),
                obs(2, 0, title="b", simhash=1 << 40),
                # round 1: ip 2 gone (responsive churn), ip 1 stays
                obs(1, 1, title="a", simhash=1),
            ],
            targets_probed=10,
        )
        series = DynamicsAnalyzer(dataset).churn_series()
        assert len(series) == 1
        entry = series[0]
        assert entry["responsiveness"] == pytest.approx(10.0)  # 1 of 10
        assert entry["availability"] == pytest.approx(10.0)
        assert entry["responsiveness_relative"] == pytest.approx(50.0)

    def test_availability_flip_counted(self):
        dataset = make_dataset(
            [
                obs(1, 0, title="a", simhash=1),
                obs(1, 1, title="a", simhash=1, status_code=None,
                    has_page=False),
            ],
            targets_probed=10,
        )
        entry = DynamicsAnalyzer(dataset).churn_series()[0]
        assert entry["responsiveness"] == 0.0
        assert entry["availability"] == pytest.approx(10.0)

    def test_cluster_change_counted(self):
        big_hash_a = 0
        big_hash_b = (1 << 96) - 1
        dataset = make_dataset(
            [
                obs(1, 0, title="site-a", simhash=big_hash_a),
                obs(9, 0, title="site-b", simhash=big_hash_b),
                obs(1, 1, title="site-b", simhash=big_hash_b),
                obs(9, 1, title="site-b", simhash=big_hash_b),
            ],
            targets_probed=10,
        )
        clustering = WebpageClusterer(level2_threshold=3).cluster(dataset)
        entry = DynamicsAnalyzer(dataset, clustering).churn_series()[0]
        assert entry["cluster"] == pytest.approx(10.0)  # ip 1 changed

    def test_churn_rates_need_two_rounds(self):
        dataset = make_dataset([obs(1, 0, title="a", simhash=1)])
        with pytest.raises(ValueError):
            DynamicsAnalyzer(dataset).churn_rates()


class TestClusterAvailabilityChange:
    def test_flip_detected(self):
        dataset = make_dataset(
            [
                obs(1, 0, title="a", simhash=1),
                obs(2, 0, title="b", simhash=1 << 40),
                obs(1, 1, title="a", simhash=1),
                # cluster b absent in round 1 -> one flip of two clusters
            ],
            targets_probed=10,
        )
        clustering = WebpageClusterer(level2_threshold=3).cluster(dataset)
        series = DynamicsAnalyzer(dataset, clustering).cluster_change_series()
        assert series == [pytest.approx(50.0)]


class TestCampaignSanity:
    """Shape checks on the simulated EC2 campaign (paper's §8.1 bands)."""

    def test_occupancy_band(self, ec2_campaign, ec2_dataset):
        analyzer = DynamicsAnalyzer(ec2_dataset)
        average = sum(analyzer.responsive_series()) / len(
            analyzer.responsive_series()
        )
        share = average / analyzer.space_size()
        assert 0.15 < share < 0.35          # paper: 23.7%

    def test_available_below_responsive(self, ec2_dataset):
        analyzer = DynamicsAnalyzer(ec2_dataset)
        for responsive, available in zip(
            analyzer.responsive_series(), analyzer.available_series()
        ):
            assert available < responsive

    def test_churn_band(self, ec2_dataset, ec2_clustering):
        analyzer = DynamicsAnalyzer(ec2_dataset, ec2_clustering)
        rates = analyzer.churn_rates()
        assert 0.5 < rates.overall < 6.0     # paper: ~3.0%
        assert rates.cluster < rates.responsiveness

    def test_port_profiles_shape(self, ec2_dataset):
        table = DynamicsAnalyzer(ec2_dataset).port_profile_table()
        assert table["80-only"] > table["443-only"]  # Table 3 ordering
        assert sum(table.values()) == pytest.approx(100.0, abs=0.5)

    def test_status_distribution_shape(self, ec2_dataset):
        table = DynamicsAnalyzer(ec2_dataset).status_code_table()
        assert table["200"] > table["4xx"] > table["5xx"]  # Table 4

    def test_content_types_html_dominates(self, ec2_dataset):
        table = DynamicsAnalyzer(ec2_dataset).content_type_table()
        assert table[0][0] == "text/html"
        assert table[0][1] > 90.0            # Table 5: 95.9%
