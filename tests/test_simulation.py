"""Tests for the day-granularity cloud simulator."""

from __future__ import annotations

import pytest

from repro.cloudsim.population import WorkloadSpec
from repro.cloudsim.providers import EC2_SPEC
from repro.cloudsim.services import PORT_PROFILES_EC2, target_size
from repro.cloudsim.simulation import CloudSimulation
from repro.cloudsim.software import EC2_CATALOG


def make_sim(seed: int = 0, total_ips: int = 1024,
             **workload_overrides) -> CloudSimulation:
    workload = WorkloadSpec(cloud="EC2", duration_days=30,
                            **workload_overrides)
    topology = EC2_SPEC.build(total_ips, seed=seed)
    return CloudSimulation(
        topology, workload, EC2_CATALOG, PORT_PROFILES_EC2, seed=seed
    )


class TestConstruction:
    def test_occupancy_near_target(self):
        sim = make_sim()
        expected = sim.topology.space.size * 0.237
        assert abs(sim.occupied_count() - expected) / expected < 0.25

    def test_owner_consistency(self):
        sim = make_sim()
        for ip, service_id in sim.assignments().items():
            assert sim.owner_of(ip) == service_id
            assert ip in sim.footprint(service_id)

    def test_host_state(self):
        sim = make_sim()
        ip = next(iter(sim.assignments()))
        state = sim.host_state(ip)
        assert state is not None
        assert state.ip == ip
        assert state.region
        assert state.kind in ("classic", "vpc")
        assert state.open_ports

    def test_idle_ip_has_no_state(self):
        sim = make_sim()
        assigned = set(sim.assignments())
        idle = next(
            a for a in sim.topology.space.addresses() if a not in assigned
        )
        assert sim.host_state(idle) is None


class TestDeterminism:
    def test_same_seed_same_world(self):
        a, b = make_sim(seed=5), make_sim(seed=5)
        a.advance_to(10)
        b.advance_to(10)
        assert a.assignments() == b.assignments()

    def test_different_seed_different_world(self):
        a, b = make_sim(seed=5), make_sim(seed=6)
        assert a.assignments() != b.assignments()

    def test_stable_transients(self):
        sim = make_sim()
        ip = next(iter(sim.assignments()))
        assert sim.probe_latency(ip, 3) == sim.probe_latency(ip, 3)
        assert sim.is_flaky(ip, 3) == sim.is_flaky(ip, 3)


class TestStepping:
    def test_cannot_rewind(self):
        sim = make_sim()
        sim.advance_to(5)
        with pytest.raises(ValueError):
            sim.advance_to(3)

    def test_footprints_track_targets(self):
        sim = make_sim()
        sim.advance_to(15)
        shortfalls = 0
        for service in sim.live_services():
            target = target_size(service, sim.day)
            actual = len(sim.footprint(service.service_id))
            if actual != target:
                shortfalls += 1
        # Pool exhaustion can cause occasional shortfalls, nothing more.
        assert shortfalls <= len(sim.live_services()) * 0.02

    def test_dead_services_release_ips(self):
        sim = make_sim(departure_events={3: 0.5})
        before = sim.occupied_count()
        sim.advance_to(4)
        after = sim.occupied_count()
        assert after < before
        for service in sim.services.values():
            if service.death_day is not None and service.death_day <= sim.day:
                assert sim.footprint(service.service_id) == []

    def test_turnover_recycles_ips(self):
        sim = make_sim()
        churners = [
            s for s in sim.live_services() if s.ip_turnover > 0.05
            and s.base_size >= 3
        ]
        if not churners:
            pytest.skip("no high-churn service drawn at this seed")
        service = churners[0]
        before = set(sim.footprint(service.service_id))
        sim.advance_to(20)
        after = set(sim.footprint(service.service_id))
        assert before != after

    def test_arrivals_registered(self):
        sim = make_sim(arrival_rate=0.05)
        initial = len(sim.services)
        sim.advance_to(10)
        assert len(sim.services) > initial


class TestDeploymentLog:
    def test_log_matches_live_state(self):
        sim = make_sim()
        sim.advance_to(12)
        for ip, service_id in list(sim.assignments().items())[:200]:
            assert sim.log.owner_on(ip, sim.day) == service_id

    def test_log_history_consistency(self):
        sim = make_sim()
        sim.advance_to(12)
        for interval in sim.log.intervals[:500]:
            if interval.end_day is not None:
                assert interval.end_day >= interval.start_day
            assert interval.service_id in sim.services

    def test_no_overlapping_intervals_per_ip(self):
        sim = make_sim()
        sim.advance_to(15)
        by_ip: dict[int, list] = {}
        for interval in sim.log.intervals:
            by_ip.setdefault(interval.ip, []).append(interval)
        for intervals in by_ip.values():
            intervals.sort(key=lambda i: i.start_day)
            for first, second in zip(intervals, intervals[1:]):
                assert first.end_day is not None
                assert first.end_day <= second.start_day

    def test_owner_on_past_day(self):
        sim = make_sim(departure_events={5: 0.5})
        victims = {
            ip: sid for ip, sid in sim.assignments().items()
        }
        sim.advance_to(10)
        # Ownership on day 0 is still reconstructable.
        checked = 0
        for ip, sid in list(victims.items())[:50]:
            assert sim.log.owner_on(ip, 0) == sid
            checked += 1
        assert checked


class TestWebUp:
    def test_availability_mostly_up(self):
        sim = make_sim()
        service = next(
            s for s in sim.live_services() if s.serves_web
        )
        ips = sim.footprint(service.service_id)
        ups = sum(
            1 for day in range(30) for ip in ips
            if sim.service_web_up(service, ip, day)
        )
        assert ups / (30 * len(ips)) > 0.9
