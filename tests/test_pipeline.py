"""Streaming pipeline: ordering, backpressure, batching, equivalence.

The contract under test: the overlapped engine
(``PipelineConfig.overlap=True``, the default) must be byte-equivalent
to the serial escape hatch for every store-visible artefact — record
rows, round metadata, shard journal, quarantine entries (as a multiset;
only their insertion order within a shard may differ) — including runs
interrupted mid-round and resumed.  Plus unit coverage of the queue and
pipeline primitives and the new telemetry surfaces.
"""

from __future__ import annotations

import asyncio
import json
import sqlite3

import pytest

from repro.cli import main
from repro.core import (
    FaultyTransport,
    MeasurementStore,
    RoundInterrupted,
    WhoWas,
    hostile_plan,
)
from repro.core.config import PipelineConfig
from repro.core.pipeline import (
    BoundedShardQueue,
    RoundPipeline,
    ShardWork,
    _DONE,
)
from repro.core.platform import PIPELINE_STATS_META_PREFIX
from repro.core.records import PipelineStats, StageStats
from repro.workloads import Campaign, CampaignInterrupted, ec2_scenario
from test_recovery import (
    SCENARIO_PARAMS,
    AbortTrigger,
    CrashOnFault,
    db_snapshot,
    small_config,
)


def overlap_config(overlap: bool, **pipeline_overrides):
    return small_config(
        pipeline=PipelineConfig(overlap=overlap, **pipeline_overrides)
    )


def quarantine_snapshot(path: str):
    """The quarantine table as a sorted multiset — insertion order
    within a shard is scheduling-dependent (fetch completion order),
    so equivalence is up to ordering."""
    conn = sqlite3.connect(path)
    rows = conn.execute(
        "SELECT round_id, ip, timestamp, stage, verdict, error_class,"
        " payload, replayed FROM quarantine"
    ).fetchall()
    conn.close()
    return sorted(rows)


def hostile_campaign(path: str, *, overlap: bool, interrupt=None):
    """Run the standard small campaign with hostile chaos content in
    the requested engine mode; returns the campaign result."""
    scenario = ec2_scenario(**SCENARIO_PARAMS)
    scenario.transport = FaultyTransport(
        scenario.transport, hostile_plan(13, rate=0.2)
    )
    if interrupt is not None:
        scenario.transport = interrupt(scenario.transport)
    store = MeasurementStore(path)
    try:
        return Campaign(
            scenario, store=store, config=overlap_config(overlap)
        ).run()
    finally:
        store.close()


# ----------------------------------------------------------------------
# BoundedShardQueue


class FakeLimiter:
    def __init__(self, limit: int, max_limit: int):
        self.limit = limit
        self.max_limit = max_limit


class TestBoundedShardQueue:
    def run(self, coro):
        return asyncio.run(coro)

    def test_fifo_order(self):
        async def scenario():
            queue = BoundedShardQueue(4)
            for i in range(3):
                await queue.put(i)
            return [await queue.get() for _ in range(3)]

        assert self.run(scenario()) == [0, 1, 2]

    def test_put_blocks_at_capacity_until_get(self):
        async def scenario():
            queue = BoundedShardQueue(1)
            await queue.put("a")
            putter = asyncio.create_task(queue.put("b"))
            await asyncio.sleep(0)
            assert not putter.done()          # parked: queue is full
            assert await queue.get() == "a"
            await asyncio.wait_for(putter, 1)
            return queue.put_waits, queue.peak

        put_waits, peak = self.run(scenario())
        assert put_waits == 1
        assert peak == 1

    def test_aimd_limiter_scales_capacity(self):
        limiter = FakeLimiter(limit=250, max_limit=250)
        queue = BoundedShardQueue(4, limiter=limiter)
        assert queue.capacity() == 4
        limiter.limit = 125
        assert queue.capacity() == 2
        limiter.limit = 8           # deep AIMD backoff
        assert queue.capacity() == 1        # floor: progress guaranteed
        limiter.limit = 250
        assert queue.capacity() == 4        # recovers with the window

    def test_done_marker_is_exempt_from_capacity(self):
        async def scenario():
            queue = BoundedShardQueue(1)
            await queue.put("work")
            # The end-of-stream marker must never deadlock behind a
            # full queue.
            await asyncio.wait_for(queue.put(_DONE), 1)
            return await queue.get(), await queue.get()

        item, done = self.run(scenario())
        assert item == "work" and done is _DONE

    def test_try_get_never_waits(self):
        async def scenario():
            queue = BoundedShardQueue(2)
            empty = await queue.try_get()
            await queue.put("x")
            return empty, await queue.try_get()

        empty, item = self.run(scenario())
        assert empty is not item and item == "x"


# ----------------------------------------------------------------------
# RoundPipeline unit behaviour (stub stages)


def _noop_stage():
    async def stage(work: ShardWork) -> int:
        return 1
    return stage


def _collecting_writer(committed: list, *, delay: float = 0.0):
    async def write_batch(batch):
        committed.extend(work.index for work in batch)
        if delay:
            await asyncio.sleep(delay)
        return len(batch), sum(len(w.records) for w in batch)
    return write_batch


class TestRoundPipeline:
    def _pipeline(self, committed, *, config=None, delay=0.0, **kwargs):
        return RoundPipeline(
            config=config or PipelineConfig(),
            scan=kwargs.pop("scan", _noop_stage()),
            fetch=kwargs.pop("fetch", _noop_stage()),
            extract=kwargs.pop("extract", _noop_stage()),
            write_batch=_collecting_writer(committed, delay=delay),
            **kwargs,
        )

    def test_commits_every_shard_in_order(self):
        committed: list[int] = []
        works = [ShardWork(index=i, targets=[i]) for i in range(10)]
        pipeline = self._pipeline(committed)
        stats = asyncio.run(pipeline.run(iter(works)))
        assert committed == list(range(10))
        assert stats.shards_written == 10
        assert stats.stage("scan").shards == 10

    def test_writer_batches_when_store_is_slow(self):
        committed: list[int] = []
        works = [ShardWork(index=i, targets=[i]) for i in range(12)]
        pipeline = self._pipeline(committed, delay=0.02)
        stats = asyncio.run(pipeline.run(iter(works)))
        assert committed == list(range(12))    # batching never reorders
        assert stats.writer_max_batch > 1      # commits amortised
        assert stats.writer_flushes < 12

    def test_stage_failure_drains_earlier_shards_then_raises(self):
        committed: list[int] = []

        async def fetch(work: ShardWork) -> int:
            if work.index == 2:
                raise RuntimeError("boom on shard 2")
            return 1

        pipeline = self._pipeline(committed, fetch=fetch)
        works = [ShardWork(index=i, targets=[i]) for i in range(6)]
        with pytest.raises(RuntimeError, match="boom on shard 2"):
            asyncio.run(pipeline.run(iter(works)))
        # Serial crash equivalence: everything before the failing
        # shard committed, nothing at or after it did.
        assert committed == [0, 1]

    def test_abort_stops_feeding_and_drains_in_flight(self):
        committed: list[int] = []
        event = asyncio.Event()

        async def scenario():
            async def scan(work: ShardWork) -> int:
                if work.index == 1:
                    event.set()
                return 1

            pipeline = self._pipeline(
                committed, scan=scan, abort_event=event,
            )
            works = [ShardWork(index=i, targets=[i]) for i in range(50)]
            await pipeline.run(iter(works))
            return pipeline.aborted

        aborted = asyncio.run(scenario())
        assert aborted
        # Everything fed before the abort drained and committed; the
        # tail of the round was never started.
        assert committed == sorted(committed)
        assert 0 < len(committed) < 50

    def test_backpressure_telemetry_counts_producer_stalls(self):
        committed: list[int] = []

        async def slow_extract(work: ShardWork) -> int:
            await asyncio.sleep(0.005)
            return 1

        pipeline = self._pipeline(
            committed,
            extract=slow_extract,
            config=PipelineConfig(scan_queue_depth=1, extract_queue_depth=1),
        )
        works = [ShardWork(index=i, targets=[i]) for i in range(8)]
        stats = asyncio.run(pipeline.run(iter(works)))
        # The fast upstream stages must have stalled on the slow
        # extract stage's input queue at least once.
        assert stats.stage("fetch").backpressure_waits > 0
        assert stats.stage("fetch").queue_peak >= 1


# ----------------------------------------------------------------------
# engine equivalence: overlapped vs serial store contents


class TestEngineEquivalence:
    def test_hostile_chaos_campaign_is_byte_equivalent(self, tmp_path):
        """Full campaign with network faults + hostile content: rows,
        rounds and quarantine (sorted) identical across engines."""
        overlapped = str(tmp_path / "overlap.sqlite")
        serial = str(tmp_path / "serial.sqlite")
        hostile_campaign(overlapped, overlap=True)
        hostile_campaign(serial, overlap=False)

        assert db_snapshot(overlapped) == db_snapshot(serial)
        q_overlapped = quarantine_snapshot(overlapped)
        assert q_overlapped == quarantine_snapshot(serial)
        assert q_overlapped, "hostile storm produced no quarantine rows"

    def test_abort_resume_overlapped_matches_serial_reference(
        self, tmp_path
    ):
        """Mid-round SIGINT while the pipeline is streaming, then
        resume: the healed database equals an uninterrupted serial
        run — including the interrupted round's quarantine."""
        serial = str(tmp_path / "serial.sqlite")
        hostile_campaign(serial, overlap=False)

        aborted = str(tmp_path / "aborted.sqlite")
        event = asyncio.Event()
        store = MeasurementStore(aborted)
        scenario = ec2_scenario(**SCENARIO_PARAMS)
        scenario.transport = FaultyTransport(
            scenario.transport, hostile_plan(13, rate=0.2)
        )
        scenario.transport = AbortTrigger(
            scenario.transport, event, round_id=2, after_probes=100
        )
        with pytest.raises(CampaignInterrupted):
            Campaign(
                scenario, store=store, config=overlap_config(True)
            ).run(abort_event=event)
        store.close()

        reopened = MeasurementStore(aborted)
        scenario = ec2_scenario(**SCENARIO_PARAMS)
        scenario.transport = FaultyTransport(
            scenario.transport, hostile_plan(13, rate=0.2)
        )
        Campaign(
            scenario, store=reopened, config=overlap_config(True)
        ).resume()
        reopened.close()

        assert db_snapshot(aborted) == db_snapshot(serial)
        assert quarantine_snapshot(aborted) == quarantine_snapshot(serial)

    def test_crash_resume_serial_matches_overlapped_reference(
        self, tmp_path
    ):
        """Cross-mode healing: crash an overlapped run mid-round, then
        resume it with the *serial* engine — still byte-equivalent to
        an uninterrupted overlapped run."""
        reference = str(tmp_path / "reference.sqlite")
        hostile_campaign(reference, overlap=True)

        crashed = str(tmp_path / "crashed.sqlite")
        from repro.core import FaultKind, FaultPlan, FaultRule

        victim = ec2_scenario(**SCENARIO_PARAMS).targets[140]
        plan = FaultPlan(seed=1, rules=(
            FaultRule(FaultKind.CONNECT_TIMEOUT, ips={victim}, rounds={2}),
        ))
        store = MeasurementStore(crashed)
        scenario = ec2_scenario(**SCENARIO_PARAMS)
        scenario.transport = FaultyTransport(
            scenario.transport, hostile_plan(13, rate=0.2)
        )
        scenario.transport = CrashOnFault(scenario.transport, plan)
        with pytest.raises(RuntimeError, match="simulated crash"):
            Campaign(
                scenario, store=store, config=overlap_config(True)
            ).run()
        del store

        reopened = MeasurementStore(crashed)
        scenario = ec2_scenario(**SCENARIO_PARAMS)
        scenario.transport = FaultyTransport(
            scenario.transport, hostile_plan(13, rate=0.2)
        )
        Campaign(
            scenario, store=reopened, config=overlap_config(False)
        ).resume()
        reopened.close()

        assert db_snapshot(crashed) == db_snapshot(reference)
        assert quarantine_snapshot(crashed) == quarantine_snapshot(reference)


# ----------------------------------------------------------------------
# telemetry surfaces: RoundSummary.pipeline, persisted stats, duration


class TestTelemetry:
    def _one_round(self, tmp_path, overlap: bool):
        path = str(tmp_path / f"round-{overlap}.sqlite")
        scenario = ec2_scenario(total_ips=256, seed=5, duration_days=3)
        store = MeasurementStore(path)
        platform = WhoWas(
            scenario.transport, store=store, config=overlap_config(overlap)
        )
        summary = platform.run_round(
            list(scenario.targets), timestamp=scenario.scan_days[0]
        )
        return path, store, platform, summary

    def test_round_summary_carries_pipeline_stats(self, tmp_path):
        _, store, platform, summary = self._one_round(tmp_path, True)
        stats = summary.pipeline
        assert stats is not None and stats.mode == "overlapped"
        assert set(stats.stages) == {"scan", "fetch", "extract", "write"}
        assert stats.records_written == summary.responsive
        assert stats.shards_written == 4            # 256 IPs / 64
        assert stats.wall_seconds > 0
        assert stats.stage("scan").items == 256
        platform.close()
        store.close()

    def test_serial_mode_reports_serial_stats(self, tmp_path):
        _, store, platform, summary = self._one_round(tmp_path, False)
        assert summary.pipeline.mode == "serial"
        assert summary.pipeline.writer_max_batch == 1
        assert summary.pipeline.records_written == summary.responsive
        platform.close()
        store.close()

    def test_stats_persisted_to_campaign_meta(self, tmp_path):
        _, store, platform, summary = self._one_round(tmp_path, True)
        raw = store.get_meta(
            f"{PIPELINE_STATS_META_PREFIX}{summary.round_id}"
        )
        assert raw is not None
        restored = PipelineStats.from_dict(json.loads(raw))
        assert restored.mode == "overlapped"
        assert restored.records_written == summary.responsive
        assert restored.stage("write").shards == 4
        platform.close()
        store.close()

    def test_duration_seconds_persisted_on_round_info(self, tmp_path):
        path, store, platform, summary = self._one_round(tmp_path, True)
        assert summary.duration_seconds > 0
        store.close()
        platform.close()
        reopened = MeasurementStore(path)
        info = reopened.round_info(summary.round_id)
        assert info.duration_seconds == pytest.approx(
            summary.duration_seconds
        )
        reopened.close()

    def test_stage_stats_roundtrip(self):
        stats = PipelineStats(mode="overlapped")
        stage = stats.stage("scan")
        stage.shards, stage.items, stage.busy_seconds = 3, 192, 0.5
        stats.records_written = 60
        stats.wall_seconds = 2.0
        restored = PipelineStats.from_dict(stats.to_dict())
        assert restored == stats
        assert restored.records_per_second == 30.0
        assert isinstance(restored.stage("scan"), StageStats)
        assert restored.stage("scan").items_per_second == pytest.approx(384)

    def test_writer_offload_escape_hatch(self, tmp_path):
        """writer_offload=False keeps commits on the event loop —
        identical contents, no worker thread."""
        inline = str(tmp_path / "inline.sqlite")
        scenario = ec2_scenario(**SCENARIO_PARAMS)
        store = MeasurementStore(inline)
        Campaign(
            scenario, store=store,
            config=overlap_config(True, writer_offload=False),
        ).run()
        store.close()
        threaded = str(tmp_path / "threaded.sqlite")
        hostile = None  # plain scenario on both sides
        scenario = ec2_scenario(**SCENARIO_PARAMS)
        store = MeasurementStore(threaded)
        Campaign(scenario, store=store, config=overlap_config(True)).run()
        store.close()
        assert db_snapshot(inline) == db_snapshot(threaded)

    def test_run_round_reuses_one_event_loop(self):
        scenario = ec2_scenario(total_ips=64, seed=5, duration_days=6)
        platform = WhoWas(scenario.transport, config=small_config())
        platform.run_round(list(scenario.targets), timestamp=0)
        loop = platform._loop
        assert loop is not None and not loop.is_closed()
        platform.run_round(list(scenario.targets), timestamp=1)
        assert platform._loop is loop        # same loop, not a fresh one
        platform.close()
        assert loop.is_closed()

    def test_shard_commit_order_is_shard_order(self, tmp_path):
        path, store, platform, summary = self._one_round(tmp_path, True)
        conn = sqlite3.connect(path)
        order = [
            row[0] for row in conn.execute(
                "SELECT shard_index FROM round_shards "
                "WHERE round_id = ? ORDER BY rowid",
                (summary.round_id,),
            )
        ]
        conn.close()
        assert order == sorted(order) == [0, 1, 2, 3]
        platform.close()
        store.close()


# ----------------------------------------------------------------------
# CLI: repro rounds / repro stats


class TestCli:
    @pytest.fixture()
    def campaign_db(self, tmp_path):
        path = str(tmp_path / "cli.sqlite")
        scenario = ec2_scenario(total_ips=256, seed=5, duration_days=6)
        store = MeasurementStore(path)
        Campaign(scenario, store=store, config=small_config()).run()
        store.close()
        return path

    def test_rounds_lists_durations(self, campaign_db, capsys):
        assert main(["rounds", campaign_db]) == 0
        out = capsys.readouterr().out
        assert "duration" in out
        assert "complete" in out

    def test_stats_shows_stage_throughput(self, campaign_db, capsys):
        assert main(["stats", campaign_db]) == 0
        out = capsys.readouterr().out
        assert "overlapped" in out
        for stage in ("scan", "fetch", "extract", "write"):
            assert stage in out
        assert "rec/s" in out

    def test_stats_single_round_and_missing_round(self, campaign_db, capsys):
        assert main(["stats", campaign_db, "--round", "1"]) == 0
        assert "round 1" in capsys.readouterr().out
        assert main(["stats", campaign_db, "--round", "99"]) == 1
