"""Tests for the per-round measurement store."""

from __future__ import annotations

import pytest

from repro.core.records import (
    FetchResult,
    FetchStatus,
    PageFeatures,
    ProbeOutcome,
    ProbeStatus,
)
from repro.core.records import RoundRecord
from repro.core.store import MeasurementStore


def record(ip: int, round_id: int, timestamp: int, title: str = "t") -> RoundRecord:
    return RoundRecord(
        ip=ip,
        round_id=round_id,
        timestamp=timestamp,
        probe=ProbeOutcome(
            ip=ip, status=ProbeStatus.RESPONSIVE, open_ports=frozenset({80})
        ),
        fetch=FetchResult(
            ip=ip, status=FetchStatus.OK, url=f"http://{ip}/",
            status_code=200, headers={"Content-Type": "text/html"},
            body=f"<title>{title}</title>",
        ),
        features=PageFeatures(title=title, simhash=ip * 7),
    )


class TestMeasurementStore:
    def test_write_and_read_round(self):
        store = MeasurementStore()
        info = store.write_round(1, 0, 100, [record(1, 1, 0), record(2, 1, 0)])
        assert info.responsive_count == 2
        assert info.targets_probed == 100
        records = list(store.records(1))
        assert {r.ip for r in records} == {1, 2}
        assert records[0].features is not None

    def test_one_table_per_round(self):
        """§4: each round of scanning uses a distinct table with the
        round's timestamp in its name."""
        store = MeasurementStore()
        store.write_round(1, 0, 10, [record(1, 1, 0)])
        store.write_round(2, 3, 10, [record(1, 2, 3)])
        tables = {info.table_name for info in store.rounds()}
        assert tables == {"round_00000", "round_00003"}

    def test_rounds_sorted_by_timestamp(self):
        store = MeasurementStore()
        store.write_round(2, 9, 10, [])
        store.write_round(1, 3, 10, [])
        assert [info.timestamp for info in store.rounds()] == [3, 9]

    def test_history_lookup(self):
        """The core WhoWas query: an IP's status over time."""
        store = MeasurementStore()
        store.write_round(1, 0, 10, [record(5, 1, 0, "a")])
        store.write_round(2, 3, 10, [])                      # unresponsive
        store.write_round(3, 6, 10, [record(5, 3, 6, "b")])
        history = store.history(5)
        assert [r.timestamp for r in history] == [0, 6]
        assert [r.features.title for r in history] == ["a", "b"]

    def test_record_lookup(self):
        store = MeasurementStore()
        store.write_round(1, 0, 10, [record(5, 1, 0)])
        assert store.record(1, 5) is not None
        assert store.record(1, 6) is None

    def test_missing_round(self):
        store = MeasurementStore()
        with pytest.raises(KeyError):
            store.round_info(9)

    def test_responsive_ips(self):
        store = MeasurementStore()
        store.write_round(1, 0, 10, [record(1, 1, 0), record(9, 1, 0)])
        assert store.responsive_ips(1) == {1, 9}

    def test_rewrite_round_replaces(self):
        store = MeasurementStore()
        store.write_round(1, 0, 10, [record(1, 1, 0)])
        store.write_round(1, 0, 10, [record(2, 1, 0)])
        assert store.responsive_ips(1) == {2}

    def test_context_manager(self):
        with MeasurementStore() as store:
            store.write_round(1, 0, 1, [])
        with pytest.raises(Exception):
            store.rounds()

    def test_file_backed(self, tmp_path):
        path = str(tmp_path / "whowas.sqlite")
        store = MeasurementStore(path)
        store.write_round(1, 0, 10, [record(3, 1, 0)])
        store.close()
        reopened = MeasurementStore(path)
        assert reopened.responsive_ips(1) == {3}
        reopened.close()


class TestRoundIsolation:
    """§4: one table per round — later writes never disturb earlier
    rounds' lookups."""

    def test_writing_round_n_never_mutates_round_n_minus_1(self):
        store = MeasurementStore()
        store.write_round(1, 0, 10, [record(5, 1, 0, "before")])
        baseline = store.record(1, 5)
        baseline_rows = list(store.records(1))

        # Round 2 re-observes the same IP with different content, adds a
        # new IP, and drops nothing from round 1.
        store.write_round(2, 3, 10, [record(5, 2, 3, "after"),
                                     record(6, 2, 3, "new")])

        assert store.record(1, 5) == baseline
        assert list(store.records(1)) == baseline_rows
        assert store.responsive_ips(1) == {5}
        assert store.record(1, 6) is None
        assert store.record(2, 5).features.title == "after"

    def test_many_rounds_stay_isolated(self):
        store = MeasurementStore()
        for n in range(1, 6):
            store.write_round(n, n * 3, 10, [record(ip, n, n * 3, f"r{n}")
                                             for ip in range(n)])
        for n in range(1, 6):
            rows = list(store.records(n))
            assert {r.ip for r in rows} == set(range(n))
            assert all(r.features.title == f"r{n}" for r in rows)

    def test_round_info_ordering_is_stable(self):
        """Rounds written out of chronological order come back sorted
        by timestamp, with round_id as a deterministic tiebreak."""
        store = MeasurementStore()
        for round_id, ts in ((3, 6), (1, 0), (2, 3)):
            store.write_round(round_id, ts, 10, [])
        assert [i.round_id for i in store.rounds()] == [1, 2, 3]
        # Re-listing gives the identical sequence every time.
        assert store.rounds() == store.rounds()

    def test_degraded_flag_round_trips(self):
        store = MeasurementStore()
        store.write_round(1, 0, 10, [], degraded=False)
        store.write_round(2, 3, 10, [], degraded=True, error_count=7)
        infos = store.rounds()
        assert [i.degraded for i in infos] == [False, True]
        assert infos[1].error_count == 7
        assert store.round_info(2).degraded is True

    def test_degraded_flag_survives_reopen(self, tmp_path):
        path = str(tmp_path / "chaos.sqlite")
        store = MeasurementStore(path)
        store.write_round(1, 0, 10, [], degraded=True, error_count=3)
        store.close()
        reopened = MeasurementStore(path)
        info = reopened.round_info(1)
        assert info.degraded is True and info.error_count == 3
        reopened.close()

    def test_migrates_pre_resilience_database(self, tmp_path):
        """A rounds table from before the degraded/error_count columns
        existed is upgraded in place on open."""
        import sqlite3

        path = str(tmp_path / "old.sqlite")
        conn = sqlite3.connect(path)
        conn.execute(
            "CREATE TABLE rounds ("
            "  round_id INTEGER PRIMARY KEY,"
            "  timestamp INTEGER NOT NULL,"
            "  targets_probed INTEGER NOT NULL,"
            "  responsive_count INTEGER NOT NULL"
            ")"
        )
        conn.execute("INSERT INTO rounds VALUES (1, 0, 10, 0)")
        conn.commit()
        conn.close()

        store = MeasurementStore(path)
        info = store.round_info(1)
        assert info.degraded is False and info.error_count == 0
        store.close()


class TestReadonlyStore:
    """`open_readonly`: the query tools' connection can never write."""

    def _seeded(self, tmp_path, rounds=1, per_round=8):
        path = str(tmp_path / "ro.sqlite")
        store = MeasurementStore(path)
        for round_id in range(1, rounds + 1):
            store.write_round(
                round_id, round_id - 1, per_round,
                [record(ip, round_id, round_id - 1)
                 for ip in range(1, per_round + 1)],
            )
        store.close()
        return path

    def test_reads_work(self, tmp_path):
        path = self._seeded(tmp_path, rounds=2)
        reader = MeasurementStore.open_readonly(path)
        assert reader.readonly is True
        assert [i.round_id for i in reader.rounds()] == [1, 2]
        assert len(list(reader.records(1))) == 8
        assert len(reader.history(3)) == 2
        reader.close()

    def test_cannot_mutate(self, tmp_path):
        import sqlite3

        path = self._seeded(tmp_path)
        reader = MeasurementStore.open_readonly(path)
        with pytest.raises(sqlite3.OperationalError):
            reader.set_meta("k", "v")
        with pytest.raises(sqlite3.OperationalError):
            reader.write_round(9, 9, 1, [record(1, 9, 9)])
        reader.close()
        # ... and nothing leaked through.
        writer = MeasurementStore(path)
        assert writer.get_meta("k") is None
        assert len(writer.rounds()) == 1
        writer.close()

    def test_missing_database_never_created(self, tmp_path):
        import os
        import sqlite3

        path = str(tmp_path / "absent.sqlite")
        with pytest.raises(sqlite3.OperationalError):
            MeasurementStore.open_readonly(path)
        assert not os.path.exists(path)

    def test_memory_store_rejected(self):
        with pytest.raises(ValueError):
            MeasurementStore.open_readonly(":memory:")

    def test_reader_does_not_block_concurrent_writer(self, tmp_path):
        """A reader holding an open cursor must not stop the campaign
        writer from committing (WAL + mode=ro: no write locks)."""
        path = self._seeded(tmp_path)
        reader = MeasurementStore.open_readonly(path)
        cursor = reader._conn.execute("SELECT * FROM rounds")
        cursor.fetchone()  # cursor now holds a read snapshot open
        writer = MeasurementStore(path, busy_timeout_ms=500)
        writer.write_round(2, 1, 4, [record(1, 2, 1)])
        assert [i.round_id for i in writer.rounds()] == [1, 2]
        cursor.close()
        writer.close()
        reader.close()


class TestReadDeadline:
    """`read_deadline`: deadline budgets propagate into sqlite."""

    def _big_store(self, tmp_path):
        path = str(tmp_path / "big.sqlite")
        store = MeasurementStore(path)
        store.write_round(
            1, 0, 3000, [record(ip, 1, 0) for ip in range(1, 2501)]
        )
        store.close()
        return MeasurementStore.open_readonly(path)

    def test_expired_deadline_interrupts_scan(self, tmp_path):
        import time

        from repro.core.store import is_interrupted

        store = self._big_store(tmp_path)
        with pytest.raises(Exception) as excinfo:
            with store.read_deadline(time.monotonic() - 1.0, tick=4):
                store._conn.execute(
                    "SELECT COUNT(*) FROM round_00000 a, round_00000 b"
                ).fetchone()
        assert is_interrupted(excinfo.value)
        store.close()

    def test_generous_deadline_lets_reads_finish(self, tmp_path):
        import time

        store = self._big_store(tmp_path)
        with store.read_deadline(time.monotonic() + 60.0):
            assert len(list(store.records(1))) == 2500
        store.close()

    def test_handler_cleared_after_exit(self, tmp_path):
        import time

        store = self._big_store(tmp_path)
        with pytest.raises(Exception):
            with store.read_deadline(time.monotonic() - 1.0, tick=4):
                store._conn.execute(
                    "SELECT COUNT(*) FROM round_00000 a, round_00000 b"
                ).fetchone()
        # Once the context exits, reads run unbounded again.
        assert len(list(store.records(1))) == 2500
        store.close()

    def test_none_deadline_is_noop(self):
        store = MeasurementStore()
        with store.read_deadline(None):
            store.write_round(1, 0, 1, [record(1, 1, 0)])
        assert len(store.rounds()) == 1

    def test_interrupted_classifier(self):
        import sqlite3

        from repro.core.store import is_interrupted

        assert is_interrupted(sqlite3.OperationalError("interrupted"))
        assert not is_interrupted(sqlite3.OperationalError("locked"))
        assert not is_interrupted(ValueError("interrupted"))


class TestConnectHelper:
    """Pin the one connection-setup path both open modes now share
    (writer constructor and read-only opens used to duplicate it)."""

    def test_writer_connection_pragmas(self, tmp_path):
        from repro.core.store.sqlite import _connect

        conn = _connect(str(tmp_path / "w.sqlite"))
        try:
            assert conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
            assert conn.execute("PRAGMA synchronous").fetchone()[0] == 1
            assert conn.execute("PRAGMA busy_timeout").fetchone()[0] == 5000
            assert conn.execute("PRAGMA query_only").fetchone()[0] == 0
            row = conn.execute("SELECT 1 AS one").fetchone()
            assert row["one"] == 1          # Row factory installed
        finally:
            conn.close()

    def test_readonly_connection_refuses_writes(self, tmp_path):
        import sqlite3

        from repro.core.store.sqlite import _connect

        path = str(tmp_path / "r.sqlite")
        _connect(path).close()              # create the file
        conn = _connect(path, readonly=True)
        try:
            assert conn.execute("PRAGMA query_only").fetchone()[0] == 1
            with pytest.raises(sqlite3.OperationalError):
                conn.execute("CREATE TABLE t (x)")
        finally:
            conn.close()

    def test_readonly_memory_rejected(self):
        from repro.core.store.sqlite import _connect

        with pytest.raises(ValueError, match="in-memory"):
            _connect(":memory:", readonly=True)

    def test_busy_timeout_is_configurable(self, tmp_path):
        from repro.core.store.sqlite import _connect

        conn = _connect(str(tmp_path / "t.sqlite"), busy_timeout_ms=123)
        try:
            assert conn.execute("PRAGMA busy_timeout").fetchone()[0] == 123
        finally:
            conn.close()
