"""Tests for the per-round measurement store."""

from __future__ import annotations

import pytest

from repro.core.records import (
    FetchResult,
    FetchStatus,
    PageFeatures,
    ProbeOutcome,
    ProbeStatus,
)
from repro.core.records import RoundRecord
from repro.core.store import MeasurementStore


def record(ip: int, round_id: int, timestamp: int, title: str = "t") -> RoundRecord:
    return RoundRecord(
        ip=ip,
        round_id=round_id,
        timestamp=timestamp,
        probe=ProbeOutcome(
            ip=ip, status=ProbeStatus.RESPONSIVE, open_ports=frozenset({80})
        ),
        fetch=FetchResult(
            ip=ip, status=FetchStatus.OK, url=f"http://{ip}/",
            status_code=200, headers={"Content-Type": "text/html"},
            body=f"<title>{title}</title>",
        ),
        features=PageFeatures(title=title, simhash=ip * 7),
    )


class TestMeasurementStore:
    def test_write_and_read_round(self):
        store = MeasurementStore()
        info = store.write_round(1, 0, 100, [record(1, 1, 0), record(2, 1, 0)])
        assert info.responsive_count == 2
        assert info.targets_probed == 100
        records = list(store.records(1))
        assert {r.ip for r in records} == {1, 2}
        assert records[0].features is not None

    def test_one_table_per_round(self):
        """§4: each round of scanning uses a distinct table with the
        round's timestamp in its name."""
        store = MeasurementStore()
        store.write_round(1, 0, 10, [record(1, 1, 0)])
        store.write_round(2, 3, 10, [record(1, 2, 3)])
        tables = {info.table_name for info in store.rounds()}
        assert tables == {"round_00000", "round_00003"}

    def test_rounds_sorted_by_timestamp(self):
        store = MeasurementStore()
        store.write_round(2, 9, 10, [])
        store.write_round(1, 3, 10, [])
        assert [info.timestamp for info in store.rounds()] == [3, 9]

    def test_history_lookup(self):
        """The core WhoWas query: an IP's status over time."""
        store = MeasurementStore()
        store.write_round(1, 0, 10, [record(5, 1, 0, "a")])
        store.write_round(2, 3, 10, [])                      # unresponsive
        store.write_round(3, 6, 10, [record(5, 3, 6, "b")])
        history = store.history(5)
        assert [r.timestamp for r in history] == [0, 6]
        assert [r.features.title for r in history] == ["a", "b"]

    def test_record_lookup(self):
        store = MeasurementStore()
        store.write_round(1, 0, 10, [record(5, 1, 0)])
        assert store.record(1, 5) is not None
        assert store.record(1, 6) is None

    def test_missing_round(self):
        store = MeasurementStore()
        with pytest.raises(KeyError):
            store.round_info(9)

    def test_responsive_ips(self):
        store = MeasurementStore()
        store.write_round(1, 0, 10, [record(1, 1, 0), record(9, 1, 0)])
        assert store.responsive_ips(1) == {1, 9}

    def test_rewrite_round_replaces(self):
        store = MeasurementStore()
        store.write_round(1, 0, 10, [record(1, 1, 0)])
        store.write_round(1, 0, 10, [record(2, 1, 0)])
        assert store.responsive_ips(1) == {2}

    def test_context_manager(self):
        with MeasurementStore() as store:
            store.write_round(1, 0, 1, [])
        with pytest.raises(Exception):
            store.rounds()

    def test_file_backed(self, tmp_path):
        path = str(tmp_path / "whowas.sqlite")
        store = MeasurementStore(path)
        store.write_round(1, 0, 10, [record(3, 1, 0)])
        store.close()
        reopened = MeasurementStore(path)
        assert reopened.responsive_ips(1) == {3}
        reopened.close()
