"""End-to-end integration tests across the full WhoWas pipeline."""

from __future__ import annotations

from repro.analysis import (
    Cartographer,
    DynamicsAnalyzer,
    SoftwareCensus,
    UptimeAnalyzer,
)
from repro.core.records import UNKNOWN


class TestPipeline:
    def test_history_lookup_roundtrip(self, ec2_campaign):
        """The WhoWas promise: per-IP history of status and content."""
        store = ec2_campaign.store
        dataset = ec2_campaign.dataset
        ip = next(
            ip for ip, history in dataset.by_ip.items() if len(history) >= 3
        )
        records = store.history(ip)
        assert [r.timestamp for r in records] == [
            o.timestamp for o in dataset.history(ip)
        ]

    def test_records_match_ground_truth_content(self, ec2_campaign):
        """Fetched titles agree with the owning service's profile."""
        simulation = ec2_campaign.scenario.simulation
        dataset = ec2_campaign.dataset
        checked = 0
        for obs in dataset.by_round[dataset.round_ids[-1]]:
            if not obs.has_page or obs.features.title == UNKNOWN:
                continue
            owner = simulation.log.owner_on(obs.ip, obs.timestamp)
            service = simulation.services[owner]
            assert service.profile is not None
            if service.profile.status_code == 200:
                assert obs.features.title == service.profile.title
            checked += 1
            if checked >= 50:
                break
        assert checked >= 10

    def test_responsiveness_matches_ground_truth(self, ec2_campaign):
        """Non-transient live hosts are observed; idle IPs are not."""
        simulation = ec2_campaign.scenario.simulation
        dataset = ec2_campaign.dataset
        last_round = dataset.round_ids[-1]
        last_day = dataset.timestamp_of(last_round)
        assert simulation.day == last_day
        observed = dataset.responsive_ips(last_round)
        truly_live = set(simulation.assignments())
        # No false positives: every observed IP was truly live.
        assert observed <= truly_live
        # Coverage: only transient losses (slow/flaky hosts) missed.
        missed = truly_live - observed
        assert len(missed) / len(truly_live) < 0.05

    def test_analysis_engines_compose(self, ec2_campaign, ec2_dataset,
                                       ec2_clustering):
        """All engines run off one campaign without conflicts."""
        scenario = ec2_campaign.scenario
        dynamics = DynamicsAnalyzer(ec2_dataset, ec2_clustering)
        assert dynamics.usage_summary()
        census = SoftwareCensus(ec2_dataset).report()
        assert census.server_family_shares
        uptime = UptimeAnalyzer(ec2_dataset, ec2_clustering)
        assert uptime.top_clusters(3)
        cartography = Cartographer(scenario.topology, scenario.dns)
        mapping = cartography.map_prefixes(sample_per_prefix=2)
        assert mapping.prefix_kinds

    def test_cluster_count_within_service_count_band(self, ec2_campaign,
                                                     ec2_clustering):
        """Final clusters approximate the number of simulated web
        services (the ground truth WhoWas tries to recover)."""
        simulation = ec2_campaign.scenario.simulation
        web_services = sum(
            1 for s in simulation.services.values()
            if s.serves_web and s.profile.status_code == 200
        )
        final = len(ec2_clustering.clusters)
        assert 0.4 * web_services < final < 2.0 * web_services

    def test_azure_campaign_runs(self, azure_campaign):
        assert azure_campaign.round_count == len(
            azure_campaign.scenario.scan_days
        )
        clustering = azure_campaign.clustering()
        assert clustering.clusters

    def test_dataset_round_trip_from_store(self, ec2_campaign):
        from repro.analysis import Dataset

        rebuilt = Dataset.from_store(ec2_campaign.store)
        original = ec2_campaign.dataset
        assert rebuilt.round_ids == original.round_ids
        for rid in rebuilt.round_ids:
            assert len(rebuilt.by_round[rid]) == len(original.by_round[rid])


class TestEthicsInvariants:
    """§7's politeness commitments, enforced by construction."""

    def test_only_three_ports_probed(self, ec2_campaign):
        platform = ec2_campaign  # campaign used default config
        config = platform.scenario  # noqa: F841
        from repro.core.config import ScanConfig

        scan = ScanConfig()
        assert set(scan.web_ports) | set(scan.fallback_ports) == {80, 443, 22}

    def test_blacklisted_ips_excluded(self):
        from repro.workloads import Campaign, ec2_scenario, simulation_config

        scenario = ec2_scenario(total_ips=512, seed=13, duration_days=6)
        excluded = frozenset(scenario.targets[:50])
        campaign = Campaign(
            scenario, config=simulation_config(blacklist=excluded)
        )
        result = campaign.run(scan_days=[0, 3])
        for rid in result.dataset.round_ids:
            assert not (result.dataset.responsive_ips(rid) & excluded)

    def test_fetch_errors_do_not_abort_round(self, ec2_campaign):
        """Some fetches fail every round; rounds still complete."""
        dataset = ec2_campaign.dataset
        for rid in dataset.round_ids:
            statuses = {o.fetch_status for o in dataset.by_round[rid]}
            assert "ok" in statuses
