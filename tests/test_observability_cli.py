"""CLI observability surface: ``--json`` output modes, per-partition
attribution in ``repro stats``, ``repro trace``, and ``repro watch``.

The module fixture runs one 2-worker campaign with a trace sink so the
same database exercises the multi-process attribution path end to end.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.cli import main
from repro.core import MeasurementStore, telemetry
from repro.core.config import TelemetryConfig
from repro.core.records import PipelineStats
from repro.core.telemetry import Telemetry, start_metrics_server
from repro import dashboard


@pytest.fixture(scope="module")
def traced_db(tmp_path_factory) -> str:
    """A 2-worker campaign with tracing on: 2048 IPs → two shards per
    round, so both partitions do real work."""
    path = str(tmp_path_factory.mktemp("obs") / "traced.sqlite")
    code = main([
        "simulate", "--cloud", "ec2", "--ips", "2048", "--days", "8",
        "--seed", "3", "--workers", "2", "--out", path,
        "--trace-out", f"{path}.trace.jsonl",
    ])
    assert code == 0
    telemetry.reset()
    return path


@pytest.fixture(autouse=True)
def _reset_telemetry_after():
    yield
    telemetry.reset()


class TestRoundsJson:
    def test_round_trips_the_rounds_table(self, traced_db, capsys):
        assert main(["rounds", traced_db, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        store = MeasurementStore(traced_db)
        expected = [dataclasses.asdict(info) for info in store.rounds()]
        store.close()
        assert payload["rounds"] == expected
        assert payload["in_progress"] == []
        assert len(payload["rounds"]) >= 2

    def test_json_on_empty_database(self, tmp_path, capsys):
        path = str(tmp_path / "empty.sqlite")
        MeasurementStore(path).close()
        assert main(["rounds", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"rounds": [], "in_progress": []}


class TestStatsJson:
    def test_round_trips_pipeline_stats(self, traced_db, capsys):
        assert main(["stats", traced_db, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload
        store = MeasurementStore(traced_db)
        from repro.cli import _load_pipeline_stats

        for entry in payload:
            rebuilt = PipelineStats.from_dict(entry["stats"])
            stored = _load_pipeline_stats(store, entry["round_id"])
            assert rebuilt == stored
        store.close()

    def test_json_respects_round_filter(self, traced_db, capsys):
        assert main(["stats", traced_db, "--json", "--round", "1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["round_id"] for entry in payload] == [1]


class TestPartitionAttribution:
    def test_stats_carry_both_partitions(self, traced_db):
        store = MeasurementStore(traced_db)
        from repro.cli import _load_pipeline_stats

        stats = _load_pipeline_stats(store, 1)
        store.close()
        assert set(stats.partitions) == {"0", "1"}
        for stages in stats.partitions.values():
            assert "write" in stages

    def test_partition_sums_match_merged_stages(self, traced_db):
        store = MeasurementStore(traced_db)
        from repro.cli import _load_pipeline_stats

        stats = _load_pipeline_stats(store, 1)
        store.close()
        for name, merged in stats.stages.items():
            summed = sum(
                stages[name].items
                for stages in stats.partitions.values()
                if name in stages
            )
            assert summed == merged.items

    def test_text_output_renders_partition_lines(self, traced_db, capsys):
        assert main(["stats", traced_db, "--round", "1"]) == 0
        out = capsys.readouterr().out
        assert "partition 0" in out
        assert "partition 1" in out


class TestTrace:
    def test_sidecar_resolution_from_db_path(self, traced_db, capsys):
        assert main(["trace", traced_db]) == 0
        out = capsys.readouterr().out
        assert "span(s)" in out
        for stage in ("scan", "fetch", "extract", "write"):
            assert stage in out

    def test_stage_filter(self, traced_db, capsys):
        assert main(["trace", traced_db, "--stage", "fetch"]) == 0
        rows = capsys.readouterr().out.strip().splitlines()[1:-1]
        assert rows
        assert all(row.split()[0] == "fetch" for row in rows)

    def test_round_filter_and_limit(self, traced_db, capsys):
        assert main(["trace", traced_db, "--round", "1",
                     "--limit", "2"]) == 0
        rows = capsys.readouterr().out.strip().splitlines()[1:-1]
        assert len(rows) == 2

    def test_json_mode(self, traced_db, capsys):
        assert main(["trace", traced_db, "--json", "--stage", "scan"]) == 0
        spans = json.loads(capsys.readouterr().out)
        assert spans
        assert all(span["stage"] == "scan" for span in spans)
        assert all(span["duration"] >= 0 for span in spans)

    def test_both_workers_appear_in_trace(self, traced_db, capsys):
        assert main(["trace", traced_db, "--json"]) == 0
        spans = json.loads(capsys.readouterr().out)
        assert {span.get("worker") for span in spans} >= {0, 1}

    def test_missing_trace_fails_cleanly(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "none.sqlite")]) == 1
        assert "no trace" in capsys.readouterr().err

    def test_no_matching_spans_fails(self, traced_db, capsys):
        assert main(["trace", traced_db, "--stage", "nope"]) == 1


class TestWatch:
    def _server(self):
        tel = Telemetry(TelemetryConfig(enabled=True))
        tel.counter("repro_records_written_total", "records").inc(100)
        tel.counter("repro_stage_items_total", "items",
                    labels=("stage",)).labels(stage="scan").inc(500)
        tel.counter("repro_rounds_total", "rounds",
                    labels=("status",)).labels(status="complete").inc(2)
        server = start_metrics_server(tel, 0)
        return tel, server

    def test_watch_draws_frames_and_exits(self, capsys):
        tel, server = self._server()
        port = server.server_address[1]
        try:
            code = main(["watch", f"127.0.0.1:{port}", "--frames", "2",
                         "--interval", "0.05", "--no-clear"])
        finally:
            server.shutdown()
            server.server_close()
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("WhoWas telemetry") == 2
        assert "records: 100" in out
        assert "scan" in out

    def test_watch_unreachable_endpoint(self, capsys):
        assert main(["watch", "127.0.0.1:1", "--frames", "1"]) == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_watch_reports_endpoint_gone(self, capsys):
        tel, server = self._server()
        port = server.server_address[1]
        import threading

        threading.Timer(0.3, lambda: (server.shutdown(),
                                      server.server_close())).start()
        code = main(["watch", f"{port}", "--interval", "0.1",
                     "--no-clear"])
        assert code == 0
        assert "endpoint gone" in capsys.readouterr().out


class TestDashboard:
    def test_normalize_endpoint_variants(self):
        assert (dashboard.normalize_endpoint("9100")
                == "http://127.0.0.1:9100/metrics")
        assert (dashboard.normalize_endpoint("myhost:9100")
                == "http://myhost:9100/metrics")
        assert (dashboard.normalize_endpoint("http://h:1/metrics")
                == "http://h:1/metrics")

    def _samples(self, records):
        return {
            ("repro_records_written_total", ()): float(records),
            ("repro_stage_items_total", (("stage", "fetch"),)): 40.0,
            ("repro_queue_depth", (("queue", "fetch_extract"),)): 3.0,
            ("repro_rounds_total", (("status", "complete"),)): 1.0,
        }

    def test_render_computes_rates_from_deltas(self):
        previous = self._samples(100)
        current = self._samples(350)
        frame = dashboard.render_dashboard(current, previous, 2.5, "test")
        assert "records: 350 (100 rec/s)" in frame

    def test_render_first_frame_has_zero_rates(self):
        frame = dashboard.render_dashboard(self._samples(10), None, 0.0,
                                           "test")
        assert "(0 rec/s)" in frame

    def test_render_shows_queue_depth_next_to_stage(self):
        frame = dashboard.render_dashboard(self._samples(0), None, 0.0,
                                           "test")
        fetch_line = next(
            line for line in frame.splitlines()
            if line.startswith("fetch")
        )
        assert fetch_line.rstrip().endswith("3")

    def test_counter_reset_clamps_rate_to_zero(self):
        previous = self._samples(500)
        current = self._samples(100)
        frame = dashboard.render_dashboard(current, previous, 1.0, "test")
        assert "(0 rec/s)" in frame
