"""Tests for CSV figure-data export."""

from __future__ import annotations

import csv

from repro.analysis import Cartographer, FigureExporter


class TestFigureExporter:
    def test_export_all(self, tmp_path, ec2_campaign, ec2_dataset,
                        ec2_clustering):
        scenario = ec2_campaign.scenario
        cartography = Cartographer(
            scenario.topology, scenario.dns
        ).map_prefixes(sample_per_prefix=2)
        exporter = FigureExporter(
            ec2_dataset, ec2_clustering, cartography=cartography
        )
        written = exporter.export_all(tmp_path)
        assert len(written) == 6
        for path in written:
            assert path.exists()
            with path.open() as handle:
                rows = list(csv.reader(handle))
            assert len(rows) >= 2          # header + data

    def test_fig08_matches_analyzer(self, tmp_path, ec2_dataset,
                                    ec2_clustering):
        from repro.analysis import DynamicsAnalyzer

        exporter = FigureExporter(ec2_dataset, ec2_clustering)
        path = exporter.export_fig08(tmp_path / "f8.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        dynamics = DynamicsAnalyzer(ec2_dataset, ec2_clustering)
        assert [int(r["responsive_ips"]) for r in rows] == \
            dynamics.responsive_series()
        assert [int(r["day"]) for r in rows] == [
            ec2_dataset.timestamp_of(rid) for rid in ec2_dataset.round_ids
        ]

    def test_fig12_cdf_monotone(self, tmp_path, ec2_dataset, ec2_clustering):
        exporter = FigureExporter(ec2_dataset, ec2_clustering)
        path = exporter.export_fig12(tmp_path / "f12.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        cdf = [float(r["cdf"]) for r in rows]
        assert cdf == sorted(cdf)
        assert cdf[-1] == 1.0
        uptimes = [float(r["avg_ip_uptime_pct"]) for r in rows]
        assert uptimes == sorted(uptimes)

    def test_without_cartography_skips_vpc_figures(self, tmp_path,
                                                   ec2_dataset,
                                                   ec2_clustering):
        exporter = FigureExporter(ec2_dataset, ec2_clustering)
        written = exporter.export_all(tmp_path)
        names = {p.name for p in written}
        assert "fig13_vpc_timeseries.csv" not in names
        assert len(written) == 4
