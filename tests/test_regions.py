"""Tests for region-usage analysis (§8.1)."""

from __future__ import annotations

import pytest

from repro.analysis.clustering import WebpageClusterer
from repro.analysis.regions import RegionAnalyzer

from _obs import make_dataset, obs


def region_of(ip: int) -> str:
    return "east" if ip < 100 else "west"


class TestRegionAnalyzer:
    def build(self):
        rows = [
            # Cluster A: single region, both rounds.
            obs(1, 0, title="a", simhash=1),
            obs(1, 1, title="a", simhash=1),
            # Cluster B: spans regions from the start.
            obs(2, 0, title="b", simhash=1 << 40),
            obs(102, 0, title="b", simhash=1 << 40),
            obs(2, 1, title="b", simhash=1 << 40),
            obs(102, 1, title="b", simhash=1 << 40),
            # Cluster C: gains a region in round 1.
            obs(3, 0, title="c", simhash=1 << 80),
            obs(3, 1, title="c", simhash=1 << 80),
            obs(103, 1, title="c", simhash=1 << 80),
        ]
        dataset = make_dataset(rows)
        clustering = WebpageClusterer(level2_threshold=3).cluster(dataset)
        return dataset, clustering

    def test_single_region_share(self):
        dataset, clustering = self.build()
        usage = RegionAnalyzer(dataset, clustering, region_of).usage()
        # Cluster A is single-region; B and C touch both.
        assert usage.single_region_share == pytest.approx(100 / 3)

    def test_region_change_detection(self):
        dataset, clustering = self.build()
        usage = RegionAnalyzer(dataset, clustering, region_of).usage()
        # Cluster C gains one region between its first and second half.
        assert usage.change_shares.get(1, 0) == pytest.approx(100 / 3)
        assert usage.same_region_share() == pytest.approx(200 / 3)

    def test_empty_clustering(self):
        dataset = make_dataset([obs(1, 0, has_page=False, status_code=None)])
        clustering = WebpageClusterer(level2_threshold=3).cluster(dataset)
        usage = RegionAnalyzer(dataset, clustering, region_of).usage()
        assert usage.single_region_share == 0.0


class TestCampaignRegions:
    def test_paper_shape(self, ec2_campaign, ec2_dataset, ec2_clustering):
        """§8.1: ~97% of clusters use one region; region sets sticky."""
        analyzer = RegionAnalyzer(
            ec2_dataset, ec2_clustering,
            ec2_campaign.scenario.topology.region_of,
        )
        usage = analyzer.usage()
        assert usage.single_region_share > 85.0
        assert usage.same_region_share() > 85.0
        # The top-5%-vs-overall comparison (§8.1: 21.5% vs 3%) needs a
        # larger population and is asserted in bench_region_usage.
        assert 0.0 <= usage.top_multi_region_share <= 100.0
        assert sum(usage.change_shares.values()) == pytest.approx(100.0)
