"""Tests for cluster lifetime/uptime and within-cluster IP churn."""

from __future__ import annotations

import pytest

from repro.analysis.clustering import WebpageClusterer
from repro.analysis.uptime import UptimeAnalyzer

from _obs import make_dataset, obs


def build(observations):
    dataset = make_dataset(observations, targets_probed=50)
    clustering = WebpageClusterer(level2_threshold=3).cluster(dataset)
    return dataset, clustering


def single_cluster(clustering):
    assert len(clustering.clusters) == 1
    return next(iter(clustering.clusters.values()))


class TestClusterUptime:
    def test_always_available(self):
        dataset, clustering = build([
            obs(1, rid, title="a", simhash=5) for rid in range(4)
        ])
        analyzer = UptimeAnalyzer(dataset, clustering)
        cluster = single_cluster(clustering)
        assert analyzer.cluster_uptime(cluster) == 100.0
        assert analyzer.lifetime_window(cluster) == [0, 1, 2, 3]

    def test_gap_reduces_uptime(self):
        """§8.1's example: first seen day one, last seen 10 days later,
        one silent day in between -> uptime < 100%."""
        observations = [
            obs(1, rid, title="a", simhash=5) for rid in (0, 1, 3, 4)
        ]
        observations.append(
            obs(1, 2, title="a", simhash=5, status_code=None, has_page=False)
        )
        dataset, clustering = build(observations)
        analyzer = UptimeAnalyzer(dataset, clustering)
        cluster = single_cluster(clustering)
        assert analyzer.cluster_uptime(cluster) == pytest.approx(80.0)

    def test_lifetime_excludes_leading_trailing_absence(self):
        observations = [
            obs(1, rid, title="a", simhash=5) for rid in (2, 3)
        ]
        observations.append(obs(9, 0, title="pad", simhash=1 << 60))
        observations.append(obs(9, 5, title="pad", simhash=1 << 60))
        dataset, clustering = build(observations)
        analyzer = UptimeAnalyzer(dataset, clustering)
        target = next(
            c for c in clustering.clusters.values() if c.title == "a"
        )
        assert analyzer.lifetime_window(target) == [2, 3]
        assert analyzer.cluster_uptime(target) == 100.0


class TestIpUptime:
    def test_stable_ips_full_uptime(self):
        dataset, clustering = build(
            [obs(ip, rid, title="a", simhash=5)
             for ip in (1, 2) for rid in range(4)]
        )
        analyzer = UptimeAnalyzer(dataset, clustering)
        cluster = single_cluster(clustering)
        assert analyzer.average_ip_uptime(cluster) == 100.0

    def test_churning_ips_reduce_average(self):
        """An IP used half the time halves its uptime contribution."""
        observations = [obs(1, rid, title="a", simhash=5) for rid in range(4)]
        observations += [obs(2, rid, title="a", simhash=5) for rid in (0, 1)]
        dataset, clustering = build(observations)
        analyzer = UptimeAnalyzer(dataset, clustering)
        cluster = single_cluster(clustering)
        uptimes = analyzer.ip_uptimes(cluster)
        assert uptimes[1] == 100.0
        assert uptimes[2] == 50.0
        assert analyzer.average_ip_uptime(cluster) == 75.0

    def test_distribution_filters_small_clusters(self):
        observations = [obs(1, rid, title="solo", simhash=5)
                        for rid in range(4)]
        observations += [
            obs(ip, rid, title="duo", simhash=1 << 70)
            for ip in (10, 11) for rid in range(4)
        ]
        dataset, clustering = build(observations)
        analyzer = UptimeAnalyzer(dataset, clustering)
        values = analyzer.average_ip_uptime_distribution(min_size=2.0)
        assert values == [100.0]       # only the duo cluster qualifies


class TestUsageRow:
    def test_size_statistics(self):
        observations = []
        for rid, ips in enumerate(((1, 2), (1, 2, 3), (1,))):
            for ip in ips:
                observations.append(obs(ip, rid, title="a", simhash=5))
        dataset, clustering = build(observations)
        analyzer = UptimeAnalyzer(
            dataset, clustering,
            region_of=lambda ip: "east" if ip < 3 else "west",
            kind_of=lambda ip: "vpc" if ip == 2 else "classic",
        )
        row = analyzer.usage_row(single_cluster(clustering))
        assert row.total_ips == 3
        assert row.mean_size == pytest.approx(2.0)
        assert row.median_size == 2
        assert row.min_size == 1
        assert row.max_size == 3
        assert row.regions_used == 2
        assert row.mean_vpc_ips == pytest.approx(2 / 3)
        # Max departure: round 2 has {1}; ips 2,3 left -> 2/1 = 200%.
        assert row.max_ip_departure == pytest.approx(200.0)
        # Only ip 1 used whenever the cluster had members.
        assert row.stable_ip_share == pytest.approx(100 / 3)

    def test_top_clusters_ranked(self, ec2_dataset, ec2_clustering):
        analyzer = UptimeAnalyzer(ec2_dataset, ec2_clustering)
        rows = analyzer.top_clusters(10)
        assert len(rows) == 10
        sizes = [row.mean_size for row in rows]
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[0] > 5  # the scaled PaaS giant dominates

    def test_campaign_uptime_bands(self, ec2_dataset, ec2_clustering):
        """Figure 12's shape: most clusters of size >= 2 have high
        average IP uptime; large clusters churn more."""
        analyzer = UptimeAnalyzer(ec2_dataset, ec2_clustering)
        values = analyzer.average_ip_uptime_distribution(min_size=2.0)
        assert values
        high = sum(1 for v in values if v >= 90.0)
        # Paper: ~half of size >= 2 clusters exceed 90%; the tiny test
        # campaign has only ~two dozen such clusters, so allow slack.
        assert high / len(values) > 0.15
        assert max(values) >= 95.0
