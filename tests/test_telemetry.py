"""Tests for the telemetry subsystem: metric primitives, the registry
and its Prometheus exposition, trace spans and the JSONL sink, the
process-global lifecycle, the scrape endpoint, and the guarantee that
enabling telemetry never changes what a campaign writes to the store.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import telemetry
from repro.core.config import TelemetryConfig
from repro.core.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NOOP_METRIC,
    NOOP_SPAN,
    SpanRecord,
    Telemetry,
    TraceSink,
    parse_prometheus,
    read_trace,
    start_metrics_server,
)


@pytest.fixture(autouse=True)
def _isolated_global_telemetry():
    """Every test starts and ends with the disabled default."""
    telemetry.reset()
    yield
    telemetry.reset()


# ----------------------------------------------------------------------
# metric primitives


class TestCounter:
    def test_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_raises(self):
        counter = Counter()
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert counter.value == 0.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12.0

    def test_can_go_negative(self):
        gauge = Gauge()
        gauge.dec(2)
        assert gauge.value == -2.0


class TestHistogramBuckets:
    def test_boundary_value_lands_in_its_le_bucket(self):
        # Prometheus buckets are "le" (less-or-equal): an observation
        # exactly on a bound belongs to that bound's bucket.
        histogram = Histogram(bounds=(1.0, 2.0, 5.0))
        histogram.observe(1.0)
        assert histogram.bucket_counts == [1, 0, 0, 0]

    def test_just_above_boundary_goes_to_next_bucket(self):
        histogram = Histogram(bounds=(1.0, 2.0, 5.0))
        histogram.observe(1.0000001)
        assert histogram.bucket_counts == [0, 1, 0, 0]

    def test_overflow_goes_to_inf_bucket(self):
        histogram = Histogram(bounds=(1.0, 2.0, 5.0))
        histogram.observe(100.0)
        assert histogram.bucket_counts == [0, 0, 0, 1]

    def test_zero_and_below_first_bound(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        histogram.observe(0.0)
        histogram.observe(0.5)
        assert histogram.bucket_counts == [2, 0, 0]

    def test_sum_and_count(self):
        histogram = Histogram(bounds=(1.0,))
        histogram.observe(0.5)
        histogram.observe(3.0)
        assert histogram.count == 2
        assert histogram.sum == pytest.approx(3.5)

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=())

    def test_quantile_interpolates(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        for _ in range(100):
            histogram.observe(1.5)
        # All mass sits in the (1, 2] bucket: the median estimate is
        # the linear midpoint of that bucket.
        assert histogram.quantile(0.5) == pytest.approx(1.5)
        assert histogram.p99 == pytest.approx(1.99)

    def test_quantile_empty_is_zero(self):
        assert Histogram(bounds=(1.0,)).quantile(0.5) == 0.0

    def test_quantile_out_of_range(self):
        histogram = Histogram(bounds=(1.0,))
        with pytest.raises(ValueError):
            histogram.quantile(0.0)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=100), max_size=50))
    def test_bucket_counts_always_sum_to_count(self, values):
        histogram = Histogram(bounds=(0.1, 1.0, 10.0))
        for value in values:
            histogram.observe(value)
        assert sum(histogram.bucket_counts) == histogram.count == len(values)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(min_value=0, max_value=5), min_size=1,
                 max_size=50),
        st.floats(min_value=0.01, max_value=1.0),
    )
    def test_quantile_bounded_by_bucket_width(self, values, q):
        # The estimate can never leave the histogram's value range
        # [0, last_bound]: interpolation stays inside the winning bucket.
        histogram = Histogram(bounds=(1.0, 2.0, 5.0))
        for value in values:
            histogram.observe(value)
        estimate = histogram.quantile(q)
        assert 0.0 <= estimate <= 5.0


# ----------------------------------------------------------------------
# families, labels, registry


class TestLabels:
    def test_children_keyed_by_label_values(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", "x", labels=("stage",))
        family.labels(stage="scan").inc()
        family.labels(stage="scan").inc()
        family.labels(stage="fetch").inc(3)
        assert family.labels(stage="scan").value == 2.0
        assert family.labels(stage="fetch").value == 3.0

    def test_wrong_label_names_raise(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", "x", labels=("stage",))
        with pytest.raises(ValueError):
            family.labels(phase="scan")
        with pytest.raises(ValueError):
            family.labels(stage="scan", extra="y")
        with pytest.raises(ValueError):
            family.labels()

    def test_labelled_family_rejects_anonymous_use(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", "x", labels=("stage",))
        with pytest.raises(ValueError):
            family.inc()

    def test_unlabelled_family_proxies(self):
        registry = MetricsRegistry()
        family = registry.counter("y_total", "y")
        family.inc(2)
        assert family.value == 2.0

    def test_label_values_coerced_to_str(self):
        registry = MetricsRegistry()
        family = registry.gauge("z", "z", labels=("worker",))
        family.labels(worker=3).set(1)
        assert family.labels(worker="3").value == 1.0

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.sampled_from(["a", "b", "c", "d"]), max_size=40))
    def test_per_label_counts_partition_the_total(self, events):
        registry = MetricsRegistry()
        family = registry.counter("e_total", "e", labels=("kind",))
        for kind in events:
            family.labels(kind=kind).inc()
        total = sum(child.value for _, child in family.children())
        assert total == len(events)

    def test_registration_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("a_total", "a", labels=("x",))
        again = registry.counter("a_total", "different help",
                                 labels=("x",))
        assert first is again

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "a")
        with pytest.raises(ValueError):
            registry.gauge("a_total", "a")

    def test_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "a", labels=("x",))
        with pytest.raises(ValueError):
            registry.counter("a_total", "a", labels=("y",))


class TestExposition:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "requests", labels=("stage",)) \
            .labels(stage="fetch").inc(7)
        registry.gauge("depth", "queue depth").set(3)
        histogram = registry.histogram("lat_seconds", "latency",
                                       buckets=(0.5, 1.0))
        histogram.observe(0.3)
        histogram.observe(2.0)
        return registry

    def test_render_contains_help_type_and_samples(self):
        text = self._registry().render_prometheus()
        assert "# HELP req_total requests" in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{stage="fetch"} 7' in text
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_count 2" in text

    def test_histogram_buckets_are_cumulative(self):
        text = self._registry().render_prometheus()
        assert 'lat_seconds_bucket{le="0.5"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 1' in text

    def test_parse_round_trips_render(self):
        registry = self._registry()
        samples = parse_prometheus(registry.render_prometheus())
        assert samples[("req_total", (("stage", "fetch"),))] == 7.0
        assert samples[("depth", ())] == 3.0
        assert samples[("lat_seconds_count", ())] == 2.0
        assert samples[("lat_seconds_bucket", (("le", "+Inf"),))] == 2.0

    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        family = registry.counter("odd_total", "odd", labels=("name",))
        family.labels(name='a"b\\c,d').inc()
        samples = parse_prometheus(registry.render_prometheus())
        assert samples[("odd_total", (("name", 'a"b\\c,d'),))] == 1.0

    def test_snapshot_shape(self):
        snapshot = self._registry().snapshot()
        assert snapshot["req_total"]["kind"] == "counter"
        assert snapshot["depth"]["samples"][0]["value"] == 3.0


# ----------------------------------------------------------------------
# spans and the trace sink


class TestSpans:
    def _enabled(self, tmp_path=None, ring_size=4096):
        path = str(tmp_path / "trace.jsonl") if tmp_path else None
        return Telemetry(TelemetryConfig(
            enabled=True, trace_path=path, ring_size=ring_size,
        ))

    def test_span_records_duration_and_context(self):
        tel = self._enabled()
        with tel.span("fetch", round_id=3, shard=1, worker=0):
            pass
        [span] = tel.trace.recent()
        assert span.stage == "fetch"
        assert span.outcome == "ok"
        assert (span.round_id, span.shard, span.worker) == (3, 1, 0)
        assert span.duration >= 0.0

    def test_span_exception_path(self):
        tel = self._enabled()
        with pytest.raises(KeyError):
            with tel.span("extract"):
                raise KeyError("boom")
        [span] = tel.trace.recent()
        assert span.outcome == "error"
        assert span.error_kind == "KeyError"

    def test_spans_nest(self):
        tel = self._enabled()
        with tel.span("outer"):
            with tel.span("inner"):
                pass
        stages = [span.stage for span in tel.trace.recent()]
        # The inner span finishes (and is journaled) first.
        assert stages == ["inner", "outer"]

    def test_nested_exception_marks_both(self):
        tel = self._enabled()
        with pytest.raises(RuntimeError):
            with tel.span("outer"):
                with tel.span("inner"):
                    raise RuntimeError
        inner, outer = tel.trace.recent()
        assert inner.outcome == outer.outcome == "error"

    def test_span_metrics(self):
        tel = self._enabled()
        with tel.span("scan"):
            pass
        with pytest.raises(ValueError):
            with tel.span("scan"):
                raise ValueError
        samples = parse_prometheus(tel.registry.render_prometheus())
        key_ok = ("repro_spans_total",
                  (("outcome", "ok"), ("stage", "scan")))
        key_err = ("repro_spans_total",
                   (("outcome", "error"), ("stage", "scan")))
        assert samples[key_ok] == 1.0
        assert samples[key_err] == 1.0

    def test_ring_is_bounded(self):
        tel = self._enabled(ring_size=4)
        for index in range(10):
            with tel.span(f"s{index}"):
                pass
        recent = tel.trace.recent()
        assert len(recent) == 4
        assert recent[-1].stage == "s9"

    def test_jsonl_round_trip(self, tmp_path):
        tel = self._enabled(tmp_path)
        with tel.span("fetch", round_id=1):
            pass
        with pytest.raises(ValueError):
            with tel.span("extract", shard=2):
                raise ValueError
        tel.close()
        spans = list(read_trace(str(tmp_path / "trace.jsonl")))
        assert [span.stage for span in spans] == ["fetch", "extract"]
        assert spans[1].error_kind == "ValueError"

    def test_read_trace_skips_torn_lines(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        good = json.dumps(SpanRecord("scan", 0.0, 0.1, "ok").to_dict())
        path.write_text(f'{good}\n{{"stage": "fe\n{good}\n')
        spans = list(read_trace(str(path)))
        assert len(spans) == 2

    def test_concurrent_spans_all_journaled(self, tmp_path):
        tel = self._enabled(tmp_path)

        def work():
            for _ in range(50):
                with tel.span("worker"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        tel.close()
        spans = list(read_trace(str(tmp_path / "trace.jsonl")))
        assert len(spans) == 200

    def test_sink_survives_unwritable_path(self):
        sink = TraceSink(path="/nonexistent-dir/trace.jsonl")
        sink.record(SpanRecord("scan", 0.0, 0.1, "ok"))
        assert sink.dropped_writes == 1
        assert len(sink.recent()) == 1


# ----------------------------------------------------------------------
# lifecycle: no-op default, configure/activate/reset


class TestLifecycle:
    def test_disabled_hands_out_noop_singletons(self):
        tel = Telemetry()
        assert tel.counter("a_total") is NOOP_METRIC
        assert tel.gauge("b") is NOOP_METRIC
        assert tel.histogram("c_seconds") is NOOP_METRIC
        assert tel.span("scan") is NOOP_SPAN
        assert NOOP_METRIC.labels(stage="x") is NOOP_METRIC

    def test_noop_accepts_all_operations(self):
        NOOP_METRIC.inc()
        NOOP_METRIC.dec(2)
        NOOP_METRIC.set(5)
        NOOP_METRIC.observe(0.1)
        assert NOOP_METRIC.value == 0.0
        with NOOP_SPAN:
            pass

    def test_disabled_span_still_propagates_exceptions(self):
        tel = Telemetry()
        with pytest.raises(KeyError):
            with tel.span("scan"):
                raise KeyError

    def test_configure_replaces_global(self):
        config = TelemetryConfig(enabled=True)
        tel = telemetry.configure(config)
        assert telemetry.get() is tel
        assert telemetry.get().enabled

    def test_activate_from_is_idempotent(self):
        config = TelemetryConfig(enabled=True)
        first = telemetry.activate_from(config)
        second = telemetry.activate_from(config)
        assert first is second

    def test_activate_from_disabled_config_is_noop(self):
        before = telemetry.get()
        telemetry.activate_from(TelemetryConfig())
        assert telemetry.get() is before

    def test_reset_disables(self):
        telemetry.configure(TelemetryConfig(enabled=True))
        telemetry.reset()
        assert not telemetry.get().enabled

    def test_config_rejects_bad_ring(self):
        with pytest.raises(ValueError):
            TelemetryConfig(ring_size=0)


# ----------------------------------------------------------------------
# the scrape endpoint


class TestMetricsServer:
    def _fetch(self, port, path):
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=5
        ) as response:
            return response.status, response.read().decode("utf-8")

    def test_serves_metrics_snapshot_and_health(self):
        tel = Telemetry(TelemetryConfig(enabled=True))
        tel.counter("up_total", "up").inc(4)
        server = start_metrics_server(tel, 0)
        port = server.server_address[1]
        try:
            status, body = self._fetch(port, "/metrics")
            assert status == 200
            assert parse_prometheus(body)[("up_total", ())] == 4.0
            status, body = self._fetch(port, "/snapshot")
            assert json.loads(body)["up_total"]["kind"] == "counter"
            status, body = self._fetch(port, "/healthz")
            assert body == "ok\n"
            with pytest.raises(urllib.error.HTTPError):
                self._fetch(port, "/nope")
        finally:
            server.shutdown()
            server.server_close()

    def test_endpoint_reflects_live_updates(self):
        tel = Telemetry(TelemetryConfig(enabled=True))
        counter = tel.counter("tick_total", "ticks")
        server = start_metrics_server(tel, 0)
        port = server.server_address[1]
        try:
            counter.inc()
            _, first = self._fetch(port, "/metrics")
            counter.inc(2)
            _, second = self._fetch(port, "/metrics")
            assert parse_prometheus(first)[("tick_total", ())] == 1.0
            assert parse_prometheus(second)[("tick_total", ())] == 3.0
        finally:
            server.shutdown()
            server.server_close()


# ----------------------------------------------------------------------
# the guarantee: telemetry observes, never participates


class TestStoreOutputUnchanged:
    def _campaign_checksums(self, path, telemetry_on):
        from repro.cli import main
        from repro.core import MeasurementStore

        argv = [
            "simulate", "--cloud", "ec2", "--ips", "512", "--days", "6",
            "--seed", "13", "--out", path,
        ]
        if telemetry_on:
            argv += ["--trace-out", f"{path}.trace.jsonl"]
        assert main(argv) == 0
        store = MeasurementStore(path)
        checksums = {}
        for info in store.rounds():
            checksums[info.round_id] = [
                (entry.shard_index, entry.checksum, entry.record_count)
                for entry in store.shard_journal(info.round_id)
            ]
        store.close()
        return checksums

    def test_enabling_telemetry_is_invisible_in_the_store(self, tmp_path):
        plain = self._campaign_checksums(
            str(tmp_path / "plain.sqlite"), telemetry_on=False
        )
        telemetry.reset()
        traced = self._campaign_checksums(
            str(tmp_path / "traced.sqlite"), telemetry_on=True
        )
        assert plain == traced
        assert traced  # campaigns actually produced rounds

    def test_traced_campaign_wrote_spans(self, tmp_path):
        path = str(tmp_path / "spanned.sqlite")
        self._campaign_checksums(path, telemetry_on=True)
        telemetry.get().close()
        spans = list(read_trace(f"{path}.trace.jsonl"))
        stages = {span.stage for span in spans}
        assert {"scan", "fetch", "extract"} <= stages
        assert all(span.outcome in ("ok", "error") for span in spans)


class TestMetricsServerSlowLoris:
    """The exposition endpoint must shrug off clients that connect and
    stall: each connection's socket read is bounded by request_timeout,
    so a slow-loris cannot pin handler threads."""

    def test_stalled_client_is_dropped_and_server_stays_up(self):
        import socket
        import time as _time

        tel = Telemetry(TelemetryConfig(enabled=True))
        tel.counter("alive_total", "liveness").inc()
        server = start_metrics_server(tel, 0, request_timeout=0.5)
        port = server.server_address[1]
        try:
            # A slow-loris: connect, send a *partial* request line, and
            # hold the socket open without ever finishing it.
            loris = socket.create_connection(("127.0.0.1", port), timeout=5)
            loris.sendall(b"GET /metr")  # never completes
            deadline = _time.monotonic() + 5.0
            dropped = False
            while _time.monotonic() < deadline:
                # The handler times the socket out and closes it; our
                # next recv then observes EOF (empty bytes) or a reset.
                loris.settimeout(0.25)
                try:
                    if loris.recv(1024) == b"":
                        dropped = True
                        break
                except socket.timeout:
                    continue
                except OSError:
                    dropped = True
                    break
            loris.close()
            assert dropped, "stalled connection was never closed"
            # And the server still answers well-formed requests.
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=5
            ) as response:
                assert response.status == 200
                assert "alive_total" in response.read().decode()
        finally:
            server.shutdown()
            server.server_close()

    def test_request_timeout_must_be_positive(self):
        tel = Telemetry(TelemetryConfig(enabled=True))
        with pytest.raises(ValueError):
            start_metrics_server(tel, 0, request_timeout=0)
