"""Tests for provider topologies and IP pools."""

from __future__ import annotations

import random

import pytest

from repro.cloudsim.instances import IpPool
from repro.cloudsim.providers import (
    AZURE_SPEC,
    EC2_SPEC,
    NetKind,
)


class TestProviderTopology:
    def test_total_size_near_target(self):
        topology = EC2_SPEC.build(16384, seed=1)
        assert abs(topology.space.size - 16384) / 16384 < 0.1

    def test_region_names(self):
        topology = EC2_SPEC.build(8192, seed=1)
        names = {r.name for r in topology.space.regions}
        assert "USEast" in names
        assert len(names) == 8

    def test_useast_largest(self):
        topology = EC2_SPEC.build(8192, seed=1)
        sizes = {r.name: r.size for r in topology.space.regions}
        assert sizes["USEast"] == max(sizes.values())

    def test_vpc_share_matches_spec(self):
        topology = EC2_SPEC.build(32768, seed=2)
        summary = topology.vpc_prefix_summary()
        for region_spec in EC2_SPEC.regions:
            _, share = summary[region_spec.name]
            assert share == pytest.approx(
                region_spec.vpc_fraction * 100.0, abs=12.0
            )

    def test_azure_has_no_vpc(self):
        topology = AZURE_SPEC.build(4096, seed=1)
        summary = topology.vpc_prefix_summary()
        assert all(count == 0 for count, _ in summary.values())

    def test_kind_and_region_lookup(self):
        topology = EC2_SPEC.build(8192, seed=3)
        for address in list(topology.space.addresses())[::997]:
            assert topology.kind_of(address) in (NetKind.CLASSIC, NetKind.VPC)
            assert topology.region_of(address)

    def test_lookup_outside_space(self):
        topology = EC2_SPEC.build(1024, seed=1)
        with pytest.raises(KeyError):
            topology.kind_of(1)

    def test_deterministic_given_seed(self):
        a = EC2_SPEC.build(4096, seed=9)
        b = EC2_SPEC.build(4096, seed=9)
        assert list(a.space.addresses())[:100] == list(b.space.addresses())[:100]
        sample = list(a.space.addresses())[::503]
        assert [a.kind_of(x) for x in sample] == [b.kind_of(x) for x in sample]

    def test_zero_ips_rejected(self):
        with pytest.raises(ValueError):
            EC2_SPEC.build(0)

    def test_disjoint_provider_spaces(self):
        ec2 = EC2_SPEC.build(4096, seed=1)
        azure = AZURE_SPEC.build(4096, seed=1)
        ec2_sample = set(list(ec2.space.addresses())[::100])
        assert not any(a in azure.space for a in ec2_sample)


class TestIpPool:
    def make_pool(self, rng=None) -> IpPool:
        return IpPool(
            {
                NetKind.CLASSIC: list(range(100, 110)),
                NetKind.VPC: list(range(200, 205)),
            },
            rng or random.Random(0),
        )

    def test_acquire_release_cycle(self):
        pool = self.make_pool()
        address = pool.acquire(NetKind.CLASSIC)
        assert 100 <= address < 110
        assert pool.available(NetKind.CLASSIC) == 9
        pool.release(address)
        assert pool.available(NetKind.CLASSIC) == 10

    def test_kind_respected(self):
        pool = self.make_pool()
        address = pool.acquire(NetKind.VPC)
        assert 200 <= address < 205
        assert pool.kind_of(address) == NetKind.VPC

    def test_mixed_prefers_classic(self):
        pool = self.make_pool()
        address = pool.acquire("mixed")
        assert 100 <= address < 110

    def test_fallback_when_exhausted(self):
        pool = self.make_pool()
        for _ in range(5):
            pool.acquire(NetKind.VPC)
        # VPC empty: falls back to classic rather than failing.
        address = pool.acquire(NetKind.VPC)
        assert 100 <= address < 110

    def test_none_when_fully_exhausted(self):
        pool = self.make_pool()
        for _ in range(15):
            assert pool.acquire("mixed") is not None
        assert pool.acquire("mixed") is None

    def test_release_unknown_rejected(self):
        pool = self.make_pool()
        with pytest.raises(KeyError):
            pool.release(999)

    def test_no_duplicate_acquisitions(self):
        pool = self.make_pool()
        seen = set()
        for _ in range(15):
            address = pool.acquire("mixed")
            assert address not in seen
            seen.add(address)


class TestPrefixLengthResolution:
    def test_auto_length_bounds(self):
        assert 22 <= EC2_SPEC.resolve_prefix_length(1024) <= 28
        assert 22 <= EC2_SPEC.resolve_prefix_length(10_000_000) <= 28

    def test_large_space_uses_short_prefixes(self):
        small = EC2_SPEC.resolve_prefix_length(4096)
        large = EC2_SPEC.resolve_prefix_length(4_000_000)
        assert large < small

    def test_explicit_length_respected(self):
        import dataclasses

        spec = dataclasses.replace(EC2_SPEC, prefix_length=24)
        assert spec.resolve_prefix_length(512) == 24
        topology = spec.build(2048, seed=1)
        assert topology.prefix_length == 24
