"""Tests for the Safe Browsing and VirusTotal simulators."""

from __future__ import annotations

import pytest

from repro.cloudsim.blacklist import SafeBrowsingSim, VirusTotalSim, is_vt_visible
from repro.cloudsim.population import WorkloadSpec
from repro.cloudsim.providers import EC2_SPEC
from repro.cloudsim.services import PORT_PROFILES_EC2
from repro.cloudsim.simulation import CloudSimulation
from repro.cloudsim.software import EC2_CATALOG


@pytest.fixture(scope="module")
def sim() -> CloudSimulation:
    workload = WorkloadSpec(
        cloud="EC2",
        duration_days=40,
        malicious_embedders=8,
        malicious_hosters=10,
        linchpin_services=1,
    )
    topology = EC2_SPEC.build(2048, seed=31)
    simulation = CloudSimulation(
        topology, workload, EC2_CATALOG, PORT_PROFILES_EC2, seed=31
    )
    simulation.advance_to(39)
    return simulation


class TestSafeBrowsing:
    def test_listing_has_lag(self, sim):
        sb = SafeBrowsingSim(sim, seed=1, coverage=1.0, mean_lag_days=3.0)
        listed = sb.listed_urls()
        assert listed
        lags = []
        for url, (category, day) in listed.items():
            assert category in ("malware", "phishing")
            lags.append(day)
        assert any(day > 0 for day in lags)

    def test_lookup_respects_listing_day(self, sim):
        sb = SafeBrowsingSim(sim, seed=1, coverage=1.0)
        url, (category, day) = next(
            (u, meta) for u, meta in sb.listed_urls().items() if meta[1] > 0
        )
        assert sb.lookup(url, day - 1) == "ok"
        assert sb.lookup(url, day) == category
        assert sb.lookup(url, day + 30) == category

    def test_unknown_url_ok(self, sim):
        sb = SafeBrowsingSim(sim, seed=1)
        assert sb.lookup("http://benign.example.com/", 10) == "ok"

    def test_coverage_zero_lists_nothing(self, sim):
        sb = SafeBrowsingSim(sim, seed=1, coverage=0.0)
        assert not sb.listed_urls()

    def test_deterministic(self, sim):
        a = SafeBrowsingSim(sim, seed=4).listed_urls()
        b = SafeBrowsingSim(sim, seed=4).listed_urls()
        assert a == b

    def test_lookup_counter(self, sim):
        sb = SafeBrowsingSim(sim, seed=1)
        sb.lookup("http://a.example/", 0)
        sb.lookup("http://b.example/", 0)
        assert sb.lookup_count == 2


class TestVirusTotal:
    def test_reports_deterministic(self, sim):
        vt = VirusTotalSim(sim, seed=2)
        malicious_ip = self.find_malicious_ip(sim)
        assert vt.report(malicious_ip) == vt.report(malicious_ip)

    @staticmethod
    def find_malicious_ip(sim) -> int:
        for interval in sim.log.intervals:
            service = sim.services[interval.service_id]
            if is_vt_visible(service):
                return interval.ip
        pytest.skip("no VT-visible deployment at this seed")

    def test_malicious_ip_detected(self, sim):
        vt = VirusTotalSim(sim, seed=2, engine_coverage=1.0,
                           mean_lag_days=0.1)
        ip = self.find_malicious_ip(sim)
        report = vt.report(ip)
        assert report.detections
        assert report.is_malicious()
        assert report.first_detection_day() <= report.last_detection_day()

    def test_detected_urls_point_at_malicious_domains(self, sim):
        vt = VirusTotalSim(sim, seed=2, engine_coverage=1.0,
                           mean_lag_days=0.1)
        report = vt.report(self.find_malicious_ip(sim))
        for detection in report.detections:
            assert detection.url.startswith("http://")
            assert detection.category in ("malware", "phishing")

    def test_clean_ip_mostly_empty(self, sim):
        vt = VirusTotalSim(sim, seed=2, false_positive_rate=0.0)
        clean_ips = [
            ip for ip in list(sim.assignments())[:50]
            if all(
                not is_vt_visible(sim.services[i.service_id])
                for i in sim.log.intervals_for_ip(ip)
            )
        ]
        for ip in clean_ips:
            assert not vt.report(ip).detections

    def test_false_positives_single_engine(self, sim):
        vt = VirusTotalSim(sim, seed=2, false_positive_rate=1.0)
        clean_ip = next(
            ip for ip in sim.assignments()
            if all(
                not is_vt_visible(sim.services[i.service_id])
                for i in sim.log.intervals_for_ip(ip)
            )
        )
        report = vt.report(clean_ip)
        assert len(report.engines) == 1
        assert not report.is_malicious(min_engines=2)

    def test_min_engines_rule(self, sim):
        vt = VirusTotalSim(sim, seed=2, engine_coverage=1.0,
                           mean_lag_days=0.1)
        report = vt.report(self.find_malicious_ip(sim))
        assert report.is_malicious(min_engines=2)
        assert not report.is_malicious(min_engines=len(vt.ENGINES) + 1)
