"""Tests for the webpage fetcher (§4 semantics, §7 robots handling)."""

from __future__ import annotations

import asyncio

from repro.core.config import FetchConfig
from repro.core.fetcher import Fetcher, parse_robots
from repro.core.records import FetchStatus, ProbeOutcome, ProbeStatus

from _fakes import FakeTransport


def outcome(ip: int, ports) -> ProbeOutcome:
    return ProbeOutcome(
        ip=ip, status=ProbeStatus.RESPONSIVE, open_ports=frozenset(ports)
    )


class TestParseRobots:
    def test_empty_allows(self):
        assert parse_robots("")

    def test_disallow_all(self):
        assert not parse_robots("User-agent: *\nDisallow: /\n")

    def test_disallow_subpath_allows_root(self):
        assert parse_robots("User-agent: *\nDisallow: /private\n")

    def test_empty_disallow_allows(self):
        assert parse_robots("User-agent: *\nDisallow:\n")

    def test_other_agent_group_ignored(self):
        body = "User-agent: googlebot\nDisallow: /\n"
        assert parse_robots(body, user_agent="WhoWas-research-scanner/1.0")

    def test_matching_agent_group_applies(self):
        body = "User-agent: whowas\nDisallow: /\n"
        assert not parse_robots(body, user_agent="WhoWas-research-scanner/1.0")

    def test_comments_ignored(self):
        body = "# nothing to see\nUser-agent: *  # all\nDisallow: /private\n"
        assert parse_robots(body)


class TestFetchIp:
    def test_fetches_page(self):
        transport = FakeTransport()
        transport.add_host(1, {80}, body="<html><title>x</title></html>")
        fetcher = Fetcher(transport)
        result = asyncio.run(fetcher.fetch_ip(outcome(1, {80})))
        assert result.status is FetchStatus.OK
        assert result.status_code == 200
        assert "title" in (result.body or "")
        assert result.url.startswith("http://")

    def test_https_only_host_uses_https(self):
        transport = FakeTransport()
        transport.add_host(1, {443})
        fetcher = Fetcher(transport)
        result = asyncio.run(fetcher.fetch_ip(outcome(1, {443})))
        assert result.url.startswith("https://")

    def test_ssh_only_not_attempted(self):
        fetcher = Fetcher(FakeTransport())
        result = asyncio.run(fetcher.fetch_ip(outcome(1, {22})))
        assert result.status is FetchStatus.NOT_ATTEMPTED

    def test_robots_disallow_respected(self):
        transport = FakeTransport()
        transport.add_host(1, {80}, robots_body="User-agent: *\nDisallow: /\n")
        fetcher = Fetcher(transport)
        result = asyncio.run(fetcher.fetch_ip(outcome(1, {80})))
        assert result.status is FetchStatus.ROBOTS_DISALLOWED
        assert result.body is None
        # Only robots.txt was requested, never the page.
        assert transport.get_calls == [(1, "http", "/robots.txt")]

    def test_robots_can_be_disabled(self):
        transport = FakeTransport()
        transport.add_host(1, {80}, robots_body="User-agent: *\nDisallow: /\n")
        fetcher = Fetcher(transport, FetchConfig(respect_robots=False))
        result = asyncio.run(fetcher.fetch_ip(outcome(1, {80})))
        assert result.status is FetchStatus.OK

    def test_at_most_two_gets(self):
        """§4: at most two GETs per IP per round."""
        transport = FakeTransport()
        transport.add_host(1, {80})
        fetcher = Fetcher(transport)
        asyncio.run(fetcher.fetch_ip(outcome(1, {80})))
        assert len(transport.get_calls) == 2

    def test_error_recorded(self):
        transport = FakeTransport()
        transport.open_ports[1] = {80}
        transport.errors[1] = "connection reset"
        fetcher = Fetcher(transport)
        result = asyncio.run(fetcher.fetch_ip(outcome(1, {80})))
        assert result.status is FetchStatus.ERROR
        assert "connection reset" in (result.error or "")

    def test_binary_content_not_stored(self):
        """§4: application/* (and media) bodies are never stored."""
        transport = FakeTransport()
        transport.add_host(1, {80}, body="PDFPDF",
                           content_type="application/pdf")
        fetcher = Fetcher(transport)
        result = asyncio.run(fetcher.fetch_ip(outcome(1, {80})))
        assert result.status is FetchStatus.OK
        assert result.body is None

    def test_json_content_stored(self):
        transport = FakeTransport()
        transport.add_host(1, {80}, body='{"a": 1}',
                           content_type="application/json")
        fetcher = Fetcher(transport)
        result = asyncio.run(fetcher.fetch_ip(outcome(1, {80})))
        assert result.body == '{"a": 1}'

    def test_body_truncated_to_cap(self):
        transport = FakeTransport()
        transport.add_host(1, {80}, body="x" * 4096)
        fetcher = Fetcher(transport, FetchConfig(max_body_bytes=1024))
        result = asyncio.run(fetcher.fetch_ip(outcome(1, {80})))
        assert len(result.body or "") == 1024

    def test_fetch_many_preserves_order(self):
        transport = FakeTransport()
        transport.add_host(1, {80}, body="one")
        transport.add_host(2, {80}, body="two")
        fetcher = Fetcher(transport)
        results = fetcher.fetch_sync([outcome(2, {80}), outcome(1, {80})])
        assert [r.ip for r in results] == [2, 1]
        assert results[0].body == "two"

    def test_user_agent_sent(self):
        captured = {}

        class RecordingTransport(FakeTransport):
            async def get(self, ip, scheme, path, *, timeout, max_body,
                          headers=None):
                captured["headers"] = headers
                return await super().get(
                    ip, scheme, path, timeout=timeout, max_body=max_body
                )

        transport = RecordingTransport()
        transport.add_host(1, {80})
        fetcher = Fetcher(transport)
        asyncio.run(fetcher.fetch_ip(outcome(1, {80})))
        assert "WhoWas" in captured["headers"]["User-Agent"]


class TestRobotsErrorPaths:
    def test_unreachable_robots_allows_fetch(self):
        """A robots.txt connection failure must not block the fetch."""
        class FlakyRobotsTransport(FakeTransport):
            async def get(self, ip, scheme, path, *, timeout, max_body,
                          headers=None):
                if path == "/robots.txt":
                    from repro.core.transport import TransportError

                    raise TransportError("reset")
                return await super().get(
                    ip, scheme, path, timeout=timeout, max_body=max_body
                )

        transport = FlakyRobotsTransport()
        transport.add_host(1, {80}, body="<html>ok</html>")
        fetcher = Fetcher(transport)
        result = asyncio.run(fetcher.fetch_ip(outcome(1, {80})))
        assert result.status is FetchStatus.OK

    def test_robots_500_allows_fetch(self):
        from repro.core.transport import HttpResponse

        transport = FakeTransport()
        transport.add_host(1, {80})
        transport.robots[1] = HttpResponse(500, {}, b"oops")
        fetcher = Fetcher(transport)
        result = asyncio.run(fetcher.fetch_ip(outcome(1, {80})))
        assert result.status is FetchStatus.OK
