"""Tests for the webpage fetcher (§4 semantics, §7 robots handling)."""

from __future__ import annotations

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FetchConfig
from repro.core.fetcher import Fetcher, parse_robots
from repro.core.records import FetchStatus, ProbeOutcome, ProbeStatus

from _fakes import FakeTransport


def outcome(ip: int, ports) -> ProbeOutcome:
    return ProbeOutcome(
        ip=ip, status=ProbeStatus.RESPONSIVE, open_ports=frozenset(ports)
    )


class TestParseRobots:
    def test_empty_allows(self):
        assert parse_robots("")

    def test_disallow_all(self):
        assert not parse_robots("User-agent: *\nDisallow: /\n")

    def test_disallow_subpath_allows_root(self):
        assert parse_robots("User-agent: *\nDisallow: /private\n")

    def test_empty_disallow_allows(self):
        assert parse_robots("User-agent: *\nDisallow:\n")

    def test_other_agent_group_ignored(self):
        body = "User-agent: googlebot\nDisallow: /\n"
        assert parse_robots(body, user_agent="WhoWas-research-scanner/1.0")

    def test_matching_agent_group_applies(self):
        body = "User-agent: whowas\nDisallow: /\n"
        assert not parse_robots(body, user_agent="WhoWas-research-scanner/1.0")

    def test_comments_ignored(self):
        body = "# nothing to see\nUser-agent: *  # all\nDisallow: /private\n"
        assert parse_robots(body)

    def test_comment_only_file_allows(self):
        assert parse_robots("# one\n# two\n   # three\n")

    def test_multi_agent_group_any_member_matching_applies(self):
        """Consecutive User-agent lines form one group: its rules apply
        when *any* named agent matches — even if a later, non-matching
        agent line follows the matching one."""
        body = "User-agent: whowas\nUser-agent: googlebot\nDisallow: /\n"
        assert not parse_robots(body, user_agent="whowas-scanner/1.0")
        body = "User-agent: googlebot\nUser-agent: whowas\nDisallow: /\n"
        assert not parse_robots(body, user_agent="whowas-scanner/1.0")

    def test_multi_agent_group_no_member_matching_ignored(self):
        body = "User-agent: googlebot\nUser-agent: bingbot\nDisallow: /\n"
        assert parse_robots(body, user_agent="whowas-scanner/1.0")

    def test_new_group_resets_agent_match(self):
        """A User-agent line after rules starts a fresh group — it must
        not inherit the previous group's match."""
        body = (
            "User-agent: whowas\nDisallow: /private\n"
            "User-agent: googlebot\nDisallow: /\n"
        )
        assert parse_robots(body, user_agent="whowas-scanner/1.0")

    def test_crlf_line_endings(self):
        body = "User-agent: *\r\nDisallow: /\r\n"
        assert not parse_robots(body)
        body = "User-agent: *\r\nDisallow: /private\r\n"
        assert parse_robots(body)

    def test_empty_agent_token_never_matches(self):
        body = "User-agent:\nDisallow: /\n"
        assert parse_robots(body, user_agent="whowas-scanner/1.0")


def _reference_parse_robots(body: str, user_agent: str) -> bool:
    """Straight-line reference implementation: build explicit groups of
    (agent tokens, disallow values), then apply the matching rule."""
    agent_lower = user_agent.lower()
    groups: list[tuple[list[str], list[str]]] = []
    current: tuple[list[str], list[str]] | None = None
    reading_agents = False
    for raw_line in body.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line or ":" not in line:
            continue
        field, _, value = line.partition(":")
        field = field.strip().lower()
        value = value.strip()
        if field == "user-agent":
            if not reading_agents:
                current = ([], [])
                groups.append(current)
            current[0].append(value.lower())
            reading_agents = True
        else:
            reading_agents = False
            if field == "disallow" and current is not None:
                current[1].append(value)
    for agents, disallows in groups:
        applies = any(
            token == "*" or (token != "" and token in agent_lower)
            for token in agents
        )
        if applies and "/" in disallows:
            return False
    return True


_AGENT_TOKENS = st.sampled_from(
    ["*", "whowas", "googlebot", "bingbot", "WhoWas-Research", ""]
)
_DISALLOW_VALUES = st.sampled_from(["/", "", "/private", "/cgi-bin/", "/ "])


@st.composite
def robots_bodies(draw) -> str:
    """Structured robots.txt files: groups of UA lines + rules, with
    comments, junk lines, odd casing, and CRLF mixed in."""
    lines: list[str] = []
    for _ in range(draw(st.integers(0, 4))):
        group_kind = draw(st.integers(0, 9))
        if group_kind == 0:
            lines.append(draw(st.sampled_from(
                ["# comment", "   ", "no-colon-line", "Crawl-delay: 10"]
            )))
            continue
        for _ in range(draw(st.integers(1, 3))):
            field = draw(st.sampled_from(
                ["User-agent", "user-agent", "USER-AGENT", "  User-Agent  "]
            ))
            lines.append(f"{field}: {draw(_AGENT_TOKENS)}")
            if draw(st.booleans()):
                lines.append("# interleaved comment")
        for _ in range(draw(st.integers(0, 3))):
            field = draw(st.sampled_from(["Disallow", "disallow", " Disallow "]))
            lines.append(f"{field}: {draw(_DISALLOW_VALUES)}")
    newline = draw(st.sampled_from(["\n", "\r\n"]))
    return newline.join(lines) + draw(st.sampled_from(["", newline]))


class TestParseRobotsProperties:
    @settings(max_examples=300, deadline=None)
    @given(body=robots_bodies(),
           agent=st.sampled_from(["whowas-scanner/1.0", "GoogleBot/2.1", "x"]))
    def test_matches_reference_parser(self, body: str, agent: str):
        assert parse_robots(body, agent) == _reference_parse_robots(body, agent)

    @settings(max_examples=100, deadline=None)
    @given(body=robots_bodies(), agent=st.text(max_size=20))
    def test_total_on_any_input(self, body: str, agent: str):
        """Never raises, always returns a bool, CRLF-insensitive."""
        result = parse_robots(body, agent)
        assert isinstance(result, bool)
        assert parse_robots(body.replace("\n", "\r\n"), agent) == result

    @settings(max_examples=100, deadline=None)
    @given(body=st.text(alphabet=st.characters(codec="utf-8"), max_size=200))
    def test_arbitrary_garbage_never_crashes(self, body: str):
        assert isinstance(parse_robots(body, "whowas"), bool)


class TestFetchIp:
    def test_fetches_page(self):
        transport = FakeTransport()
        transport.add_host(1, {80}, body="<html><title>x</title></html>")
        fetcher = Fetcher(transport)
        result = asyncio.run(fetcher.fetch_ip(outcome(1, {80})))
        assert result.status is FetchStatus.OK
        assert result.status_code == 200
        assert "title" in (result.body or "")
        assert result.url.startswith("http://")

    def test_https_only_host_uses_https(self):
        transport = FakeTransport()
        transport.add_host(1, {443})
        fetcher = Fetcher(transport)
        result = asyncio.run(fetcher.fetch_ip(outcome(1, {443})))
        assert result.url.startswith("https://")

    def test_ssh_only_not_attempted(self):
        fetcher = Fetcher(FakeTransport())
        result = asyncio.run(fetcher.fetch_ip(outcome(1, {22})))
        assert result.status is FetchStatus.NOT_ATTEMPTED

    def test_robots_disallow_respected(self):
        transport = FakeTransport()
        transport.add_host(1, {80}, robots_body="User-agent: *\nDisallow: /\n")
        fetcher = Fetcher(transport)
        result = asyncio.run(fetcher.fetch_ip(outcome(1, {80})))
        assert result.status is FetchStatus.ROBOTS_DISALLOWED
        assert result.body is None
        # Only robots.txt was requested, never the page.
        assert transport.get_calls == [(1, "http", "/robots.txt")]

    def test_robots_can_be_disabled(self):
        transport = FakeTransport()
        transport.add_host(1, {80}, robots_body="User-agent: *\nDisallow: /\n")
        fetcher = Fetcher(transport, FetchConfig(respect_robots=False))
        result = asyncio.run(fetcher.fetch_ip(outcome(1, {80})))
        assert result.status is FetchStatus.OK

    def test_at_most_two_gets(self):
        """§4: at most two GETs per IP per round."""
        transport = FakeTransport()
        transport.add_host(1, {80})
        fetcher = Fetcher(transport)
        asyncio.run(fetcher.fetch_ip(outcome(1, {80})))
        assert len(transport.get_calls) == 2

    def test_error_recorded(self):
        transport = FakeTransport()
        transport.open_ports[1] = {80}
        transport.errors[1] = "connection reset"
        fetcher = Fetcher(transport)
        result = asyncio.run(fetcher.fetch_ip(outcome(1, {80})))
        assert result.status is FetchStatus.ERROR
        assert "connection reset" in (result.error or "")

    def test_binary_content_not_stored(self):
        """§4: application/* (and media) bodies are never stored."""
        transport = FakeTransport()
        transport.add_host(1, {80}, body="PDFPDF",
                           content_type="application/pdf")
        fetcher = Fetcher(transport)
        result = asyncio.run(fetcher.fetch_ip(outcome(1, {80})))
        assert result.status is FetchStatus.OK
        assert result.body is None

    def test_json_content_stored(self):
        transport = FakeTransport()
        transport.add_host(1, {80}, body='{"a": 1}',
                           content_type="application/json")
        fetcher = Fetcher(transport)
        result = asyncio.run(fetcher.fetch_ip(outcome(1, {80})))
        assert result.body == '{"a": 1}'

    def test_body_truncated_to_cap(self):
        transport = FakeTransport()
        transport.add_host(1, {80}, body="x" * 4096)
        fetcher = Fetcher(transport, FetchConfig(max_body_bytes=1024))
        result = asyncio.run(fetcher.fetch_ip(outcome(1, {80})))
        assert len(result.body or "") == 1024

    def test_fetch_many_preserves_order(self):
        transport = FakeTransport()
        transport.add_host(1, {80}, body="one")
        transport.add_host(2, {80}, body="two")
        fetcher = Fetcher(transport)
        results = fetcher.fetch_sync([outcome(2, {80}), outcome(1, {80})])
        assert [r.ip for r in results] == [2, 1]
        assert results[0].body == "two"

    def test_user_agent_sent(self):
        captured = {}

        class RecordingTransport(FakeTransport):
            async def get(self, ip, scheme, path, *, timeout, max_body,
                          headers=None):
                captured["headers"] = headers
                return await super().get(
                    ip, scheme, path, timeout=timeout, max_body=max_body
                )

        transport = RecordingTransport()
        transport.add_host(1, {80})
        fetcher = Fetcher(transport)
        asyncio.run(fetcher.fetch_ip(outcome(1, {80})))
        assert "WhoWas" in captured["headers"]["User-Agent"]


class TestErrorClassAndRetries:
    def test_error_class_recorded(self):
        from repro.core.transport import ConnectTimeout

        class TimeoutTransport(FakeTransport):
            async def get(self, ip, scheme, path, *, timeout, max_body,
                          headers=None):
                raise ConnectTimeout("injected")

        transport = TimeoutTransport()
        transport.open_ports[1] = {80}
        fetcher = Fetcher(transport)
        result = asyncio.run(fetcher.fetch_ip(outcome(1, {80})))
        assert result.status is FetchStatus.ERROR
        assert result.error_class == "connect-timeout"
        assert fetcher.fetch_errors == 1

    def test_ok_result_has_no_error_class(self):
        transport = FakeTransport()
        transport.add_host(1, {80})
        fetcher = Fetcher(transport)
        result = asyncio.run(fetcher.fetch_ip(outcome(1, {80})))
        assert result.error_class is None

    def test_no_retries_by_default(self):
        """Paper semantics: a failed page fetch is recorded, not
        retried."""
        from repro.core.transport import ConnectionRefused

        calls = {"page": 0}

        class FlakyTransport(FakeTransport):
            async def get(self, ip, scheme, path, *, timeout, max_body,
                          headers=None):
                if path == "/":
                    calls["page"] += 1
                    if calls["page"] == 1:
                        raise ConnectionRefused("first attempt refused")
                return await super().get(
                    ip, scheme, path, timeout=timeout, max_body=max_body
                )

        transport = FlakyTransport()
        transport.add_host(1, {80})
        fetcher = Fetcher(transport)
        result = asyncio.run(fetcher.fetch_ip(outcome(1, {80})))
        assert result.status is FetchStatus.ERROR
        assert calls["page"] == 1

    def test_retry_policy_recovers_transient_failure(self):
        from repro.core.transport import ConnectionRefused

        calls = {"page": 0}

        class FlakyTransport(FakeTransport):
            async def get(self, ip, scheme, path, *, timeout, max_body,
                          headers=None):
                if path == "/":
                    calls["page"] += 1
                    if calls["page"] <= 2:
                        raise ConnectionRefused("transient")
                return await super().get(
                    ip, scheme, path, timeout=timeout, max_body=max_body
                )

        transport = FlakyTransport()
        transport.add_host(1, {80})
        fetcher = Fetcher(
            transport, FetchConfig(retries=2, retry_base_delay=0.0)
        )
        result = asyncio.run(fetcher.fetch_ip(outcome(1, {80})))
        assert result.status is FetchStatus.OK
        assert calls["page"] == 3

    def test_retries_are_bounded(self):
        from repro.core.transport import ConnectionRefused

        calls = {"page": 0}

        class DeadTransport(FakeTransport):
            async def get(self, ip, scheme, path, *, timeout, max_body,
                          headers=None):
                if path == "/":
                    calls["page"] += 1
                raise ConnectionRefused("always")

        transport = DeadTransport()
        transport.open_ports[1] = {80}
        fetcher = Fetcher(
            transport,
            FetchConfig(retries=2, retry_base_delay=0.0,
                        respect_robots=False),
        )
        result = asyncio.run(fetcher.fetch_ip(outcome(1, {80})))
        assert result.status is FetchStatus.ERROR
        assert result.error_class == "connection-refused"
        assert calls["page"] == 3

    def test_backoff_delay_deterministic_and_capped(self):
        fetcher = Fetcher(
            FakeTransport(),
            FetchConfig(retries=5, retry_base_delay=0.1, retry_max_delay=0.3),
        )
        delays = [fetcher._backoff_delay(7, attempt) for attempt in range(5)]
        assert delays == [fetcher._backoff_delay(7, a) for a in range(5)]
        assert all(d <= 0.3 for d in delays)
        assert all(d >= 0 for d in delays)


class TestRobotsErrorPaths:
    def test_unreachable_robots_allows_fetch(self):
        """A robots.txt connection failure must not block the fetch."""
        class FlakyRobotsTransport(FakeTransport):
            async def get(self, ip, scheme, path, *, timeout, max_body,
                          headers=None):
                if path == "/robots.txt":
                    from repro.core.transport import TransportError

                    raise TransportError("reset")
                return await super().get(
                    ip, scheme, path, timeout=timeout, max_body=max_body
                )

        transport = FlakyRobotsTransport()
        transport.add_host(1, {80}, body="<html>ok</html>")
        fetcher = Fetcher(transport)
        result = asyncio.run(fetcher.fetch_ip(outcome(1, {80})))
        assert result.status is FetchStatus.OK

    def test_robots_500_allows_fetch(self):
        from repro.core.transport import HttpResponse

        transport = FakeTransport()
        transport.add_host(1, {80})
        transport.robots[1] = HttpResponse(500, {}, b"oops")
        fetcher = Fetcher(transport)
        result = asyncio.run(fetcher.fetch_ip(outcome(1, {80})))
        assert result.status is FetchStatus.OK


class TestBodyDecoding:
    def test_declared_charset_honoured(self):
        from repro.core.fetcher import decode_body
        from repro.core.transport import HttpResponse

        transport = FakeTransport()
        transport.add_host(1, {80})
        transport.pages[(1, "/")] = HttpResponse(
            200,
            {"Content-Type": "text/html; charset=iso-8859-1"},
            "<html><title>café</title></html>".encode("iso-8859-1"),
        )
        fetcher = Fetcher(transport)
        result = asyncio.run(fetcher.fetch_ip(outcome(1, {80})))
        assert result.body == "<html><title>café</title></html>"
        # The same bytes read as UTF-8 would have mojibake'd.
        assert decode_body(
            "café".encode("iso-8859-1"), "text/html"
        ) != "café"

    def test_unknown_charset_falls_back_to_utf8(self):
        from repro.core.fetcher import decode_body

        raw = "<html>ünïcode</html>".encode("utf-8")
        assert decode_body(
            raw, "text/html; charset=klingon-8"
        ) == "<html>ünïcode</html>"

    def test_hostile_codec_name_cannot_crash(self):
        from repro.core.fetcher import decode_body

        for charset in ("", "   ", "base64", "zip", "\x00bad", "rot13",
                        '"utf-8"', "'latin-1'"):
            text = decode_body(
                b"<html>x</html>", f"text/html; charset={charset}"
            )
            assert isinstance(text, str)

    def test_invalid_bytes_replaced_never_raise(self):
        from repro.core.fetcher import decode_body

        text = decode_body(b"\xff\xfe<html>\xc3\x28</html>", "text/html")
        assert "�" in text

    def test_quoted_charset_parameter(self):
        from repro.core.fetcher import _charset_of

        assert _charset_of('text/html; charset="ISO-8859-1"') == "iso-8859-1"
        assert _charset_of("text/html; boundary=x; charset=utf-8") == "utf-8"
        assert _charset_of("text/html") is None
