"""Supervised multi-process rounds: partitioning, chaos, merge, verify.

The contract under test is the module docstring of
``repro.core.workers``: a round run with ``--workers N`` must produce a
byte-identical database to the serial engine on the same seed — even
when workers are SIGKILLed mid-shard, freeze past their heartbeat
deadline, or hand back torn/corrupted partition journals.  The
checksummed shard journal (``repro verify``) is what makes those
guarantees checkable after the fact.
"""

from __future__ import annotations

import asyncio
import sqlite3
import threading
import time

import pytest

from repro.cli import main
from repro.core import (
    MeasurementStore,
    ProcessChaosPlan,
    ProcFaultKind,
    RoundInterrupted,
    WhoWas,
    WorkerSupervisor,
    WorkerTask,
    partition_shards,
    proc_chaos_plan,
    run_partition,
    shard_checksum,
)
from repro.core.config import PlatformConfig, WorkerConfig
from repro.core.records import PipelineStats
from repro.core.store import ROUND_IN_PROGRESS
from repro.core.workers import WorkerRoundReport
from repro.workloads import Campaign, SimTransportFactory, ec2_scenario
from test_recovery import SCENARIO_PARAMS, db_snapshot, small_config
from test_store import record

# The CLI-style parameter dict equivalent of SCENARIO_PARAMS — what a
# spawned worker rebuilds its scenario from.
SIM_PARAMS = dict(
    cloud="ec2",
    ips=SCENARIO_PARAMS["total_ips"],
    seed=SCENARIO_PARAMS["seed"],
    days=SCENARIO_PARAMS["duration_days"],
)

# Short heartbeats/backoffs so restart paths settle in test time.
FAST_WORKERS = dict(
    heartbeat_interval=0.05,
    heartbeat_timeout=5.0,
    poll_interval=0.02,
    retry_backoff_base=0.01,
    retry_backoff_max=0.05,
)


def mp_config(count: int = 2, **worker_overrides) -> PlatformConfig:
    kwargs = dict(FAST_WORKERS)
    kwargs.update(worker_overrides)
    return small_config(workers=WorkerConfig(count=count, **kwargs))


def run_mp_campaign(path: str, *, config=None, chaos=None) -> None:
    Campaign(
        ec2_scenario(**SCENARIO_PARAMS),
        store=MeasurementStore(path),
        config=config or mp_config(),
        transport_factory=SimTransportFactory(SIM_PARAMS),
        proc_chaos=chaos,
    ).run()


def build_platform(path: str, *, config=None, chaos=None, timestamp=0):
    """A WhoWas over the test scenario, ready for single-round runs."""
    scenario = ec2_scenario(**SCENARIO_PARAMS)
    scenario.simulation.advance_to(timestamp)
    store = MeasurementStore(path)
    platform = WhoWas(
        scenario.transport, store, config or mp_config(),
        transport_factory=SimTransportFactory(SIM_PARAMS),
        proc_chaos=chaos,
    )
    return platform, store, scenario.targets


@pytest.fixture(scope="module")
def serial_reference(tmp_path_factory):
    """One serial campaign; every equivalence test diffs against it."""
    path = str(tmp_path_factory.mktemp("ref") / "reference.sqlite")
    Campaign(
        ec2_scenario(**SCENARIO_PARAMS),
        store=MeasurementStore(path),
        config=small_config(),
    ).run()
    return path, db_snapshot(path)


# ----------------------------------------------------------------------
# partitioning (pure)


class TestPartitioning:
    SHARDS = [(i, tuple(range(i * 4, i * 4 + 4))) for i in range(10)]

    def test_even_split_preserves_order_and_contiguity(self):
        specs = partition_shards(self.SHARDS, 2)
        assert [s.index for s in specs] == [0, 1]
        assert specs[0].shard_indices == tuple(range(5))
        assert specs[1].shard_indices == tuple(range(5, 10))
        assert specs[0].targets[0] == (0, 1, 2, 3)

    def test_uneven_split_front_loads_the_extra(self):
        specs = partition_shards(self.SHARDS, 4)
        assert [s.shard_count for s in specs] == [3, 3, 2, 2]
        flat = [i for s in specs for i in s.shard_indices]
        assert flat == list(range(10))

    def test_more_partitions_than_shards_caps_at_shard_count(self):
        specs = partition_shards(self.SHARDS[:3], 8)
        assert len(specs) == 3
        assert all(s.shard_count == 1 for s in specs)

    def test_empty_and_invalid(self):
        assert partition_shards([], 4) == []
        with pytest.raises(ValueError):
            partition_shards(self.SHARDS, 0)


# ----------------------------------------------------------------------
# process chaos plan


class TestProcessChaosPlan:
    def test_deterministic_across_instances(self):
        a = proc_chaos_plan(3, rate=0.5)
        b = proc_chaos_plan(3, rate=0.5)
        draws = [
            (a.fault_for("worker", r, p, 0) is None)
            for r in range(1, 6) for p in range(4)
        ]
        assert draws == [
            (b.fault_for("worker", r, p, 0) is None)
            for r in range(1, 6) for p in range(4)
        ]
        assert not all(draws) and any(draws)   # rate actually bites

    def test_scope_filters(self):
        plan = proc_chaos_plan(
            1, kinds=(ProcFaultKind.KILL_MID_SHARD,),
            rounds={2}, partitions={0}, attempts={0},
        )
        rule = plan.fault_for("worker", 2, 0, 0)
        assert rule is not None
        assert rule.kind is ProcFaultKind.KILL_MID_SHARD
        assert plan.fault_for("worker", 1, 0, 0) is None   # other round
        assert plan.fault_for("worker", 2, 1, 0) is None   # other partition
        assert plan.fault_for("worker", 2, 0, 1) is None   # retry attempt
        # KILL is a worker-scope fault; the journal hook must not fire.
        assert plan.fault_for("journal", 2, 0, 0) is None

    def test_journal_kinds_only_fire_on_journal_scope(self):
        plan = proc_chaos_plan(1, kinds=(ProcFaultKind.CORRUPT_JOURNAL,))
        assert plan.fault_for("worker", 1, 0, 0) is None
        assert plan.fault_for("journal", 1, 0, 0) is not None


# ----------------------------------------------------------------------
# shard checksums + verify_round


class TestShardChecksums:
    def test_checksum_is_content_and_order_sensitive(self):
        rows = [record(1, 1, 0).to_row(), record(2, 1, 0).to_row()]
        assert shard_checksum(rows) == shard_checksum(list(rows))
        assert shard_checksum(rows) != shard_checksum(rows[::-1])
        tampered = [dict(rows[0], title="x"), rows[1]]
        assert shard_checksum(rows) != shard_checksum(tampered)

    def _round_db(self, tmp_path):
        path = str(tmp_path / "v.sqlite")
        store = MeasurementStore(path)
        store.begin_round(1, 0, 4, shard_size=2)
        store.write_shard(1, 0, [record(1, 1, 0), record(2, 1, 0)])
        store.write_shard(1, 1, [record(3, 1, 0), record(4, 1, 0)])
        store.finalize_round(1)
        return path, store

    def test_clean_round_verifies(self, tmp_path):
        _, store = self._round_db(tmp_path)
        report = store.verify_round(1)
        assert report.ok
        assert report.verified == 2 and report.shards == 2
        assert "ok" in report.describe()

    def test_tampered_row_is_corrupt(self, tmp_path):
        path, store = self._round_db(tmp_path)
        store.close()
        conn = sqlite3.connect(path)
        conn.execute("UPDATE round_00000 SET title = 'evil' WHERE ip = 3")
        conn.commit()
        conn.close()
        report = MeasurementStore(path).verify_round(1)
        assert not report.ok
        assert report.corrupt == [1]

    def test_deleted_row_is_corrupt(self, tmp_path):
        path, store = self._round_db(tmp_path)
        store.close()
        conn = sqlite3.connect(path)
        conn.execute("DELETE FROM round_00000 WHERE ip = 1")
        conn.commit()
        conn.close()
        report = MeasurementStore(path).verify_round(1)
        assert not report.ok
        assert report.corrupt == [0]

    def test_missing_journal_entry_is_detected(self, tmp_path):
        path, store = self._round_db(tmp_path)
        store.close()
        conn = sqlite3.connect(path)
        conn.execute(
            "DELETE FROM round_shards WHERE round_id = 1 AND shard_index = 1"
        )
        conn.commit()
        conn.close()
        report = MeasurementStore(path).verify_round(1)
        assert not report.ok
        assert report.missing == [1]
        # Rows whose journal entry vanished are orphans.
        assert report.orphan_rows == 2


# ----------------------------------------------------------------------
# SQLITE_BUSY retry


class _FlakyConn:
    """Connection proxy whose commit() raises SQLITE_BUSY *failures*
    times before delegating — a deterministic stand-in for a writer
    losing the commit race to a concurrent partition merge."""

    def __init__(self, conn, failures: int, message="database is locked"):
        self._inner = conn
        self.failures = failures
        self.message = message
        self.calls = 0

    def commit(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise sqlite3.OperationalError(self.message)
        self._inner.commit()

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestBusyRetry:
    def test_write_survives_a_transient_lock(self, tmp_path):
        """busy_timeout makes a contended write wait out a short-lived
        writer instead of failing."""
        path = str(tmp_path / "busy.sqlite")
        store = MeasurementStore(path)        # default 5s busy_timeout
        blocker = sqlite3.connect(path, check_same_thread=False)
        blocker.execute("BEGIN IMMEDIATE")
        timer = threading.Timer(
            0.15, lambda: (blocker.commit(), blocker.close())
        )
        timer.start()
        started = time.monotonic()
        store.set_meta("contended", "yes")    # blocks until released
        assert time.monotonic() - started >= 0.1
        timer.join()
        assert store.get_meta("contended") == "yes"
        store.close()

    def test_commit_retries_through_transient_busy(self, tmp_path):
        store = MeasurementStore(
            str(tmp_path / "flaky.sqlite"),
            busy_retries=5, busy_backoff_base=0.001, busy_backoff_max=0.002,
        )
        store._conn = _FlakyConn(store._conn, failures=3)
        store.set_meta("k", "v")
        assert store._conn.calls == 4         # 3 busy + 1 success
        assert store.get_meta("k") == "v"
        store.close()

    def test_exhausted_retries_surface_the_error(self, tmp_path):
        store = MeasurementStore(
            str(tmp_path / "stuck.sqlite"),
            busy_retries=2, busy_backoff_base=0.001, busy_backoff_max=0.002,
        )
        store._conn = _FlakyConn(store._conn, failures=10 ** 6)
        with pytest.raises(sqlite3.OperationalError):
            store.set_meta("k", "v")
        assert store._conn.calls == 3         # initial try + 2 retries
        store.close()

    def test_non_busy_errors_are_not_retried(self, tmp_path):
        store = MeasurementStore(str(tmp_path / "hard.sqlite"))
        store._conn = _FlakyConn(
            store._conn, failures=10 ** 6, message="disk I/O error"
        )
        with pytest.raises(sqlite3.OperationalError):
            store.set_meta("k", "v")
        assert store._conn.calls == 1         # failed fast
        store.close()


# ----------------------------------------------------------------------
# spawn pinning


class TestSpawnPinning:
    def test_config_rejects_non_spawn_start_methods(self):
        with pytest.raises(ValueError):
            WorkerConfig(start_method="fork")
        assert WorkerConfig().start_method == "spawn"

    def test_supervisor_context_is_spawn(self, tmp_path):
        store = MeasurementStore(str(tmp_path / "s.sqlite"))
        supervisor = WorkerSupervisor(
            store, mp_config(), SimTransportFactory(SIM_PARAMS)
        )
        assert supervisor._ctx.get_start_method() == "spawn"
        store.close()


# ----------------------------------------------------------------------
# multiprocess rounds: byte-equivalence (tier 1)


class TestMultiprocessRounds:
    def test_two_worker_campaign_is_byte_equivalent(
        self, tmp_path, serial_reference
    ):
        _, reference = serial_reference
        path = str(tmp_path / "mp.sqlite")
        run_mp_campaign(path)
        assert db_snapshot(path) == reference
        # Every merged round verifies, and telemetry shows the pool.
        store = MeasurementStore(path)
        for info in store.rounds():
            assert store.verify_round(info.round_id).ok
        assert main(["verify", path]) == 0
        assert main(["stats", path]) == 0
        store.close()

    def test_worker_telemetry_is_persisted(self, tmp_path):
        path = str(tmp_path / "mp.sqlite")
        run_mp_campaign(path)
        from repro.core.platform import PIPELINE_STATS_META_PREFIX
        import json

        store = MeasurementStore(path)
        raw = store.get_meta(f"{PIPELINE_STATS_META_PREFIX}1")
        stats = PipelineStats.from_dict(json.loads(raw))
        assert stats.mode == "multiprocess"
        assert stats.worker_count == 2
        assert stats.partitions_merged >= 2
        assert stats.records_written > 0
        store.close()

    def test_kill_mid_shard_recovers_byte_equivalent(
        self, tmp_path, serial_reference
    ):
        """A worker SIGKILLed mid-partition is restarted; its journal's
        committed shards survive and the retry skips them."""
        _, reference = serial_reference
        path = str(tmp_path / "killed.sqlite")
        chaos = proc_chaos_plan(
            11, kinds=(ProcFaultKind.KILL_MID_SHARD,),
            rounds={2}, partitions={0}, attempts={0},
        )
        run_mp_campaign(path, chaos=chaos)
        assert db_snapshot(path) == reference
        import json
        from repro.core.platform import PIPELINE_STATS_META_PREFIX

        store = MeasurementStore(path)
        stats = PipelineStats.from_dict(json.loads(
            store.get_meta(f"{PIPELINE_STATS_META_PREFIX}2")
        ))
        assert stats.worker_restarts >= 1
        assert stats.partition_reassignments >= 1
        assert store.verify_round(2).ok
        store.close()

    def test_corrupt_journal_is_rejected_and_retried(
        self, tmp_path, serial_reference
    ):
        """A journal scribbled over before merge fails verification;
        the partition reruns and the round still matches serial."""
        _, reference = serial_reference
        path = str(tmp_path / "corrupt.sqlite")
        chaos = proc_chaos_plan(
            13, kinds=(ProcFaultKind.CORRUPT_JOURNAL,),
            rounds={2}, partitions={1}, attempts={0},
        )
        run_mp_campaign(path, chaos=chaos)
        assert db_snapshot(path) == reference
        # The torn journal was kept aside for post-mortem.
        rejected = list(
            (tmp_path / "corrupt.sqlite.partitions").glob("*.rejected-*")
        )
        assert rejected

    def test_truncated_journal_is_rejected_and_retried(
        self, tmp_path, serial_reference
    ):
        _, reference = serial_reference
        path = str(tmp_path / "trunc.sqlite")
        chaos = proc_chaos_plan(
            17, kinds=(ProcFaultKind.TRUNCATE_JOURNAL,),
            rounds={1}, partitions={0}, attempts={0},
        )
        run_mp_campaign(path, chaos=chaos)
        assert db_snapshot(path) == reference


# ----------------------------------------------------------------------
# abort / resume / salvage (single rounds, tier 1)


class TestAbortResumeSalvage:
    def _serial_round(self, tmp_path):
        path = str(tmp_path / "serial_round.sqlite")
        platform, store, targets = build_platform(
            path, config=small_config()
        )
        platform.run_round(targets, timestamp=0)
        platform.close()
        rows = [r.to_row() for r in store.records(1)]
        store.close()
        return sorted(rows, key=lambda r: r["ip"])

    def _mp_rows(self, path):
        store = MeasurementStore(path)
        rows = sorted(
            (r.to_row() for r in store.records(1)),
            key=lambda r: r["ip"],
        )
        ok = store.verify_round(1).ok
        store.close()
        return rows, ok

    def test_abort_before_start_then_resume(self, tmp_path):
        reference = self._serial_round(tmp_path)
        path = str(tmp_path / "aborted.sqlite")
        platform, store, targets = build_platform(path)
        abort = asyncio.Event()
        abort.set()
        with pytest.raises(RoundInterrupted):
            platform.run_round(targets, timestamp=0, abort_event=abort)
        assert store.open_rounds()[0].status == ROUND_IN_PROGRESS
        platform.close()
        store.close()

        platform, store, targets = build_platform(path)
        platform.run_round(targets, timestamp=0, resume_round_id=1)
        platform.close()
        store.close()
        rows, ok = self._mp_rows(path)
        assert ok and rows == reference

    def test_resume_partially_complete_round_with_workers(self, tmp_path):
        """Shards 0 and 2 committed serially; workers finish 1 and 3 and
        the merged round is indistinguishable from an all-serial one."""
        ref_path = str(tmp_path / "ref_round.sqlite")
        platform, ref_store, targets = build_platform(
            ref_path, config=small_config()
        )
        platform.run_round(targets, timestamp=0)
        platform.close()

        path = str(tmp_path / "partial.sqlite")
        store = MeasurementStore(path)
        store.begin_round(1, 0, len(targets), shard_size=64)
        for index in (0, 2):
            entry = ref_store.shard_journal(1)[index]
            store.write_shard(
                1, index, ref_store.shard_records(1, index),
                errors=entry.errors, operations=entry.operations,
            )
        store.close()
        ref_rows = sorted(
            (r.to_row() for r in ref_store.records(1)),
            key=lambda r: r["ip"],
        )
        ref_store.close()

        platform, store, targets = build_platform(path)
        platform.run_round(targets, timestamp=0, resume_round_id=1)
        platform.close()
        store.close()
        rows, ok = self._mp_rows(path)
        assert ok and rows == ref_rows

    def test_stale_journal_is_salvaged_before_partitioning(self, tmp_path):
        """A journal left by a dead coordinator is checksum-verified and
        merged; its shards are never re-scanned."""
        reference = self._serial_round(tmp_path)
        path = str(tmp_path / "salvage.sqlite")
        store = MeasurementStore(path)
        store.begin_round(1, 0, SCENARIO_PARAMS["total_ips"], shard_size=64)
        store.close()

        # Simulate the dead coordinator's worker: partition 0 ran to
        # completion but nobody merged its journal.
        scenario = ec2_scenario(**SCENARIO_PARAMS)
        shards = [
            (i, tuple(scenario.targets[start:start + 64]))
            for i, start in enumerate(range(0, len(scenario.targets), 64))
        ]
        spec = partition_shards(shards, 2)[0]
        journal_dir = tmp_path / "salvage.sqlite.partitions"
        journal_dir.mkdir()
        run_partition(WorkerTask(
            partition=spec, attempt=0, round_id=1, timestamp=0,
            journal_path=str(journal_dir / "r00001_p000.sqlite"),
            config=mp_config(),
            transport_factory=SimTransportFactory(SIM_PARAMS),
        ))

        platform, store, targets = build_platform(path)
        summary = platform.run_round(targets, timestamp=0, resume_round_id=1)
        platform.close()
        store.close()
        assert not summary.degraded
        rows, ok = self._mp_rows(path)
        assert ok and rows == reference
        assert not journal_dir.exists()       # pruned after merge

    def test_merge_rejects_torn_journal(self, tmp_path):
        """_merge_journal refuses a journal sqlite cannot read."""
        path = str(tmp_path / "canon.sqlite")
        store = MeasurementStore(path)
        store.begin_round(1, 0, 4, shard_size=2)
        supervisor = WorkerSupervisor(
            store, mp_config(), SimTransportFactory(SIM_PARAMS)
        )
        torn = tmp_path / "torn.sqlite"
        torn.write_bytes(b"SQLite format 3\x00" + b"\xde\xad" * 100)
        report = WorkerRoundReport(stats=PipelineStats(mode="multiprocess"))
        from repro.core.workers import _JournalRejected

        with pytest.raises(_JournalRejected):
            supervisor._merge_journal(str(torn), 1, report)
        assert report.merged_shards == 0
        store.close()

    def test_merge_rejects_missing_expected_shards(self, tmp_path):
        path = str(tmp_path / "canon2.sqlite")
        store = MeasurementStore(path)
        store.begin_round(1, 0, 4, shard_size=2)
        journal_path = str(tmp_path / "short.sqlite")
        journal = MeasurementStore(journal_path)
        journal.begin_round(1, 0, 4, shard_size=2)
        journal.write_shard(1, 0, [record(1, 1, 0)])
        journal.close()
        supervisor = WorkerSupervisor(
            store, mp_config(), SimTransportFactory(SIM_PARAMS)
        )
        report = WorkerRoundReport(stats=PipelineStats(mode="multiprocess"))
        from repro.core.workers import _JournalRejected

        with pytest.raises(_JournalRejected):
            supervisor._merge_journal(
                journal_path, 1, report, expected=(0, 1)
            )
        store.close()


# ----------------------------------------------------------------------
# CLI verify exit codes


class TestVerifyCli:
    def test_verify_detects_tampering(self, tmp_path, capsys):
        path = str(tmp_path / "cli.sqlite")
        store = MeasurementStore(path)
        store.begin_round(1, 0, 2, shard_size=2)
        store.write_shard(1, 0, [record(1, 1, 0), record(2, 1, 0)])
        store.finalize_round(1)
        store.close()
        assert main(["verify", path]) == 0
        conn = sqlite3.connect(path)
        conn.execute("UPDATE round_00000 SET title = 'evil' WHERE ip = 1")
        conn.commit()
        conn.close()
        assert main(["verify", path]) == 1
        out = capsys.readouterr()
        assert "FAIL" in out.out

    def test_verify_selects_one_round(self, tmp_path):
        path = str(tmp_path / "cli2.sqlite")
        store = MeasurementStore(path)
        store.begin_round(1, 0, 1, shard_size=2)
        store.write_shard(1, 0, [record(1, 1, 0)])
        store.finalize_round(1)
        store.close()
        assert main(["verify", path, "--round", "1"]) == 0
        assert main(["verify", path, "--round", "9"]) == 1


# ----------------------------------------------------------------------
# chaos tier: freeze + storms (slow — run with -m chaos)


@pytest.mark.chaos
class TestWorkersChaosTier:
    def test_frozen_worker_is_killed_and_reassigned(
        self, tmp_path, serial_reference
    ):
        """A worker that blocks its event loop stops heartbeating; the
        supervisor SIGKILLs it past the deadline and the retry wins."""
        _, reference = serial_reference
        path = str(tmp_path / "frozen.sqlite")
        chaos = proc_chaos_plan(
            19, kinds=(ProcFaultKind.FREEZE,),
            rounds={1}, partitions={1}, attempts={0},
            freeze_seconds=60.0,
        )
        run_mp_campaign(
            path, config=mp_config(heartbeat_timeout=1.0), chaos=chaos
        )
        assert db_snapshot(path) == reference
        import json
        from repro.core.platform import PIPELINE_STATS_META_PREFIX

        store = MeasurementStore(path)
        stats = PipelineStats.from_dict(json.loads(
            store.get_meta(f"{PIPELINE_STATS_META_PREFIX}1")
        ))
        assert stats.worker_restarts >= 1
        assert stats.max_heartbeat_age > 1.0
        store.close()

    def test_kill_storm_every_round_still_byte_equivalent(
        self, tmp_path, serial_reference
    ):
        """First attempt of partition 0 dies in every round; the merged
        campaign still matches serial end to end."""
        _, reference = serial_reference
        path = str(tmp_path / "storm.sqlite")
        chaos = proc_chaos_plan(
            23, kinds=(ProcFaultKind.KILL_MID_SHARD,),
            partitions={0}, attempts={0},
        )
        run_mp_campaign(path, chaos=chaos)
        assert db_snapshot(path) == reference
        assert main(["verify", path]) == 0

    def test_retry_exhaustion_falls_back_inline_and_degrades(
        self, tmp_path, serial_reference
    ):
        """Chaos on every attempt exhausts the retry budget; the
        coordinator runs the partition inline (no chaos) and marks the
        round degraded — the data itself is still byte-identical."""
        _, reference = serial_reference
        path = str(tmp_path / "exhausted.sqlite")
        attempts = frozenset(range(10))
        chaos = proc_chaos_plan(
            29, kinds=(ProcFaultKind.KILL_MID_SHARD,),
            rounds={1}, partitions={0}, attempts=attempts,
        )
        run_mp_campaign(
            path, config=mp_config(max_partition_retries=1), chaos=chaos
        )
        rounds, rows = db_snapshot(path)
        assert rows == reference[1]            # records identical
        store = MeasurementStore(path)
        info = [i for i in store.rounds() if i.round_id == 1][0]
        assert info.status == "degraded"
        import json
        from repro.core.platform import PIPELINE_STATS_META_PREFIX

        stats = PipelineStats.from_dict(json.loads(
            store.get_meta(f"{PIPELINE_STATS_META_PREFIX}1")
        ))
        assert stats.partitions_failed >= 1
        store.close()
