"""Fuzz the full pipeline with randomized workloads (hypothesis).

Micro-campaigns over randomly drawn cloud parameters must never crash,
and their outputs must satisfy the pipeline's structural invariants —
no matter how odd the workload (tiny spaces, extreme occupancy, pure
weekend massacres, heavy malicious mixes).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import DynamicsAnalyzer, WebpageClusterer
from repro.cloudsim.population import WorkloadSpec
from repro.cloudsim.providers import EC2_SPEC
from repro.cloudsim.services import PORT_PROFILES_EC2
from repro.cloudsim.simulation import CloudSimulation
from repro.cloudsim.network import SimulatedTransport
from repro.cloudsim.software import EC2_CATALOG
from repro.core import MeasurementStore, WhoWas
from repro.workloads import simulation_config


@st.composite
def workloads(draw):
    return WorkloadSpec(
        cloud="EC2",
        occupancy=draw(st.floats(0.05, 0.6)),
        duration_days=draw(st.integers(4, 14)),
        ephemeral_fraction=draw(st.floats(0.0, 0.4)),
        arrival_rate=draw(st.floats(0.0, 0.02)),
        departure_events={
            draw(st.integers(1, 10)): draw(st.floats(0.0, 0.5))
        } if draw(st.booleans()) else {},
        malicious_embedders=draw(st.integers(0, 5)),
        malicious_hosters=draw(st.integers(0, 5)),
    )


class TestPipelineFuzz:
    @settings(max_examples=8, deadline=None)
    @given(
        workload=workloads(),
        total_ips=st.integers(128, 768),
        seed=st.integers(0, 2**16),
    )
    def test_campaign_invariants(self, workload, total_ips, seed):
        topology = EC2_SPEC.build(total_ips, seed=seed)
        simulation = CloudSimulation(
            topology, workload, EC2_CATALOG, PORT_PROFILES_EC2, seed=seed
        )
        transport = SimulatedTransport(simulation)
        platform = WhoWas(transport, MeasurementStore(), simulation_config())
        targets = list(topology.space.addresses())

        scan_days = list(range(0, workload.duration_days, 3))
        for day in scan_days:
            simulation.advance_to(day)
            summary = platform.run_round(targets, timestamp=day)
            # Structural invariants per round:
            assert 0 <= summary.available <= summary.responsive
            assert summary.responsive <= len(targets)
            # Observed hosts are a subset of truly-live hosts.
            observed = platform.store.responsive_ips(summary.round_id)
            assert observed <= set(simulation.assignments())

        from repro.analysis import Dataset

        dataset = Dataset.from_store(platform.store)
        assert dataset.round_count == len(scan_days)
        clustering = WebpageClusterer().cluster(dataset)
        stats = clustering.stats
        assert stats.final_clusters <= stats.second_level_clusters
        assert stats.second_level_clusters >= stats.top_level_clusters
        # Every clustered pair refers to a real observation.
        for cluster in clustering.clusters.values():
            for ip, rid in cluster.members:
                assert any(
                    o.ip == ip for o in dataset.by_round[rid]
                )
        if dataset.round_count >= 2:
            rates = DynamicsAnalyzer(dataset, clustering).churn_rates()
            assert 0.0 <= rates.overall <= 100.0
            assert 0.0 <= rates.cluster <= rates.overall + 1e-9
