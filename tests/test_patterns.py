"""Tests for PAA, tendency vectors, and size-change patterns (§8.1)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.patterns import (
    PatternAnalyzer,
    merge_repeats,
    paa_reduce,
    size_change_pattern,
    tendency_vector,
)


class TestPaaReduce:
    def test_median_per_window(self):
        values = [1.0, 2.0, 30.0, 3.0]
        timestamps = [0, 3, 6, 8]       # two 7-day windows
        assert paa_reduce(values, timestamps, 7) == [2.0, 3.0]

    def test_uneven_windows(self):
        """Frames may contain different numbers of points (§8.1)."""
        values = [1.0, 1.0, 1.0, 5.0]
        timestamps = [0, 2, 4, 10]
        assert paa_reduce(values, timestamps, 7) == [1.0, 5.0]

    def test_empty(self):
        assert paa_reduce([], [], 7) == []

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            paa_reduce([1.0], [0, 1], 7)

    def test_bad_window(self):
        with pytest.raises(ValueError):
            paa_reduce([1.0], [0], 0)

    @given(st.lists(st.floats(0, 100), min_size=1, max_size=30))
    def test_output_values_within_range(self, values):
        timestamps = list(range(len(values)))
        reduced = paa_reduce(values, timestamps, 7)
        assert all(min(values) <= v <= max(values) for v in reduced)
        assert 1 <= len(reduced) <= len(values)


class TestTendencyVector:
    def test_paper_example_one(self):
        """§8.1: D' = (1,2,3,1,1,1) -> D'' = (1,1,-1,0,0)."""
        assert tendency_vector([1, 2, 3, 1, 1, 1]) == [1, 1, -1, 0, 0]

    def test_paper_example_two(self):
        """§8.1: D' = (1,10,0,5,4,2) -> D'' = (1,-1,1,-1,-1)."""
        assert tendency_vector([1, 10, 0, 5, 4, 2]) == [1, -1, 1, -1, -1]

    def test_single_value(self):
        assert tendency_vector([5]) == []


class TestMergeRepeats:
    def test_paper_example(self):
        """§8.1: (0,1,1,0,-1,-1) -> (0,1,0,-1)."""
        assert merge_repeats([0, 1, 1, 0, -1, -1]) == (0, 1, 0, -1)

    def test_empty(self):
        assert merge_repeats([]) == ()

    @given(st.lists(st.sampled_from([-1, 0, 1]), min_size=1, max_size=40))
    def test_no_consecutive_repeats(self, tendency):
        merged = merge_repeats(tendency)
        assert all(a != b for a, b in zip(merged, merged[1:]))

    @given(st.lists(st.sampled_from([-1, 0, 1]), min_size=1, max_size=40))
    def test_preserves_first_and_last(self, tendency):
        merged = merge_repeats(tendency)
        assert merged[0] == tendency[0]
        assert merged[-1] == tendency[-1]


class TestSizeChangePattern:
    def timestamps(self, count: int) -> list[int]:
        return [i * 3 for i in range(count)]

    def test_stable(self):
        values = [4.0] * 20
        assert size_change_pattern(values, self.timestamps(20)) == (0,)

    def test_step_up(self):
        values = [1.0] * 10 + [3.0] * 10
        assert size_change_pattern(values, self.timestamps(20)) == (0, 1, 0)

    def test_step_down(self):
        values = [5.0] * 10 + [2.0] * 10
        assert size_change_pattern(values, self.timestamps(20)) == (0, -1, 0)

    def test_bump(self):
        values = [1.0] * 8 + [4.0] * 6 + [1.0] * 8
        assert size_change_pattern(values, self.timestamps(22)) == (
            0, 1, 0, -1, 0,
        )

    def test_dip(self):
        """§8.1: 0,-1,1,0 is a drop immediately followed by recovery, so
        the dip must fit within one PAA window."""
        values = [4.0] * 8 + [1.0, 1.0] + [4.0] * 8
        assert size_change_pattern(values, self.timestamps(18)) == (
            0, -1, 1, 0,
        )

    def test_long_dip_has_flat_bottom(self):
        values = [4.0] * 8 + [1.0] * 6 + [4.0] * 8
        assert size_change_pattern(values, self.timestamps(22)) == (
            0, -1, 0, 1, 0,
        )

    def test_outlier_smoothed_by_median(self):
        """A single-round spike must not register as a size change."""
        values = [2.0] * 9 + [50.0] + [2.0] * 10
        assert size_change_pattern(values, self.timestamps(20)) == (0,)

    def test_short_series(self):
        assert size_change_pattern([1.0], [0]) == (0,)


class TestPatternAnalyzer:
    def test_breakdown_on_campaign(self, ec2_dataset, ec2_clustering):
        analyzer = PatternAnalyzer(ec2_dataset, ec2_clustering)
        breakdown = analyzer.breakdown()
        assert breakdown.total_clusters == len(ec2_clustering.clusters)
        assert sum(breakdown.counts.values()) == breakdown.total_clusters
        top = breakdown.top(5)
        labels = [label for label, _, _ in top]
        # Table 11: flat is the most common pattern.
        assert labels[0] == "0"
        assert breakdown.ephemeral + breakdown.stable == breakdown.counts["0"]
        # Percentages are consistent.
        for _, count, share in top:
            assert share == pytest.approx(
                count / breakdown.total_clusters * 100.0
            )

    def test_pattern_of_specific_cluster(self, ec2_dataset, ec2_clustering):
        analyzer = PatternAnalyzer(ec2_dataset, ec2_clustering)
        cid = next(iter(ec2_clustering.clusters))
        pattern = analyzer.pattern_of(cid)
        assert all(v in (-1, 0, 1) for v in pattern)
