"""Tests for the privacy-preserving aggregate reports (§7)."""

from __future__ import annotations

import json

from repro.analysis.aggregates import (
    K_ANONYMITY_FLOOR,
    build_aggregate_report,
)


class TestAggregateReport:
    def test_build_and_serialise(self, ec2_campaign, ec2_dataset,
                                 ec2_clustering):
        report = build_aggregate_report("EC2", ec2_dataset, ec2_clustering)
        payload = json.loads(report.to_json())
        assert payload["cloud"] == "EC2"
        assert payload["rounds"] == ec2_dataset.round_count
        assert 0 < payload["responsive_share_avg"] < 100
        assert payload["cluster_size_histogram"]
        assert payload["churn_overall_pct"] is not None

    def test_privacy_self_check(self, ec2_dataset, ec2_clustering):
        report = build_aggregate_report("EC2", ec2_dataset, ec2_clustering)
        report.assert_private()     # raises if anything identifying leaks

    def test_no_ips_urls_or_ga_ids(self, ec2_dataset, ec2_clustering):
        text = build_aggregate_report(
            "EC2", ec2_dataset, ec2_clustering
        ).to_json()
        assert "http://" not in text
        assert "UA-" not in text
        # No dotted quads anywhere (server version strings like
        # Apache/2.2.22 contain three dots at most per token).
        import re

        assert not re.search(r"\b\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}\b", text)

    def test_k_anonymity_suppression(self, ec2_dataset, ec2_clustering):
        """Rare server families are folded into "(suppressed)"."""
        report = build_aggregate_report("EC2", ec2_dataset, ec2_clustering)
        # Count observed family sizes from the raw data to validate.
        from collections import Counter

        from repro.analysis.census import server_family
        from repro.core.records import UNKNOWN

        families = Counter()
        for obs in ec2_dataset.observations():
            if obs.features is not None and obs.features.server != UNKNOWN:
                families[server_family(obs.features.server)] += 1
        rare = {
            name for name, count in families.items()
            if count < K_ANONYMITY_FLOOR
        }
        for name in rare:
            assert name not in report.server_family_shares
        if rare:
            assert "(suppressed)" in report.server_family_shares

    def test_without_clustering(self, ec2_dataset):
        report = build_aggregate_report("EC2", ec2_dataset)
        assert report.cluster_size_histogram == {}
        assert report.churn_overall_pct is None
        report.assert_private()
