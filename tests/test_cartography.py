"""Tests for DNS-based cartography and VPC usage analyses."""

from __future__ import annotations

import pytest

from repro.analysis.cartography import Cartographer, CartographyMap, VpcUsageAnalyzer
from repro.analysis.clustering import WebpageClusterer
from repro.cloudsim.addressing import Prefix
from repro.cloudsim.dns import CloudDns
from repro.cloudsim.population import WorkloadSpec
from repro.cloudsim.providers import EC2_SPEC, NetKind
from repro.cloudsim.services import PORT_PROFILES_EC2
from repro.cloudsim.simulation import CloudSimulation
from repro.cloudsim.software import EC2_CATALOG

from _obs import make_dataset, obs


@pytest.fixture(scope="module")
def world():
    topology = EC2_SPEC.build(4096, seed=41)
    sim = CloudSimulation(
        topology,
        WorkloadSpec(cloud="EC2", duration_days=20),
        EC2_CATALOG,
        PORT_PROFILES_EC2,
        seed=41,
    )
    return topology, sim, CloudDns(topology, sim)


class TestCartographer:
    def test_full_sweep_matches_ground_truth(self, world):
        """The §5 decision rule recovers the true VPC/classic map."""
        topology, _, dns = world
        cartographer = Cartographer(topology, dns)
        measured = cartographer.map_prefixes()
        for prefix, kind in measured.prefix_kinds.items():
            assert kind == topology.kind_of_prefix(prefix)

    def test_sampled_sweep_matches_too(self, world):
        topology, _, dns = world
        cartographer = Cartographer(topology, dns)
        measured = cartographer.map_prefixes(sample_per_prefix=4)
        for prefix, kind in measured.prefix_kinds.items():
            assert kind == topology.kind_of_prefix(prefix)

    def test_sampling_reduces_queries(self, world):
        topology, sim, _ = world
        dns = CloudDns(topology, sim)
        Cartographer(topology, dns).map_prefixes(sample_per_prefix=2)
        sampled_queries = dns.query_count
        dns2 = CloudDns(topology, sim)
        Cartographer(topology, dns2).map_prefixes()
        assert sampled_queries < dns2.query_count

    def test_summary_table(self, world):
        """Table 2: per-region VPC prefix counts and shares."""
        topology, _, dns = world
        cartographer = Cartographer(topology, dns)
        measured = cartographer.map_prefixes(sample_per_prefix=4)
        summary = cartographer.summarize(measured)
        truth = topology.vpc_prefix_summary()
        assert summary == truth
        assert summary["USWest_Oregon"][1] > summary["USEast"][1]


class TestCartographyMap:
    def test_lookup(self):
        mapping = CartographyMap(
            {
                Prefix.parse("10.0.0.0/24"): NetKind.VPC,
                Prefix.parse("10.0.1.0/24"): NetKind.CLASSIC,
            }
        )
        assert mapping.kind_of((10 << 24) | 5) == NetKind.VPC
        assert mapping.kind_of((10 << 24) | (1 << 8) | 5) == NetKind.CLASSIC
        assert mapping.vpc_prefix_count() == 1
        with pytest.raises(KeyError):
            mapping.kind_of(1)

    def test_mixed_lengths_rejected(self):
        with pytest.raises(ValueError):
            CartographyMap(
                {
                    Prefix.parse("10.0.0.0/24"): NetKind.VPC,
                    Prefix.parse("11.0.0.0/22"): NetKind.CLASSIC,
                }
            )


class TestVpcUsageAnalyzer:
    def mapping(self) -> CartographyMap:
        return CartographyMap(
            {
                Prefix.parse("10.0.0.0/24"): NetKind.CLASSIC,
                Prefix.parse("10.0.1.0/24"): NetKind.VPC,
            }
        )

    def classic_ip(self, host: int) -> int:
        return (10 << 24) | host

    def vpc_ip(self, host: int) -> int:
        return (10 << 24) | (1 << 8) | host

    def test_ip_series(self):
        dataset = make_dataset([
            obs(self.classic_ip(1), 0, title="a", simhash=1),
            obs(self.vpc_ip(1), 0, title="b", simhash=1 << 50,
                status_code=None, has_page=False),
            obs(self.classic_ip(1), 1, title="a", simhash=1),
        ])
        clustering = WebpageClusterer(level2_threshold=3).cluster(dataset)
        analyzer = VpcUsageAnalyzer(dataset, clustering, self.mapping())
        series = analyzer.ip_series()
        assert series["classic_responsive"] == [1, 1]
        assert series["classic_available"] == [1, 1]
        assert series["vpc_responsive"] == [1, 0]
        assert series["vpc_available"] == [0, 0]

    def test_cluster_kinds(self):
        dataset = make_dataset([
            obs(self.classic_ip(1), 0, title="c-only", simhash=1),
            obs(self.vpc_ip(2), 0, title="v-only", simhash=1 << 50),
            obs(self.classic_ip(3), 0, title="mix", simhash=1 << 90),
            obs(self.vpc_ip(3), 0, title="mix", simhash=1 << 90),
        ])
        clustering = WebpageClusterer(level2_threshold=3).cluster(dataset)
        analyzer = VpcUsageAnalyzer(dataset, clustering, self.mapping())
        totals = analyzer.cluster_kind_totals()
        assert totals == {"classic-only": 1, "vpc-only": 1, "mixed": 1}
        series = analyzer.cluster_kind_series()
        assert series["classic-only"] == [1]
        assert series["mixed"] == [1]

    def test_transition_detection(self):
        dataset = make_dataset([
            obs(self.classic_ip(1), 0, title="mover", simhash=1),
            obs(self.vpc_ip(9), 1, title="mover", simhash=1),
        ])
        clustering = WebpageClusterer(level2_threshold=3).cluster(dataset)
        analyzer = VpcUsageAnalyzer(dataset, clustering, self.mapping())
        moves = analyzer.transitions()
        assert moves["classic_to_vpc"] == 1
        assert moves["vpc_to_classic"] == 0

    def test_campaign_classic_dominates(self, ec2_campaign, ec2_dataset,
                                         ec2_clustering):
        """§8.1: 72.9% of EC2 clusters are classic-only."""
        topology = ec2_campaign.scenario.topology
        dns = ec2_campaign.scenario.dns
        measured = Cartographer(topology, dns).map_prefixes(
            sample_per_prefix=4
        )
        analyzer = VpcUsageAnalyzer(ec2_dataset, ec2_clustering, measured)
        totals = analyzer.cluster_kind_totals()
        total = sum(totals.values())
        assert totals["classic-only"] / total > 0.5
        assert totals["vpc-only"] > totals["mixed"]
