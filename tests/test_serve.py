"""Tier-1 tests for the resilient query-serving layer.

Covers the serving contract end to end against a real (small) campaign
database: endpoint correctness, poison queries, admission shedding with
``Retry-After``, deadline budgets, circuit-breaker trip/recovery under
injected store faults, graceful drain, SIGTERM handling of the real
CLI process, and the serve-side slow-loris bound.  The heavy 10×
overload scenarios live in ``test_serve_chaos.py`` (``-m chaos``).
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.core.config import ServeConfig
from repro.core.store import open_store
from repro.serve import (
    AdmissionController,
    BreakerState,
    CircuitBreaker,
    PoolTimeout,
    ReadPool,
    RqsWorkload,
    ServeApp,
    TokenBucket,
    run_workload,
)
from repro.serve.loadgen import percentile


@pytest.fixture(scope="module")
def serve_db(tmp_path_factory):
    """A small finished campaign to serve."""
    path = str(tmp_path_factory.mktemp("serve") / "campaign.sqlite")
    assert main([
        "simulate", "--cloud", "ec2", "--ips", "256", "--days", "8",
        "--seed", "11", "--out", path,
    ]) == 0
    return path


@pytest.fixture(scope="module")
def responsive_ip(serve_db):
    """One IP with history in the database."""
    from repro.cloudsim.addressing import int_to_ip

    store = open_store(serve_db, readonly=True)
    ips = store.responsive_ips(1)
    store.close()
    assert ips
    return int_to_ip(min(ips))


async def http_get(port: int, target: str, *, timeout: float = 10.0):
    """Minimal raw HTTP client: returns (status, headers, parsed body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(
            f"GET {target} HTTP/1.1\r\nHost: t\r\n"
            "Connection: close\r\n\r\n".encode()
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(1 << 22), timeout)
    finally:
        writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode().split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    assert int(headers["content-length"]) == len(body), (
        "response framing must always be complete"
    )
    parsed = body.decode()
    if headers.get("content-type", "").startswith("application/json"):
        parsed = json.loads(parsed)
    return status, headers, parsed


class AppHarness:
    """Starts a ServeApp on an ephemeral port inside the test's loop."""

    def __init__(self, db, **overrides):
        defaults = dict(port=0, readers=2)
        defaults.update(overrides)
        fault = defaults.pop("fault", None)
        self.app = ServeApp(db, ServeConfig(**defaults), fault=fault)

    async def __aenter__(self):
        await self.app.start()
        return self.app

    async def __aexit__(self, *exc):
        await self.app.close()


class TestEndpoints:
    def test_rounds_and_detail(self, serve_db):
        async def scenario():
            async with AppHarness(serve_db) as app:
                status, _, body = await http_get(app.port, "/rounds")
                assert status == 200
                assert [r["round_id"] for r in body["rounds"]] == [1, 2, 3]
                assert body["in_progress"] == []
                status, _, detail = await http_get(app.port, "/rounds/2")
                assert status == 200
                assert detail["round_id"] == 2
                assert detail["responsive"] > 0
                assert detail["status"] == "complete"
                return True

        assert asyncio.run(scenario())

    def test_ip_history_matches_store(self, serve_db, responsive_ip):
        from repro.cloudsim.addressing import ip_to_int

        store = open_store(serve_db, readonly=True)
        expected = store.history(ip_to_int(responsive_ip))
        store.close()

        async def scenario():
            async with AppHarness(serve_db) as app:
                status, _, body = await http_get(
                    app.port, f"/ip/{responsive_ip}"
                )
                assert status == 200
                assert body["ip"] == responsive_ip
                observations = body["observations"]
                assert [o["round_id"] for o in observations] == [
                    r.round_id for r in expected
                ]
                assert observations[0]["status_code"] == (
                    expected[0].fetch.status_code
                )
                # Absence is data, not an error (§2: WhoWas records
                # that an IP served nothing).
                status, _, body = await http_get(app.port, "/ip/203.0.113.9")
                assert status == 200 and body["observations"] == []

        asyncio.run(scenario())

    def test_cluster_aggregates(self, serve_db):
        async def scenario():
            async with AppHarness(serve_db) as app:
                status, _, body = await http_get(
                    app.port, "/clusters/1?column=server&limit=3"
                )
                assert status == 200
                assert body["column"] == "server"
                assert 0 < len(body["groups"]) <= 3
                counts = [g["count"] for g in body["groups"]]
                assert counts == sorted(counts, reverse=True)

        asyncio.run(scenario())

    def test_health_and_ready(self, serve_db):
        async def scenario():
            async with AppHarness(serve_db) as app:
                status, _, body = await http_get(app.port, "/healthz")
                assert (status, body) == (200, "ok\n")
                status, _, body = await http_get(app.port, "/readyz")
                assert status == 200 and body["ready"] is True

        asyncio.run(scenario())

    def test_poison_queries_are_client_errors(self, serve_db):
        """Garbage must come back as 400/404/405 — never 500, never a
        breaker trip."""
        poison = [
            ("/ip/not-an-ip", 400),
            ("/ip/999.1.2.3", 400),
            ("/rounds/xyzzy", 400),
            ("/rounds/-3", 404),  # joined path normalises; unmatched
            ("/rounds/99999", 404),
            ("/clusters/1?column=body;DROP", 400),
            ("/clusters/1?column=server&limit=0", 400),
            ("/clusters/1?column=server&limit=99999", 400),
            ("/clusters/99999", 404),
            ("/totally/unknown/path", 404),
            ("/rounds?deadline_ms=potato", 400),
        ]

        async def scenario():
            async with AppHarness(serve_db) as app:
                for target, expected in poison:
                    status, _, _ = await http_get(app.port, target)
                    assert status in (expected, 400, 404), (
                        f"{target} -> {status}"
                    )
                    assert status < 500
                for breaker in app.breakers.values():
                    assert breaker.state == BreakerState.CLOSED
                # And the server still serves real queries.
                status, _, _ = await http_get(app.port, "/rounds")
                assert status == 200

        asyncio.run(scenario())

    def test_post_is_rejected(self, serve_db):
        async def scenario():
            async with AppHarness(serve_db) as app:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", app.port
                )
                writer.write(b"POST /rounds HTTP/1.1\r\nHost: t\r\n\r\n")
                await writer.drain()
                raw = await reader.read(4096)
                writer.close()
                assert raw.startswith(b"HTTP/1.1 405 ")

        asyncio.run(scenario())


class TestAdmission:
    def test_shed_returns_429_with_retry_after(self, serve_db):
        async def scenario():
            # Tiny bucket, no queue: the second simultaneous burst
            # request must shed.
            async with AppHarness(
                serve_db, rate_per_second=0.5, burst=1.0, accept_queue=1,
                default_deadline=0.2,
            ) as app:
                results = await asyncio.gather(*[
                    http_get(app.port, "/rounds") for _ in range(6)
                ])
                statuses = sorted(s for s, _, _ in results)
                assert statuses[0] == 200
                assert 429 in statuses
                for status, headers, body in results:
                    if status == 429:
                        hint = int(headers["retry-after"])
                        assert hint >= 1
                        assert body["retry_after"] == hint

        asyncio.run(scenario())

    def test_waiting_for_a_token_succeeds_inside_deadline(self, serve_db):
        async def scenario():
            async with AppHarness(
                serve_db, rate_per_second=20.0, burst=1.0, accept_queue=8,
                default_deadline=2.0,
            ) as app:
                results = await asyncio.gather(*[
                    http_get(app.port, "/healthz") for _ in range(3)
                ] + [
                    http_get(app.port, "/rounds") for _ in range(4)
                ])
                # health is never admission-controlled; the data reads
                # queue briefly for tokens and all make it.
                assert all(status == 200 for status, _, _ in results)

        asyncio.run(scenario())


class TestDeadlines:
    def test_slow_store_read_becomes_503(self, serve_db):
        def slow_fault(endpoint):
            time.sleep(0.6)

        async def scenario():
            async with AppHarness(
                serve_db, fault=slow_fault, default_deadline=0.15,
            ) as app:
                began = time.monotonic()
                status, headers, _ = await http_get(app.port, "/rounds")
                elapsed = time.monotonic() - began
                assert status == 503
                assert elapsed < 0.5, "must shed at the budget, not block"
                assert "retry-after" in headers

        asyncio.run(scenario())

    def test_deadline_ms_parameter_is_honoured(self, serve_db):
        def slow_fault(endpoint):
            time.sleep(0.25)

        async def scenario():
            async with AppHarness(
                serve_db, fault=slow_fault, default_deadline=0.1,
            ) as app:
                status, _, _ = await http_get(app.port, "/rounds")
                assert status == 503  # default budget too small
                status, _, _ = await http_get(
                    app.port, "/rounds?deadline_ms=2000"
                )
                assert status == 200  # explicit budget is enough

        asyncio.run(scenario())


class TestCircuitBreaker:
    def test_unit_state_machine(self):
        now = [0.0]
        breaker = CircuitBreaker(3, cooldown=5.0, clock=lambda: now[0])
        assert breaker.state == BreakerState.CLOSED
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == BreakerState.OPEN
        assert not breaker.allow()
        now[0] += 5.1
        assert breaker.state == BreakerState.HALF_OPEN
        assert breaker.allow()        # the single probe
        assert not breaker.allow()    # second concurrent probe refused
        breaker.record_failure()      # probe failed -> reopen
        assert breaker.state == BreakerState.OPEN
        now[0] += 5.1
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == BreakerState.CLOSED

    def test_trips_on_store_faults_then_recovers(self, serve_db):
        """Injected store faults open the breaker (fail-fast 503s);
        once the fault clears and the cooldown passes, a probe request
        re-closes it and service resumes."""
        sick = {"on": True}

        def fault(endpoint):
            if sick["on"] and endpoint == "rounds":
                raise RuntimeError("injected store sickness")

        async def scenario():
            async with AppHarness(
                serve_db, fault=fault, breaker_threshold=3,
                breaker_cooldown=0.3, rate_per_second=1000.0, burst=100.0,
            ) as app:
                for _ in range(3):
                    status, _, _ = await http_get(app.port, "/rounds")
                    assert status == 503
                assert app.breakers["rounds"].state == BreakerState.OPEN
                # While open: instant 503, the fault hook is not even
                # reached (fail fast).
                began = time.monotonic()
                status, _, body = await http_get(app.port, "/rounds")
                assert status == 503 and body["error"] == "circuit open"
                assert time.monotonic() - began < 0.2
                # Other endpoints keep their own breakers.
                assert app.breakers["ip"].state == BreakerState.CLOSED
                status, _, _ = await http_get(app.port, "/ip/10.0.0.1")
                assert status == 200
                # Heal the store, wait out the cooldown: recovery.
                sick["on"] = False
                await asyncio.sleep(0.35)
                status, _, _ = await http_get(app.port, "/rounds")
                assert status == 200
                assert app.breakers["rounds"].state == BreakerState.CLOSED

        asyncio.run(scenario())

    def test_readyz_degrades_when_all_breakers_open(self, serve_db):
        async def scenario():
            async with AppHarness(serve_db) as app:
                for breaker in app.breakers.values():
                    breaker._state = BreakerState.OPEN
                    breaker._opened_at = time.monotonic() + 3600
                status, _, body = await http_get(app.port, "/readyz")
                assert status == 503
                assert body["reason"] == "all breakers open"

        asyncio.run(scenario())


class TestDrain:
    def test_in_flight_completes_new_refused(self, serve_db):
        release = {"gate": None}

        def slow_fault(endpoint):
            time.sleep(0.4)

        async def scenario():
            async with AppHarness(
                serve_db, fault=slow_fault, default_deadline=5.0,
                drain_deadline=5.0,
            ) as app:
                in_flight = asyncio.ensure_future(
                    http_get(app.port, "/rounds")
                )
                await asyncio.sleep(0.1)  # request is now inside fault
                port = app.port
                drain = asyncio.ensure_future(app.drain())
                await asyncio.sleep(0.05)
                # The listener socket is closed during drain; a client
                # either fails to connect or gets a drain 503.
                try:
                    status, _, body = await http_get(port, "/rounds")
                    refused = status == 503 and body["error"] == "draining"
                except (OSError, asyncio.IncompleteReadError):
                    refused = True
                assert refused
                status, _, body = await in_flight
                assert status == 200 and body["rounds"]
                assert await drain is True

        asyncio.run(scenario())

    def test_drain_past_deadline_force_closes(self, serve_db):
        def wedged_fault(endpoint):
            time.sleep(3.0)  # far beyond the drain deadline

        async def scenario():
            async with AppHarness(
                serve_db, fault=wedged_fault, default_deadline=10.0,
                drain_deadline=0.2,
            ) as app:
                wedged = asyncio.ensure_future(
                    http_get(app.port, "/rounds")
                )
                await asyncio.sleep(0.1)
                began = time.monotonic()
                clean = await app.drain()
                assert clean is False
                assert time.monotonic() - began < 1.5
                with pytest.raises(Exception):
                    await wedged  # connection was force-closed

        asyncio.run(scenario())

    def test_sigterm_drains_real_process(self, serve_db, tmp_path):
        """`python -m repro serve` exits 0 on SIGTERM after a drain."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src",
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", serve_db,
             "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            env=env, text=True,
        )
        try:
            line = proc.stdout.readline()
            assert "serving" in line and "http://" in line, line
            port = int(line.rsplit(":", 1)[1])

            async def query():
                return await http_get(port, "/rounds")

            status, _, _ = asyncio.run(query())
            assert status == 200
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=15) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


class TestSlowLoris:
    def test_stalled_request_head_gets_408(self, serve_db):
        async def scenario():
            async with AppHarness(serve_db, header_timeout=0.3) as app:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", app.port
                )
                writer.write(b"GET /rou")  # never finish the head
                await writer.drain()
                raw = await asyncio.wait_for(reader.read(4096), 5.0)
                writer.close()
                assert raw.startswith(b"HTTP/1.1 408 ")
                # Server is still healthy afterwards.
                status, _, _ = await http_get(app.port, "/healthz")
                assert status == 200

        asyncio.run(scenario())

    def test_oversized_head_gets_431(self, serve_db):
        async def scenario():
            async with AppHarness(
                serve_db, max_request_bytes=512,
            ) as app:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", app.port
                )
                writer.write(
                    b"GET /rounds HTTP/1.1\r\nX-Bloat: " + b"a" * 4096
                )
                await writer.drain()
                raw = await asyncio.wait_for(reader.read(4096), 5.0)
                writer.close()
                assert raw.startswith(b"HTTP/1.1 431 ")

        asyncio.run(scenario())


class TestResiliencePrimitives:
    def test_token_bucket_refills_at_rate(self):
        now = [0.0]
        bucket = TokenBucket(10.0, 2.0, clock=lambda: now[0])
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()
        assert bucket.next_token_in() == pytest.approx(0.1)
        now[0] += 0.1
        assert bucket.try_acquire()

    def test_admission_sheds_beyond_queue_limit(self):
        async def scenario():
            bucket = TokenBucket(5.0, 1.0)
            admission = AdmissionController(
                bucket, queue_limit=2, retry_after_base=0.5,
                retry_after_max=8.0,
            )
            deadline = time.monotonic() + 2.0
            outcomes = await asyncio.gather(*[
                admission.admit(deadline) for _ in range(8)
            ])
            admitted = [o for o in outcomes if o.admitted]
            shed = [o for o in outcomes if not o.admitted]
            assert len(admitted) >= 1
            assert len(shed) >= 5  # 1 token + 2 queue slots at most pass
            assert all(o.retry_after >= 1 for o in shed)

        asyncio.run(scenario())

    def test_pool_bounds_concurrency(self, serve_db):
        async def scenario():
            pool = ReadPool(
                lambda: open_store(serve_db, readonly=True), 2
            )
            await pool.start()
            first = await pool.acquire(1.0)
            second = await pool.acquire(1.0)
            with pytest.raises(PoolTimeout):
                await pool.acquire(0.05)
            pool.release(first)
            await asyncio.sleep(0)  # let call_soon_threadsafe land
            third = await pool.acquire(1.0)
            assert third is first
            pool.release(second)
            pool.release(third)
            pool.close()

        asyncio.run(scenario())


class TestMiniOverload:
    def test_overload_sheds_cleanly(self, serve_db):
        """A fast, deterministic slice of the chaos scenario for tier-1:
        offered load well above the admission rate must produce only
        complete 200/429/503 responses — shedding, never collapsing."""
        async def scenario():
            async with AppHarness(
                serve_db, rate_per_second=30.0, burst=5.0, accept_queue=4,
                default_deadline=0.5,
            ) as app:
                workload = RqsWorkload(
                    mean_users=6, rate_per_user=25.0, duration=1.0,
                    paths={"/rounds": 1.0, "/rounds/1": 1.0,
                           "/ip/10.0.0.1": 2.0},
                    seed=1234,
                )
                report = await run_workload(
                    "127.0.0.1", app.port, workload, timeout=5.0
                )
                assert report.sent > 60  # genuinely above capacity
                assert report.malformed == 0
                assert report.connect_errors == 0
                assert set(report.statuses) <= {200, 429, 503}
                assert report.count(200) > 0
                assert report.count(429) > 0, "overload must shed"
                # Admitted requests stay within their deadline budget
                # plus scheduling slack.
                assert report.percentile(99, status=200) < 1.5

        asyncio.run(scenario())

    def test_workload_schedule_is_deterministic(self):
        workload = RqsWorkload(
            mean_users=4, rate_per_user=10.0, duration=2.0,
            paths={"/a": 1.0, "/b": 1.0}, seed=77,
        )
        again = RqsWorkload(
            mean_users=4, rate_per_user=10.0, duration=2.0,
            paths={"/a": 1.0, "/b": 1.0}, seed=77,
        )
        assert workload.schedule() == again.schedule()
        other = RqsWorkload(
            mean_users=4, rate_per_user=10.0, duration=2.0,
            paths={"/a": 1.0, "/b": 1.0}, seed=78,
        )
        assert workload.schedule() != other.schedule()

    def test_percentile_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == 50.0
        assert percentile(values, 99) == 99.0
        assert percentile(values, 100) == 100.0
        assert percentile([], 99) == 0.0
