"""Test doubles shared by scanner/fetcher/platform tests."""

from __future__ import annotations

from repro.core.transport import HttpResponse, TransportError


class FakeTransport:
    """Scriptable transport: open ports and canned pages per IP."""

    def __init__(self):
        self.open_ports: dict[int, set[int]] = {}
        self.pages: dict[tuple[int, str], HttpResponse] = {}
        self.robots: dict[int, HttpResponse] = {}
        self.errors: dict[int, str] = {}
        self.probe_calls: list[tuple[int, int]] = []
        self.get_calls: list[tuple[int, str, str]] = []
        #: Per-(ip, port): number of failures before a probe succeeds.
        self.fail_first: dict[tuple[int, int], int] = {}
        #: Per-(ip, port): exception raised instead of returning False.
        self.probe_raises: dict[tuple[int, int], Exception] = {}

    def add_host(self, ip: int, ports, *, body: str = "<html></html>",
                 status: int = 200, content_type: str = "text/html",
                 robots_body: str | None = None):
        self.open_ports[ip] = set(ports)
        headers = {"Content-Type": content_type, "Server": "fake/1.0"}
        self.pages[(ip, "/")] = HttpResponse(
            status, headers, body.encode("utf-8")
        )
        if robots_body is not None:
            self.robots[ip] = HttpResponse(
                200, {"Content-Type": "text/plain"}, robots_body.encode()
            )

    async def probe(self, ip: int, port: int, timeout: float) -> bool:
        self.probe_calls.append((ip, port))
        key = (ip, port)
        if key in self.probe_raises:
            raise self.probe_raises[key]
        if self.fail_first.get(key, 0) > 0:
            self.fail_first[key] -= 1
            return False
        return port in self.open_ports.get(ip, set())

    async def get(self, ip: int, scheme: str, path: str, *, timeout: float,
                  max_body: int, headers=None) -> HttpResponse:
        self.get_calls.append((ip, scheme, path))
        if ip in self.errors:
            raise TransportError(self.errors[ip])
        if path in ("/robots.txt", "robots.txt"):
            if ip in self.robots:
                return self.robots[ip]
            return HttpResponse(404, {"Content-Type": "text/html"}, b"nope")
        response = self.pages.get((ip, path))
        if response is None:
            raise TransportError("connection refused")
        return HttpResponse(
            response.status_code, response.headers, response.body[:max_body]
        )
