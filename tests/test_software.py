"""Tests for software ecosystem distributions and weighted sampling."""

from __future__ import annotations

import random
from collections import Counter

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cloudsim.software import (
    AZURE_CATALOG,
    EC2_CATALOG,
    VULNERABLE_SERVERS,
    SoftwareStack,
    WeightedChoice,
)


class TestWeightedChoice:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            WeightedChoice([])

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            WeightedChoice([("a", 0.0)])

    def test_single_item(self):
        choice = WeightedChoice([("only", 5.0)])
        rng = random.Random(0)
        assert all(choice.sample(rng) == "only" for _ in range(20))

    def test_probability_normalised(self):
        choice = WeightedChoice([("a", 1.0), ("b", 3.0)])
        assert choice.probability("a") == pytest.approx(0.25)
        assert choice.probability("b") == pytest.approx(0.75)
        assert choice.probability("missing") == 0.0

    def test_sampling_matches_weights(self):
        choice = WeightedChoice([("a", 8.0), ("b", 2.0)])
        rng = random.Random(42)
        counts = Counter(choice.sample(rng) for _ in range(5000))
        assert counts["a"] / 5000 == pytest.approx(0.8, abs=0.03)

    @given(st.lists(st.tuples(st.text(min_size=1, max_size=3),
                              st.floats(0.01, 100.0)),
                    min_size=1, max_size=10))
    def test_sample_always_a_member(self, weighted):
        choice = WeightedChoice(weighted)
        rng = random.Random(7)
        items = {item for item, _ in weighted}
        assert all(choice.sample(rng) in items for _ in range(25))


class TestCatalogs:
    def test_ec2_server_ranking(self):
        """§8.3: Apache > nginx > IIS on EC2."""
        families = EC2_CATALOG.server_families
        assert families.probability("Apache") > families.probability("nginx")
        assert families.probability("nginx") > families.probability(
            "Microsoft-IIS"
        )

    def test_azure_iis_dominates(self):
        """§8.3: Microsoft-IIS runs on ~89% of identified Azure servers."""
        families = AZURE_CATALOG.server_families
        assert families.probability("Microsoft-IIS") > 0.8

    def test_sampled_stacks_consistent(self):
        rng = random.Random(11)
        for catalog in (EC2_CATALOG, AZURE_CATALOG):
            for _ in range(200):
                stack = catalog.sample_stack(rng)
                assert isinstance(stack, SoftwareStack)
                if stack.server:
                    assert stack.server_family
                    assert stack.server.lower().startswith(
                        stack.server_family.lower().split("-")[0][:4]
                    ) or stack.server_family in stack.server
                else:
                    assert stack.server_family == ""

    def test_stale_versions_present(self):
        """§8.3: most servers run dated versions (Apache 2.2.* etc.)."""
        rng = random.Random(3)
        versions = Counter(
            EC2_CATALOG.sample_stack(rng).server for _ in range(3000)
        )
        apache_22 = sum(
            count for server, count in versions.items()
            if server.startswith("Apache/2.2")
        )
        apache_24 = sum(
            count for server, count in versions.items()
            if server.startswith("Apache/2.4")
        )
        assert apache_22 > apache_24

    def test_vulnerable_servers_sampled(self):
        rng = random.Random(5)
        servers = {EC2_CATALOG.sample_stack(rng).server for _ in range(5000)}
        assert servers & VULNERABLE_SERVERS

    def test_backends_follow_catalog(self):
        rng = random.Random(9)
        backends = Counter(
            b for b in (
                EC2_CATALOG.sample_stack(rng).backend for _ in range(3000)
            ) if b
        )
        php = sum(c for b, c in backends.items() if b.startswith("PHP"))
        aspnet = backends.get("ASP.NET", 0)
        assert php > aspnet  # §8.3: PHP 52.6% vs ASP.NET 29.0% on EC2

    def test_wordpress_dominates_templates(self):
        rng = random.Random(13)
        templates = Counter(
            t for t in (
                EC2_CATALOG.sample_stack(rng).template for _ in range(8000)
            ) if t
        )
        wordpress = sum(
            c for t, c in templates.items() if t.startswith("WordPress")
        )
        assert wordpress > sum(templates.values()) * 0.5
