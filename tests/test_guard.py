"""Unit and integration tests for the supervision layer (guard.py):
deadlines, the bounded work queue, AIMD backpressure, hostile-content
inspection, and guarded feature extraction."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.core.config import FetchConfig, GuardConfig
from repro.core.faults import FaultKind, FaultPlan, FaultyTransport, chaos_plan
from repro.core.features import FeatureExtractor
from repro.core.fetcher import Fetcher
from repro.core.guard import (
    AimdController,
    GuardVerdict,
    StageDeadlineExceeded,
    Supervisor,
)
from repro.core.records import (
    FetchResult,
    FetchStatus,
    ProbeOutcome,
    ProbeStatus,
    UNKNOWN,
)

from _fakes import FakeTransport


def run(coro):
    return asyncio.run(coro)


async def feed_outcomes(controller: AimdController, outcomes: list[bool]):
    for ok in outcomes:
        await controller.acquire()
        await controller.release(ok)


class TestAimdController:
    def test_multiplicative_decrease_on_error_storm(self):
        controller = AimdController(64, window=8, error_threshold=0.5)
        run(feed_outcomes(controller, [False] * 8))
        assert controller.limit == 32
        assert controller.decreases == 1
        assert controller.min_observed == 32

    def test_decrease_respects_floor(self):
        controller = AimdController(
            16, min_limit=8, window=4, error_threshold=0.25
        )
        run(feed_outcomes(controller, [False] * 16))
        assert controller.limit == 8  # never below min_limit

    def test_additive_recovery_after_storm(self):
        controller = AimdController(64, window=8, error_threshold=0.5)
        run(feed_outcomes(controller, [False] * 8))
        assert controller.limit == 32
        run(feed_outcomes(controller, [True] * 16))
        assert controller.limit == 34
        assert controller.increases == 2

    def test_recovery_capped_at_max(self):
        controller = AimdController(4, window=2, error_threshold=0.5)
        run(feed_outcomes(controller, [True] * 50))
        assert controller.limit == 4

    def test_threshold_one_disables_control(self):
        controller = AimdController(32, window=4, error_threshold=1.0)
        run(feed_outcomes(controller, [False] * 32))
        assert controller.limit == 32
        assert controller.decreases == 0

    def test_evaluates_once_per_window(self):
        # 2 windows of all-failures: exactly 2 halvings, not one per
        # outcome once the window is full.
        controller = AimdController(64, window=8, error_threshold=0.5)
        run(feed_outcomes(controller, [False] * 16))
        assert controller.decreases == 2
        assert controller.limit == 16

    def test_survives_multiple_event_loops(self):
        # The platform calls asyncio.run once per round; the condition
        # must rebind without losing AIMD state.
        controller = AimdController(64, window=8, error_threshold=0.5)
        run(feed_outcomes(controller, [False] * 8))
        run(feed_outcomes(controller, [False] * 8))
        assert controller.decreases == 2
        assert controller.limit == 16


class TestSupervisorMap:
    def _map(self, supervisor, items, worker, **kwargs):
        kwargs.setdefault("stage", Supervisor.FETCH)
        kwargs.setdefault("deadline", 5.0)
        kwargs.setdefault("fallback", lambda item, exc: ("fallback", item))
        return run(supervisor.map(items, worker, **kwargs))

    def test_preserves_input_order(self):
        supervisor = Supervisor(concurrency=7)

        async def double(n):
            await asyncio.sleep(0.001 * (n % 5))
            return n * 2

        results = self._map(supervisor, list(range(100)), double)
        assert results == [n * 2 for n in range(100)]
        assert supervisor.tasks_run == 100

    def test_empty_input(self):
        supervisor = Supervisor(concurrency=4)

        async def boom(n):  # pragma: no cover - never called
            raise AssertionError

        assert self._map(supervisor, [], boom) == []

    def test_deadline_kill_yields_fallback(self):
        supervisor = Supervisor(concurrency=4)

        async def hang(n):
            if n == 3:
                await asyncio.sleep(30)
            return n

        results = self._map(supervisor, list(range(6)), hang, deadline=0.05)
        assert results[3] == ("fallback", 3)
        assert [r for i, r in enumerate(results) if i != 3] == [0, 1, 2, 4, 5]
        assert supervisor.deadline_kills[Supervisor.FETCH] == 1

    def test_fallback_receives_stage_deadline_error(self):
        supervisor = Supervisor(concurrency=2)
        seen = {}

        async def hang(n):
            await asyncio.sleep(30)

        self._map(
            supervisor, [1], hang, deadline=0.05,
            fallback=lambda item, exc: seen.setdefault(item, exc),
        )
        assert isinstance(seen[1], StageDeadlineExceeded)
        assert seen[1].kind == "stage-deadline"

    def test_trapped_exception_yields_fallback(self):
        supervisor = Supervisor(concurrency=4)

        async def poison(n):
            if n % 2:
                raise RuntimeError(f"poison {n}")
            return n

        results = self._map(supervisor, list(range(6)), poison)
        assert results == [0, ("fallback", 1), 2, ("fallback", 3),
                           4, ("fallback", 5)]
        assert supervisor.trapped[Supervisor.FETCH] == 3

    def test_concurrency_stays_bounded(self):
        supervisor = Supervisor(concurrency=5)
        active = 0
        peak = 0

        async def busy(n):
            nonlocal active, peak
            active += 1
            peak = max(peak, active)
            await asyncio.sleep(0.002)
            active -= 1
            return n

        self._map(supervisor, list(range(60)), busy)
        assert peak <= 5
        assert supervisor.controller.peak_in_flight <= 5

    def test_zero_deadline_disables_timeout(self):
        supervisor = Supervisor(concurrency=2)

        async def slowish(n):
            await asyncio.sleep(0.01)
            return n

        assert self._map(supervisor, [1], slowish, deadline=0.0) == [1]
        assert supervisor.deadline_kills[Supervisor.FETCH] == 0


def page(body: str, headers: dict | None = None) -> FetchResult:
    return FetchResult(
        ip=1, status=FetchStatus.OK, url="http://1.2.3.4/",
        status_code=200,
        headers=headers if headers is not None else {"Server": "x"},
        body=body,
    )


class TestInspect:
    def setup_method(self):
        self.guard = Supervisor()

    def test_clean_page_is_ok(self):
        assert self.guard.inspect(
            page("<html><title>hi</title></html>")
        ) is GuardVerdict.OK

    def test_header_bomb(self):
        headers = {f"X-T-{n}": "x" for n in range(300)}
        assert self.guard.inspect(
            page("<html></html>", headers)
        ) is GuardVerdict.HEADER_BOMB

    def test_binary_garbage(self):
        assert self.guard.inspect(
            page("\x00" * 100 + "<html></html>")
        ) is GuardVerdict.BINARY_GARBAGE

    def test_title_bomb_unterminated(self):
        assert self.guard.inspect(
            page("<title>" + "A" * 200_000)
        ) is GuardVerdict.TITLE_BOMB

    def test_title_bomb_terminated(self):
        body = "<title>" + "A" * 200_000 + "</title>"
        assert self.guard.inspect(page(body)) is GuardVerdict.TITLE_BOMB
        assert self.guard.inspect(
            page("<title>" + "A" * 10 + "</title>")
        ) is GuardVerdict.OK

    def test_markup_bomb(self):
        assert self.guard.inspect(
            page("<div>" * 10_000)
        ) is GuardVerdict.MARKUP_BOMB

    def test_balanced_markup_is_ok(self):
        assert self.guard.inspect(
            page("<div></div>" * 10_000)
        ) is GuardVerdict.OK

    def test_empty_body_is_ok(self):
        assert self.guard.inspect(page("")) is GuardVerdict.OK


class _PoisonExtractor(FeatureExtractor):
    def extract(self, fetch):
        raise RecursionError("maximum recursion depth exceeded")


class _SleepyExtractor(FeatureExtractor):
    def __init__(self, delay: float):
        super().__init__()
        self.delay = delay

    def extract(self, fetch):
        time.sleep(self.delay)
        return super().extract(fetch)


class TestGuardedExtraction:
    def test_clean_page_untouched(self):
        guard = Supervisor()
        features = run(guard.extract_features(
            FeatureExtractor(), page("<html><title>hi</title></html>")
        ))
        assert features.title == "hi"
        assert guard.drain_quarantine() == []

    def test_poison_extractor_yields_sentinel_and_quarantine(self):
        guard = Supervisor()
        guard.start_round(4, 12)
        body = "<html>poison</html>"
        features = run(guard.extract_features(_PoisonExtractor(), page(body)))
        assert features.title == UNKNOWN
        assert features.html_length == len(body)
        (entry,) = guard.drain_quarantine()
        assert entry.stage == "extract"
        assert entry.verdict == GuardVerdict.TASK_ERROR.value
        assert entry.error_class == "RecursionError"
        assert entry.round_id == 4 and entry.timestamp == 12
        assert guard.trapped[Supervisor.EXTRACT] == 1

    def test_extract_deadline_kills_slow_extractor(self):
        config = GuardConfig(
            extract_deadline=0.1, extract_inline_max_bytes=4
        )
        guard = Supervisor(config)
        features = run(guard.extract_features(
            _SleepyExtractor(1.0), page("<html>slow page</html>")
        ))
        assert features.title == UNKNOWN
        (entry,) = guard.drain_quarantine()
        assert entry.verdict == GuardVerdict.STAGE_DEADLINE.value
        assert guard.deadline_kills[Supervisor.EXTRACT] == 1

    def test_hostile_verdict_keeps_features_but_quarantines(self):
        guard = Supervisor()
        body = "<title>" + "A" * 200_000
        features = run(guard.extract_features(FeatureExtractor(), page(body)))
        # Extraction itself succeeded, so the real features survive...
        assert features.html_length == len(body)
        # ...but the page is flagged for replay.
        (entry,) = guard.drain_quarantine()
        assert entry.verdict == GuardVerdict.TITLE_BOMB.value
        assert entry.payload == body[:guard.config.quarantine_payload_bytes]

    def test_quarantine_payload_truncated(self):
        guard = Supervisor()
        guard.quarantine(
            ip=1, stage=Supervisor.EXTRACT,
            verdict=GuardVerdict.MARKUP_BOMB, payload="x" * 10_000,
        )
        (entry,) = guard.drain_quarantine()
        assert len(entry.payload) == guard.config.quarantine_payload_bytes

    def test_stats_shape(self):
        guard = Supervisor(concurrency=16)
        stats = guard.stats()
        assert stats["concurrency_limit"] == 16
        assert stats["quarantined"] == 0
        assert set(stats) >= {
            "tasks_run", "deadline_kills_fetch", "deadline_kills_extract",
            "trapped_fetch", "trapped_extract", "aimd_decreases",
            "aimd_increases",
        }


def _outcomes(n: int) -> list[ProbeOutcome]:
    return [
        ProbeOutcome(
            ip=ip, status=ProbeStatus.RESPONSIVE,
            open_ports=frozenset({80}),
        )
        for ip in range(1, n + 1)
    ]


def _storm_fetcher(rate: float, *, workers: int = 32) -> Fetcher:
    inner = FakeTransport()
    for ip in range(1, 513):
        inner.add_host(ip, {80}, body=f"<html><title>h{ip}</title></html>")
    faulty = FaultyTransport(
        inner,
        chaos_plan(3, rate=rate, kinds=(FaultKind.CONNECT_TIMEOUT,)),
    )
    config = FetchConfig(workers=workers, respect_robots=False)
    guard = Supervisor(
        GuardConfig(
            aimd_window=16, aimd_error_threshold=0.4, aimd_min_concurrency=2
        ),
        concurrency=workers,
    )
    fetcher = Fetcher(faulty, config, guard=guard)
    fetcher.faulty = faulty
    return fetcher


class TestAimdUnderStorm:
    def test_timeout_storm_reduces_then_restores_concurrency(self):
        # Acceptance: under a >50% connect-timeout storm the supervisor
        # demonstrably sheds concurrency, then recovers on clean air.
        fetcher = _storm_fetcher(0.55)
        results = fetcher.fetch_sync(_outcomes(512))
        assert len(results) == 512
        stats = fetcher.guard.stats()
        assert stats["aimd_decreases"] >= 1
        assert stats["concurrency_min_observed"] < 32
        storm_floor = stats["concurrency_limit"]

        # Clean air: additive recovery raises the limit back up.
        fetcher.faulty.plan = FaultPlan()
        results = fetcher.fetch_sync(_outcomes(512))
        assert all(r.status is FetchStatus.OK for r in results)
        stats = fetcher.guard.stats()
        assert stats["aimd_increases"] >= 1
        assert stats["concurrency_limit"] > storm_floor

    def test_errors_recorded_and_quarantined(self):
        fetcher = _storm_fetcher(0.55)
        results = fetcher.fetch_sync(_outcomes(256))
        errors = [r for r in results if r.status is FetchStatus.ERROR]
        assert errors, "storm injected no failures?"
        assert all(r.error_class == "connect-timeout" for r in errors)
        # Transport errors surface through fetch_ip's own handler, not
        # the guard fallback, so they are NOT quarantine entries...
        assert fetcher.guard.drain_quarantine() == []
        # ...but they do feed the AIMD window.
        assert fetcher.fetch_errors == len(errors)


class TestFetcherGuardFallback:
    def test_worker_crash_becomes_error_result_plus_quarantine(self):
        class CrashingFetcher(Fetcher):
            async def fetch_ip(self, outcome):
                raise ValueError("exploded mid-fetch")

        fetcher = CrashingFetcher(
            FakeTransport(), FetchConfig(respect_robots=False)
        )
        fetcher.guard.start_round(7, 3)
        (result,) = fetcher.fetch_sync(_outcomes(1))
        assert result.status is FetchStatus.ERROR
        assert result.error == "exploded mid-fetch"
        (entry,) = fetcher.guard.drain_quarantine()
        assert entry.stage == "fetch"
        assert entry.verdict == GuardVerdict.TASK_ERROR.value
        assert entry.error_class == "ValueError"
        assert entry.round_id == 7

    def test_hung_fetch_killed_by_stage_deadline(self):
        class HangingTransport(FakeTransport):
            async def get(self, *args, **kwargs):
                await asyncio.sleep(30)

        guard = Supervisor(GuardConfig(fetch_deadline=0.1), concurrency=4)
        fetcher = Fetcher(
            HangingTransport(), FetchConfig(respect_robots=False),
            guard=guard,
        )
        (result,) = fetcher.fetch_sync(_outcomes(1))
        assert result.status is FetchStatus.ERROR
        assert result.error_class == "stage-deadline"
        (entry,) = guard.drain_quarantine()
        assert entry.verdict == GuardVerdict.STAGE_DEADLINE.value
        assert guard.deadline_kills[Supervisor.FETCH] == 1


class TestGuardConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            GuardConfig(fetch_deadline=-1)
        with pytest.raises(ValueError):
            GuardConfig(aimd_window=0)
        with pytest.raises(ValueError):
            GuardConfig(aimd_error_threshold=0.0)
        with pytest.raises(ValueError):
            GuardConfig(aimd_error_threshold=1.5)
        with pytest.raises(ValueError):
            GuardConfig(max_response_headers=0)
