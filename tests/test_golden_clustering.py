"""Golden regression pin for the §5 clustering funnel on the seed
scenario — the tier-1 guard behind ``bench_table06_clustering.py``.

The benchmark suite reproduces Table 6 at bench scale, but it only
checks *ordering relations*; a subtle indexed-vs-exact drift in cluster
assignments could pass there and silently change the reported numbers.
This test pins the funnel exactly on the (deterministic) tier-1 seed
campaign, for the brute-force path, the banded-LSH path, and the
default auto path — all three must agree with the committed goldens and
with each other, so any drift is caught in tier-1, not in benchmark
review.

If a deliberate algorithm change moves these numbers, regenerate them
with the snippet in this file's git history (run the clusterer on the
``ec2_campaign`` fixture and print ``stats``/sizes) and update the
constants in the same commit that changes the behaviour.
"""

from __future__ import annotations

import pytest

from repro.analysis.clustering import ClusterStats, WebpageClusterer

#: Funnel of the 2048-IP / 35-day / seed-101 EC2 fixture campaign.
GOLDEN_STATS = ClusterStats(
    responsive_ips=743,
    unique_simhashes=162,
    top_level_clusters=114,
    second_level_clusters=130,
    merged_clusters=130,
    final_clusters=84,
)
GOLDEN_THRESHOLD = 20
GOLDEN_TOTAL_MEMBERS = 3523
GOLDEN_TOP10_SIZES = [216, 216, 215, 208, 192, 192, 191, 189, 180, 156]
GOLDEN_REMOVED_CLUSTERS = 46


def _canonical(result):
    kept = frozenset(frozenset(c.members) for c in result.clusters.values())
    removed = frozenset(frozenset(c.members) for c in result.removed.values())
    return kept, removed


@pytest.fixture(scope="module")
def exact_result(ec2_campaign):
    return WebpageClusterer(exact=True).cluster(ec2_campaign.dataset)


@pytest.fixture(scope="module")
def indexed_result(ec2_campaign):
    return WebpageClusterer(exact=False, exact_cutoff=0).cluster(
        ec2_campaign.dataset
    )


class TestGoldenFunnel:
    def test_exact_path_matches_goldens(self, exact_result):
        assert exact_result.stats == GOLDEN_STATS
        assert exact_result.threshold == GOLDEN_THRESHOLD

    def test_indexed_path_matches_goldens(self, indexed_result):
        assert indexed_result.stats == GOLDEN_STATS
        assert indexed_result.threshold == GOLDEN_THRESHOLD

    def test_default_auto_path_matches_goldens(self, ec2_clustering):
        assert ec2_clustering.stats == GOLDEN_STATS
        assert ec2_clustering.threshold == GOLDEN_THRESHOLD

    def test_cluster_sizes_pinned(self, indexed_result):
        sizes = sorted(
            (len(c.members) for c in indexed_result.clusters.values()),
            reverse=True,
        )
        assert len(sizes) == GOLDEN_STATS.final_clusters
        assert sum(sizes) == GOLDEN_TOTAL_MEMBERS
        assert sizes[:10] == GOLDEN_TOP10_SIZES
        assert len(indexed_result.removed) == GOLDEN_REMOVED_CLUSTERS

    def test_indexed_and_exact_identical(self, exact_result, indexed_result):
        """The real invariant behind the goldens: byte-identical
        cluster membership between the two candidate-generation paths."""
        assert _canonical(exact_result) == _canonical(indexed_result)
        assert exact_result.stats == indexed_result.stats
