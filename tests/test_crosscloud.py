"""Tests for cross-cloud overlap detection (§8.1)."""

from __future__ import annotations

import pytest

from repro.analysis import find_cross_cloud_clusters
from repro.analysis.clustering import WebpageClusterer
from repro.workloads import Campaign, azure_scenario, ec2_scenario, link_clouds

from _obs import make_dataset, obs

HASH = 0x123456789ABCDEF0FEDCBA98


class TestMatcher:
    def build(self, hash_b: int, title_b: str = "shared site"):
        dataset_a = make_dataset([
            obs(1, 0, title="shared site", server="nginx", simhash=HASH),
            obs(2, 0, title="only in a", simhash=HASH >> 5),
        ])
        dataset_b = make_dataset([
            obs(9, 0, title=title_b, server="nginx", simhash=hash_b),
        ])
        cluster = WebpageClusterer(level2_threshold=3).cluster
        return dataset_a, cluster(dataset_a), dataset_b, cluster(dataset_b)

    def test_identical_content_matches(self):
        overlap = find_cross_cloud_clusters(*self.build(HASH))
        assert overlap.count == 1
        match = overlap.matches[0]
        assert match.title == "shared site"
        assert match.same_footprint

    def test_nearby_simhash_matches(self):
        overlap = find_cross_cloud_clusters(*self.build(HASH ^ 0b111))
        assert overlap.count == 1

    def test_distant_simhash_rejected(self):
        overlap = find_cross_cloud_clusters(
            *self.build(HASH ^ ((1 << 40) - 1))
        )
        assert overlap.count == 0

    def test_different_key_rejected(self):
        overlap = find_cross_cloud_clusters(
            *self.build(HASH, title_b="different title")
        )
        assert overlap.count == 0

    def test_footprint_gap(self):
        dataset_a = make_dataset([
            obs(ip, 0, title="big in a", server="x", simhash=HASH)
            for ip in range(5)
        ])
        dataset_b = make_dataset([
            obs(9, 0, title="big in a", server="x", simhash=HASH),
        ])
        cluster = WebpageClusterer(level2_threshold=3).cluster
        overlap = find_cross_cloud_clusters(
            dataset_a, cluster(dataset_a), dataset_b, cluster(dataset_b)
        )
        match = overlap.matches[0]
        assert not match.same_footprint
        assert match.size_gap == pytest.approx(4.0)
        assert overlap.largest_gap() is match

    def test_empty_overlap(self):
        overlap = find_cross_cloud_clusters(
            *self.build(HASH, title_b="different title")
        )
        assert overlap.same_footprint_share() == 0.0
        assert overlap.largest_gap() is None


class TestLinkClouds:
    @pytest.fixture(scope="class")
    def linked_campaigns(self):
        ec2 = ec2_scenario(total_ips=2048, seed=7, duration_days=24)
        azure = azure_scenario(total_ips=1024, seed=11, duration_days=24)
        linked = link_clouds(ec2, azure, shared_services=8, seed=1)
        days = list(range(0, 24, 4))
        return (
            linked,
            Campaign(ec2).run(scan_days=days),
            Campaign(azure).run(scan_days=days),
        )

    def test_link_count(self, linked_campaigns):
        linked, _, _ = linked_campaigns
        assert linked >= 8          # 8 small services + the VPN mirror

    def test_overlap_found(self, linked_campaigns):
        linked, ec2_result, azure_result = linked_campaigns
        overlap = find_cross_cloud_clusters(
            ec2_result.dataset, ec2_result.clustering(),
            azure_result.dataset, azure_result.clustering(),
        )
        # Most linked services are recovered (some may be unlucky —
        # transient hosts, robots, fetch failures).
        assert overlap.count >= linked * 0.5
        # §8.1: the bulk of shared clusters keep the same footprint.
        assert overlap.same_footprint_share() > 50.0

    def test_vpn_mirror_has_gap(self, linked_campaigns):
        """The EC2 VPN giant mirrors into Azure with a tiny footprint,
        creating the paper's one large size gap."""
        _, ec2_result, azure_result = linked_campaigns
        overlap = find_cross_cloud_clusters(
            ec2_result.dataset, ec2_result.clustering(),
            azure_result.dataset, azure_result.clustering(),
        )
        gap = overlap.largest_gap()
        if gap is None:
            pytest.skip("no overlap at this seed")
        assert gap.size_gap >= 0.0
