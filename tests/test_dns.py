"""Tests for the simulated EC2-style DNS (§5 cartography semantics)."""

from __future__ import annotations

import pytest

from repro.cloudsim.addressing import int_to_ip
from repro.cloudsim.dns import CloudDns, public_hostname
from repro.cloudsim.population import WorkloadSpec
from repro.cloudsim.providers import EC2_SPEC, NetKind
from repro.cloudsim.services import PORT_PROFILES_EC2
from repro.cloudsim.simulation import CloudSimulation
from repro.cloudsim.software import EC2_CATALOG


@pytest.fixture(scope="module")
def world():
    topology = EC2_SPEC.build(2048, seed=23)
    sim = CloudSimulation(
        topology,
        WorkloadSpec(cloud="EC2", duration_days=20),
        EC2_CATALOG,
        PORT_PROFILES_EC2,
        seed=23,
    )
    return topology, sim, CloudDns(topology, sim)


class TestHostname:
    def test_format(self):
        ip = (54 << 24) | (12 << 16) | (3 << 8) | 4
        assert public_hostname(ip) == "ec2-54-12-3-4.compute-1.amazonaws.com"

    def test_region_suffix(self):
        ip = 54 << 24
        assert "eu-west-1" in public_hostname(ip, "eu-west-1")


class TestResolve:
    def test_vpc_ip_returns_public_address(self, world):
        """VPC IPs always resolve to their public address, active or not."""
        topology, sim, dns = world
        vpc_ip = next(
            a for a in topology.space.addresses()
            if topology.kind_of(a) == NetKind.VPC
        )
        answer = dns.resolve(public_hostname(vpc_ip))
        assert answer.kind == "A"
        assert answer.address == vpc_ip
        assert dns.in_public_space(answer.address)

    def test_idle_classic_ip_soa(self, world):
        topology, sim, dns = world
        assigned = set(sim.assignments())
        idle_classic = next(
            a for a in topology.space.addresses()
            if topology.kind_of(a) == NetKind.CLASSIC and a not in assigned
        )
        assert dns.resolve(public_hostname(idle_classic)).is_soa

    def test_active_classic_ip_private_answer(self, world):
        topology, sim, dns = world
        active_classic = next(
            ip for ip in sim.assignments()
            if topology.kind_of(ip) == NetKind.CLASSIC
        )
        answer = dns.resolve(public_hostname(active_classic))
        assert answer.kind == "A"
        assert not dns.in_public_space(answer.address)
        assert int_to_ip(answer.address).startswith("10.")

    def test_outside_space_soa(self, world):
        _, _, dns = world
        assert dns.resolve("ec2-9-9-9-9.compute-1.amazonaws.com").is_soa

    def test_malformed_hostnames(self, world):
        _, _, dns = world
        assert dns.resolve("www.example.com").is_soa
        assert dns.resolve("ec2-1-2-3.compute-1.amazonaws.com").is_soa
        assert dns.resolve("ec2-999-1-1-1.compute-1.amazonaws.com").is_soa

    def test_query_counter(self, world):
        topology, _, _ = world
        dns = CloudDns(topology)
        dns.resolve("www.example.com")
        dns.resolve("www.example.org")
        assert dns.query_count == 2

    def test_without_simulation_classic_is_soa(self, world):
        """A DNS view with no activity data treats classic as idle."""
        topology, _, _ = world
        dns = CloudDns(topology)
        classic = next(
            a for a in topology.space.addresses()
            if topology.kind_of(a) == NetKind.CLASSIC
        )
        assert dns.resolve(public_hostname(classic)).is_soa
