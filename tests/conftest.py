"""Shared fixtures: small simulated campaigns, reused across test modules.

Campaign fixtures are session-scoped — building a cloud and scanning it
for a dozen rounds takes a few seconds, and every analysis test can
share the same immutable result.
"""

from __future__ import annotations

import pytest

from repro.analysis import Dataset
from repro.workloads import Campaign, CampaignResult, azure_scenario, ec2_scenario


@pytest.fixture(scope="session")
def ec2_campaign() -> CampaignResult:
    """A tiny EC2-like campaign: 2048 IPs, 35 days, 12 rounds."""
    scenario = ec2_scenario(
        total_ips=2048,
        duration_days=35,
        seed=101,
        malicious_embedders=6,
        malicious_hosters=10,
        linchpin_services=1,
    )
    return Campaign(scenario).run()


@pytest.fixture(scope="session")
def azure_campaign() -> CampaignResult:
    """A tiny Azure-like campaign: 1024 IPs, 30 days."""
    scenario = azure_scenario(
        total_ips=1024,
        duration_days=30,
        seed=103,
        malicious_embedders=3,
    )
    return Campaign(scenario).run()


@pytest.fixture(scope="session")
def ec2_dataset(ec2_campaign) -> Dataset:
    return ec2_campaign.dataset


@pytest.fixture(scope="session")
def ec2_clustering(ec2_campaign):
    return ec2_campaign.clustering()
