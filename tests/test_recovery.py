"""Crash recovery: journaled rounds, resumable campaigns, breakers.

The paper's campaigns run for months; these tests assert that a
process killed mid-round (simulated crash), or stopped cooperatively
(abort event / SIGINT), leaves a checkpointed database that ``resume``
completes into a byte-equivalent copy of an uninterrupted run — same
responsive IPs, same rows, same round metadata, no duplicates.
"""

from __future__ import annotations

import asyncio
import json
import sqlite3

import pytest

from repro.cli import main
from repro.core import (
    FaultKind,
    FaultPlan,
    FaultRule,
    FaultyTransport,
    MeasurementStore,
    RoundInterrupted,
    Scanner,
    SubnetCircuitBreaker,
    WhoWas,
    chaos_plan,
)
from repro.core.config import (
    FetchConfig,
    PipelineConfig,
    PlatformConfig,
    ScanConfig,
)
from repro.core.records import ProbeStatus
from repro.core.store import ROUND_COMPLETE, ROUND_IN_PROGRESS, open_store
from repro.core.transport import ConnectionRefused
from repro.workloads import Campaign, CampaignInterrupted, ec2_scenario
from test_store import record


# Small enough to stay fast, big enough for 4 shards of 64 per round.
SCENARIO_PARAMS = dict(total_ips=256, seed=5, duration_days=12)


def small_config(**overrides) -> PlatformConfig:
    """simulation_config, but with 64-IP shards so a 256-IP round has
    four checkpoints."""
    kwargs = dict(
        scan=ScanConfig(probes_per_second=1e12, concurrency=2048),
        fetch=FetchConfig(workers=2048),
        grab_ssh_banners=True,
        shard_size=64,
    )
    kwargs.update(overrides)
    return PlatformConfig(**kwargs)


class CrashOnFault:
    """Transport wrapper that dies with RuntimeError (a non-transport
    error, i.e. a process crash) exactly where a seeded FaultPlan
    fires — a deterministic, replayable mid-shard kill."""

    def __init__(self, inner, plan: FaultPlan):
        self.inner = inner
        self.plan = plan
        self.round_id = 0

    def on_round_start(self, round_id: int) -> None:
        self.round_id = round_id
        hook = getattr(self.inner, "on_round_start", None)
        if callable(hook):
            hook(round_id)

    async def probe(self, ip, port, timeout):
        if self.plan.fault_for("probe", ip, port, self.round_id, 0):
            raise RuntimeError("simulated crash (fault-plan driven)")
        return await self.inner.probe(ip, port, timeout)

    async def banner(self, ip, port, timeout):
        return await self.inner.banner(ip, port, timeout)

    async def get(self, ip, scheme, path, **kwargs):
        return await self.inner.get(ip, scheme, path, **kwargs)


class AbortTrigger:
    """Transport wrapper that sets an abort event after N probes of a
    given round — an operator's ^C at a deterministic instant."""

    def __init__(self, inner, event: asyncio.Event, *,
                 round_id: int, after_probes: int):
        self.inner = inner
        self.event = event
        self.trigger_round = round_id
        self.after_probes = after_probes
        self.round_id = 0
        self._count = 0

    def on_round_start(self, round_id: int) -> None:
        self.round_id = round_id
        self._count = 0
        hook = getattr(self.inner, "on_round_start", None)
        if callable(hook):
            hook(round_id)

    async def probe(self, ip, port, timeout):
        if self.round_id == self.trigger_round:
            self._count += 1
            if self._count == self.after_probes:
                self.event.set()
        return await self.inner.probe(ip, port, timeout)

    async def banner(self, ip, port, timeout):
        return await self.inner.banner(ip, port, timeout)

    async def get(self, ip, scheme, path, **kwargs):
        return await self.inner.get(ip, scheme, path, **kwargs)


class DeadTransport:
    """Every probe is actively refused (classified error)."""

    def __init__(self):
        self.probes = 0

    async def probe(self, ip, port, timeout):
        self.probes += 1
        raise ConnectionRefused("refused")

    async def banner(self, ip, port, timeout):
        raise ConnectionRefused("refused")

    async def get(self, ip, scheme, path, **kwargs):
        raise ConnectionRefused("refused")


def db_snapshot(path: str):
    """Full content snapshot of a round database: round metadata plus
    every record row, ordered, for byte-equivalence comparison.  Opens
    through the interface so snapshots compare across engines."""
    store = open_store(path)
    rounds = [
        (i.round_id, i.timestamp, i.targets_probed, i.responsive_count,
         i.degraded, i.error_count, i.status)
        for i in store.rounds()
    ]
    rows = {}
    for info in store.rounds():
        round_rows = sorted(
            (r.to_row() for r in store.records(info.round_id)),
            key=lambda row: row["ip"],
        )
        ips = [row["ip"] for row in round_rows]
        assert len(ips) == len(set(ips)), (
            f"duplicate IP rows in round {info.round_id}"
        )
        rows[info.round_id] = round_rows
    store.close()
    return rounds, rows


# ----------------------------------------------------------------------
# store: journaled round protocol


class TestJournaledStore:
    def test_begin_write_finalize(self):
        store = MeasurementStore()
        store.begin_round(1, 0, 10, shard_size=2)
        assert store.open_rounds()[0].round_id == 1
        assert store.rounds() == []          # invisible until finalized
        store.write_shard(1, 0, [record(1, 1, 0), record(2, 1, 0)])
        store.write_shard(1, 1, [record(3, 1, 0)], errors=2, operations=9)
        info = store.finalize_round(1)
        assert info.responsive_count == 3
        assert info.status == ROUND_COMPLETE
        assert info.error_count == 2          # summed from shard journal
        assert store.open_rounds() == []
        assert store.responsive_ips(1) == {1, 2, 3}

    def test_write_shard_is_idempotent(self):
        store = MeasurementStore()
        store.begin_round(1, 0, 10)
        assert store.write_shard(1, 0, [record(1, 1, 0)]) is True
        assert store.write_shard(1, 0, [record(1, 1, 0)]) is False
        store.finalize_round(1)
        assert len(list(store.records(1))) == 1

    def test_resume_keeps_committed_shards_and_shard_size(self):
        store = MeasurementStore()
        store.begin_round(1, 0, 10, shard_size=4)
        store.write_shard(1, 0, [record(1, 1, 0)])
        # Re-opening (the resume path) keeps the shard and its sizing,
        # even when the caller now runs with a different config.
        info = store.begin_round(1, 0, 10, shard_size=99)
        assert info.shard_size == 4
        assert store.completed_shards(1) == {0}
        store.write_shard(1, 1, [record(2, 1, 0)])
        assert store.finalize_round(1).responsive_count == 2

    def test_crash_between_shards_is_resumable_on_reopen(self, tmp_path):
        path = str(tmp_path / "campaign.sqlite")
        store = MeasurementStore(path)
        store.begin_round(1, 0, 100, shard_size=1)
        store.write_shard(1, 0, [record(7, 1, 0)])
        del store                         # crash: never finalized/closed

        reopened = MeasurementStore(path)
        assert reopened.rounds() == []
        (partial,) = reopened.open_rounds()
        assert partial.round_id == 1 and partial.status == ROUND_IN_PROGRESS
        assert reopened.completed_shards(1) == {0}
        reopened.write_shard(1, 1, [record(8, 1, 0)])
        assert reopened.finalize_round(1).responsive_count == 2
        reopened.close()

    def test_delete_partial(self):
        store = MeasurementStore()
        store.begin_round(1, 0, 10)
        store.write_shard(1, 0, [record(1, 1, 0)])
        store.delete_partial(1)
        assert store.open_rounds() == []
        assert store.max_round_id() == 0

    def test_delete_partial_refuses_finalized_rounds(self):
        store = MeasurementStore()
        store.write_round(1, 0, 10, [record(1, 1, 0)])
        with pytest.raises(ValueError, match="not a partial"):
            store.delete_partial(1)

    def test_finalized_round_cannot_be_reopened(self):
        store = MeasurementStore()
        store.write_round(1, 0, 10, [])
        with pytest.raises(ValueError, match="already finalized"):
            store.begin_round(1, 0, 10)

    def test_timestamp_collision_raises(self):
        """Two rounds sharing a timestamp would share a table and drop
        each other's data; the store refuses instead."""
        store = MeasurementStore()
        store.write_round(1, 5, 10, [record(1, 1, 5)])
        with pytest.raises(ValueError, match="timestamp 5 already used"):
            store.write_round(2, 5, 10, [record(2, 2, 5)])
        with pytest.raises(ValueError, match="timestamp 5 already used"):
            store.begin_round(3, 5, 10)
        # The same round_id may still be rewritten (legacy semantics).
        store.write_round(1, 5, 10, [record(9, 1, 5)])
        assert store.responsive_ips(1) == {9}

    def test_max_round_id_counts_open_rounds(self):
        store = MeasurementStore()
        assert store.max_round_id() == 0
        store.write_round(3, 0, 10, [])
        store.begin_round(7, 9, 10)
        assert store.max_round_id() == 7

    def test_wal_mode_on_file_stores(self, tmp_path):
        store = MeasurementStore(str(tmp_path / "wal.sqlite"))
        mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"
        store.close()

    def test_meta_roundtrip_and_persistence(self, tmp_path):
        path = str(tmp_path / "meta.sqlite")
        store = MeasurementStore(path)
        assert store.get_meta("scenario") is None
        assert store.get_meta("scenario", "fallback") == "fallback"
        store.set_meta("scenario", "EC2")
        store.set_meta("scenario", "Azure")      # upsert
        store.set_meta("completed_days", json.dumps([0, 3]))
        store.close()
        reopened = MeasurementStore(path)
        assert reopened.meta() == {
            "scenario": "Azure", "completed_days": "[0, 3]",
        }
        reopened.close()

    def test_migrates_pre_journal_database(self, tmp_path):
        """A rounds table from before round_status/shard_size existed
        is upgraded in place; degraded rounds keep their flag in the
        new status column."""
        path = str(tmp_path / "old.sqlite")
        conn = sqlite3.connect(path)
        conn.execute(
            "CREATE TABLE rounds ("
            "  round_id INTEGER PRIMARY KEY,"
            "  timestamp INTEGER NOT NULL,"
            "  targets_probed INTEGER NOT NULL,"
            "  responsive_count INTEGER NOT NULL,"
            "  degraded INTEGER NOT NULL DEFAULT 0,"
            "  error_count INTEGER NOT NULL DEFAULT 0"
            ")"
        )
        conn.execute("INSERT INTO rounds VALUES (1, 0, 10, 0, 0, 0)")
        conn.execute("INSERT INTO rounds VALUES (2, 3, 10, 0, 1, 4)")
        conn.commit()
        conn.close()

        store = MeasurementStore(path)
        first, second = store.rounds()
        assert first.status == ROUND_COMPLETE
        assert second.status == "degraded" and second.degraded
        assert store.open_rounds() == []
        store.close()


# ----------------------------------------------------------------------
# scanner: per-/24 circuit breaker


class TestCircuitBreaker:
    def test_trips_after_threshold_and_skips_subnet(self):
        config = ScanConfig(
            probes_per_second=1e12, concurrency=1, subnet_error_threshold=3
        )
        transport = DeadTransport()
        scanner = Scanner(transport, config)
        subnet = [(10 << 24) | i for i in range(8)]
        outcomes = scanner.scan_sync(subnet)
        assert [o.status for o in outcomes[:3]] == [
            ProbeStatus.UNRESPONSIVE] * 3
        assert all(
            o.status is ProbeStatus.CIRCUIT_OPEN for o in outcomes[3:]
        )
        # 3 IPs x 3 ports actually probed; the other 5 never touched.
        assert transport.probes == 9
        assert scanner.circuit_open_skips == 5
        assert scanner.breaker.open_subnets == {10 << 24 >> 8}

    def test_breaker_is_scoped_per_subnet(self):
        config = ScanConfig(
            probes_per_second=1e12, concurrency=1, subnet_error_threshold=2
        )
        scanner = Scanner(DeadTransport(), config)
        bad = [(10 << 24) | i for i in range(4)]
        other = [(11 << 24) | i for i in range(2)]
        outcomes = scanner.scan_sync(bad + other)
        assert [o.status for o in outcomes[2:4]] == [
            ProbeStatus.CIRCUIT_OPEN] * 2
        # The neighbouring /24 starts with a closed breaker.
        assert [o.status for o in outcomes[4:]] == [
            ProbeStatus.UNRESPONSIVE] * 2

    def test_clean_outcome_resets_streak(self):
        breaker = SubnetCircuitBreaker(threshold=3)
        ip = (10 << 24) | 1
        breaker.record(ip, True)
        breaker.record(ip, True)
        breaker.record(ip, False)          # responsive host: streak resets
        breaker.record(ip, True)
        breaker.record(ip, True)
        assert not breaker.is_open(ip)
        breaker.record(ip, True)
        assert breaker.is_open(ip)

    def test_disabled_by_default(self):
        scanner = Scanner(DeadTransport(), ScanConfig(probes_per_second=1e12))
        outcomes = scanner.scan_sync([(10 << 24) | i for i in range(6)])
        assert all(o.status is ProbeStatus.UNRESPONSIVE for o in outcomes)
        assert scanner.circuit_open_skips == 0

    def test_platform_resets_breaker_each_round(self):
        config = PlatformConfig(
            scan=ScanConfig(
                probes_per_second=1e12, concurrency=1,
                subnet_error_threshold=2,
            ),
            round_error_budget=1.0,
        )
        platform = WhoWas(DeadTransport(), config=config)
        targets = [(10 << 24) | i for i in range(6)]
        first = platform.run_round(targets, timestamp=0)
        assert first.circuit_open == 4
        # Next round the breaker is re-armed: the subnet is probed
        # again (and trips again).
        second = platform.run_round(targets, timestamp=1)
        assert second.circuit_open == 4


# ----------------------------------------------------------------------
# platform: durable round IDs, checkpointed shards, cooperative abort


class TestPlatformRecovery:
    def test_round_ids_continue_from_store(self, tmp_path):
        path = str(tmp_path / "ids.sqlite")
        store = MeasurementStore(path)
        store.write_round(1, 0, 4, [])
        store.write_round(2, 3, 4, [])
        store.close()

        reopened = MeasurementStore(path)
        platform = WhoWas(
            DeadTransport(), reopened,
            PlatformConfig(
                scan=ScanConfig(probes_per_second=1e12),
                round_error_budget=1.0,
            ),
        )
        summary = platform.run_round([1, 2, 3], timestamp=6)
        assert summary.round_id == 3
        reopened.close()

    def test_abort_event_checkpoints_current_shard(self):
        """With the event pre-set, no shard runs; mid-run, the current
        shard commits before RoundInterrupted surfaces."""
        store = MeasurementStore()
        platform = WhoWas(
            DeadTransport(), store,
            PlatformConfig(
                scan=ScanConfig(probes_per_second=1e12),
                round_error_budget=1.0, shard_size=2,
            ),
        )
        event = asyncio.Event()
        event.set()
        with pytest.raises(RoundInterrupted) as excinfo:
            platform.run_round(list(range(6)), timestamp=0,
                               abort_event=event)
        assert excinfo.value.shards_done == 0
        assert excinfo.value.shards_total == 3
        (partial,) = store.open_rounds()
        assert partial.round_id == 1

        # Resuming the same round finishes the remaining shards.
        summary = platform.run_round(
            list(range(6)), timestamp=0, resume_round_id=1
        )
        assert summary.round_id == 1
        assert store.round_info(1).status == ROUND_COMPLETE

    def test_grab_banners_type_hints_resolve(self):
        """Regression: ProbeOutcome was only referenced in a string
        annotation without being imported, so get_type_hints blew up."""
        import typing

        hints = typing.get_type_hints(WhoWas._grab_banners)
        assert "outcomes" in hints


# ----------------------------------------------------------------------
# campaign: crash → resume → byte-equivalent database


def reference_db(tmp_path, name="reference.sqlite") -> str:
    path = str(tmp_path / name)
    Campaign(
        ec2_scenario(**SCENARIO_PARAMS),
        store=MeasurementStore(path),
        config=small_config(),
    ).run()
    return path


class TestCampaignCrashRecovery:
    def test_serial_escape_hatch_matches_overlapped_engine(self, tmp_path):
        """pipeline.overlap=False reproduces the streaming engine's
        store byte-for-byte over a full campaign."""
        reference = reference_db(tmp_path)       # overlap=True default
        serial = str(tmp_path / "serial.sqlite")
        Campaign(
            ec2_scenario(**SCENARIO_PARAMS),
            store=MeasurementStore(serial),
            config=small_config(pipeline=PipelineConfig(overlap=False)),
        ).run()
        assert db_snapshot(serial) == db_snapshot(reference)

    def test_crash_mid_shard_then_resume_is_byte_equivalent(self, tmp_path):
        reference = reference_db(tmp_path)

        # Kill the process (RuntimeError) while round 2 probes shard 2.
        crashed = str(tmp_path / "crashed.sqlite")
        scenario = ec2_scenario(**SCENARIO_PARAMS)
        victim = scenario.targets[140]          # shard index 140 // 64 == 2
        plan = FaultPlan(seed=1, rules=(
            FaultRule(FaultKind.CONNECT_TIMEOUT, ips={victim}, rounds={2}),
        ))
        scenario.transport = CrashOnFault(scenario.transport, plan)
        store = MeasurementStore(crashed)
        with pytest.raises(RuntimeError, match="simulated crash"):
            Campaign(scenario, store=store, config=small_config()).run()
        del store                                # process is gone

        # The reopened store surfaces the partial round...
        reopened = MeasurementStore(crashed)
        (partial,) = reopened.open_rounds()
        assert partial.timestamp == 3
        done = reopened.completed_shards(partial.round_id)
        assert done and len(done) < 4            # mid-round, not empty

        # ...and a fresh process (scenario rebuilt from the same
        # parameters) resumes from the first incomplete day/shard.
        result = Campaign(
            ec2_scenario(**SCENARIO_PARAMS),
            store=reopened,
            config=small_config(),
        ).resume()
        assert [s.info.timestamp for s in result.summaries] == [3, 6, 9]
        reopened.close()

        assert db_snapshot(crashed) == db_snapshot(reference)

    def test_abort_event_then_resume_is_byte_equivalent(self, tmp_path):
        reference = reference_db(tmp_path)

        aborted = str(tmp_path / "aborted.sqlite")
        scenario = ec2_scenario(**SCENARIO_PARAMS)
        event = asyncio.Event()
        scenario.transport = AbortTrigger(
            scenario.transport, event, round_id=2, after_probes=100
        )
        store = MeasurementStore(aborted)
        with pytest.raises(CampaignInterrupted) as excinfo:
            Campaign(scenario, store=store, config=small_config()).run(
                abort_event=event
            )
        assert excinfo.value.day == 3
        store.close()

        reopened = MeasurementStore(aborted)
        result = Campaign(
            ec2_scenario(**SCENARIO_PARAMS),
            store=reopened,
            config=small_config(),
        ).resume()
        assert result.summaries          # finished the remaining rounds
        reopened.close()

        assert db_snapshot(aborted) == db_snapshot(reference)

    def test_crash_resume_under_chaos_is_byte_equivalent(self, tmp_path):
        """Seeded fault injection replays identically across the crash:
        the resumed campaign sees the same faults the uninterrupted one
        would have."""
        def chaotic_scenario():
            scenario = ec2_scenario(**SCENARIO_PARAMS)
            scenario.transport = FaultyTransport(
                scenario.transport, chaos_plan(9, rate=0.15)
            )
            return scenario

        reference = str(tmp_path / "chaos-ref.sqlite")
        Campaign(
            chaotic_scenario(),
            store=MeasurementStore(reference),
            config=small_config(),
        ).run()

        crashed = str(tmp_path / "chaos-crashed.sqlite")
        scenario = chaotic_scenario()
        victim = ec2_scenario(**SCENARIO_PARAMS).targets[100]
        plan = FaultPlan(seed=2, rules=(
            FaultRule(FaultKind.CONNECT_TIMEOUT, ips={victim}, rounds={3}),
        ))
        scenario.transport = CrashOnFault(scenario.transport, plan)
        store = MeasurementStore(crashed)
        with pytest.raises(RuntimeError):
            Campaign(scenario, store=store, config=small_config()).run()
        del store

        reopened = MeasurementStore(crashed)
        Campaign(
            chaotic_scenario(), store=reopened, config=small_config()
        ).resume()
        reopened.close()

        assert db_snapshot(crashed) == db_snapshot(reference)

    def test_resume_without_metadata_raises(self):
        campaign = Campaign(ec2_scenario(total_ips=64, duration_days=3))
        with pytest.raises(ValueError, match="nothing to resume"):
            campaign.resume()

    def test_completed_campaign_resume_is_noop(self, tmp_path):
        path = str(tmp_path / "done.sqlite")
        scenario = ec2_scenario(**SCENARIO_PARAMS)
        Campaign(
            scenario, store=MeasurementStore(path), config=small_config()
        ).run()
        before = db_snapshot(path)
        store = MeasurementStore(path)
        result = Campaign(
            ec2_scenario(**SCENARIO_PARAMS), store=store,
            config=small_config(),
        ).resume()
        assert result.summaries == []
        store.close()
        assert db_snapshot(path) == before


# ----------------------------------------------------------------------
# CLI: repro resume + signal handling


class TestCliResume:
    def test_resume_completes_interrupted_campaign(self, tmp_path, capsys):
        params = {"cloud": "ec2", "ips": 256, "seed": 5, "days": 12,
                  "chaos_rate": 0.0, "chaos_seed": 0}
        reference = str(tmp_path / "ref.sqlite")
        assert main([
            "simulate", "--cloud", "ec2", "--ips", "256", "--seed", "5",
            "--days", "12", "--out", reference,
        ]) == 0

        # Interrupt a second run mid-campaign (the same store layout
        # `simulate` leaves behind after a SIGINT checkpoint).
        interrupted = str(tmp_path / "interrupted.sqlite")
        scenario = ec2_scenario(**SCENARIO_PARAMS)
        event = asyncio.Event()
        scenario.transport = AbortTrigger(
            scenario.transport, event, round_id=2, after_probes=10
        )
        store = MeasurementStore(interrupted)
        store.set_meta("simulate_args", json.dumps(params))
        with pytest.raises(CampaignInterrupted):
            Campaign(scenario, store=store).run(abort_event=event)
        store.close()
        capsys.readouterr()

        assert main(["resume", interrupted]) == 0
        output = capsys.readouterr().out
        assert "resuming EC2" in output
        assert "round database written" in output
        assert db_snapshot(interrupted) == db_snapshot(reference)

    def test_resume_refuses_non_campaign_database(self, tmp_path, capsys):
        path = str(tmp_path / "plain.sqlite")
        MeasurementStore(path).close()
        assert main(["resume", path]) == 1
        assert "not resumable" in capsys.readouterr().err

    def test_abort_handler_sets_event_then_forces(self):
        import signal

        from repro.cli import _install_abort_handler

        old_int = signal.getsignal(signal.SIGINT)
        old_term = signal.getsignal(signal.SIGTERM)
        try:
            event = _install_abort_handler()
            handler = signal.getsignal(signal.SIGINT)
            assert handler is signal.getsignal(signal.SIGTERM)
            assert not event.is_set()
            handler(signal.SIGINT, None)
            assert event.is_set()
            with pytest.raises(KeyboardInterrupt):
                handler(signal.SIGINT, None)     # second ^C force-quits
        finally:
            signal.signal(signal.SIGINT, old_int)
            signal.signal(signal.SIGTERM, old_term)
