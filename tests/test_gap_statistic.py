"""Tests for threshold tuning and single-linkage clustering helpers."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.gap_statistic import (
    cluster_by_threshold,
    dispersion,
    gap_statistic,
    pairwise_distances,
    select_threshold,
)
from repro.core.simhash import HASH_BITS, hamming_distance


def near(base: int, bits: int, rng: random.Random) -> int:
    value = base
    for position in rng.sample(range(HASH_BITS), bits):
        value ^= 1 << position
    return value


class TestClusterByThreshold:
    def test_exact_duplicates_grouped(self):
        clusters = cluster_by_threshold([5, 5, 9], 0)
        assert sorted(len(c) for c in clusters) == [1, 2]

    def test_transitive_chaining(self):
        """Single linkage: a-b close, b-c close => one cluster."""
        a = 0
        b = 0b11          # distance 2 from a
        c = 0b1111        # distance 2 from b, 4 from a
        clusters = cluster_by_threshold([a, b, c], 2)
        assert len(clusters) == 1

    def test_threshold_zero_splits_distinct(self):
        clusters = cluster_by_threshold([0, 1, 3], 0)
        assert len(clusters) == 3

    @given(st.lists(st.integers(0, 2**96 - 1), min_size=1, max_size=20),
           st.integers(0, 96))
    @settings(max_examples=30)
    def test_partition_property(self, hashes, threshold):
        clusters = cluster_by_threshold(hashes, threshold)
        flattened = sorted(v for cluster in clusters for v in cluster)
        assert flattened == sorted(hashes)

    @given(st.lists(st.integers(0, 2**96 - 1), min_size=2, max_size=15))
    @settings(max_examples=30)
    def test_threshold_monotonicity(self, hashes):
        """A larger threshold never produces more clusters."""
        small = len(cluster_by_threshold(hashes, 4))
        large = len(cluster_by_threshold(hashes, 48))
        assert large <= small

    def test_full_threshold_single_cluster(self):
        rng = random.Random(0)
        hashes = [rng.getrandbits(96) for _ in range(10)]
        assert len(cluster_by_threshold(hashes, 96)) == 1


class TestDispersion:
    def test_singletons_zero(self):
        assert dispersion([[1], [2], [3]]) == 0.0

    def test_tight_cluster_low(self):
        rng = random.Random(1)
        base = rng.getrandbits(96)
        tight = [near(base, 1, rng) for _ in range(5)]
        loose = [rng.getrandbits(96) for _ in range(5)]
        assert dispersion([tight]) < dispersion([loose])


class TestPairwiseDistances:
    def test_counts(self):
        assert len(pairwise_distances([1, 2, 3, 4])) == 6

    def test_values(self):
        assert pairwise_distances([0b11, 0b01]) == [1]


class TestSelectThreshold:
    def test_bimodal_population(self):
        """Revision-vs-unrelated bimodality must land the threshold in
        the separation band."""
        rng = random.Random(2)
        hashes = []
        for _ in range(20):
            base = rng.getrandbits(96)
            hashes.append(base)
            hashes.append(near(base, rng.randint(1, 5), rng))
        threshold = select_threshold(hashes, seed=1)
        assert 5 <= threshold <= 35

    def test_tiny_population_default(self):
        assert select_threshold([1, 2], default=8) == 8
        assert select_threshold([], default=6) == 6

    def test_identical_hashes_default(self):
        assert select_threshold([7, 7, 7, 7], default=8) == 8

    def test_deterministic(self):
        rng = random.Random(3)
        hashes = [rng.getrandbits(96) for _ in range(100)]
        assert select_threshold(hashes, seed=5) == select_threshold(
            hashes, seed=5
        )


class TestGapStatistic:
    def test_structured_data_positive_gap(self):
        """Clustered data should show a larger gap than its standard
        error at a threshold matching the structure."""
        rng = random.Random(4)
        hashes = []
        for _ in range(12):
            base = rng.getrandbits(96)
            for _ in range(4):
                hashes.append(near(base, 2, rng))
        gap, std_error = gap_statistic(hashes, threshold=6, rng=rng)
        assert gap > 0
        assert std_error >= 0

    def test_hamming_sanity(self):
        assert hamming_distance(0, 0b111) == 3
