"""Tests for active-DNS domain correlation (§9 future work)."""

from __future__ import annotations

from repro.analysis.clustering import WebpageClusterer
from repro.analysis.domains import DomainCorrelator
from repro.core.features import extract_domains

from _obs import make_dataset, obs


class TestExtractDomains:
    def test_finds_domains(self):
        html = "<!-- served for www.acme42.com --> visit shop.acme42.com"
        assert extract_domains(html) == ["www.acme42.com", "shop.acme42.com"]

    def test_deduplicates_and_lowercases(self):
        html = "WWW.Acme.COM and www.acme.com"
        assert extract_domains(html) == ["www.acme.com"]

    def test_ignores_non_domains(self):
        assert extract_domains("no domains 1.2 here") == []


def observation_with_domain(ip, rid, domain, status_code=404):
    title = "404 Not Found" if status_code == 404 else "site"
    return obs(ip, rid, title=title, status_code=status_code,
               simhash=ip * 977, domains=(domain,))


class TestDomainCorrelator:
    def resolver(self, table):
        def resolve(domain):
            return table.get(domain, [])
        return resolve

    def build(self):
        rows = [
            observation_with_domain(1, 0, "www.hidden.com", 404),
            observation_with_domain(2, 0, "www.liar.com", 404),
            obs(3, 0, title="open site", simhash=123456),
        ]
        dataset = make_dataset(rows)
        resolver = self.resolver({
            "www.hidden.com": [1, 9],   # confirms ip 1
            "www.liar.com": [7],        # mentions ip 2, resolves elsewhere
        })
        return dataset, resolver

    def test_confirmation_requires_resolution_back(self):
        dataset, resolver = self.build()
        report = DomainCorrelator(dataset, resolver).correlate()
        assert report.candidates == 2
        assert report.resolved == 2
        confirmed = {c.domain for c in report.confirmed()}
        assert confirmed == {"www.hidden.com"}

    def test_error_page_ownership_recovered(self):
        dataset, resolver = self.build()
        report = DomainCorrelator(dataset, resolver).correlate()
        assert report.recovered_error_ips() == {1}

    def test_nxdomain_skipped(self):
        dataset, _ = self.build()
        report = DomainCorrelator(dataset, lambda d: []).correlate()
        assert report.resolved == 0
        assert report.correlations == []

    def test_domain_filter(self):
        dataset, resolver = self.build()
        report = DomainCorrelator(dataset, resolver).correlate(
            domains=["www.liar.com"]
        )
        assert report.candidates == 1

    def test_clusters_attached(self):
        rows = [
            observation_with_domain(1, 0, "www.ok.com", 200),
        ]
        dataset = make_dataset(rows)
        clustering = WebpageClusterer(level2_threshold=3).cluster(dataset)
        correlator = DomainCorrelator(
            dataset, self.resolver({"www.ok.com": [1]}), clustering
        )
        report = correlator.correlate()
        (correlation,) = report.confirmed()
        assert correlation.clusters


class TestSimulatedDomainResolution:
    def test_resolve_domain_returns_footprint(self, ec2_campaign):
        simulation = ec2_campaign.scenario.simulation
        dns = ec2_campaign.scenario.dns
        service = next(
            s for s in simulation.live_services()
            if s.profile is not None and s.profile.domain
            and simulation.footprint(s.service_id)
        )
        resolved = dns.resolve_domain(service.profile.domain)
        assert resolved == sorted(simulation.footprint(service.service_id))

    def test_unknown_domain_empty(self, ec2_campaign):
        assert ec2_campaign.scenario.dns.resolve_domain("nope.example.com") == []

    def test_end_to_end_correlation(self, ec2_campaign, ec2_clustering):
        correlator = DomainCorrelator(
            ec2_campaign.dataset,
            ec2_campaign.scenario.dns.resolve_domain,
            ec2_clustering,
        )
        report = correlator.correlate()
        assert report.candidates > 0
        confirmed = report.confirmed()
        assert confirmed
        # Every confirmed correlation is true per ground truth: the
        # domain's owning service held the confirmed IP at some point.
        simulation = ec2_campaign.scenario.simulation
        for correlation in confirmed[:20]:
            service = simulation.service_for_domain(correlation.domain)
            assert service is not None
            held = {
                interval.ip
                for interval in
                simulation.log.intervals_for_service(service.service_id)
            }
            assert set(correlation.confirmed_ips) <= held
