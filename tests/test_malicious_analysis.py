"""Tests for the malicious-activity analyses (§8.2)."""

from __future__ import annotations

import pytest

from repro.analysis.malicious import (
    MaliciousIp,
    SafeBrowsingAnalyzer,
    VirusTotalAnalyzer,
)
from repro.cloudsim.blacklist import SafeBrowsingSim, VirusTotalSim


@pytest.fixture(scope="module")
def sb_findings(ec2_campaign):
    safe_browsing = SafeBrowsingSim(
        ec2_campaign.scenario.simulation, seed=1, coverage=1.0,
        mean_lag_days=1.0,
    )
    analyzer = SafeBrowsingAnalyzer(
        ec2_campaign.dataset, safe_browsing, ec2_campaign.clustering()
    )
    return analyzer.scan()


@pytest.fixture(scope="module")
def vt_findings(ec2_campaign):
    virustotal = VirusTotalSim(
        ec2_campaign.scenario.simulation, seed=2, engine_coverage=0.9,
        mean_lag_days=1.0,
    )
    analyzer = VirusTotalAnalyzer(
        ec2_campaign.dataset,
        virustotal,
        ec2_campaign.clustering(),
        region_of=ec2_campaign.scenario.topology.region_of,
    )
    return analyzer.analyze()


class TestMaliciousIp:
    def test_lifetime(self):
        record = MaliciousIp(ip=1, malicious_days=[3, 6, 12])
        assert record.lifetime_days == 10

    def test_empty_lifetime(self):
        assert MaliciousIp(ip=1).lifetime_days == 0

    def test_linchpin_threshold(self):
        small = MaliciousIp(ip=1, urls={f"u{i}" for i in range(5)})
        big = MaliciousIp(ip=1, urls={f"u{i}" for i in range(25)})
        assert not small.is_linchpin
        assert big.is_linchpin


class TestSafeBrowsingAnalyzer:
    def test_finds_embedders(self, sb_findings, ec2_campaign):
        """Every discovered malicious IP must truly belong to a
        malicious embedder (no false positives by construction)."""
        assert sb_findings.malicious_ips
        simulation = ec2_campaign.scenario.simulation
        dataset = ec2_campaign.dataset
        for ip, record in sb_findings.malicious_ips.items():
            owners = {
                simulation.log.owner_on(ip, day)
                for day in record.malicious_days
            }
            assert any(
                owner is not None
                and simulation.services[owner].malicious is not None
                and simulation.services[owner].malicious.on_page
                for owner in owners
            )
        del dataset

    def test_categories(self, sb_findings):
        assert sb_findings.malware_pages + sb_findings.phishing_pages == len(
            sb_findings.malicious_ips
        )

    def test_linchpin_found(self, sb_findings):
        """The scenario plants one linchpin service (>= 20 URLs/page)."""
        assert sb_findings.linchpins()

    def test_lifetimes_sorted(self, sb_findings):
        lifetimes = sb_findings.lifetimes()
        assert lifetimes == sorted(lifetimes)
        assert all(v >= 1 for v in lifetimes)

    def test_clusters_attached(self, sb_findings):
        assert sb_findings.clusters

    def test_lifetimes_by_kind(self, sb_findings, ec2_campaign):
        analyzer_kind = ec2_campaign.scenario.topology.kind_of
        analyzer = SafeBrowsingAnalyzer(
            ec2_campaign.dataset,
            SafeBrowsingSim(ec2_campaign.scenario.simulation, seed=1),
        )
        split = analyzer.lifetimes_by_kind(sb_findings, analyzer_kind)
        assert set(split) == {"classic", "vpc"}
        total = len(split["classic"]) + len(split["vpc"])
        assert total == len(sb_findings.malicious_ips)


class TestVirusTotalAnalyzer:
    def test_finds_hosters(self, vt_findings, ec2_campaign):
        assert vt_findings.malicious_ip_count > 0
        simulation = ec2_campaign.scenario.simulation
        for ip in vt_findings.reports:
            owners = {
                interval.service_id
                for interval in simulation.log.intervals_for_ip(ip)
            }
            assert any(
                simulation.services[o].category in ("vt-hoster", "web+vt")
                for o in owners
            )

    def test_region_table(self, vt_findings, ec2_campaign):
        table = vt_findings.region_month_table()
        regions = {r.name for r in ec2_campaign.scenario.topology.space.regions}
        assert set(table) <= regions
        assert sum(sum(m.values()) for m in table.values()) >= \
            vt_findings.malicious_ip_count

    def test_top_domains_ranked(self, vt_findings):
        top = vt_findings.top_domains(10)
        assert top
        counts = [count for _, count in top]
        assert counts == sorted(counts, reverse=True)

    def test_behaviour_types_valid(self, vt_findings):
        assert set(vt_findings.behaviour_types.values()) <= {1, 2, 3}

    def test_lag_values_nonnegative(self, vt_findings):
        for kind in (1, 2, 3):
            assert all(v >= 0 for v in vt_findings.lag_before[kind])
            assert all(v >= 0 for v in vt_findings.lag_after[kind])

    def test_spread_labels_exclude_reported(self, vt_findings):
        for seed_ip, extras in vt_findings.spread_labels.items():
            assert seed_ip not in extras
            assert not extras & set(vt_findings.reports)

    def test_consensus_rule_filters(self, ec2_campaign):
        """min_engines above the engine count finds nothing."""
        virustotal = VirusTotalSim(
            ec2_campaign.scenario.simulation, seed=2
        )
        analyzer = VirusTotalAnalyzer(
            ec2_campaign.dataset, virustotal,
            min_engines=len(VirusTotalSim.ENGINES) + 1,
        )
        assert analyzer.collect_reports() == {}
