"""Tests for the simulated transport (the cloud's network face)."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.transport import TransportError
from repro.cloudsim.population import WorkloadSpec
from repro.cloudsim.providers import EC2_SPEC
from repro.cloudsim.network import SimulatedTransport
from repro.cloudsim.services import PORT_PROFILES_EC2
from repro.cloudsim.simulation import CloudSimulation
from repro.cloudsim.software import EC2_CATALOG


@pytest.fixture(scope="module")
def sim() -> CloudSimulation:
    workload = WorkloadSpec(cloud="EC2", duration_days=30,
                            malicious_embedders=5)
    topology = EC2_SPEC.build(2048, seed=17)
    return CloudSimulation(
        topology, workload, EC2_CATALOG, PORT_PROFILES_EC2, seed=17
    )


@pytest.fixture()
def transport(sim) -> SimulatedTransport:
    return SimulatedTransport(sim)


def find_service(sim, predicate):
    for service in sim.live_services():
        if predicate(service) and sim.footprint(service.service_id):
            return service, sim.footprint(service.service_id)[0]
    pytest.skip("no matching service at this seed")


def probe(transport, ip, port, timeout=2.0):
    return asyncio.run(transport.probe(ip, port, timeout))


def get(transport, ip, path="/", scheme="http"):
    return asyncio.run(
        transport.get(ip, scheme, path, timeout=10.0, max_body=512 * 1024)
    )


class TestProbe:
    def test_idle_ip_unresponsive(self, sim, transport):
        assigned = set(sim.assignments())
        idle = next(a for a in sim.topology.space.addresses()
                    if a not in assigned)
        assert not probe(transport, idle, 80)

    def test_open_and_closed_ports(self, sim, transport):
        service, ip = find_service(
            sim, lambda s: s.port_profile.value == "80-only"
        )
        if sim.probe_latency(ip, sim.day) > 2.0 or sim.is_flaky(ip, sim.day):
            pytest.skip("transient host drawn")
        assert probe(transport, ip, 80)
        assert not probe(transport, ip, 443)

    def test_slow_host_misses_short_timeout(self, sim, transport):
        slow = None
        for ip in sim.assignments():
            if 2.0 < sim.probe_latency(ip, sim.day) <= 8.0:
                slow = ip
                break
        if slow is None:
            pytest.skip("no slow host at this seed")
        assert not probe(transport, slow, list(sim.host_state(slow).open_ports)[0], 2.0)
        port = next(iter(sim.host_state(slow).open_ports))
        assert probe(transport, slow, port, 8.0) or sim.is_flaky(slow, sim.day)

    def test_probe_counter(self, sim, transport):
        ip = next(iter(sim.assignments()))
        probe(transport, ip, 80)
        probe(transport, ip, 443)
        assert transport.probe_count == 2


class TestGet:
    def test_page_response(self, sim, transport):
        service, ip = find_service(
            sim,
            lambda s: s.serves_web and s.profile.status_code == 200
            and not s.profile.robots_disallow
            and s.profile.content_type == "text/html"
            and s.availability >= 0.99 and 80 in s.port_profile.open_ports,
        )
        response = get(transport, ip)
        assert response.status_code == 200
        assert service.profile.title in response.body.decode()
        assert response.content_type == "text/html"

    def test_headers_carry_stack(self, sim, transport):
        service, ip = find_service(
            sim,
            lambda s: s.serves_web and s.stack is not None and s.stack.server
            and s.availability >= 0.99 and s.profile.status_code == 200
            and 80 in s.port_profile.open_ports,
        )
        response = get(transport, ip)
        assert response.header("Server") == service.stack.server

    def test_error_service_status(self, sim, transport):
        service, ip = find_service(
            sim,
            lambda s: s.serves_web and s.profile.status_code == 404
            and s.availability >= 0.99 and 80 in s.port_profile.open_ports,
        )
        response = get(transport, ip)
        assert response.status_code == 404

    def test_robots_disallow(self, sim, transport):
        service, ip = find_service(
            sim,
            lambda s: s.serves_web and s.profile.robots_disallow
            and s.availability >= 0.99 and 80 in s.port_profile.open_ports,
        )
        response = get(transport, ip, "/robots.txt")
        assert response.status_code == 200
        assert b"Disallow: /" in response.body

    def test_robots_absent_404(self, sim, transport):
        service, ip = find_service(
            sim,
            lambda s: s.serves_web and not s.profile.robots_disallow
            and s.availability >= 0.99 and 80 in s.port_profile.open_ports,
        )
        response = get(transport, ip, "/robots.txt")
        assert response.status_code == 404

    def test_idle_ip_refuses(self, sim, transport):
        assigned = set(sim.assignments())
        idle = next(a for a in sim.topology.space.addresses()
                    if a not in assigned)
        with pytest.raises(TransportError):
            get(transport, idle)

    def test_ssh_only_resets(self, sim, transport):
        service, ip = find_service(
            sim, lambda s: s.port_profile.value == "22-only"
        )
        with pytest.raises(TransportError):
            get(transport, ip)

    def test_page_cache_stable(self, sim, transport):
        service, ip = find_service(
            sim,
            lambda s: s.serves_web and s.profile.status_code == 200
            and s.availability >= 0.99 and 80 in s.port_profile.open_ports,
        )
        assert get(transport, ip).body == get(transport, ip).body

    def test_malicious_links_on_page(self, sim, transport):
        found = None
        for service in sim.live_services():
            if (service.malicious is not None and service.malicious.on_page
                    and service.serves_web and service.availability >= 0.99
                    and 80 in service.port_profile.open_ports
                    and sim.footprint(service.service_id)):
                urls = service.malicious.active_urls(
                    service.day_in_life(sim.day)
                )
                if urls:
                    found = (service, urls)
                    break
        if found is None:
            pytest.skip("no active malicious embedder at this seed")
        service, urls = found
        ip = sim.footprint(service.service_id)[0]
        body = get(transport, ip).body.decode()
        assert urls[0] in body


class TestSubpages:
    def test_subpage_served(self, sim, transport):
        service, ip = find_service(
            sim,
            lambda s: s.serves_web and s.profile.status_code == 200
            and s.profile.subpages and s.availability >= 0.99
            and 80 in s.port_profile.open_ports,
        )
        path = service.profile.subpages[0]
        response = get(transport, ip, path)
        assert response.status_code == 200
        assert service.profile.title in response.body.decode()

    def test_unknown_path_404(self, sim, transport):
        service, ip = find_service(
            sim,
            lambda s: s.serves_web and s.profile.status_code == 200
            and s.availability >= 0.99 and 80 in s.port_profile.open_ports,
        )
        response = get(transport, ip, "/definitely-not-a-page")
        assert response.status_code == 404

    def test_home_links_to_subpages(self, sim, transport):
        service, ip = find_service(
            sim,
            lambda s: s.serves_web and s.profile.status_code == 200
            and s.profile.subpages and s.availability >= 0.99
            and s.profile.content_type == "text/html"
            and 80 in s.port_profile.open_ports,
        )
        body = get(transport, ip).body.decode()
        for path in service.profile.subpages:
            assert f'href="{path}"' in body
