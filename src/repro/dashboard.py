"""Live terminal dashboard over a running campaign's metrics endpoint.

``repro watch`` polls the Prometheus text endpoint served by
``simulate --metrics-port``, computes per-interval rates from counter
deltas, and redraws a compact plain-ANSI summary of the pipeline:
stage throughput, queue depths, AIMD state, guard verdicts, store
commit activity and the worker pool.  Everything here works on the
parsed sample dict from :func:`repro.core.telemetry.parse_prometheus`,
so the renderer is equally testable against a canned exposition blob.
"""

from __future__ import annotations

import sys
import time
import urllib.error
import urllib.request
from typing import IO

from .core.telemetry import parse_prometheus

__all__ = [
    "Samples",
    "fetch_samples",
    "normalize_endpoint",
    "render_dashboard",
    "sample_total",
    "samples_by_label",
    "watch",
]

# (metric name, sorted label items) -> value, as parse_prometheus emits.
Samples = dict[tuple[str, tuple[tuple[str, str], ...]], float]

CLEAR = "\x1b[2J\x1b[H"

# Stage -> the queue it feeds, for the throughput table.
_DOWNSTREAM_QUEUE = {
    "scan": "scan_fetch",
    "fetch": "fetch_extract",
    "extract": "extract_write",
}
_STAGE_ORDER = ("scan", "fetch", "extract", "write")


def normalize_endpoint(endpoint: str) -> str:
    """Accept a bare port, ``host:port`` or a full URL and return the
    metrics URL to poll."""
    if endpoint.isdigit():
        return f"http://127.0.0.1:{endpoint}/metrics"
    if "://" not in endpoint:
        endpoint = f"http://{endpoint}"
    scheme, _, rest = endpoint.partition("://")
    if "/" not in rest:
        endpoint = f"{scheme}://{rest}/metrics"
    return endpoint


def fetch_samples(url: str, timeout: float = 2.0) -> Samples:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return parse_prometheus(response.read().decode("utf-8"))


def _matches(labels: tuple[tuple[str, str], ...], want: dict) -> bool:
    have = dict(labels)
    return all(have.get(key) == value for key, value in want.items())


def sample_total(samples: Samples, name: str, **want: str) -> float:
    """Sum every sample of *name* whose labels include *want*."""
    return sum(
        value for (sample_name, labels), value in samples.items()
        if sample_name == name and _matches(labels, want)
    )


def samples_by_label(samples: Samples, name: str,
                     key: str) -> dict[str, float]:
    """Group the samples of *name* by one label, summing the rest out."""
    grouped: dict[str, float] = {}
    for (sample_name, labels), value in samples.items():
        if sample_name != name:
            continue
        label = dict(labels).get(key, "")
        grouped[label] = grouped.get(label, 0.0) + value
    return grouped


def _rate(current: Samples, previous: Samples | None, name: str,
          elapsed: float, **want: str) -> float:
    if previous is None or elapsed <= 0:
        return 0.0
    delta = (sample_total(current, name, **want)
             - sample_total(previous, name, **want))
    return max(0.0, delta) / elapsed


def _counts(grouped: dict[str, float]) -> str:
    if not grouped:
        return "-"
    return " ".join(
        f"{label or '?'}={value:.0f}"
        for label, value in sorted(grouped.items())
    )


def render_dashboard(current: Samples, previous: Samples | None,
                     elapsed: float, source: str) -> str:
    """One full frame of the dashboard as a newline-joined string."""
    lines: list[str] = []
    rounds = samples_by_label(current, "repro_rounds_total", "status")
    records = sample_total(current, "repro_records_written_total")
    record_rate = _rate(current, previous, "repro_records_written_total",
                        elapsed)
    lines.append(f"WhoWas telemetry — {source}")
    lines.append(
        f"rounds: {_counts(rounds)}   records: {records:.0f} "
        f"({record_rate:,.0f} rec/s)"
    )
    lines.append("")
    lines.append(f"{'stage':<9}{'items':>10}{'rate/s':>10}{'shards':>8}"
                 f"{'waits':>7}{'queue':>7}")
    items = samples_by_label(current, "repro_stage_items_total", "stage")
    shards = samples_by_label(current, "repro_stage_shards_total", "stage")
    waits = samples_by_label(current, "repro_backpressure_waits_total",
                             "stage")
    depths = samples_by_label(current, "repro_queue_depth", "queue")
    for stage in _STAGE_ORDER:
        if stage not in items and stage not in shards:
            continue
        rate = _rate(current, previous, "repro_stage_items_total",
                     elapsed, stage=stage)
        queue = _DOWNSTREAM_QUEUE.get(stage)
        depth = f"{depths[queue]:.0f}" if queue in depths else "-"
        lines.append(
            f"{stage:<9}{items.get(stage, 0):>10.0f}{rate:>10,.0f}"
            f"{shards.get(stage, 0):>8.0f}{waits.get(stage, 0):>7.0f}"
            f"{depth:>7}"
        )
    lines.append("")
    limit = sample_total(current, "repro_aimd_limit")
    in_flight = sample_total(current, "repro_aimd_in_flight")
    changes = samples_by_label(current, "repro_aimd_changes_total",
                               "direction")
    lines.append(f"aimd:    limit={limit:.0f} in_flight={in_flight:.0f} "
                 f"changes: {_counts(changes)}")
    verdicts = samples_by_label(current, "repro_guard_verdicts_total",
                                "verdict")
    quarantined = sample_total(current, "repro_quarantine_total")
    lines.append(f"guard:   verdicts: {_counts(verdicts)}   "
                 f"quarantined={quarantined:.0f}")
    commits = sample_total(current, "repro_store_commits_total")
    commit_rate = _rate(current, previous, "repro_store_commits_total",
                        elapsed)
    busy = sample_total(current, "repro_store_busy_retries_total")
    lines.append(f"store:   commits={commits:.0f} "
                 f"({commit_rate:,.1f}/s)  busy_retries={busy:.0f}")
    running = sample_total(current, "repro_workers_running")
    heartbeat = sample_total(current, "repro_worker_heartbeat_age_seconds")
    events = samples_by_label(current, "repro_worker_events_total", "event")
    if running or events:
        lines.append(f"workers: running={running:.0f} "
                     f"heartbeat_age={heartbeat:.2f}s "
                     f"events: {_counts(events)}")
    spans = samples_by_label(current, "repro_spans_total", "outcome")
    if spans:
        lines.append(f"spans:   {_counts(spans)}")
    serve_codes = samples_by_label(current, "repro_serve_requests_total",
                                   "code")
    shed = samples_by_label(current, "repro_serve_shed_total", "reason")
    if serve_codes or shed:
        serve_rate = _rate(current, previous,
                           "repro_serve_requests_total", elapsed)
        serving = sample_total(current, "repro_serve_in_flight")
        draining = sample_total(current, "repro_serve_draining")
        state = " DRAINING" if draining else ""
        lines.append(f"serve:   {_counts(serve_codes)} "
                     f"({serve_rate:,.1f} req/s) in_flight={serving:.0f}"
                     f"{state}")
        if shed:
            lines.append(f"  shed:  {_counts(shed)}")
        breakers = samples_by_label(current, "repro_serve_breaker_state",
                                    "endpoint")
        tripped = {name: value for name, value in breakers.items() if value}
        if tripped:
            names = {0: "closed", 1: "half-open", 2: "open"}
            lines.append("  breakers: " + " ".join(
                f"{endpoint}={names.get(int(value), '?')}"
                for endpoint, value in sorted(tripped.items())
            ))
    return "\n".join(lines) + "\n"


def watch(url: str, interval: float = 2.0, frames: int = 0,
          stream: IO[str] | None = None, clear: bool = True) -> int:
    """Poll *url* and redraw the dashboard until interrupted, the
    endpoint goes away (campaign finished), or *frames* frames have
    been drawn.  Returns a process exit code."""
    stream = stream if stream is not None else sys.stdout
    previous: Samples | None = None
    previous_at = 0.0
    drawn = 0
    while True:
        try:
            current = fetch_samples(url)
        except (urllib.error.URLError, OSError, ValueError) as exc:
            if previous is None:
                print(f"cannot reach {url}: {exc}", file=sys.stderr)
                return 1
            stream.write("endpoint gone — campaign finished\n")
            return 0
        now = time.monotonic()
        elapsed = now - previous_at if previous is not None else 0.0
        frame = render_dashboard(current, previous, elapsed, url)
        if clear:
            stream.write(CLEAR)
        stream.write(frame)
        stream.flush()
        previous, previous_at = current, now
        drawn += 1
        if frames and drawn >= frames:
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover
            return 0
