"""Command-line interface: simulate, resume, scan, report, lookup, aggregate.

``python -m repro simulate`` runs a full measurement campaign against a
simulated cloud and writes the round database through a pluggable
storage engine (``--store-backend``: the default sqlite file, or the
partitioned columnar directory layout); the other subcommands analyse
such a database (or one produced by a real ``scan``), auto-detecting
the engine from what is on disk.  The platform's politeness defaults
apply to real scans.

``simulate`` and ``scan`` install SIGINT/SIGTERM handlers that
checkpoint the in-flight shard and exit 0; ``repro resume <db>``
continues an interrupted campaign from the first incomplete day/shard
using the parameters persisted in the database.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from typing import Sequence

from .analysis import (
    Dataset,
    DynamicsAnalyzer,
    SoftwareCensus,
    SshCensus,
    WebpageClusterer,
    build_aggregate_report,
)
from .cloudsim.addressing import ip_to_int
from .core import RoundInterrupted, SocketTransport, WhoWas
from .core.config import ClusteringConfig, StoreConfig
from .core.store import BACKENDS, default_backend, open_store
from .workloads import (
    Campaign,
    CampaignInterrupted,
    SimTransportFactory,
    build_sim_scenario,
)
from .workloads.campaign import simulation_config

__all__ = ["main", "build_parser"]


def _install_abort_handler() -> asyncio.Event:
    """Turn SIGINT/SIGTERM into a cooperative abort: the first signal
    asks the platform to checkpoint its current shard and stop cleanly;
    a second one falls back to an immediate KeyboardInterrupt."""
    event = asyncio.Event()

    def handler(signum, frame):
        if event.is_set():
            raise KeyboardInterrupt
        event.set()
        print("\ninterrupt received — checkpointing current shard "
              "(signal again to force quit)", file=sys.stderr)

    try:
        for sig in (signal.SIGINT, signal.SIGTERM):
            signal.signal(sig, handler)
    except ValueError:
        pass        # not the main thread (embedded use): no signal hook
    return event


def _chaos_rate(value: str) -> float:
    try:
        rate = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"chaos rate must be a number in [0, 1], got {value!r}"
        ) from None
    if not 0.0 <= rate <= 1.0:
        raise argparse.ArgumentTypeError(
            f"chaos rate must be in [0, 1], got {rate}"
        )
    return rate


def _add_telemetry_args(parser: argparse.ArgumentParser) -> None:
    """Observability knobs shared by ``simulate`` and ``resume``."""
    parser.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve Prometheus text metrics on 127.0.0.1:PORT for the "
             "duration of the run (0 picks a free port)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="append per-stage trace spans to PATH as JSONL "
             "(inspect with `repro trace PATH`)",
    )


def _add_clustering_args(parser: argparse.ArgumentParser) -> None:
    """Clustering-at-scale knobs shared by ``report`` and ``aggregate``."""
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--cluster-exact", action="store_true",
        help="force brute-force all-pairs simhash clustering",
    )
    group.add_argument(
        "--cluster-indexed", action="store_true",
        help="force banded-LSH candidate generation (identical clusters, "
             "sub-quadratic at scale)",
    )
    parser.add_argument(
        "--cluster-cutoff", type=int, metavar="N",
        default=ClusteringConfig().exact_cutoff,
        help="auto mode switches to the LSH index above N distinct "
             "fingerprints per group (default %(default)s)",
    )


def _clusterer_from_args(args) -> WebpageClusterer:
    exact: bool | None = None
    if getattr(args, "cluster_exact", False):
        exact = True
    elif getattr(args, "cluster_indexed", False):
        exact = False
    config = ClusteringConfig(
        exact=exact,
        exact_cutoff=getattr(args, "cluster_cutoff",
                             ClusteringConfig().exact_cutoff),
    )
    return WebpageClusterer.from_config(config)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WhoWas: measure web deployments on IaaS clouds "
                    "(IMC 2014 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    simulate = commands.add_parser(
        "simulate", help="run a campaign against a simulated cloud"
    )
    simulate.add_argument("--cloud", choices=("ec2", "azure"), default="ec2")
    simulate.add_argument("--ips", type=int, default=4096)
    simulate.add_argument("--seed", type=int, default=7)
    simulate.add_argument("--days", type=int, default=None,
                          help="campaign length (default: paper calendar)")
    simulate.add_argument("--out", required=True,
                          help="round database path (sqlite file, or a "
                               "directory with --store-backend columnar)")
    simulate.add_argument("--store-backend", choices=sorted(BACKENDS),
                          default=None,
                          help="storage engine for the round database "
                               "(default: $REPRO_STORE_BACKEND or sqlite)")
    simulate.add_argument("--chaos-rate", type=_chaos_rate, default=0.0,
                          help="inject seeded network faults into this "
                               "fraction of requests (0 disables)")
    simulate.add_argument("--chaos-seed", type=int, default=0,
                          help="seed for the fault plan (with --chaos-rate)")
    simulate.add_argument("--chaos-hostile", action="store_true",
                          help="also serve hostile content (header bombs, "
                               "markup bombs, encoding garbage) at the "
                               "chaos rate")
    simulate.add_argument("--workers", type=int, default=0,
                          help="run each round's shards across N "
                               "supervised worker processes (0/1: "
                               "in-process; output is byte-identical "
                               "either way)")
    _add_telemetry_args(simulate)

    resume = commands.add_parser(
        "resume", help="continue an interrupted simulate campaign"
    )
    resume.add_argument("db", help="round database of the interrupted run")
    resume.add_argument("--workers", type=int, default=None,
                        help="override the worker-process count recorded "
                             "by simulate (default: reuse it)")
    _add_telemetry_args(resume)

    scan = commands.add_parser(
        "scan", help="scan real targets over the network (polite defaults)"
    )
    scan.add_argument("--targets", required=True,
                      help="file with one IPv4 address per line")
    scan.add_argument("--out", required=True)
    scan.add_argument("--timestamp", type=int, default=0)

    report = commands.add_parser(
        "report", help="summarise a measurement database"
    )
    report.add_argument("db")
    report.add_argument("--no-cluster", action="store_true",
                        help="skip the clustering step")
    _add_clustering_args(report)
    report.add_argument("--export", metavar="DIR", default=None,
                        help="also write per-figure CSV series to DIR")

    lookup = commands.add_parser(
        "lookup", help="history of one IP address (the WhoWas query)"
    )
    lookup.add_argument("db")
    lookup.add_argument("ip")

    aggregate = commands.add_parser(
        "aggregate", help="privacy-preserving aggregate report (JSON)"
    )
    aggregate.add_argument("db")
    aggregate.add_argument("--cloud", default="unknown")
    _add_clustering_args(aggregate)

    rounds = commands.add_parser(
        "rounds", help="list a database's rounds with wall-clock durations"
    )
    rounds.add_argument("db")
    rounds.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of a table")

    stats = commands.add_parser(
        "stats",
        help="per-stage pipeline throughput telemetry for a database",
    )
    stats.add_argument("db")
    stats.add_argument("--round", type=int, default=None,
                       help="show one round in detail (default: all)")
    stats.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of a table")

    watch = commands.add_parser(
        "watch",
        help="live terminal dashboard over a running campaign's "
             "--metrics-port endpoint",
    )
    watch.add_argument("endpoint",
                       help="metrics URL, host:port, or bare port of a "
                            "running `simulate --metrics-port` process")
    watch.add_argument("--interval", type=float, default=2.0,
                       help="seconds between polls (default %(default)s)")
    watch.add_argument("--frames", type=int, default=0,
                       help="stop after N frames (0: run until interrupted "
                            "or the endpoint goes away)")
    watch.add_argument("--no-clear", action="store_true",
                       help="append frames instead of redrawing the screen "
                            "(for logs and tests)")

    trace = commands.add_parser(
        "trace",
        help="inspect the span trace written by --trace-out",
    )
    trace.add_argument("source",
                       help="trace JSONL file, or a round database whose "
                            "trace sits next to it as <db>.trace.jsonl")
    trace.add_argument("--stage", default=None,
                       help="only spans of this stage (scan/fetch/extract/"
                            "write/cluster:*)")
    trace.add_argument("--round", type=int, default=None,
                       help="only spans of this round id")
    trace.add_argument("--limit", type=int, default=None, metavar="N",
                       help="show only the last N matching spans")
    trace.add_argument("--json", action="store_true",
                       help="emit the matching spans as a JSON array")

    quarantine = commands.add_parser(
        "quarantine",
        help="inspect or replay the dead-letter quarantine of a database",
    )
    quarantine.add_argument("action", choices=("list", "replay"),
                            help="list entries, or re-extract features "
                                 "for quarantined pages")
    quarantine.add_argument("db")
    quarantine.add_argument("--round", type=int, default=None,
                            help="restrict to one round id")
    quarantine.add_argument("--all", action="store_true",
                            help="include already-replayed entries")

    verify = commands.add_parser(
        "verify",
        help="recompute per-shard checksums and materialized-view "
             "digests; exit nonzero on any mismatch, gap, orphan row, "
             "or stale view",
    )
    verify.add_argument("db")
    verify.add_argument("--round", type=int, default=None,
                        help="verify one round only (default: all, "
                             "including in-progress ones)")

    rebuild = commands.add_parser(
        "rebuild-views",
        help="drop and refold every materialized read model (per-IP "
             "history, round summaries, cluster aggregates) from the "
             "base shard data",
    )
    rebuild.add_argument("db")

    serve = commands.add_parser(
        "serve",
        help="serve the query API over a round database with admission "
             "control, deadlines, and load shedding",
    )
    serve.add_argument("db", help="round database to serve (opened "
                                  "read-only; a concurrent simulate may "
                                  "keep writing to it)")
    serve.add_argument("--host", default=None,
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=None,
                       help="bind port (default 8321; 0 picks a free one)")
    serve.add_argument("--rate", type=float, default=None, metavar="RPS",
                       help="admission token-bucket refill rate "
                            "(requests/second)")
    serve.add_argument("--burst", type=float, default=None,
                       help="admission token-bucket burst capacity")
    serve.add_argument("--readers", type=int, default=None, metavar="N",
                       help="read-only sqlite connections (= max "
                            "concurrent store reads)")
    serve.add_argument("--deadline-ms", type=int, default=None,
                       metavar="MS",
                       help="default per-request deadline budget")
    serve.add_argument("--drain-deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="how long a SIGTERM drain waits for in-flight "
                            "requests before force-closing")
    _add_telemetry_args(serve)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "simulate": _cmd_simulate,
        "resume": _cmd_resume,
        "scan": _cmd_scan,
        "report": _cmd_report,
        "lookup": _cmd_lookup,
        "aggregate": _cmd_aggregate,
        "rounds": _cmd_rounds,
        "stats": _cmd_stats,
        "quarantine": _cmd_quarantine,
        "verify": _cmd_verify,
        "rebuild-views": _cmd_rebuild_views,
        "watch": _cmd_watch,
        "trace": _cmd_trace,
        "serve": _cmd_serve,
    }[args.command]
    try:
        return handler(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that is not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


def _build_sim_scenario(params: dict):
    """CLI front for :func:`repro.workloads.build_sim_scenario`: same
    scenario assembly (shared with ``resume`` and spawned partition
    workers), plus a chatty chaos banner that only the interactive
    entrypoint should print."""
    scenario = build_sim_scenario(params)
    chaos_rate = params.get("chaos_rate", 0.0)
    if chaos_rate > 0:
        plan = scenario.transport.plan
        print(f"chaos: injecting {len(plan.rules)} fault kinds at "
              f"rate {chaos_rate} (seed {params.get('chaos_seed', 0)})")
    return scenario


def _setup_telemetry(args):
    """Activate process-wide telemetry for ``simulate``/``resume`` and
    start the metrics endpoint if asked.  Must run before the store and
    platform are constructed: instrumented objects cache their metric
    handles at construction time.  Returns the TelemetryConfig to embed
    in the platform config (spawned workers rebuild from it), or None
    when observability was not requested."""
    from .core import telemetry as _telemetry
    from .core.config import TelemetryConfig

    metrics_port = getattr(args, "metrics_port", None)
    trace_out = getattr(args, "trace_out", None)
    if metrics_port is None and trace_out is None:
        return None
    tel_config = TelemetryConfig(enabled=True, trace_path=trace_out)
    tel = _telemetry.configure(tel_config)
    if metrics_port is not None:
        server = _telemetry.start_metrics_server(tel, metrics_port)
        host, port = server.server_address[:2]
        print(f"metrics: http://{host}:{port}/metrics "
              f"(watch with `repro watch {port}`)")
    if trace_out is not None:
        print(f"trace: appending spans to {trace_out}")
    return tel_config


def _sim_campaign(scenario, store, params: dict, telemetry=None) -> Campaign:
    """Build the Campaign for ``simulate``/``resume``, wiring in the
    supervised worker pool when the parameters ask for one."""
    import dataclasses

    from .core.config import WorkerConfig

    workers = int(params.get("workers") or 0)
    config = simulation_config()
    backend = params.get("store_backend")
    if backend:
        config = dataclasses.replace(config, store=StoreConfig(backend))
    if telemetry is not None:
        config = dataclasses.replace(config, telemetry=telemetry)
    if workers > 1:
        config = dataclasses.replace(
            config, workers=WorkerConfig(count=workers)
        )
        return Campaign(
            scenario, store=store, config=config,
            transport_factory=SimTransportFactory(dict(params)),
        )
    return Campaign(scenario, store=store, config=config)


def _finish_campaign(result, store, db_path: str) -> int:
    degraded = [s.round_id for s in result.summaries if s.degraded]
    if degraded:
        print(f"degraded rounds (error budget exceeded): {degraded}")
    print(f"round database written to {db_path}")
    return 0


def _cmd_simulate(args) -> int:
    backend = args.store_backend or default_backend()
    try:
        StoreConfig(backend)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    params = {
        "cloud": args.cloud, "ips": args.ips, "seed": args.seed,
        "days": args.days, "chaos_rate": args.chaos_rate,
        "chaos_seed": args.chaos_seed, "chaos_hostile": args.chaos_hostile,
        "workers": args.workers, "store_backend": backend,
    }
    scenario = _build_sim_scenario(params)
    pool = f", {args.workers} worker processes" if args.workers > 1 else ""
    print(f"simulating {scenario.name}: {len(scenario.targets)} IPs, "
          f"{len(scenario.scan_days)} rounds{pool} "
          f"[{backend} store]")
    telemetry = _setup_telemetry(args)
    store = open_store(args.out, backend=backend)
    store.set_meta("simulate_args", json.dumps(params))
    abort_event = _install_abort_handler()
    try:
        result = _sim_campaign(
            scenario, store, params, telemetry=telemetry
        ).run(progress=True, abort_event=abort_event)
    except CampaignInterrupted as exc:
        print(f"campaign checkpointed — resumable at day {exc.day}")
        print(f"run `repro resume {args.out}` to continue")
        return 0
    return _finish_campaign(result, store, args.out)


def _cmd_resume(args) -> int:
    telemetry = _setup_telemetry(args)
    store = open_store(args.db)
    raw = store.get_meta("simulate_args")
    if raw is None:
        print(f"{args.db}: no campaign metadata; not resumable",
              file=sys.stderr)
        return 1
    params = json.loads(raw)
    if args.workers is not None:
        params["workers"] = args.workers
    scenario = _build_sim_scenario(params)
    campaign = _sim_campaign(scenario, store, params, telemetry=telemetry)
    done = len(json.loads(store.get_meta("completed_days") or "[]"))
    total = len(json.loads(store.get_meta("scan_days") or "[]"))
    partial = store.open_rounds()
    print(f"resuming {scenario.name}: {done}/{total} days complete"
          + (f", partial round at day {partial[0].timestamp}"
             if partial else ""))
    abort_event = _install_abort_handler()
    try:
        result = campaign.resume(progress=True, abort_event=abort_event)
    except CampaignInterrupted as exc:
        print(f"campaign checkpointed — resumable at day {exc.day}")
        print(f"run `repro resume {args.db}` to continue")
        return 0
    return _finish_campaign(result, store, args.db)


def _cmd_scan(args) -> int:
    with open(args.targets) as handle:
        targets = [ip_to_int(line.strip()) for line in handle if line.strip()]
    if not targets:
        print("no targets", file=sys.stderr)
        return 1
    store = open_store(args.out)
    platform = WhoWas(SocketTransport(), store)
    # A previous interrupted scan of the same timestamp resumes instead
    # of starting over.
    resume_id = next(
        (info.round_id for info in store.open_rounds()
         if info.timestamp == args.timestamp),
        None,
    )
    abort_event = _install_abort_handler()
    try:
        summary = platform.run_round(
            targets, timestamp=args.timestamp,
            abort_event=abort_event, resume_round_id=resume_id,
        )
    except RoundInterrupted as exc:
        print(f"scan checkpointed after {exc.shards_done}/{exc.shards_total} "
              f"shards — resumable at day {exc.timestamp}")
        print(f"re-run the same scan against {args.out} to continue")
        return 0
    except ValueError as exc:
        print(f"cannot start round: {exc}", file=sys.stderr)
        return 1
    print(f"probed {len(targets)} targets: responsive={summary.responsive} "
          f"available={summary.available}")
    return 0


def _cmd_report(args) -> int:
    store = _open_readonly(args.db)
    if store is None:
        return 1
    dataset = Dataset.from_store(store)
    if not dataset.rounds:
        print("database holds no rounds", file=sys.stderr)
        return 1
    clustering = None
    if not args.no_cluster:
        clustering = _clusterer_from_args(args).cluster(dataset)
    dynamics = DynamicsAnalyzer(dataset, clustering)
    print(f"rounds: {dataset.round_count}, "
          f"targets probed: {dynamics.space_size()}")
    degraded = [info.round_id for info in store.rounds() if info.degraded]
    if degraded:
        print(f"degraded rounds: {len(degraded)}/{dataset.round_count} "
              f"{degraded}")
    for name, summary in dynamics.usage_summary().items():
        print(f"  {name:<10} avg {summary.average:9.1f}  "
              f"growth {summary.growth_pct:+.1f}%")
    if dataset.round_count >= 2:
        rates = dynamics.churn_rates()
        print(f"churn: overall {rates.overall:.2f}%  "
              f"responsiveness {rates.responsiveness:.2f}%  "
              f"availability {rates.availability:.2f}%")
    print("port profiles:", {
        k: round(v, 1) for k, v in dynamics.port_profile_table().items()
    })
    print("status classes:", {
        k: round(v, 1) for k, v in dynamics.status_code_table().items()
    })
    census = SoftwareCensus(dataset).report()
    print("server families:", {
        k: round(v, 1)
        for k, v in list(census.server_family_shares.items())[:5]
    })
    ssh = SshCensus(dataset).report()
    if ssh.banner_counts:
        print("ssh products:", {
            k: round(v, 1) for k, v in list(ssh.product_shares.items())[:3]
        })
    if clustering is not None:
        print(f"clusters: {clustering.stats.final_clusters} final "
              f"(threshold {clustering.threshold})")
        if args.export:
            from .analysis import FigureExporter

            written = FigureExporter(dataset, clustering).export_all(
                args.export
            )
            print(f"wrote {len(written)} CSV series to {args.export}")
    return 0


def _cmd_lookup(args) -> int:
    store = _open_readonly(args.db)
    if store is None:
        return 1
    history = store.history(ip_to_int(args.ip))
    if not history:
        print(f"{args.ip}: never responsive")
        return 0
    for record in history:
        features = record.features
        title = features.title if features else "-"
        server = features.server if features else "-"
        print(f"day {record.timestamp:3d}  "
              f"ports={','.join(str(p) for p in sorted(record.probe.open_ports)):<10} "
              f"code={record.fetch.status_code}  server={server}  "
              f"title={title!r}")
    return 0


def _cmd_aggregate(args) -> int:
    store = _open_readonly(args.db)
    if store is None:
        return 1
    dataset = Dataset.from_store(store)
    clustering = _clusterer_from_args(args).cluster(dataset)
    report = build_aggregate_report(args.cloud, dataset, clustering)
    report.assert_private()
    print(report.to_json())
    return 0


def _open_readonly(path: str):
    """Open a database read-only for the analysis commands, so they can
    never take a write lock away from (or leave WAL litter behind for)
    a campaign that is still writing.  The engine is auto-detected from
    what is on disk.  Prints a friendly error and returns None when the
    path is absent/unreadable."""
    import sqlite3

    try:
        return open_store(path, readonly=True)
    except (sqlite3.OperationalError, FileNotFoundError, ValueError) as exc:
        print(f"{path}: cannot open database read-only ({exc})",
              file=sys.stderr)
        return None


def _cmd_rounds(args) -> int:
    import dataclasses

    store = _open_readonly(args.db)
    if store is None:
        return 1
    rounds = store.rounds()
    if args.json:
        payload = {
            "rounds": [dataclasses.asdict(info) for info in rounds],
            "in_progress": [
                dataclasses.asdict(info) for info in store.open_rounds()
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if not rounds:
        print("database holds no finalized rounds", file=sys.stderr)
        return 1
    print(f"{'round':>5}  {'day':>4}  {'targets':>7}  {'resp':>6}  "
          f"{'errors':>6}  {'status':<9}  {'duration':>9}")
    for info in rounds:
        print(f"{info.round_id:>5}  {info.timestamp:>4}  "
              f"{info.targets_probed:>7}  {info.responsive_count:>6}  "
              f"{info.error_count:>6}  {info.status:<9}  "
              f"{info.duration_seconds:>8.2f}s")
    partial = store.open_rounds()
    if partial:
        print(f"+ {len(partial)} in-progress round(s): "
              f"{[p.round_id for p in partial]}")
    return 0


def _load_pipeline_stats(store, round_id: int):
    from .core.platform import PIPELINE_STATS_META_PREFIX
    from .core.records import PipelineStats

    raw = store.get_meta(f"{PIPELINE_STATS_META_PREFIX}{round_id}")
    if raw is None:
        return None
    return PipelineStats.from_dict(json.loads(raw))


def _cmd_stats(args) -> int:
    store = _open_readonly(args.db)
    if store is None:
        return 1
    rounds = store.rounds()
    if args.round is not None:
        rounds = [i for i in rounds if i.round_id == args.round]
        if not rounds:
            print(f"no finalized round {args.round}", file=sys.stderr)
            return 1
    if not rounds:
        print("database holds no finalized rounds", file=sys.stderr)
        return 1
    if args.json:
        payload = []
        for info in rounds:
            stats = _load_pipeline_stats(store, info.round_id)
            if stats is None:
                continue
            payload.append({
                "round_id": info.round_id,
                "day": info.timestamp,
                "stats": stats.to_dict(),
            })
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    shown = 0
    for info in rounds:
        stats = _load_pipeline_stats(store, info.round_id)
        if stats is None:
            continue
        shown += 1
        print(f"round {info.round_id} (day {info.timestamp}) — "
              f"{stats.mode}: {stats.records_written} records in "
              f"{stats.wall_seconds:.2f}s "
              f"({stats.records_per_second:.0f} rec/s)")
        order = {"scan": 0, "fetch": 1, "extract": 2, "write": 3}
        stages = sorted(
            stats.stages.values(),
            key=lambda s: (order.get(s.name, len(order)), s.name),
        )
        for stage in stages:
            print(f"  {stage.name:<8} shards={stage.shards:<4} "
                  f"items={stage.items:<6} busy={stage.busy_seconds:6.2f}s "
                  f"({stage.items_per_second:8.0f} items/s)  "
                  f"queue_peak={stage.queue_peak} "
                  f"waits={stage.backpressure_waits}")
        if stats.writer_flushes:
            avg = stats.writer_flush_seconds / stats.writer_flushes
            print(f"  writer   flushes={stats.writer_flushes} "
                  f"avg={avg * 1000:.1f}ms "
                  f"max={stats.writer_max_flush_seconds * 1000:.1f}ms "
                  f"max_batch={stats.writer_max_batch} shards")
        if stats.worker_count:
            print(f"  workers  pool={stats.worker_count} "
                  f"restarts={stats.worker_restarts} "
                  f"reassigned={stats.partition_reassignments} "
                  f"failed={stats.partitions_failed} "
                  f"merged={stats.partitions_merged} "
                  f"max_heartbeat_age={stats.max_heartbeat_age:.2f}s")
        for part_id in sorted(stats.partitions, key=int):
            part_stages = stats.partitions[part_id]
            detail = "  ".join(
                f"{name}={part_stages[name].items}"
                for name in sorted(
                    part_stages,
                    key=lambda n: (order.get(n, len(order)), n),
                )
            )
            busy = sum(s.busy_seconds for s in part_stages.values())
            print(f"    partition {part_id:<3} {detail}  "
                  f"busy={busy:6.2f}s")
    if shown == 0:
        print("no pipeline telemetry recorded (database predates the "
              "streaming pipeline)", file=sys.stderr)
        return 1
    return 0


def _cmd_quarantine(args) -> int:
    from .core import FeatureExtractor
    from .cloudsim.addressing import int_to_ip

    store = open_store(args.db)
    entries = store.quarantine_rows(
        args.round, include_replayed=(args.all or args.action == "list")
    )
    if args.action == "list":
        if not entries:
            print("quarantine is empty")
            return 0
        for entry in entries:
            flag = "replayed" if entry.replayed else "pending"
            detail = entry.error_class or ""
            print(f"#{entry.entry_id:<5} round {entry.round_id:<4} "
                  f"ip {int_to_ip(entry.ip):<15} {entry.stage:<7} "
                  f"{entry.verdict:<14} {flag:<8} {detail}")
        print(f"{len(entries)} entries")
        return 0

    # replay: re-extract features for quarantined pages from the stored
    # bodies.  Fetch-stage entries have no page to re-process offline.
    extractor = FeatureExtractor()
    replayed = failed = skipped = 0
    for entry in entries:
        if entry.stage != "extract":
            skipped += 1
            continue
        record = store.record(entry.round_id, entry.ip)
        if record is None or record.fetch.body is None:
            skipped += 1
            continue
        try:
            features = extractor.extract(record.fetch)
        except Exception as exc:
            failed += 1
            print(f"#{entry.entry_id} ip {int_to_ip(entry.ip)}: extractor "
                  f"still fails ({type(exc).__name__}: {exc})",
                  file=sys.stderr)
            continue
        store.update_features(entry.round_id, entry.ip, features)
        if entry.entry_id is not None:
            store.mark_quarantine_replayed(entry.entry_id)
        replayed += 1
    print(f"replayed {replayed} entries "
          f"({failed} still failing, {skipped} skipped)")
    return 0 if failed == 0 else 1


def _cmd_verify(args) -> int:
    store = _open_readonly(args.db)
    if store is None:
        return 1
    infos = store.rounds() + store.open_rounds()
    if args.round is not None:
        infos = [i for i in infos if i.round_id == args.round]
        if not infos:
            print(f"no round {args.round} in {args.db}", file=sys.stderr)
            return 1
    if not infos:
        print("database holds no rounds", file=sys.stderr)
        return 1
    failed = 0
    for info in sorted(infos, key=lambda i: i.round_id):
        report = store.verify_round(info.round_id)
        print(report.describe())
        if not report.ok:
            failed += 1
    if failed:
        print(f"verification FAILED for {failed} of {len(infos)} round(s)",
              file=sys.stderr)
        return 1
    print(f"all {len(infos)} round(s) verified")
    return 0


def _cmd_rebuild_views(args) -> int:
    import sqlite3

    try:
        store = open_store(args.db)
    except (sqlite3.OperationalError, ValueError) as exc:
        print(f"{args.db}: cannot open database ({exc})", file=sys.stderr)
        return 1
    refolded = store.rebuild_views()
    print(f"rebuilt materialized views for {refolded} round(s)")
    return 0


def _cmd_serve(args) -> int:
    import dataclasses
    import sqlite3

    from .core.config import ServeConfig
    from .serve import ServeApp

    overrides = {}
    if args.host is not None:
        overrides["host"] = args.host
    if args.port is not None:
        overrides["port"] = args.port
    if args.rate is not None:
        overrides["rate_per_second"] = args.rate
    if args.burst is not None:
        overrides["burst"] = args.burst
    if args.readers is not None:
        overrides["readers"] = args.readers
    if args.deadline_ms is not None:
        overrides["default_deadline"] = args.deadline_ms / 1000.0
        overrides["max_deadline"] = max(
            ServeConfig().max_deadline, args.deadline_ms / 1000.0
        )
    if args.drain_deadline is not None:
        overrides["drain_deadline"] = args.drain_deadline
    try:
        config = dataclasses.replace(ServeConfig(), **overrides)
    except ValueError as exc:
        print(f"bad serve configuration: {exc}", file=sys.stderr)
        return 1

    _setup_telemetry(args)

    async def run() -> int:
        app = ServeApp(args.db, config)
        try:
            await app.start()
        except (sqlite3.OperationalError, FileNotFoundError) as exc:
            print(f"{args.db}: cannot open database read-only ({exc})",
                  file=sys.stderr)
            return 1
        except OSError as exc:
            print(f"cannot bind {config.host}:{config.port}: {exc}",
                  file=sys.stderr)
            return 1
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        hooked = []
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
                hooked.append(sig)
            except (NotImplementedError, ValueError, RuntimeError):
                pass
        # CI and the smoke tests parse this exact line for the port.
        print(f"serving {args.db} on http://{config.host}:{app.port}",
              flush=True)
        try:
            await stop.wait()
        finally:
            for sig in hooked:
                loop.remove_signal_handler(sig)
        print("drain: refusing new requests, finishing "
              f"{app.in_flight} in-flight", file=sys.stderr)
        clean = await app.drain()
        if not clean:
            print("drain: deadline exceeded, force-closed stragglers",
                  file=sys.stderr)
        return 0

    return asyncio.run(run())


def _cmd_watch(args) -> int:
    from . import dashboard

    url = dashboard.normalize_endpoint(args.endpoint)
    return dashboard.watch(
        url, interval=args.interval, frames=args.frames,
        clear=not args.no_clear,
    )


def _resolve_trace_path(source: str) -> str:
    """A ``.jsonl`` argument is the trace itself; anything else is a
    round database whose trace sits next to it as ``<db>.trace.jsonl``
    (the path `simulate --trace-out` documentation recommends)."""
    if source.endswith(".jsonl"):
        return source
    return f"{source}.trace.jsonl"


def _cmd_trace(args) -> int:
    import os

    from .core.telemetry import read_trace

    path = _resolve_trace_path(args.source)
    if not os.path.exists(path):
        print(f"no trace at {path} — run simulate with "
              f"`--trace-out {path}` to record one", file=sys.stderr)
        return 1
    spans = [
        span for span in read_trace(path)
        if (args.stage is None or span.stage == args.stage)
        and (args.round is None or span.round_id == args.round)
    ]
    if args.limit is not None:
        spans = spans[-args.limit:]
    if args.json:
        print(json.dumps([span.to_dict() for span in spans], indent=2))
        return 0
    if not spans:
        print("no matching spans", file=sys.stderr)
        return 1
    print(f"{'stage':<16}{'round':>6}{'shard':>6}{'worker':>7}"
          f"{'outcome':>8}{'ms':>10}  error")
    for span in spans:
        print(f"{span.stage:<16}"
              f"{span.round_id if span.round_id is not None else '-':>6}"
              f"{span.shard if span.shard is not None else '-':>6}"
              f"{span.worker if span.worker is not None else '-':>7}"
              f"{span.outcome:>8}{span.duration * 1000:>10.2f}  "
              f"{span.error_kind or ''}")
    print(f"{len(spans)} span(s)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
