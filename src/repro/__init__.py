"""WhoWas: a platform for measuring web deployments on IaaS clouds.

Reproduction of Wang et al., IMC 2014.  See :mod:`repro.core` for the
measurement platform, :mod:`repro.cloudsim` for the simulated IaaS
substrate, :mod:`repro.analysis` for the analysis engines, and
:mod:`repro.workloads` for ready-made scenarios and campaign drivers.
"""

from .core import (
    FetchConfig,
    MeasurementStore,
    PlatformConfig,
    ScanConfig,
    WhoWas,
)

__version__ = "1.0.0"

__all__ = [
    "FetchConfig",
    "MeasurementStore",
    "PlatformConfig",
    "ScanConfig",
    "WhoWas",
    "__version__",
]
