"""Network transport abstraction for the scanner and fetcher.

The WhoWas pipeline is written against the :class:`Transport` protocol so
that identical scanner/fetcher code drives either the real network
(:class:`SocketTransport`) or the cloud simulator
(:class:`repro.cloudsim.network.SimulatedTransport`).

:class:`SocketTransport` implements the probe as a plain TCP connect
(equivalent in effect to the paper's SYN probing: an accepted handshake
means the port is open) and HTTP fetches with a deliberately minimal
HTTP/1.1 client — no redirects followed, no active content executed, and
bodies capped by the caller, matching the paper's fetcher behaviour.
"""

from __future__ import annotations

import asyncio
import ssl
from dataclasses import dataclass, field
from typing import Mapping, Protocol, runtime_checkable

from .records import Port

__all__ = [
    "HttpResponse",
    "TransportError",
    "ConnectTimeout",
    "ConnectionRefused",
    "ProtocolError",
    "BodyTruncated",
    "classify_error",
    "Transport",
    "RoundAware",
    "SocketTransport",
]


class TransportError(Exception):
    """Connection, protocol, or timeout error during probe or fetch.

    Subclasses form the failure taxonomy threaded through the pipeline:
    ``ProbeOutcome.error_class`` and ``FetchResult.error_class`` record
    the :attr:`kind` of the error that caused a failure, so analyses can
    distinguish a dead host from a hostile network without re-parsing
    error strings.
    """

    #: Stable machine-readable label persisted in records.
    kind = "transport-error"


class ConnectTimeout(TransportError):
    """The TCP handshake (or the whole request) exceeded its deadline."""

    kind = "connect-timeout"


class ConnectionRefused(TransportError):
    """The host actively refused or reset the connection attempt."""

    kind = "connection-refused"


class ProtocolError(TransportError):
    """The peer spoke, but not valid HTTP (garbage status line, bad
    chunk framing, mid-stream reset)."""

    kind = "protocol-error"


class BodyTruncated(TransportError):
    """The connection died before the advertised body arrived."""

    kind = "body-truncated"


def classify_error(exc: BaseException) -> str:
    """The taxonomy label for *exc* (``"transport-error"`` fallback)."""
    if isinstance(exc, TransportError):
        return exc.kind
    return TransportError.kind


@dataclass(frozen=True)
class HttpResponse:
    """A raw HTTP response as seen by the fetcher."""

    status_code: int
    headers: Mapping[str, str] = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: str = "") -> str:
        lowered = name.lower()
        for key, value in self.headers.items():
            if key.lower() == lowered:
                return value
        return default

    @property
    def content_type(self) -> str:
        return self.header("content-type").split(";")[0].strip().lower()


@runtime_checkable
class Transport(Protocol):
    """What the scanner and fetcher need from the network."""

    async def probe(self, ip: int, port: int, timeout: float) -> bool:
        """Attempt a TCP handshake; True iff the port accepted within
        *timeout* seconds.  May raise a :class:`TransportError` subclass
        to report a *classified* failure; the scanner treats that as a
        failed probe and records the error class.  Must not raise
        anything else on ordinary failures."""
        ...

    async def get(
        self,
        ip: int,
        scheme: str,
        path: str,
        *,
        timeout: float,
        max_body: int,
        headers: Mapping[str, str] | None = None,
    ) -> HttpResponse:
        """Issue ``GET path`` to ``scheme://ip/``.  Raises
        :class:`TransportError` on connection or protocol failure."""
        ...

    async def banner(self, ip: int, port: int, timeout: float) -> str:
        """Read the service banner a server sends on connect (SSH
        servers announce ``SSH-2.0-...``).  Raises
        :class:`TransportError` if the port refuses or stays silent."""
        ...


@runtime_checkable
class RoundAware(Protocol):
    """Transports that want to know when a measurement round begins.

    The platform calls :meth:`on_round_start` before the first probe of
    each round; :class:`repro.core.faults.FaultyTransport` uses it to
    scope fault rules per round."""

    def on_round_start(self, round_id: int) -> None:
        ...


def _format_ip(ip: int) -> str:
    return ".".join(str((ip >> shift) & 0xFF) for shift in (24, 16, 8, 0))


class SocketTransport:
    """Real-network transport built on asyncio streams.

    ``port_map`` lets tests redirect the well-known ports to a local
    server (e.g. ``{80: 8080}`` probes 8080 whenever the caller asks
    for 80) without touching scanner/fetcher code.
    """

    def __init__(self, port_map: Mapping[int, int] | None = None):
        self._port_map = dict(port_map or {})

    def _real_port(self, port: int) -> int:
        return self._port_map.get(port, port)

    async def probe(self, ip: int, port: int, timeout: float) -> bool:
        host = _format_ip(ip)
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, self._real_port(port)),
                timeout=timeout,
            )
        except (OSError, asyncio.TimeoutError):
            return False
        writer.close()
        try:
            await writer.wait_closed()
        except OSError:
            pass
        return True

    async def banner(self, ip: int, port: int, timeout: float) -> str:
        """Connect and read the first line the server volunteers."""
        host = _format_ip(ip)
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, self._real_port(port)),
                timeout=timeout,
            )
        except asyncio.TimeoutError as exc:
            raise ConnectTimeout(f"connect to {host}:{port} timed out") from exc
        except ConnectionRefusedError as exc:
            raise ConnectionRefused(f"connect to {host}:{port} refused") from exc
        except OSError as exc:
            raise TransportError(f"connect to {host}:{port} failed") from exc
        try:
            line = await asyncio.wait_for(reader.readline(), timeout=timeout)
        except asyncio.TimeoutError as exc:
            raise ConnectTimeout(f"no banner from {host}:{port}") from exc
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass
        return line.decode("latin-1", errors="replace").strip()

    async def get(
        self,
        ip: int,
        scheme: str,
        path: str,
        *,
        timeout: float,
        max_body: int,
        headers: Mapping[str, str] | None = None,
    ) -> HttpResponse:
        host = _format_ip(ip)
        port = self._real_port(Port.HTTPS if scheme == "https" else Port.HTTP)
        ssl_context = None
        if scheme == "https":
            # The fetcher talks to bare IPs, so certificates can never
            # match; content, not authenticity, is what is measured.
            ssl_context = ssl.create_default_context()
            ssl_context.check_hostname = False
            ssl_context.verify_mode = ssl.CERT_NONE
        try:
            return await asyncio.wait_for(
                self._request(host, port, path, ssl_context, headers, max_body),
                timeout=timeout,
            )
        except asyncio.TimeoutError as exc:
            raise ConnectTimeout(
                f"timeout fetching {scheme}://{host}{path}"
            ) from exc
        except ConnectionRefusedError as exc:
            raise ConnectionRefused(str(exc)) from exc
        except asyncio.IncompleteReadError as exc:
            raise BodyTruncated(str(exc)) from exc
        except ConnectionResetError as exc:
            raise ProtocolError(str(exc)) from exc
        except OSError as exc:
            raise TransportError(str(exc)) from exc

    async def _request(
        self,
        host: str,
        port: int,
        path: str,
        ssl_context: ssl.SSLContext | None,
        headers: Mapping[str, str] | None,
        max_body: int,
    ) -> HttpResponse:
        reader, writer = await asyncio.open_connection(host, port, ssl=ssl_context)
        try:
            request_headers = {
                "Host": host,
                "Accept": "*/*",
                "Connection": "close",
            }
            if headers:
                request_headers.update(headers)
            lines = [f"GET {path} HTTP/1.1"]
            lines.extend(f"{name}: {value}" for name, value in request_headers.items())
            writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("ascii"))
            await writer.drain()
            return await self._read_response(reader, max_body)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass

    async def _read_response(
        self, reader: asyncio.StreamReader, max_body: int
    ) -> HttpResponse:
        status_line = await reader.readline()
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise ProtocolError(f"malformed status line: {status_line!r}")
        try:
            status_code = int(parts[1])
        except ValueError as exc:
            raise ProtocolError(f"malformed status code: {parts[1]!r}") from exc
        response_headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            response_headers[name.strip()] = value.strip()
        transfer = response_headers.get(
            "Transfer-Encoding", response_headers.get("transfer-encoding", "")
        )
        if "chunked" in transfer.lower():
            body = await self._read_chunked(reader, max_body)
        else:
            body = await reader.read(max_body)
        return HttpResponse(status_code, response_headers, body)

    async def _read_chunked(
        self, reader: asyncio.StreamReader, max_body: int
    ) -> bytes:
        chunks: list[bytes] = []
        total = 0
        while total < max_body:
            size_line = await reader.readline()
            try:
                size = int(size_line.split(b";")[0].strip() or b"0", 16)
            except ValueError as exc:
                raise ProtocolError(f"malformed chunk size: {size_line!r}") from exc
            if size == 0:
                break
            chunk = await reader.readexactly(min(size, max_body - total))
            chunks.append(chunk)
            total += len(chunk)
            if len(chunk) < size:  # truncated at the cap; stop reading
                break
            await reader.readline()  # trailing CRLF
        return b"".join(chunks)
