"""The WhoWas webpage fetcher (§4).

For every IP the scanner reported with port 80 or 443 open, a worker
from the pool issues at most two GET requests: first ``/robots.txt``,
then — unless robots forbids it — the top-level page.  The fetcher
records the status code, response headers and any error; text bodies are
stored up to 512 KB, while "application/*", "audio/*", "image/*" and
"video/*" bodies are never downloaded (the analysis engine cannot
process non-text data).  Links are never followed and active content is
never executed.
"""

from __future__ import annotations

import asyncio
from typing import Sequence

from .backoff import backoff_delay
from .config import FetchConfig
from .guard import GuardVerdict, StageDeadlineExceeded, Supervisor
from .records import FetchResult, FetchStatus, ProbeOutcome
from .transport import HttpResponse, Transport, TransportError, classify_error

__all__ = ["parse_robots", "decode_body", "Fetcher"]


def parse_robots(body: str, user_agent: str = "*") -> bool:
    """Return True if robots.txt allows fetching the top-level page.

    Minimal robots-exclusion parser: honours ``Disallow`` rules in the
    ``*`` group and in any group whose agent token appears in our
    User-Agent string.  A disallow of ``/`` blocks the root fetch; a
    bare ``Disallow:`` (empty value) allows everything.  Consecutive
    ``User-agent`` lines form one group — its rules apply if *any* of
    the named agents matches.
    """
    agent_lower = user_agent.lower()
    applies = False
    in_agent_run = False
    for raw_line in body.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line or ":" not in line:
            # Comment-only and blank lines don't terminate an agent run
            # (robots.txt in the wild puts comments between UA lines).
            continue
        field, _, value = line.partition(":")
        field = field.strip().lower()
        value = value.strip()
        if field == "user-agent":
            token = value.lower()
            matches = token == "*" or (token != "" and token in agent_lower)
            applies = (applies or matches) if in_agent_run else matches
            in_agent_run = True
        else:
            in_agent_run = False
            if field == "disallow" and applies and value == "/":
                return False
    return True


def _charset_of(content_type: str) -> str | None:
    """The ``charset=`` parameter of a Content-Type header, if any."""
    for param in content_type.split(";")[1:]:
        name, _, value = param.partition("=")
        if name.strip().lower() == "charset":
            value = value.strip().strip("\"'").lower()
            return value or None
    return None


def decode_body(raw: bytes, content_type: str) -> str:
    """Decode a response body honouring the declared charset.

    Falls back to UTF-8 when no (or an unknown/hostile) charset is
    declared; ``errors="replace"`` in both paths means decoding never
    raises, so non-UTF-8 pages stop mojibake-ing feature extraction
    without poison charsets gaining a crash vector.
    """
    charset = _charset_of(content_type)
    if charset:
        try:
            return raw.decode(charset, errors="replace")
        except (LookupError, ValueError):
            pass  # unknown or non-text codec name: fall back
    return raw.decode("utf-8", errors="replace")


class Fetcher:
    """Worker pool fetching top-level pages from responsive IPs.

    The pool runs through the supervision layer
    (:class:`~repro.core.guard.Supervisor`): a bounded work queue
    instead of one task per IP, a per-IP wall-clock deadline, and AIMD
    backpressure on the concurrency limit.  A standalone fetcher builds
    its own supervisor; the platform injects a shared one so fetch and
    extract feed the same quarantine.
    """

    def __init__(
        self,
        transport: Transport,
        config: FetchConfig | None = None,
        guard: Supervisor | None = None,
    ):
        self.transport = transport
        self.config = config or FetchConfig()
        self.guard = guard or Supervisor(concurrency=self.config.workers)
        #: GET counter across the fetcher's lifetime (ethics audit: at
        #: most two GETs per IP per round — plus explicitly configured
        #: retries, which are off by default to keep paper semantics).
        self.gets_sent = 0
        #: Page fetches that ended in a transport error (after retries).
        self.fetch_errors = 0

    async def fetch_ip(self, outcome: ProbeOutcome) -> FetchResult:
        """Fetch one IP's top-level page, honouring robots.txt."""
        scheme = outcome.scheme
        if scheme is None:
            return FetchResult(ip=outcome.ip, status=FetchStatus.NOT_ATTEMPTED)
        url = f"{scheme}://{_dotted(outcome.ip)}/"
        if self.config.respect_robots:
            allowed = await self._robots_allows(outcome.ip, scheme)
            if not allowed:
                return FetchResult(
                    ip=outcome.ip, status=FetchStatus.ROBOTS_DISALLOWED, url=url
                )
        try:
            response = await self._get_with_retries(outcome.ip, scheme, "/")
        except TransportError as exc:
            self.fetch_errors += 1
            return FetchResult(
                ip=outcome.ip,
                status=FetchStatus.ERROR,
                url=url,
                error=str(exc),
                error_class=classify_error(exc),
            )
        body = self._body_text(response)
        return FetchResult(
            ip=outcome.ip,
            status=FetchStatus.OK,
            url=url,
            status_code=response.status_code,
            headers=dict(response.headers),
            body=body,
        )

    async def fetch(
        self,
        outcomes: Sequence[ProbeOutcome],
        *,
        quarantine: list | None = None,
    ) -> list[FetchResult]:
        """Fetch many IPs through the supervised pool; preserves order.

        Every per-IP task runs under ``GuardConfig.fetch_deadline``; a
        blown deadline or an exception that escapes :meth:`fetch_ip`
        becomes an ERROR result plus a quarantine record instead of a
        crashed round.  With *quarantine*, dead letters land in that
        per-shard sink (pipeline shard attribution) instead of the
        supervisor-wide buffer.
        """

        def failed(result: FetchResult) -> bool:
            return result.status is FetchStatus.ERROR

        def fallback(outcome: ProbeOutcome, exc: BaseException) -> FetchResult:
            self.fetch_errors += 1
            verdict = (
                GuardVerdict.STAGE_DEADLINE
                if isinstance(exc, StageDeadlineExceeded)
                else GuardVerdict.TASK_ERROR
            )
            self.guard.quarantine(
                ip=outcome.ip, stage=Supervisor.FETCH, verdict=verdict,
                exc=exc, sink=quarantine,
            )
            url = ""
            if outcome.scheme is not None:
                url = f"{outcome.scheme}://{_dotted(outcome.ip)}/"
            return FetchResult(
                ip=outcome.ip,
                status=FetchStatus.ERROR,
                url=url,
                error=str(exc),
                error_class=classify_error(exc),
            )

        return list(await self.guard.map(
            outcomes,
            self.fetch_ip,
            stage=Supervisor.FETCH,
            deadline=self.guard.config.fetch_deadline,
            is_failure=failed,
            fallback=fallback,
        ))

    def fetch_sync(self, outcomes: Sequence[ProbeOutcome]) -> list[FetchResult]:
        return asyncio.run(self.fetch(outcomes))

    def stats_snapshot(self) -> dict[str, int]:
        """Lifetime counters, snapshotted — the platform diffs two
        snapshots to attribute errors/operations to one shard."""
        return {
            "gets_sent": self.gets_sent,
            "fetch_errors": self.fetch_errors,
        }

    # ------------------------------------------------------------------

    async def _robots_allows(self, ip: int, scheme: str) -> bool:
        try:
            response = await self._get(ip, scheme, "/robots.txt")
        except TransportError:
            # Unreachable robots.txt does not forbid the main fetch.
            return True
        if response.status_code != 200:
            return True
        text = response.body.decode("utf-8", errors="replace")
        return parse_robots(text, self.config.user_agent)

    async def _get(self, ip: int, scheme: str, path: str) -> HttpResponse:
        self.gets_sent += 1
        return await self.transport.get(
            ip,
            scheme,
            path,
            timeout=self.config.timeout,
            max_body=self.config.max_body_bytes,
            headers={"User-Agent": self.config.user_agent},
        )

    async def _get_with_retries(
        self, ip: int, scheme: str, path: str
    ) -> HttpResponse:
        """The page GET, with the optional bounded retry-with-jitter
        policy (``FetchConfig.retries``, 0 by default — the paper never
        retries).  Backoff is deterministic per (ip, attempt) so chaos
        runs replay exactly."""
        attempts = 1 + max(0, self.config.retries)
        for attempt in range(attempts):
            try:
                return await self._get(ip, scheme, path)
            except TransportError:
                if attempt + 1 >= attempts:
                    raise
                await asyncio.sleep(self._backoff_delay(ip, attempt))
        raise AssertionError("unreachable")  # pragma: no cover

    def _backoff_delay(self, ip: int, attempt: int) -> float:
        return backoff_delay(
            attempt,
            base=self.config.retry_base_delay,
            cap=self.config.retry_max_delay,
            key=f"fetch-retry:{ip}:{attempt}",
            jitter_min=0.5,
            jitter_max=1.0,
        )

    def _body_text(self, response: HttpResponse) -> str | None:
        if not self.config.should_download(response.content_type):
            return None
        raw = response.body[: self.config.max_body_bytes]
        return decode_body(raw, response.header("content-type"))


def _dotted(ip: int) -> str:
    return ".".join(str((ip >> shift) & 0xFF) for shift in (24, 16, 8, 0))
