"""The WhoWas webpage fetcher (§4).

For every IP the scanner reported with port 80 or 443 open, a worker
from the pool issues at most two GET requests: first ``/robots.txt``,
then — unless robots forbids it — the top-level page.  The fetcher
records the status code, response headers and any error; text bodies are
stored up to 512 KB, while "application/*", "audio/*", "image/*" and
"video/*" bodies are never downloaded (the analysis engine cannot
process non-text data).  Links are never followed and active content is
never executed.
"""

from __future__ import annotations

import asyncio
from typing import Sequence

from .config import FetchConfig
from .records import FetchResult, FetchStatus, ProbeOutcome
from .transport import HttpResponse, Transport, TransportError

__all__ = ["parse_robots", "Fetcher"]


def parse_robots(body: str, user_agent: str = "*") -> bool:
    """Return True if robots.txt allows fetching the top-level page.

    Minimal robots-exclusion parser: honours ``Disallow`` rules in the
    ``*`` group and in any group whose agent token appears in our
    User-Agent string.  A disallow of ``/`` (or a prefix of it) blocks
    the root fetch.
    """
    agent_lower = user_agent.lower()
    applies = False
    for raw_line in body.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line or ":" not in line:
            continue
        field, _, value = line.partition(":")
        field = field.strip().lower()
        value = value.strip()
        if field == "user-agent":
            token = value.lower()
            applies = token == "*" or (token and token in agent_lower)
        elif field == "disallow" and applies and value == "/":
            return False
    return True


class Fetcher:
    """Worker pool fetching top-level pages from responsive IPs."""

    def __init__(self, transport: Transport, config: FetchConfig | None = None):
        self.transport = transport
        self.config = config or FetchConfig()
        #: GET counter across the fetcher's lifetime (ethics audit: at
        #: most two GETs per IP per round).
        self.gets_sent = 0

    async def fetch_ip(self, outcome: ProbeOutcome) -> FetchResult:
        """Fetch one IP's top-level page, honouring robots.txt."""
        scheme = outcome.scheme
        if scheme is None:
            return FetchResult(ip=outcome.ip, status=FetchStatus.NOT_ATTEMPTED)
        url = f"{scheme}://{_dotted(outcome.ip)}/"
        if self.config.respect_robots:
            allowed = await self._robots_allows(outcome.ip, scheme)
            if not allowed:
                return FetchResult(
                    ip=outcome.ip, status=FetchStatus.ROBOTS_DISALLOWED, url=url
                )
        try:
            response = await self._get(outcome.ip, scheme, "/")
        except TransportError as exc:
            return FetchResult(
                ip=outcome.ip, status=FetchStatus.ERROR, url=url, error=str(exc)
            )
        body = self._body_text(response)
        return FetchResult(
            ip=outcome.ip,
            status=FetchStatus.OK,
            url=url,
            status_code=response.status_code,
            headers=dict(response.headers),
            body=body,
        )

    async def fetch(self, outcomes: Sequence[ProbeOutcome]) -> list[FetchResult]:
        """Fetch many IPs through the worker pool; preserves order."""
        semaphore = asyncio.Semaphore(self.config.workers)

        async def bounded(outcome: ProbeOutcome) -> FetchResult:
            async with semaphore:
                return await self.fetch_ip(outcome)

        return list(await asyncio.gather(*(bounded(o) for o in outcomes)))

    def fetch_sync(self, outcomes: Sequence[ProbeOutcome]) -> list[FetchResult]:
        return asyncio.run(self.fetch(outcomes))

    # ------------------------------------------------------------------

    async def _robots_allows(self, ip: int, scheme: str) -> bool:
        try:
            response = await self._get(ip, scheme, "/robots.txt")
        except TransportError:
            # Unreachable robots.txt does not forbid the main fetch.
            return True
        if response.status_code != 200:
            return True
        text = response.body.decode("utf-8", errors="replace")
        return parse_robots(text, self.config.user_agent)

    async def _get(self, ip: int, scheme: str, path: str) -> HttpResponse:
        self.gets_sent += 1
        return await self.transport.get(
            ip,
            scheme,
            path,
            timeout=self.config.timeout,
            max_body=self.config.max_body_bytes,
            headers={"User-Agent": self.config.user_agent},
        )

    def _body_text(self, response: HttpResponse) -> str | None:
        if not self.config.should_download(response.content_type):
            return None
        raw = response.body[: self.config.max_body_bytes]
        return raw.decode("utf-8", errors="replace")


def _dotted(ip: int) -> str:
    return ".".join(str((ip >> shift) & 0xFF) for shift in (24, 16, 8, 0))
