"""Configuration for the WhoWas platform components.

Defaults follow §4 and §6 of the paper: 2-second probe timeouts with no
retries, a global scan rate of 250 probes per second, at most three probes
per IP per day (80/tcp, 443/tcp, 22/tcp), a 250-worker fetch pool with a
10-second HTTP timeout, 512 KB text-content cap, and a research-note
User-Agent string carrying a contact address.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "ScanConfig",
    "FetchConfig",
    "GuardConfig",
    "PipelineConfig",
    "ClusteringConfig",
    "WorkerConfig",
    "TelemetryConfig",
    "ServeConfig",
    "StoreConfig",
    "PlatformConfig",
]


@dataclass(frozen=True)
class ScanConfig:
    """Scanner parameters (§4)."""

    #: Seconds before a SYN probe is declared failed.  The paper evaluated
    #: 8 s and found only +0.61% responsiveness, settling on 2 s.
    probe_timeout: float = 2.0
    #: Global probe rate limit in probes per second.  Deliberately far
    #: below prior Internet-wide scanners (1,000-1.4M pps) to stay polite.
    probes_per_second: float = 250.0
    #: Probes are never retried — minimises interaction with tenants.
    retries: int = 0
    #: Ports probed, in order.  80 then 443; 22 only if both failed.
    web_ports: tuple[int, ...] = (80, 443)
    fallback_ports: tuple[int, ...] = (22,)
    #: Maximum concurrent in-flight probes.
    concurrency: int = 256
    #: Per-/24-subnet circuit breaker: after this many *consecutive*
    #: classified probe failures inside one subnet in a round, the rest
    #: of the subnet is skipped with
    #: :attr:`~repro.core.records.ProbeStatus.CIRCUIT_OPEN` instead of
    #: burning a full probe timeout per address.  The breaker resets at
    #: the start of every round.  0 (the default) disables it.
    subnet_error_threshold: int = 0

    def __post_init__(self) -> None:
        if self.probe_timeout <= 0:
            raise ValueError("probe_timeout must be positive")
        if self.probes_per_second <= 0:
            raise ValueError("probes_per_second must be positive")
        if self.concurrency <= 0:
            raise ValueError("concurrency must be positive")
        if self.subnet_error_threshold < 0:
            raise ValueError("subnet_error_threshold must be non-negative")


@dataclass(frozen=True)
class FetchConfig:
    """Fetcher parameters (§4, §6)."""

    #: Number of fetch workers in the pool (paper default: 250).
    workers: int = 250
    #: HTTP(S) connection timeout in seconds (paper default: 10).
    timeout: float = 10.0
    #: Only the first this-many bytes of text content are stored (512 KB).
    max_body_bytes: int = 512 * 1024
    #: Content-type prefixes that are never downloaded (§4).
    skip_content_prefixes: tuple[str, ...] = (
        "application/",
        "audio/",
        "image/",
        "video/",
    )
    #: Text content types that *are* downloaded despite the prefix rule
    #: (Table 5 shows application/json and application/xml being stored).
    text_content_types: tuple[str, ...] = (
        "application/json",
        "application/xml",
        "application/xhtml+xml",
    )
    #: Research-note User-Agent per the ethics discussion (§7).
    user_agent: str = (
        "WhoWas-research-scanner/1.0 "
        "(measurement study; contact research-scan (at) example.org "
        "to opt out)"
    )
    #: Honour robots.txt disallow rules for the top-level page (§7).
    respect_robots: bool = True
    #: Bounded retry-with-jitter for page fetches.  0 preserves the
    #: paper's semantics (a failed fetch is recorded, never retried);
    #: setting it >0 makes the fetcher retry transport errors with
    #: exponential backoff and deterministic jitter.
    retries: int = 0
    #: First backoff delay in seconds; doubles per retry attempt.
    retry_base_delay: float = 0.05
    #: Ceiling on any single backoff delay in seconds.
    retry_max_delay: float = 1.0

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ValueError("workers must be positive")
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.max_body_bytes <= 0:
            raise ValueError("max_body_bytes must be positive")
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.retry_base_delay < 0 or self.retry_max_delay < 0:
            raise ValueError("retry delays must be non-negative")

    def should_download(self, content_type: str) -> bool:
        """Return True if a body with this content type may be stored."""
        content_type = content_type.split(";")[0].strip().lower()
        if not content_type:
            return True
        if content_type in self.text_content_types:
            return True
        return not content_type.startswith(self.skip_content_prefixes)


@dataclass(frozen=True)
class GuardConfig:
    """Supervision-layer parameters (:mod:`repro.core.guard`).

    The wild web serves adversarial inputs — header bombs, unterminated
    HTML, encoding garbage, megabyte titles — and a single poison page
    must never hang or crash a round.  These knobs bound how long any
    per-IP unit of work may run, how the fetch pool backs off under
    error storms, and which content shapes get quarantined.
    """

    #: Wall-clock ceiling in seconds for one IP's whole fetch task
    #: (robots.txt + page GET + retries).  A task that blows it is
    #: cancelled, recorded as a ``stage-deadline`` fetch error, and
    #: quarantined.  0 disables the deadline.
    fetch_deadline: float = 30.0
    #: Wall-clock ceiling in seconds for extracting one page's features.
    #: 0 disables the deadline (extraction then runs inline, guarded
    #: against exceptions only).
    extract_deadline: float = 10.0
    #: Bodies at most this large with a clean guard verdict are
    #: extracted inline (fast path); larger or suspect bodies run in a
    #: worker thread under the extract deadline.
    extract_inline_max_bytes: int = 64 * 1024
    #: AIMD backpressure: rolling window of recent fetch outcomes
    #: evaluated between concurrency adjustments.
    aimd_window: int = 64
    #: When the windowed timeout/error fraction exceeds this, the fetch
    #: concurrency limit is halved (multiplicative decrease); while it
    #: stays at or below, the limit recovers by ``aimd_increase_step``
    #: per window (additive increase).  1.0 disables the controller.
    aimd_error_threshold: float = 0.5
    #: Concurrency never drops below this floor.
    aimd_min_concurrency: int = 8
    #: Additive recovery step per clean window.
    aimd_increase_step: int = 1
    #: Responses with more headers than this are quarantined as header
    #: bombs.
    max_response_headers: int = 256
    #: ``<title>`` content longer than this (bytes of text, terminated
    #: or not) is quarantined as a title bomb.
    max_title_bytes: int = 100_000
    #: Bodies with more NUL bytes than this are quarantined as binary
    #: garbage.
    max_null_bytes: int = 64
    #: Bodies with more unclosed element tags than this are quarantined
    #: as markup bombs (deeply-nested / unterminated HTML).
    max_unclosed_tags: int = 5_000
    #: How much of the offending body is preserved in the quarantine
    #: record for post-mortem.
    quarantine_payload_bytes: int = 256

    def __post_init__(self) -> None:
        if self.fetch_deadline < 0 or self.extract_deadline < 0:
            raise ValueError("deadlines must be non-negative")
        if self.extract_inline_max_bytes < 0:
            raise ValueError("extract_inline_max_bytes must be non-negative")
        if self.aimd_window <= 0:
            raise ValueError("aimd_window must be positive")
        if not 0.0 < self.aimd_error_threshold <= 1.0:
            raise ValueError("aimd_error_threshold must be in (0, 1]")
        if self.aimd_min_concurrency <= 0:
            raise ValueError("aimd_min_concurrency must be positive")
        if self.aimd_increase_step <= 0:
            raise ValueError("aimd_increase_step must be positive")
        for name in ("max_response_headers", "max_title_bytes",
                     "max_null_bytes", "max_unclosed_tags",
                     "quarantine_payload_bytes"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


@dataclass(frozen=True)
class PipelineConfig:
    """Streaming round-pipeline parameters (:mod:`repro.core.pipeline`).

    With ``overlap`` on, the round engine runs scan → fetch → extract as
    concurrent stages connected by bounded shard queues (shard *N+1*
    scans while *N* fetches and *N−1* extracts), plus a dedicated
    store-writer stage that commits completed shards in small batched
    transactions off the hot path.  ``overlap=False`` reproduces the
    strictly serial per-shard engine — the escape hatch differential
    tests compare against; both modes produce identical store contents.
    """

    #: Stage-parallel streaming on/off.
    overlap: bool = True
    #: Max shards buffered between scan and fetch.  This is also the
    #: AIMD coupling point: the supervisor's controller scales the
    #: *effective* depth by ``limit / max_limit``, so a fetch-side error
    #: storm throttles the scanner instead of piling up scanned shards.
    scan_queue_depth: int = 2
    #: Max shards buffered between fetch and extract.
    extract_queue_depth: int = 2
    #: Max completed shards buffered ahead of the store writer.
    write_queue_depth: int = 4
    #: Ceiling on shards committed per writer transaction.  The writer
    #: is adaptive: it commits whatever is queued (1..batch shards) the
    #: moment it falls idle, so a healthy pipeline still checkpoints
    #: nearly every shard while a write-bound one amortises commits.
    writer_batch_shards: int = 4
    #: Run batch commits in a worker thread so sqlite's fsync never
    #: blocks the event loop (the store serialises access internally).
    writer_offload: bool = True

    def __post_init__(self) -> None:
        for name in ("scan_queue_depth", "extract_queue_depth",
                     "write_queue_depth", "writer_batch_shards"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


@dataclass(frozen=True)
class ClusteringConfig:
    """§5 clustering parameters plus the at-scale candidate-generation
    knobs (:mod:`repro.analysis.clustering`, :mod:`repro.analysis.lsh`).

    The second-level clustering connects simhashes within a Hamming
    threshold.  ``exact`` picks how candidate pairs are generated:
    ``True`` forces the brute-force all-pairs scan, ``False`` forces the
    banded LSH index, and ``None`` (default) switches to the index once
    a group holds more than ``exact_cutoff`` distinct fingerprints.
    Both paths are provably equivalent (the index has 100% recall at
    the threshold and confirms candidates exactly), so this knob trades
    nothing but constant factors.
    """

    #: Fixed second-level Hamming threshold; None tunes it per campaign
    #: (the gap-statistic-inspired separation-band estimator).
    level2_threshold: int | None = None
    #: Merge-heuristic Hamming bound, **inclusive** (paper: 3 bits).
    merge_threshold: int = 3
    #: Cleaning rule: default-page clusters averaging more than this
    #: many IPs per day are dropped (§5).
    clean_min_daily_ips: float = 20.0
    #: Candidate generation: None = auto, True = brute force,
    #: False = banded LSH index.
    exact: bool | None = None
    #: Auto mode switches to the index above this many distinct
    #: fingerprints per level-1 group.
    exact_cutoff: int = 256
    #: Seed for the threshold-tuning sampler.
    threshold_seed: int = 0

    def __post_init__(self) -> None:
        if self.level2_threshold is not None and self.level2_threshold < 0:
            raise ValueError("level2_threshold must be non-negative")
        if self.merge_threshold < 0:
            raise ValueError("merge_threshold must be non-negative")
        if self.clean_min_daily_ips <= 0:
            raise ValueError("clean_min_daily_ips must be positive")
        if self.exact_cutoff < 0:
            raise ValueError("exact_cutoff must be non-negative")


@dataclass(frozen=True)
class WorkerConfig:
    """Multi-process round execution (:mod:`repro.core.workers`).

    With ``count > 1`` a round's shard sequence is partitioned across a
    pool of spawned worker processes, each running the normal
    :class:`~repro.core.pipeline.RoundPipeline` against its own
    partition journal (a SQLite sidecar of the campaign database).  A
    supervisor tracks per-worker heartbeats, kills and restarts workers
    that miss their deadline or exit nonzero, and reassigns incomplete
    partitions with capped retry + jittered backoff; completed journals
    are checksum-verified and merged into the canonical shard sequence,
    so the result is byte-identical to the serial path on the same seed.
    """

    #: Worker processes per round.  0 or 1 keeps the in-process engines
    #: (serial / overlapped); >1 enables the multi-process coordinator,
    #: which requires the platform to be built with a picklable
    #: ``transport_factory``.
    count: int = 0
    #: Multiprocessing start method.  Pinned to ``spawn`` so workers
    #: rebuild their transport/config from pickled arguments instead of
    #: inheriting interpreter state — the only way per-partition
    #: determinism holds identically on Linux and macOS.
    start_method: str = "spawn"
    #: Seconds between worker heartbeats.
    heartbeat_interval: float = 0.2
    #: A worker whose last heartbeat is older than this is presumed
    #: wedged: it is SIGKILLed and its partition reassigned.
    heartbeat_timeout: float = 10.0
    #: How often the supervisor polls worker state, in seconds.
    poll_interval: float = 0.1
    #: A partition that crashes/wedges is retried at most this many
    #: times before it is declared failed (the pool shrinks by one and
    #: the partition runs inline in the coordinator as a last resort,
    #: forcing the round ``degraded``).
    max_partition_retries: int = 3
    #: First reassignment backoff in seconds; doubles per attempt with
    #: deterministic jitter, capped at ``retry_backoff_max``.
    retry_backoff_base: float = 0.1
    retry_backoff_max: float = 2.0

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("count must be non-negative")
        if self.start_method != "spawn":
            raise ValueError(
                "start_method must be 'spawn' (fork would inherit live "
                "event-loop and sqlite state and breaks determinism)"
            )
        if self.heartbeat_interval <= 0 or self.poll_interval <= 0:
            raise ValueError("intervals must be positive")
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise ValueError(
                "heartbeat_timeout must exceed heartbeat_interval"
            )
        if self.max_partition_retries < 0:
            raise ValueError("max_partition_retries must be non-negative")
        if self.retry_backoff_base < 0 or self.retry_backoff_max < 0:
            raise ValueError("backoff delays must be non-negative")


@dataclass(frozen=True)
class TelemetryConfig:
    """Observability switches (:mod:`repro.core.telemetry`).

    Disabled by default: instrumented code then holds shared no-op
    metric handles and spans cost one no-op call per event.  The config
    lives on :class:`PlatformConfig` (and is therefore pickled into
    spawned partition workers) so one flag lights up metrics and trace
    spans across every process of a campaign.  Telemetry only observes
    — enabling it must never change store output.
    """

    #: Master switch for the metrics registry and trace spans.
    enabled: bool = False
    #: Append-only JSONL file receiving every completed span; ``None``
    #: keeps spans only in the in-memory ring.  Workers append to the
    #: same path (single-write lines interleave safely).
    trace_path: str | None = None
    #: Bounded in-memory span ring (most recent N spans).
    ring_size: int = 4096

    def __post_init__(self) -> None:
        if self.ring_size <= 0:
            raise ValueError("ring_size must be positive")


@dataclass(frozen=True)
class ServeConfig:
    """Query-serving parameters (:mod:`repro.serve`).

    ``repro serve`` exposes the measurement database over HTTP behind a
    full overload envelope: token-bucket admission with a bounded
    accept queue (beyond it, explicit ``429`` + ``Retry-After``
    shedding), a per-request deadline budget propagated into store
    reads (``503`` at expiry instead of pile-up), a per-endpoint
    circuit breaker that fails fast while the store is sick, and a
    SIGTERM drain protocol.  Every knob here bounds some resource a
    request flood would otherwise exhaust.
    """

    host: str = "127.0.0.1"
    port: int = 8321
    #: Token-bucket admission: sustained requests per second...
    rate_per_second: float = 500.0
    #: ...with this much burst capacity (bucket size).
    burst: float = 100.0
    #: Requests that may *wait* for an admission token.  Beyond this
    #: the request is shed immediately with ``429`` + ``Retry-After``.
    accept_queue: int = 64
    #: Read-only store connections in the pool == max concurrent store
    #: reads.  Requests beyond it queue (bounded by their deadline).
    readers: int = 4
    #: Per-request deadline budget in seconds when the client sends no
    #: ``deadline_ms`` query parameter...
    default_deadline: float = 1.0
    #: ...and the ceiling any client may request.
    max_deadline: float = 10.0
    #: Per-endpoint circuit breaker: consecutive store failures before
    #: the breaker opens (0 disables it)...
    breaker_threshold: int = 5
    #: ...and seconds the breaker stays open before letting a single
    #: half-open probe request through.
    breaker_cooldown: float = 2.0
    #: Seconds SIGTERM-initiated drain waits for in-flight requests
    #: before force-closing their connections.
    drain_deadline: float = 5.0
    #: Seconds a client may take to deliver its request head (slow-loris
    #: bound on the accept path).
    header_timeout: float = 5.0
    #: Ceiling on request-head bytes (line + headers).
    max_request_bytes: int = 8192
    #: Listen backlog for the accept socket.
    backlog: int = 512
    #: ``Retry-After`` jittered-backoff shape for shed responses: base
    #: doubles per consecutive shed, capped (`repro.core.backoff`).
    retry_after_base: float = 0.5
    retry_after_max: float = 8.0

    def __post_init__(self) -> None:
        if self.rate_per_second <= 0:
            raise ValueError("rate_per_second must be positive")
        if self.burst <= 0:
            raise ValueError("burst must be positive")
        if self.accept_queue < 0:
            raise ValueError("accept_queue must be non-negative")
        if self.readers <= 0:
            raise ValueError("readers must be positive")
        if not 0 < self.default_deadline <= self.max_deadline:
            raise ValueError(
                "need 0 < default_deadline <= max_deadline"
            )
        if self.breaker_threshold < 0:
            raise ValueError("breaker_threshold must be non-negative")
        if self.breaker_cooldown <= 0:
            raise ValueError("breaker_cooldown must be positive")
        if self.drain_deadline < 0:
            raise ValueError("drain_deadline must be non-negative")
        if self.header_timeout <= 0:
            raise ValueError("header_timeout must be positive")
        if self.max_request_bytes < 256:
            raise ValueError("max_request_bytes must be at least 256")
        if self.backlog <= 0:
            raise ValueError("backlog must be positive")
        if self.retry_after_base <= 0 or self.retry_after_max <= 0:
            raise ValueError("retry_after delays must be positive")


@dataclass(frozen=True)
class StoreConfig:
    """Measurement-store engine selection.

    ``backend`` picks the engine new campaign databases are created
    with: ``"sqlite"`` (the row-oriented reference engine — one file,
    WAL, transactional folds) or ``"columnar"`` (the round-partitioned
    analytical engine — a directory of column-major shard files).
    Existing stores are always opened with the engine that wrote them
    (:func:`repro.core.store.detect_backend`); this setting only
    matters at creation time.
    """

    backend: str = "sqlite"

    def __post_init__(self) -> None:
        if self.backend not in ("sqlite", "columnar"):
            raise ValueError(
                f"unknown store backend {self.backend!r}; "
                "expected 'sqlite' or 'columnar'"
            )


@dataclass(frozen=True)
class PlatformConfig:
    """Top-level WhoWas configuration."""

    scan: ScanConfig = field(default_factory=ScanConfig)
    fetch: FetchConfig = field(default_factory=FetchConfig)
    guard: GuardConfig = field(default_factory=GuardConfig)
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    clustering: ClusteringConfig = field(default_factory=ClusteringConfig)
    workers: WorkerConfig = field(default_factory=WorkerConfig)
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    store: StoreConfig = field(default_factory=StoreConfig)
    #: IPs that must never be probed (tenant opt-outs; §4, §7).
    blacklist: frozenset[int] = frozenset()
    #: Also read the SSH banner from IPs with port 22 open (one extra
    #: connection per such IP per round) — the paper's non-web-services
    #: extension.  Off by default to keep the original probe budget.
    grab_ssh_banners: bool = False
    #: Per-round error budget: when the fraction of network operations
    #: (probes + page GETs) that fail with a *classified* transport
    #: error exceeds this, the round is marked ``degraded`` in its
    #: :class:`~repro.core.store.RoundInfo` — the round still completes
    #: and persists, but analyses can discount it.  1.0 disables the
    #: check entirely.
    round_error_budget: float = 0.5
    #: Checkpoint granularity: targets are scanned in shards of this
    #: many IPs, each committed to the store as it completes, so a
    #: crash or abort loses at most one shard of work.
    shard_size: int = 1024

    def __post_init__(self) -> None:
        if not 0.0 <= self.round_error_budget <= 1.0:
            raise ValueError("round_error_budget must be in [0, 1]")
        if self.shard_size <= 0:
            raise ValueError("shard_size must be positive")
