"""96-bit simhash fingerprints for near-duplicate webpage detection.

WhoWas (§4) computes a simhash over the HTML of every fetched page and
clusters pages whose fingerprints are within a small Hamming distance.
This module implements the Charikar simhash construction used there:

1. tokenize the document into features (word shingles),
2. hash every feature to a ``HASH_BITS``-bit value,
3. sum +1/-1 votes per bit position, weighted by feature frequency,
4. the fingerprint has bit *i* set iff the vote for position *i* is positive.

Two near-identical documents share most features, so most bit positions
receive nearly identical votes and the fingerprints differ in only a few
bits.  The paper uses 96-bit hashes and a merge threshold of 3 bits.
"""

from __future__ import annotations

import hashlib
import re
from collections import Counter
from typing import Iterable

__all__ = [
    "HASH_BITS",
    "simhash",
    "hamming_distance",
    "tokenize",
    "shingles",
]

#: Width of the fingerprint in bits; the paper uses 96-bit hashes (§4).
HASH_BITS = 96

_HASH_MASK = (1 << HASH_BITS) - 1

_TOKEN_RE = re.compile(r"[A-Za-z0-9]+")

_TAG_RE = re.compile(r"<[^>]*>")


def tokenize(text: str, *, strip_markup: bool = True) -> list[str]:
    """Split *text* into lowercase alphanumeric tokens.

    HTML tags are treated as token sources too (tag names and attribute
    values carry structural signal), but angle-bracket punctuation is
    dropped.  With ``strip_markup=False`` the raw text is tokenized as-is.
    """
    if strip_markup:
        text = _TAG_RE.sub(" ", text)
    return [match.group(0).lower() for match in _TOKEN_RE.finditer(text)]


def shingles(tokens: list[str], width: int = 3) -> Iterable[str]:
    """Yield overlapping token *width*-grams (shingles).

    Shingling makes the fingerprint sensitive to local word order, which
    distinguishes pages that merely share a vocabulary.  Documents shorter
    than *width* tokens yield a single shingle of all their tokens.
    """
    if width <= 0:
        raise ValueError(f"shingle width must be positive, got {width}")
    if len(tokens) < width:
        if tokens:
            yield " ".join(tokens)
        return
    for start in range(len(tokens) - width + 1):
        yield " ".join(tokens[start : start + width])


def _feature_hash(feature: str) -> int:
    """Hash a feature string to ``HASH_BITS`` bits (stable across runs)."""
    digest = hashlib.blake2b(feature.encode("utf-8"), digest_size=12).digest()
    return int.from_bytes(digest, "big") & _HASH_MASK


def simhash(text: str, *, shingle_width: int = 3) -> int:
    """Compute the 96-bit simhash fingerprint of *text*.

    Returns 0 for documents with no extractable tokens, matching the
    behaviour of treating empty pages as a single degenerate fingerprint.
    """
    tokens = tokenize(text)
    if not tokens:
        return 0
    weights = Counter(shingles(tokens, shingle_width))
    votes = [0] * HASH_BITS
    for feature, weight in weights.items():
        value = _feature_hash(feature)
        for bit in range(HASH_BITS):
            if value & (1 << bit):
                votes[bit] += weight
            else:
                votes[bit] -= weight
    fingerprint = 0
    for bit in range(HASH_BITS):
        if votes[bit] > 0:
            fingerprint |= 1 << bit
    return fingerprint


def hamming_distance(a: int, b: int) -> int:
    """Number of differing bits between two fingerprints (0..HASH_BITS)."""
    return ((a ^ b) & _HASH_MASK).bit_count()
