"""96-bit simhash fingerprints for near-duplicate webpage detection.

WhoWas (§4) computes a simhash over the HTML of every fetched page and
clusters pages whose fingerprints are within a small Hamming distance.
This module implements the Charikar simhash construction used there:

1. tokenize the document into features (word shingles),
2. hash every feature to a ``HASH_BITS``-bit value,
3. sum +1/-1 votes per bit position, weighted by feature frequency,
4. the fingerprint has bit *i* set iff the vote for position *i* is positive.

Two near-identical documents share most features, so most bit positions
receive nearly identical votes and the fingerprints differ in only a few
bits.  The paper uses 96-bit hashes and a merge threshold of 3 bits.
"""

from __future__ import annotations

import hashlib
import re
from collections import Counter
from typing import Iterable, Sequence

try:  # pragma: no cover - exercised via the fallback-path tests
    import numpy as _np

    if not hasattr(_np, "bitwise_count"):  # numpy < 2.0
        _np = None  # type: ignore[assignment]
except ImportError:  # pragma: no cover
    _np = None  # type: ignore[assignment]

__all__ = [
    "HASH_BITS",
    "HASH_WORDS",
    "simhash",
    "hamming_distance",
    "numpy_available",
    "pack_hashes",
    "hamming_rows",
    "hamming_cross",
    "tokenize",
    "shingles",
]

#: Width of the fingerprint in bits; the paper uses 96-bit hashes (§4).
HASH_BITS = 96

#: 64-bit words per packed fingerprint row (low word, then high word).
HASH_WORDS = (HASH_BITS + 63) // 64

_HASH_MASK = (1 << HASH_BITS) - 1

_WORD_MASK = (1 << 64) - 1

_TOKEN_RE = re.compile(r"[A-Za-z0-9]+")

_TAG_RE = re.compile(r"<[^>]*>")


def tokenize(text: str, *, strip_markup: bool = True) -> list[str]:
    """Split *text* into lowercase alphanumeric tokens.

    HTML tags are treated as token sources too (tag names and attribute
    values carry structural signal), but angle-bracket punctuation is
    dropped.  With ``strip_markup=False`` the raw text is tokenized as-is.
    """
    if strip_markup:
        text = _TAG_RE.sub(" ", text)
    return [match.group(0).lower() for match in _TOKEN_RE.finditer(text)]


def shingles(tokens: list[str], width: int = 3) -> Iterable[str]:
    """Yield overlapping token *width*-grams (shingles).

    Shingling makes the fingerprint sensitive to local word order, which
    distinguishes pages that merely share a vocabulary.  Documents shorter
    than *width* tokens yield a single shingle of all their tokens.
    """
    if width <= 0:
        raise ValueError(f"shingle width must be positive, got {width}")
    if len(tokens) < width:
        if tokens:
            yield " ".join(tokens)
        return
    for start in range(len(tokens) - width + 1):
        yield " ".join(tokens[start : start + width])


def _feature_hash(feature: str) -> int:
    """Hash a feature string to ``HASH_BITS`` bits (stable across runs)."""
    digest = hashlib.blake2b(feature.encode("utf-8"), digest_size=12).digest()
    return int.from_bytes(digest, "big") & _HASH_MASK


def simhash(text: str, *, shingle_width: int = 3) -> int:
    """Compute the 96-bit simhash fingerprint of *text*.

    Returns 0 for documents with no extractable tokens, matching the
    behaviour of treating empty pages as a single degenerate fingerprint.
    """
    tokens = tokenize(text)
    if not tokens:
        return 0
    weights = Counter(shingles(tokens, shingle_width))
    votes = [0] * HASH_BITS
    for feature, weight in weights.items():
        value = _feature_hash(feature)
        for bit in range(HASH_BITS):
            if value & (1 << bit):
                votes[bit] += weight
            else:
                votes[bit] -= weight
    fingerprint = 0
    for bit in range(HASH_BITS):
        if votes[bit] > 0:
            fingerprint |= 1 << bit
    return fingerprint


def hamming_distance(a: int, b: int) -> int:
    """Number of differing bits between two fingerprints (0..HASH_BITS)."""
    return ((a ^ b) & _HASH_MASK).bit_count()


# ----------------------------------------------------------------------
# Vectorized Hamming kernels.
#
# Clustering at scale (analysis/lsh.py, analysis/gap_statistic.py) runs
# Hamming distance over millions of fingerprint pairs.  The kernels below
# pack fingerprints into a (n, HASH_WORDS) uint64 matrix and compute
# distances with ``numpy.bitwise_count`` — bit-for-bit identical to the
# scalar :func:`hamming_distance`.  Every caller must keep a pure-python
# path for environments without numpy (or with numpy < 2.0): gate on
# :func:`numpy_available` rather than importing numpy directly, so the
# fallback is testable by patching ``repro.core.simhash._np``.


def numpy_available() -> bool:
    """Whether the vectorized kernels can run (numpy >= 2.0 importable)."""
    return _np is not None


def pack_hashes(hashes: Sequence[int]) -> "_np.ndarray":
    """Pack fingerprints into an ``(n, HASH_WORDS)`` uint64 matrix.

    Row *i* holds ``hashes[i]`` split into little-endian 64-bit words:
    column 0 is bits 0..63, column 1 is bits 64..95.
    """
    if _np is None:
        raise RuntimeError("numpy >= 2.0 is required for packed kernels")
    count = len(hashes)
    packed = _np.empty((count, HASH_WORDS), dtype=_np.uint64)
    for word in range(HASH_WORDS):
        shift = 64 * word
        packed[:, word] = _np.fromiter(
            ((value >> shift) & _WORD_MASK for value in hashes),
            dtype=_np.uint64,
            count=count,
        )
    return packed


def hamming_rows(packed_a: "_np.ndarray",
                 packed_b: "_np.ndarray") -> "_np.ndarray":
    """Row-wise Hamming distances between two equal-shape packed matrices.

    Returns a ``(n,)`` integer array where entry *i* equals
    ``hamming_distance(a[i], b[i])``.
    """
    if _np is None:
        raise RuntimeError("numpy >= 2.0 is required for packed kernels")
    return _np.bitwise_count(packed_a ^ packed_b).sum(
        axis=1, dtype=_np.uint32
    )


def hamming_cross(packed_a: "_np.ndarray",
                  packed_b: "_np.ndarray") -> "_np.ndarray":
    """All-pairs Hamming distances: a ``(len(a), len(b))`` matrix.

    Materialises one uint64 temporary of that shape per word — callers
    comparing large populations must block both dimensions.
    """
    if _np is None:
        raise RuntimeError("numpy >= 2.0 is required for packed kernels")
    out = _np.zeros((packed_a.shape[0], packed_b.shape[0]), dtype=_np.uint16)
    for word in range(HASH_WORDS):
        out += _np.bitwise_count(
            packed_a[:, word, None] ^ packed_b[None, :, word]
        )
    return out
