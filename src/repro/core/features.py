"""Feature extraction from fetched pages (§4).

After each round of scanning, WhoWas extracts ten features per
successfully fetched page and inserts them into the database:

1. back-end technology ("x-powered-by" response header),
2. page description (``<meta name="description">``),
3. the sorted, '#'-joined string of all response-header names,
4. length of the returned HTML,
5. the ``<title>`` string,
6. the web template (``<meta name="generator">``: Joomla!, WordPress…),
7. the server type ("Server" response header),
8. the keywords meta tag,
9. any Google Analytics ID found in the HTML,
10. a 96-bit simhash over the HTML.

Missing entries are recorded as ``"unknown"``.
"""

from __future__ import annotations

import hashlib
import re
from collections import OrderedDict
from typing import Iterator, Mapping

from .records import UNKNOWN, FetchResult, PageFeatures
from .simhash import simhash as compute_simhash

__all__ = ["FeatureExtractor", "extract_links", "extract_internal_links",
           "extract_domains", "GA_ID_RE"]

_TITLE_RE = re.compile(r"<title[^>]*>(.*?)</title>", re.IGNORECASE | re.DOTALL)

# Meta tags are matched in two steps — find the tag, then pull the name
# and content attributes independently — because real-world pages write
# the attributes in either order (`content=` before `name=` is common)
# and a single ordered regex silently drops those.
_META_TAG_RE = re.compile(r"<meta\s[^>]*>", re.IGNORECASE)
_META_NAME_RE = re.compile(
    r"""\bname\s*=\s*(?:"(?P<dq>[^"]*)"|'(?P<sq>[^']*)'|(?P<bare>[^\s"'>]+))""",
    re.IGNORECASE,
)
_META_CONTENT_RE = re.compile(
    r"""\bcontent\s*=\s*(?:"(?P<dq>[^"]*)"|'(?P<sq>[^']*)'|(?P<bare>[^\s"'>]+))""",
    re.IGNORECASE,
)

_META_NAMES = ("description", "keywords", "generator")


def _attr_value(match: re.Match) -> str:
    for group in ("dq", "sq", "bare"):
        value = match.group(group)
        if value is not None:
            return value
    return ""  # pragma: no cover — one alternative always matched


def _iter_meta(body: str) -> Iterator[tuple[str, str]]:
    """Yield (name, content) for every interesting ``<meta>`` tag,
    regardless of attribute order or quoting style."""
    for tag in _META_TAG_RE.finditer(body):
        text = tag.group(0)
        name_match = _META_NAME_RE.search(text)
        if name_match is None:
            continue
        name = _attr_value(name_match).lower()
        if name not in _META_NAMES:
            continue
        content_match = _META_CONTENT_RE.search(text)
        if content_match is None:
            continue
        yield name, _attr_value(content_match)

#: Google Analytics account IDs: UA-<account>-<profile> (§8.3).
GA_ID_RE = re.compile(r"\bUA-(\d{4,10})-(\d{1,4})\b")

_LINK_RE = re.compile(r"""<a\s+[^>]*href=["']([^"'#]+)["']""", re.IGNORECASE)

_WHITESPACE_RE = re.compile(r"\s+")


def _clean(text: str) -> str:
    return _WHITESPACE_RE.sub(" ", text).strip()


def extract_links(html: str) -> list[str]:
    """All absolute http(s) URLs linked from the page (used by the
    Safe Browsing analysis, which queries every extracted URL)."""
    links = []
    for match in _LINK_RE.finditer(html):
        url = match.group(1).strip()
        if url.startswith(("http://", "https://")):
            links.append(url)
    return links


_DOMAIN_RE = re.compile(
    r"\b((?:[a-z0-9-]+\.)+(?:com|org|net|info|biz|io|co|cn|ru))\b",
    re.IGNORECASE,
)


def extract_domains(html: str) -> list[str]:
    """Candidate domain names appearing anywhere in the page, in order
    without duplicates.  Virtual-host 404 pages often leak the intended
    site's domain (§4's second limitation notes WhoWas can sometimes
    recover ownership this way); active DNS then confirms it."""
    seen: list[str] = []
    for match in _DOMAIN_RE.finditer(html):
        domain = match.group(1).lower()
        if domain not in seen:
            seen.append(domain)
    return seen


def extract_internal_links(html: str) -> list[str]:
    """Same-host paths linked from the page ("/about"), in document
    order without duplicates — what the deep crawler follows."""
    seen: list[str] = []
    for match in _LINK_RE.finditer(html):
        url = match.group(1).strip()
        if url.startswith("/") and not url.startswith("//") and url not in seen:
            seen.append(url)
    return seen


class FeatureExtractor:
    """Computes :class:`PageFeatures` for fetched pages.

    Simhash computation dominates extraction cost, so fingerprints are
    memoised by body identity — rounds overwhelmingly refetch unchanged
    pages (the paper's churn is ~3% per round).  The memo is a bounded
    LRU keyed by a real content digest: a 51-round campaign must not
    leak memory, and Python's ``hash()`` collides too easily to key a
    correctness-critical cache.
    """

    def __init__(self, *, memoize: bool = True, max_cache_entries: int = 4096):
        if max_cache_entries <= 0:
            raise ValueError("max_cache_entries must be positive")
        self._memoize = memoize
        self._max_cache_entries = max_cache_entries
        self._simhash_cache: OrderedDict[bytes, int] = OrderedDict()

    def extract(self, fetch: FetchResult) -> PageFeatures:
        """Features for one fetch; empty/non-text bodies yield defaults."""
        headers = fetch.headers
        body = fetch.body or ""
        title = UNKNOWN
        description = UNKNOWN
        keywords = UNKNOWN
        template = UNKNOWN
        analytics_id = UNKNOWN
        if body:
            match = _TITLE_RE.search(body)
            if match:
                title = _clean(match.group(1)) or UNKNOWN
            for name, raw_content in _iter_meta(body):
                content = _clean(raw_content)
                if not content:
                    continue
                if name == "description":
                    description = content
                elif name == "keywords":
                    keywords = content
                elif name == "generator":
                    template = content
            ga_match = GA_ID_RE.search(body)
            if ga_match:
                analytics_id = ga_match.group(0)
        return PageFeatures(
            powered_by=self._header(headers, "x-powered-by"),
            description=description,
            header_string=self._header_string(headers),
            html_length=len(body),
            title=title,
            template=template,
            server=self._header(headers, "server"),
            keywords=keywords,
            analytics_id=analytics_id,
            simhash=self._simhash(body),
        )

    def _simhash(self, body: str) -> int:
        if not body:
            return 0
        if not self._memoize:
            return compute_simhash(body)
        # surrogatepass keeps the digest total over any str, including
        # lone surrogates hostile bodies can smuggle through decoding.
        key = hashlib.blake2b(
            body.encode("utf-8", "surrogatepass"), digest_size=16
        ).digest()
        cached = self._simhash_cache.get(key)
        if cached is not None:
            self._simhash_cache.move_to_end(key)
            return cached
        value = compute_simhash(body)
        self._simhash_cache[key] = value
        if len(self._simhash_cache) > self._max_cache_entries:
            self._simhash_cache.popitem(last=False)
        return value

    @staticmethod
    def _header(headers: Mapping[str, str], name: str) -> str:
        for key, value in headers.items():
            if key.lower() == name:
                return value or UNKNOWN
        return UNKNOWN

    @staticmethod
    def _header_string(headers: Mapping[str, str]) -> str:
        """Feature (3): all header field names, sorted, '#'-separated."""
        if not headers:
            return UNKNOWN
        return "#".join(sorted(key.lower() for key in headers))
