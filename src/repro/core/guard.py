"""Pipeline supervision: deadlines, adaptive backpressure, quarantine.

WhoWas fetches top-level pages from millions of uncurated cloud IPs, and
the wild web serves exactly the adversarial inputs that break
hosting-environment crawlers: header bombs, deeply-nested or
unterminated HTML, encoding garbage, slow-loris bodies, megabyte
``<title>`` tags.  The transport and the store are already resilient;
this module makes the *pipeline* resilient — a single poison page may
cost its own record, never a round.

:class:`Supervisor` is the one place per-task fault policy lives:

* **Deadlines** — every per-IP unit of work runs under a per-stage
  wall-clock ceiling (``asyncio.wait_for`` with cancel-and-record
  semantics).  A blown deadline yields a sentinel result plus a
  dead-letter record, not a hung round.
* **Work queue** — :meth:`Supervisor.map` bounds in-flight tasks with a
  real feeder/worker queue instead of one-task-per-item ``gather``,
  so a 4.7M-IP round holds thousands, not millions, of task objects.
* **AIMD backpressure** — :class:`AimdController` halves the fetch
  concurrency limit when the rolling timeout/error rate crosses
  ``GuardConfig.aimd_error_threshold`` and recovers additively once the
  storm passes.
* **Dead-letter quarantine** — any exception trapped in the fetch or
  extract stage, any blown deadline, and any hostile-content verdict
  produces a :class:`~repro.core.records.QuarantineRecord`; the store
  journals them next to the round so ``repro quarantine replay`` can
  re-process the pages after an extractor fix.

Extraction runs inline for small, clean bodies (the overwhelmingly
common case) and in a worker thread under the extract deadline for
large or suspect ones.  A thread that blows the deadline is abandoned,
not cancelled — Python cannot interrupt it — but the pipeline moves on
and the page is quarantined, which is the property that matters.
"""

from __future__ import annotations

import asyncio
import enum
import re
from collections import Counter, deque
from typing import Awaitable, Callable, Sequence, TypeVar

from .config import GuardConfig
from .features import FeatureExtractor
from .records import FetchResult, PageFeatures, QuarantineRecord
from .transport import TransportError
from . import telemetry as _telemetry

__all__ = [
    "GuardVerdict",
    "StageDeadlineExceeded",
    "AimdController",
    "Supervisor",
]

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")


class StageDeadlineExceeded(TransportError):
    """A supervised pipeline stage blew its wall-clock deadline."""

    kind = "stage-deadline"


class GuardVerdict(enum.Enum):
    """Why the guard quarantined (or cleared) a unit of work."""

    #: Nothing suspicious; the page flows through unquarantined.
    OK = "ok"
    #: The stage exceeded its wall-clock deadline and was cancelled.
    STAGE_DEADLINE = "stage-deadline"
    #: The stage raised an exception the guard trapped.
    TASK_ERROR = "task-error"
    #: Response carried pathologically many headers.
    HEADER_BOMB = "header-bomb"
    #: ``<title>`` content beyond the configured byte ceiling.
    TITLE_BOMB = "title-bomb"
    #: Body riddled with NUL bytes / undecodable garbage.
    BINARY_GARBAGE = "binary-garbage"
    #: Deeply-nested or unterminated markup (tag-open bomb).
    MARKUP_BOMB = "markup-bomb"


#: Verdicts produced by content inspection (vs. runtime failures).
_CONTENT_VERDICTS = frozenset({
    GuardVerdict.HEADER_BOMB,
    GuardVerdict.TITLE_BOMB,
    GuardVerdict.BINARY_GARBAGE,
    GuardVerdict.MARKUP_BOMB,
})

_TITLE_OPEN_RE = re.compile(r"<title", re.IGNORECASE)
_TITLE_CLOSE_RE = re.compile(r"</title", re.IGNORECASE)
_OPEN_TAG_RE = re.compile(r"<[A-Za-z]")
_CLOSE_TAG_RE = re.compile(r"</")


def _truncate(text: str, limit: int) -> str:
    return text if len(text) <= limit else text[:limit]


def _sentinel_features(body: str) -> PageFeatures:
    """What a quarantined page contributes to its round record: every
    feature unknown, only the raw length preserved."""
    return PageFeatures(html_length=len(body))


class AimdController:
    """Additive-increase / multiplicative-decrease concurrency gate.

    Workers call :meth:`acquire` before and :meth:`release` after each
    unit of work; the gate admits at most :attr:`limit` units at once.
    Outcomes feed a rolling window, evaluated once per window-length of
    results: an error fraction above the threshold halves the limit
    (never below ``min_limit``); otherwise the limit recovers by
    ``increase_step`` (never above ``max_limit``).

    The asyncio condition is (re)bound lazily to the running loop, so
    one controller safely spans the platform's one-``asyncio.run``-per-
    round lifecycle while keeping its AIMD state across rounds.
    """

    def __init__(
        self,
        limit: int,
        *,
        min_limit: int = 1,
        window: int = 64,
        error_threshold: float = 0.5,
        increase_step: int = 1,
    ):
        if limit <= 0:
            raise ValueError("limit must be positive")
        self.max_limit = limit
        self.limit = limit
        self.min_limit = max(1, min(min_limit, limit))
        self._threshold = error_threshold
        self._step = max(1, increase_step)
        self._window: deque[bool] = deque(maxlen=max(1, window))
        self._since_eval = 0
        self._active = 0
        self._cond: asyncio.Condition | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        #: Telemetry the chaos suite asserts against.
        self.decreases = 0
        self.increases = 0
        self.min_observed = limit
        self.peak_in_flight = 0
        tel = _telemetry.get()
        self._m_limit = tel.gauge(
            "repro_aimd_limit", "Current AIMD fetch-concurrency limit"
        )
        self._m_in_flight = tel.gauge(
            "repro_aimd_in_flight", "Fetch units of work currently admitted"
        )
        self._m_changes = tel.counter(
            "repro_aimd_changes_total",
            "AIMD limit adjustments by direction",
            labels=("direction",),
        )
        self._m_limit.set(limit)

    def _condition(self) -> asyncio.Condition:
        loop = asyncio.get_running_loop()
        if self._cond is None or self._loop is not loop:
            self._cond = asyncio.Condition()
            self._loop = loop
            self._active = 0
        return self._cond

    async def acquire(self) -> None:
        """Block until the current limit admits another unit of work."""
        cond = self._condition()
        async with cond:
            await cond.wait_for(lambda: self._active < self.limit)
            self._active += 1
            self.peak_in_flight = max(self.peak_in_flight, self._active)
            self._m_in_flight.set(self._active)

    async def release(self, ok: bool) -> None:
        """Return a slot and feed the outcome to the AIMD window."""
        cond = self._condition()
        async with cond:
            self._active = max(0, self._active - 1)
            self._m_in_flight.set(self._active)
            self._record(ok)
            cond.notify_all()

    @property
    def in_flight(self) -> int:
        return self._active

    def _record(self, ok: bool) -> None:
        if self._threshold >= 1.0:
            return  # controller disabled
        self._window.append(ok)
        self._since_eval += 1
        maxlen = self._window.maxlen or 1
        if self._since_eval < maxlen or len(self._window) < maxlen:
            return
        self._since_eval = 0
        failures = sum(1 for good in self._window if not good)
        if failures / len(self._window) > self._threshold:
            halved = max(self.min_limit, self.limit // 2)
            if halved < self.limit:
                self.limit = halved
                self.decreases += 1
                self.min_observed = min(self.min_observed, halved)
                self._m_limit.set(self.limit)
                self._m_changes.labels(direction="decrease").inc()
        elif self.limit < self.max_limit:
            self.limit = min(self.max_limit, self.limit + self._step)
            self.increases += 1
            self._m_limit.set(self.limit)
            self._m_changes.labels(direction="increase").inc()


class Supervisor:
    """Wraps every per-IP unit of work in the pipeline's fault policy.

    One instance supervises a platform for its lifetime: the fetcher
    routes its pool through :meth:`map`, the platform routes feature
    extraction through :meth:`extract_features`, and both sides feed
    the same dead-letter buffer the store journals per shard.
    """

    #: Stage labels used in quarantine records and stats.
    FETCH = "fetch"
    EXTRACT = "extract"
    BANNER = "banner"

    def __init__(
        self, config: GuardConfig | None = None, *, concurrency: int = 256
    ):
        self.config = config or GuardConfig()
        self.controller = AimdController(
            concurrency,
            min_limit=self.config.aimd_min_concurrency,
            window=self.config.aimd_window,
            error_threshold=self.config.aimd_error_threshold,
            increase_step=self.config.aimd_increase_step,
        )
        self.round_id = 0
        self.timestamp = 0
        self._quarantine: list[QuarantineRecord] = []
        #: Units of work run through :meth:`map` (lifetime counter).
        self.tasks_run = 0
        #: Deadline kills per stage label.
        self.deadline_kills: Counter[str] = Counter()
        #: Exceptions trapped per stage label.
        self.trapped: Counter[str] = Counter()
        #: Quarantine records produced (lifetime counter).
        self.quarantined_total = 0
        tel = _telemetry.get()
        self._m_verdicts = tel.counter(
            "repro_guard_verdicts_total",
            "Guard inspection verdicts by stage and verdict",
            labels=("stage", "verdict"),
        )
        self._m_quarantine = tel.counter(
            "repro_quarantine_total",
            "Dead-letter quarantine records produced, by stage",
            labels=("stage",),
        )
        self._m_guard_events = tel.counter(
            "repro_guard_events_total",
            "Runtime guard interventions (deadline kills, trapped "
            "exceptions) by stage",
            labels=("stage", "event"),
        )

    # ------------------------------------------------------------------
    # round context

    def start_round(self, round_id: int, timestamp: int) -> None:
        """Stamp subsequent quarantine records with this round."""
        self.round_id = round_id
        self.timestamp = timestamp

    # ------------------------------------------------------------------
    # supervised work queue (fetch stage)

    async def map(
        self,
        items: Sequence[ItemT],
        worker: Callable[[ItemT], Awaitable[ResultT]],
        *,
        stage: str,
        deadline: float,
        is_failure: Callable[[ResultT], bool] | None = None,
        fallback: Callable[[ItemT, BaseException], ResultT],
    ) -> list[ResultT]:
        """Run *worker* over *items* through the bounded work queue.

        Results come back in input order.  Each unit runs under
        *deadline* seconds of wall clock (0 disables); a blown deadline
        or any trapped exception is converted to ``fallback(item, exc)``
        so the caller always receives one result per item.  *is_failure*
        classifies ordinary results for the AIMD window (e.g. a
        ``FetchResult`` that records a transport error).
        """
        total = len(items)
        if total == 0:
            return []
        results: list[ResultT | None] = [None] * total
        workers_n = max(1, min(self.controller.max_limit, total))
        queue: asyncio.Queue = asyncio.Queue(maxsize=2 * workers_n)

        async def feed() -> None:
            for entry in enumerate(items):
                await queue.put(entry)
            for _ in range(workers_n):
                await queue.put(None)

        async def drain() -> None:
            while True:
                entry = await queue.get()
                if entry is None:
                    return
                index, item = entry
                results[index] = await self._run_one(
                    item, worker, stage=stage, deadline=deadline,
                    is_failure=is_failure, fallback=fallback,
                )

        feeder = asyncio.create_task(feed())
        try:
            await asyncio.gather(*(drain() for _ in range(workers_n)))
            await feeder
        finally:
            if not feeder.done():
                feeder.cancel()
        return results  # type: ignore[return-value]

    async def _run_one(
        self,
        item: ItemT,
        worker: Callable[[ItemT], Awaitable[ResultT]],
        *,
        stage: str,
        deadline: float,
        is_failure: Callable[[ResultT], bool] | None,
        fallback: Callable[[ItemT, BaseException], ResultT],
    ) -> ResultT:
        await self.controller.acquire()
        self.tasks_run += 1
        ok = True
        try:
            if deadline > 0:
                result = await asyncio.wait_for(worker(item), deadline)
            else:
                result = await worker(item)
            if is_failure is not None and is_failure(result):
                ok = False
        except asyncio.TimeoutError:
            ok = False
            self.deadline_kills[stage] += 1
            self._m_guard_events.labels(
                stage=stage, event="deadline_kill"
            ).inc()
            result = fallback(item, StageDeadlineExceeded(
                f"{stage} stage exceeded its {deadline:g}s deadline"
            ))
        except Exception as exc:  # poison-proof by design
            ok = False
            self.trapped[stage] += 1
            self._m_guard_events.labels(stage=stage, event="trapped").inc()
            result = fallback(item, exc)
        finally:
            await self.controller.release(ok)
        return result

    # ------------------------------------------------------------------
    # hostile-content inspection

    def inspect(self, fetch: FetchResult) -> GuardVerdict:
        """Cheap hostility checks on a fetched page.

        All checks are linear scans — the inspector must never itself
        be the thing a poison page hangs.
        """
        cfg = self.config
        if len(fetch.headers) > cfg.max_response_headers:
            return GuardVerdict.HEADER_BOMB
        body = fetch.body or ""
        if not body:
            return GuardVerdict.OK
        if body.count("\x00") > cfg.max_null_bytes:
            return GuardVerdict.BINARY_GARBAGE
        if self._title_length(body) > cfg.max_title_bytes:
            return GuardVerdict.TITLE_BOMB
        opens = sum(1 for _ in _OPEN_TAG_RE.finditer(body))
        closes = sum(1 for _ in _CLOSE_TAG_RE.finditer(body))
        if opens - closes > cfg.max_unclosed_tags:
            return GuardVerdict.MARKUP_BOMB
        return GuardVerdict.OK

    @staticmethod
    def _title_length(body: str) -> int:
        """Bytes of ``<title>`` content, counting to end-of-document
        when the tag is unterminated (the usual bomb shape)."""
        open_match = _TITLE_OPEN_RE.search(body)
        if open_match is None:
            return 0
        start = body.find(">", open_match.end())
        start = open_match.end() if start == -1 else start + 1
        close_match = _TITLE_CLOSE_RE.search(body, start)
        end = len(body) if close_match is None else close_match.start()
        return max(0, end - start)

    # ------------------------------------------------------------------
    # supervised extraction (extract stage)

    async def extract_features(
        self,
        extractor: FeatureExtractor,
        fetch: FetchResult,
        *,
        sink: list[QuarantineRecord] | None = None,
    ) -> PageFeatures:
        """Run ``extractor.extract(fetch)`` under the guard.

        Never raises: a trapped exception or blown deadline yields
        sentinel features (everything unknown, length preserved) plus a
        quarantine record; hostile content yields best-effort features
        *and* a quarantine record, so the page can be replayed after an
        extractor fix.  With *sink*, quarantine records go to that
        per-shard buffer instead of the supervisor-wide one (the
        streaming pipeline's shard-attribution path).
        """
        body = fetch.body or ""
        verdict = self.inspect(fetch)
        self._m_verdicts.labels(
            stage=self.EXTRACT, verdict=verdict.value
        ).inc()
        deadline = self.config.extract_deadline
        inline = deadline <= 0 or (
            verdict is GuardVerdict.OK
            and len(body) <= self.config.extract_inline_max_bytes
        )
        try:
            if inline:
                features = extractor.extract(fetch)
            else:
                loop = asyncio.get_running_loop()
                features = await asyncio.wait_for(
                    loop.run_in_executor(None, extractor.extract, fetch),
                    deadline,
                )
        except asyncio.TimeoutError:
            self.deadline_kills[self.EXTRACT] += 1
            self.quarantine(
                ip=fetch.ip, stage=self.EXTRACT,
                verdict=GuardVerdict.STAGE_DEADLINE,
                exc=StageDeadlineExceeded(
                    f"extract stage exceeded its {deadline:g}s deadline"
                ),
                payload=body, sink=sink,
            )
            return _sentinel_features(body)
        except Exception as exc:  # poison-proof by design
            self.trapped[self.EXTRACT] += 1
            self.quarantine(
                ip=fetch.ip, stage=self.EXTRACT,
                verdict=GuardVerdict.TASK_ERROR, exc=exc, payload=body,
                sink=sink,
            )
            return _sentinel_features(body)
        if verdict is not GuardVerdict.OK:
            self.quarantine(
                ip=fetch.ip, stage=self.EXTRACT, verdict=verdict,
                payload=body, sink=sink,
            )
        return features

    # ------------------------------------------------------------------
    # dead-letter quarantine

    def quarantine(
        self,
        *,
        ip: int,
        stage: str,
        verdict: GuardVerdict,
        exc: BaseException | None = None,
        payload: str = "",
        sink: list[QuarantineRecord] | None = None,
    ) -> QuarantineRecord:
        """Buffer one dead-letter record for the current round.

        With *sink*, the record lands in that caller-owned buffer
        (pipeline mode journals quarantine per shard); otherwise it
        joins the supervisor-wide buffer behind
        :meth:`drain_quarantine`.
        """
        record = QuarantineRecord(
            ip=ip,
            round_id=self.round_id,
            timestamp=self.timestamp,
            stage=stage,
            verdict=verdict.value,
            error_class=type(exc).__name__ if exc is not None else None,
            error=_truncate(str(exc), 200) if exc is not None else None,
            payload=_truncate(payload, self.config.quarantine_payload_bytes),
        )
        (self._quarantine if sink is None else sink).append(record)
        self.quarantined_total += 1
        self._m_quarantine.labels(stage=stage).inc()
        return record

    def drain_quarantine(self) -> list[QuarantineRecord]:
        """Hand the buffered dead letters to the caller (the platform
        journals them with the shard that produced them)."""
        drained, self._quarantine = self._quarantine, []
        return drained

    # ------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Supervision telemetry — what the chaos suite asserts on."""
        return {
            "tasks_run": self.tasks_run,
            "deadline_kills_fetch": self.deadline_kills[self.FETCH],
            "deadline_kills_extract": self.deadline_kills[self.EXTRACT],
            "deadline_kills_banner": self.deadline_kills[self.BANNER],
            "trapped_fetch": self.trapped[self.FETCH],
            "trapped_extract": self.trapped[self.EXTRACT],
            "trapped_banner": self.trapped[self.BANNER],
            "quarantined": self.quarantined_total,
            "concurrency_limit": self.controller.limit,
            "concurrency_min_observed": self.controller.min_observed,
            "concurrency_peak_in_flight": self.controller.peak_in_flight,
            "aimd_decreases": self.controller.decreases,
            "aimd_increases": self.controller.increases,
        }
