"""Unified telemetry: metrics registry, trace spans, Prometheus export.

The engine already produces rich per-round telemetry (``PipelineStats``,
AIMD counters, quarantine tallies) but only *post-hoc*, through
``repro stats``.  This module makes run health observable **while a
campaign runs**, which is the prerequisite for operating WhoWas as a
long-lived measurement service:

* :class:`MetricsRegistry` — a process-wide, thread-safe registry of
  monotonic :class:`Counter`\\ s, :class:`Gauge`\\ s and fixed-bucket
  :class:`Histogram`\\ s (p50/p95/p99 from bucket interpolation), all
  with label support, rendered in Prometheus text exposition format
  (``render_prometheus``) by a stdlib ``http.server`` endpoint
  (:func:`start_metrics_server`) — no new dependencies.
* **Trace spans** — :meth:`Telemetry.span` is a context manager
  recording start/duration/outcome/error-kind per unit of work (stage,
  round, shard, worker) into a bounded ring buffer plus an optional
  append-only JSONL sink, inspected offline by ``repro trace``.
* **Zero overhead by default** — telemetry is *disabled* unless
  configured.  Instrumented code asks the active :class:`Telemetry`
  for metric handles once (at construction) and receives shared no-op
  singletons while disabled, so the instrumentation cost of a
  disabled build is one no-op method call per event; the enabled cost
  is bounded by ``benchmarks/bench_telemetry_overhead.py``
  (``BENCH_telemetry.json``: <3% records/sec regression).

Telemetry observes, never participates: enabling it must leave store
output byte-identical (``tests/test_telemetry.py`` pins this).

The active instance is process-global (:func:`configure` /
:func:`get`); spawned partition workers re-activate it from the
``TelemetryConfig`` pickled inside their ``PlatformConfig``, appending
to the same JSONL sink (one line per write keeps concurrent appends
intact on POSIX).
"""

from __future__ import annotations

import bisect
import enum
import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from .config import TelemetryConfig

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "SpanRecord",
    "TraceSink",
    "Telemetry",
    "configure",
    "get",
    "reset",
    "activate_from",
    "start_metrics_server",
    "parse_prometheus",
    "read_trace",
    "DEFAULT_BUCKETS",
]

#: Default histogram upper bounds (seconds): spans probe timeouts
#: (2 s), fetch deadlines (30 s) and sqlite commit latencies (ms).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class MetricKind(enum.Enum):
    COUNTER = "counter"
    GAUGE = "gauge"
    HISTOGRAM = "histogram"


def _format_value(value: float) -> str:
    """Prometheus sample formatting: integral values without a trailing
    ``.0`` so text output stays diff-stable."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_str(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + inner + "}"


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


class Counter:
    """Monotonic counter.  ``inc`` with a negative amount raises — a
    counter that can go down is a gauge."""

    __slots__ = ("_lock", "value")

    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self.value += amount


class Gauge:
    """Point-in-time value (queue depth, concurrency limit, pool size)."""

    __slots__ = ("_lock", "value")

    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """Fixed-bucket histogram with quantile estimation.

    ``bounds`` are *upper* bucket bounds, ascending; an implicit +Inf
    bucket catches the tail.  ``quantile`` interpolates linearly inside
    the winning bucket (the standard Prometheus ``histogram_quantile``
    estimate), so p50/p95/p99 are approximations whose error is bounded
    by bucket width — the right trade for a fixed-memory hot path.
    """

    __slots__ = ("_lock", "bounds", "bucket_counts", "count", "sum")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS):
        cleaned = tuple(float(b) for b in bounds)
        if not cleaned:
            raise ValueError("histogram needs at least one bucket bound")
        if list(cleaned) != sorted(set(cleaned)):
            raise ValueError("bucket bounds must be strictly ascending")
        self._lock = threading.Lock()
        self.bounds = cleaned
        #: Per-bucket (non-cumulative) observation counts; the last
        #: slot is the +Inf overflow bucket.
        self.bucket_counts = [0] * (len(cleaned) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self.bucket_counts[index] += 1
            self.count += 1
            self.sum += value

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (0 < q <= 1) from the bucket counts."""
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        with self._lock:
            total = self.count
            counts = list(self.bucket_counts)
        if total == 0:
            return 0.0
        rank = q * total
        seen = 0.0
        for index, bucket_count in enumerate(counts):
            seen += bucket_count
            if seen >= rank:
                upper = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else self.bounds[-1]
                )
                lower = self.bounds[index - 1] if index > 0 else 0.0
                if bucket_count == 0:
                    return upper
                fraction = (rank - (seen - bucket_count)) / bucket_count
                return lower + (upper - lower) * fraction
        return self.bounds[-1]

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)


_CHILD_TYPES = {
    MetricKind.COUNTER: Counter,
    MetricKind.GAUGE: Gauge,
    MetricKind.HISTOGRAM: Histogram,
}


class MetricFamily:
    """One named metric plus its labelled children.

    ``family.labels(stage="fetch")`` returns (creating on first use)
    the child for that label combination; a family declared with no
    label names has a single anonymous child and proxies
    ``inc``/``set``/``dec``/``observe`` straight to it.
    """

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: MetricKind,
        label_names: tuple[str, ...] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        self.name = name
        self.help = help_text
        self.kind = kind
        self.label_names = tuple(label_names)
        self._buckets = tuple(buckets)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}
        if not self.label_names:
            self._default = self._make_child()
            self._children[()] = self._default
        else:
            self._default = None

    def _make_child(self):
        if self.kind is MetricKind.HISTOGRAM:
            return Histogram(self._buckets)
        return _CHILD_TYPES[self.kind]()

    def labels(self, **labels: str):
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    def children(self) -> list[tuple[tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())

    # -- no-label proxies ------------------------------------------------

    def _anonymous(self):
        if self._default is None:
            raise ValueError(
                f"metric {self.name} requires labels {self.label_names}"
            )
        return self._default

    def inc(self, amount: float = 1.0) -> None:
        self._anonymous().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._anonymous().dec(amount)

    def set(self, value: float) -> None:
        self._anonymous().set(value)

    def observe(self, value: float) -> None:
        self._anonymous().observe(value)

    @property
    def value(self) -> float:
        return self._anonymous().value


class _NoopMetric:
    """Shared do-nothing stand-in for every metric kind while telemetry
    is disabled: the disabled cost of an instrumentation point is one
    method call on this singleton."""

    __slots__ = ()

    def labels(self, **labels):
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


NOOP_METRIC = _NoopMetric()


class MetricsRegistry:
    """Thread-safe collection of metric families.

    Registration is idempotent: asking for an existing name returns the
    existing family (kind and labels must match — two call sites
    disagreeing about a metric is a bug worth crashing on).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}

    def _register(
        self,
        name: str,
        help_text: str,
        kind: MetricKind,
        labels: tuple[str, ...],
        buckets: Sequence[float],
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind is not kind or family.label_names != tuple(labels):
                    raise ValueError(
                        f"metric {name} already registered as "
                        f"{family.kind.value}{family.label_names}"
                    )
                return family
            family = MetricFamily(name, help_text, kind, tuple(labels), buckets)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", labels: tuple[str, ...] = ()
    ) -> MetricFamily:
        return self._register(
            name, help_text, MetricKind.COUNTER, labels, DEFAULT_BUCKETS
        )

    def gauge(
        self, name: str, help_text: str = "", labels: tuple[str, ...] = ()
    ) -> MetricFamily:
        return self._register(
            name, help_text, MetricKind.GAUGE, labels, DEFAULT_BUCKETS
        )

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: tuple[str, ...] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        return self._register(
            name, help_text, MetricKind.HISTOGRAM, labels, buckets
        )

    def families(self) -> list[MetricFamily]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def render_prometheus(self) -> str:
        """Text exposition format 0.0.4 (what Prometheus scrapes)."""
        lines: list[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind.value}")
            for key, child in family.children():
                labels = _label_str(family.label_names, key)
                if family.kind is MetricKind.HISTOGRAM:
                    assert isinstance(child, Histogram)
                    cumulative = 0
                    for bound, bucket_count in zip(
                        child.bounds, child.bucket_counts
                    ):
                        cumulative += bucket_count
                        le = _label_str(
                            family.label_names + ("le",),
                            key + (_format_value(bound),),
                        )
                        lines.append(
                            f"{family.name}_bucket{le} {cumulative}"
                        )
                    inf = _label_str(
                        family.label_names + ("le",), key + ("+Inf",)
                    )
                    lines.append(f"{family.name}_bucket{inf} {child.count}")
                    lines.append(
                        f"{family.name}_sum{labels} "
                        f"{_format_value(child.sum)}"
                    )
                    lines.append(f"{family.name}_count{labels} {child.count}")
                else:
                    lines.append(
                        f"{family.name}{labels} "
                        f"{_format_value(child.value)}"
                    )
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """JSON-friendly view (the watch dashboard's /snapshot path and
        tests read this instead of parsing exposition text)."""
        out: dict = {}
        for family in self.families():
            samples = []
            for key, child in family.children():
                labels = dict(zip(family.label_names, key))
                if family.kind is MetricKind.HISTOGRAM:
                    assert isinstance(child, Histogram)
                    samples.append({
                        "labels": labels,
                        "count": child.count,
                        "sum": child.sum,
                        "p50": child.p50,
                        "p95": child.p95,
                        "p99": child.p99,
                    })
                else:
                    samples.append({"labels": labels, "value": child.value})
            out[family.name] = {
                "kind": family.kind.value,
                "help": family.help,
                "samples": samples,
            }
        return out


# ----------------------------------------------------------------------
# trace spans


@dataclass(frozen=True)
class SpanRecord:
    """One completed unit of work, as journaled to the trace sink."""

    stage: str
    start: float                 # epoch seconds
    duration: float              # wall-clock seconds
    outcome: str                 # "ok" or "error"
    round_id: int | None = None
    shard: int | None = None
    worker: int | None = None
    error_kind: str | None = None

    def to_dict(self) -> dict:
        out = {
            "stage": self.stage,
            "start": round(self.start, 6),
            "duration": round(self.duration, 6),
            "outcome": self.outcome,
        }
        for name in ("round_id", "shard", "worker", "error_kind"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "SpanRecord":
        return cls(
            stage=data["stage"],
            start=data["start"],
            duration=data["duration"],
            outcome=data.get("outcome", "ok"),
            round_id=data.get("round_id"),
            shard=data.get("shard"),
            worker=data.get("worker"),
            error_kind=data.get("error_kind"),
        )


class TraceSink:
    """Bounded in-memory ring of recent spans plus an optional
    append-only JSONL file.

    Each span is one ``write()`` of one newline-terminated line, so
    concurrent appenders (partition workers sharing the sink path)
    interleave whole records, never bytes.
    """

    def __init__(self, ring_size: int = 4096, path: str | None = None):
        self._lock = threading.Lock()
        self.ring: deque[SpanRecord] = deque(maxlen=max(1, ring_size))
        self.path = path
        self._handle = None
        self.dropped_writes = 0

    def record(self, span: SpanRecord) -> None:
        line = None
        if self.path is not None:
            line = json.dumps(
                span.to_dict(), sort_keys=True, separators=(",", ":")
            ) + "\n"
        with self._lock:
            self.ring.append(span)
            if line is not None:
                try:
                    if self._handle is None:
                        self._handle = open(
                            self.path, "a", encoding="utf-8", buffering=1
                        )
                    self._handle.write(line)
                except OSError:
                    # Tracing must never take the pipeline down; a sink
                    # on a full/readonly disk just stops journaling.
                    self.dropped_writes += 1

    def recent(self, limit: int | None = None) -> list[SpanRecord]:
        with self._lock:
            spans = list(self.ring)
        return spans if limit is None else spans[-limit:]

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


class _Span:
    """Context manager produced by :meth:`Telemetry.span`.  Re-entrant
    spans nest naturally — each ``with`` owns its own timing — and an
    exception is recorded (outcome/error-kind) then re-raised."""

    __slots__ = ("_telemetry", "stage", "round_id", "shard", "worker",
                 "_begun", "_start")

    def __init__(self, telemetry, stage, round_id, shard, worker):
        self._telemetry = telemetry
        self.stage = stage
        self.round_id = round_id
        self.shard = shard
        self.worker = worker
        self._begun = 0.0
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.time()
        self._begun = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._begun
        record = SpanRecord(
            stage=self.stage,
            start=self._start,
            duration=duration,
            outcome="ok" if exc_type is None else "error",
            round_id=self.round_id,
            shard=self.shard,
            worker=self.worker,
            error_kind=exc_type.__name__ if exc_type is not None else None,
        )
        self._telemetry._finish_span(record)
        return False


class _NoopSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


# ----------------------------------------------------------------------
# the facade


class Telemetry:
    """The per-process telemetry facade: hands out metric handles (real
    or no-op) and owns the trace sink."""

    def __init__(self, config: TelemetryConfig | None = None):
        self.config = config or TelemetryConfig()
        self.enabled = self.config.enabled
        self.registry = MetricsRegistry()
        self.trace = TraceSink(
            ring_size=self.config.ring_size,
            path=self.config.trace_path if self.enabled else None,
        )
        if self.enabled:
            self._span_seconds = self.registry.histogram(
                "repro_span_seconds",
                "Duration of traced spans by stage",
                labels=("stage",),
            )
            self._span_total = self.registry.counter(
                "repro_spans_total",
                "Completed traced spans by stage and outcome",
                labels=("stage", "outcome"),
            )

    # -- handles ---------------------------------------------------------

    def counter(self, name: str, help_text: str = "",
                labels: tuple[str, ...] = ()):
        if not self.enabled:
            return NOOP_METRIC
        return self.registry.counter(name, help_text, labels)

    def gauge(self, name: str, help_text: str = "",
              labels: tuple[str, ...] = ()):
        if not self.enabled:
            return NOOP_METRIC
        return self.registry.gauge(name, help_text, labels)

    def histogram(self, name: str, help_text: str = "",
                  labels: tuple[str, ...] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS):
        if not self.enabled:
            return NOOP_METRIC
        return self.registry.histogram(name, help_text, labels, buckets)

    # -- spans -----------------------------------------------------------

    def span(
        self,
        stage: str,
        *,
        round_id: int | None = None,
        shard: int | None = None,
        worker: int | None = None,
    ):
        if not self.enabled:
            return NOOP_SPAN
        return _Span(self, stage, round_id, shard, worker)

    def _finish_span(self, record: SpanRecord) -> None:
        self.trace.record(record)
        self._span_seconds.labels(stage=record.stage).observe(record.duration)
        self._span_total.labels(
            stage=record.stage, outcome=record.outcome
        ).inc()

    def close(self) -> None:
        self.trace.close()


# ----------------------------------------------------------------------
# process-global instance

_ACTIVE = Telemetry()
_ACTIVE_LOCK = threading.Lock()


def get() -> Telemetry:
    """The process's active telemetry (disabled no-op by default)."""
    return _ACTIVE


def configure(config: TelemetryConfig) -> Telemetry:
    """Install a fresh :class:`Telemetry` built from *config* as the
    process-global instance and return it.  Objects constructed before
    this call keep their old (usually no-op) handles — configure
    telemetry *before* building the platform."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE.close()
        _ACTIVE = Telemetry(config)
        return _ACTIVE


def activate_from(config: TelemetryConfig) -> Telemetry:
    """Idempotent activation used by :class:`~repro.core.platform.WhoWas`
    (and, through the pickled config, spawned partition workers): a
    no-op unless *config* asks for telemetry and the global instance
    is not already running an equal configuration."""
    if config.enabled and _ACTIVE.config != config:
        return configure(config)
    return _ACTIVE


def reset() -> Telemetry:
    """Back to the disabled default (test isolation helper)."""
    return configure(TelemetryConfig())


# ----------------------------------------------------------------------
# Prometheus exposition endpoint (stdlib only)


def start_metrics_server(
    telemetry: Telemetry, port: int, host: str = "127.0.0.1",
    *, request_timeout: float = 5.0,
):
    """Serve ``/metrics`` (text exposition), ``/snapshot`` (JSON), and
    ``/healthz`` from a daemon thread.  Returns the ``HTTPServer`` —
    ``server.server_address[1]`` is the bound port (pass ``port=0`` for
    an ephemeral one); call ``server.shutdown()`` to stop.

    *request_timeout* bounds how long one connection may sit idle while
    its request line/headers are being read.  ``ThreadingHTTPServer``
    dedicates a thread per connection, so without it a slow-loris
    client (connect, send nothing — or a partial request line — and
    hold the socket) would pin handler threads forever; with it the
    socket times out, the handler logs nothing and the thread exits."""
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    if request_timeout <= 0:
        raise ValueError("request_timeout must be positive")

    class Handler(BaseHTTPRequestHandler):
        # socketserver applies this as the connection's socket timeout
        # in setup(); handle_one_request() treats the resulting
        # socket.timeout as a dead client and closes the connection,
        # bounding header read time per recv.
        timeout = request_timeout

        def do_GET(self):  # noqa: N802 - http.server API
            path = self.path.split("?", 1)[0]
            if path in ("/metrics", "/"):
                body = telemetry.registry.render_prometheus().encode("utf-8")
                content_type = "text/plain; version=0.0.4; charset=utf-8"
            elif path == "/snapshot":
                body = json.dumps(
                    telemetry.registry.snapshot(), sort_keys=True
                ).encode("utf-8")
                content_type = "application/json"
            elif path == "/healthz":
                body = b"ok\n"
                content_type = "text/plain"
            else:
                self.send_error(404)
                return
            self.send_response(200)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args):  # quiet by design
            pass

    server = ThreadingHTTPServer((host, port), Handler)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-metrics", daemon=True
    )
    thread.start()
    return server


# ----------------------------------------------------------------------
# scrape-side helpers (repro watch / CI assertions)


def parse_prometheus(text: str) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse exposition text into ``{(name, sorted_label_items): value}``.

    Covers the subset this module emits (no exemplars, no timestamps);
    used by ``repro watch`` and the CI monotonicity check, so the
    renderer and the parser round-trip each other."""
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            metric_part, value_part = line.rsplit(" ", 1)
            value = float(value_part)
        except ValueError:
            continue
        if "{" in metric_part:
            name, _, label_blob = metric_part.partition("{")
            label_blob = label_blob.rstrip("}")
            labels = []
            for piece in _split_labels(label_blob):
                key, _, raw = piece.partition("=")
                if raw.startswith('"') and raw.endswith('"'):
                    raw = raw[1:-1]
                labels.append((key, _unescape_label(raw)))
            samples[(name, tuple(sorted(labels)))] = value
        else:
            samples[(metric_part, ())] = value
    return samples


def _split_labels(blob: str) -> Iterable[str]:
    """Split ``a="x",b="y"`` on commas outside quotes, honouring
    backslash escapes inside quoted values."""
    piece, quoted, escaped = [], False, False
    for char in blob:
        if escaped:
            piece.append(char)
            escaped = False
        elif char == "\\" and quoted:
            piece.append(char)
            escaped = True
        elif char == '"':
            quoted = not quoted
            piece.append(char)
        elif char == "," and not quoted:
            if piece:
                yield "".join(piece)
            piece = []
        else:
            piece.append(char)
    if piece:
        yield "".join(piece)


def _unescape_label(value: str) -> str:
    """Invert :func:`_escape_label`."""
    out, index = [], 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            following = value[index + 1]
            out.append("\n" if following == "n" else following)
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def read_trace(path: str) -> Iterable[SpanRecord]:
    """Stream spans from a JSONL trace sink, skipping torn/partial
    lines (a crash mid-append must not make the trace unreadable)."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                yield SpanRecord.from_dict(json.loads(line))
            except (ValueError, KeyError):
                continue
