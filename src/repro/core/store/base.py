"""The storage-engine seam: shared protocol types and the abstract
:class:`StoreBackend` every measurement store implements.

The WhoWas write path (journaled rounds, idempotent shards, quarantine)
and read path (round listings, per-IP history, feature aggregates) are
defined here once; concrete engines — the row-oriented SQLite reference
implementation (:mod:`.sqlite`) and the round-partitioned columnar
analytical engine (:mod:`.columnar`) — implement the same contract, and
the conformance suite (``tests/test_store_backends.py``) proves a
campaign written through either backend is row-equivalent.

Protocol invariants every backend must honour
---------------------------------------------
* :meth:`StoreBackend.begin_round` registers a round ``in_progress``;
  re-opening an ``in_progress`` round is the resume path and keeps its
  committed shards and journaled shard size.
* :meth:`StoreBackend.write_shard` commits one shard (rows + quarantine
  entries + journal entry) **atomically and idempotently**: a shard
  index that already committed is skipped, so a crashed-and-resumed
  process can blindly replay its shard sequence.
* Every committed shard journals a :func:`shard_checksum` digest;
  :meth:`StoreBackend.verify_round` recomputes them offline.
* **Materialized read models** (per-IP history, round summary, cluster
  aggregates) are folded in by the same commit that lands the shard —
  the fold and the shard are one atomic unit, so the views can never
  drift from the base data across a crash.  :meth:`rebuild_views` is
  the offline escape hatch, and :meth:`verify_round` audits the views
  with the same checksum discipline as the shards.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from ..records import PageFeatures, QuarantineRecord, RoundRecord
from .. import telemetry as _telemetry

__all__ = [
    "ROUND_IN_PROGRESS",
    "ROUND_COMPLETE",
    "ROUND_DEGRADED",
    "AGGREGATE_COLUMNS",
    "VIEW_NAMES",
    "RoundInfo",
    "ShardPayload",
    "ShardJournalEntry",
    "RoundVerification",
    "StoreBackend",
    "shard_checksum",
    "is_interrupted",
]


def is_interrupted(exc: BaseException) -> bool:
    """True when *exc* is sqlite aborting a statement mid-flight — the
    error a :meth:`StoreBackend.read_deadline` expiry (or an explicit
    ``Connection.interrupt()``) surfaces as."""
    return (
        isinstance(exc, sqlite3.OperationalError)
        and "interrupt" in str(exc).lower()
    )


#: ``rounds.round_status`` values of the journaled protocol.
ROUND_IN_PROGRESS = "in_progress"
ROUND_COMPLETE = "complete"
ROUND_DEGRADED = "degraded"

#: Feature columns :meth:`StoreBackend.aggregate_column` may group by —
#: a strict allowlist since backends interpolate the name into queries.
AGGREGATE_COLUMNS = frozenset(
    {"template", "server", "powered_by", "content_type",
     "status_code", "title"}
)

#: The materialized read models every backend maintains incrementally.
VIEW_NAMES = ("ip_history", "round_summary", "cluster_agg")

#: The flat persistence schema of :meth:`RoundRecord.to_row`, shared by
#: every backend so checksums and row-equivalence are backend-agnostic.
COLUMNS: tuple[tuple[str, str], ...] = (
    ("ip", "INTEGER NOT NULL"),
    ("round_id", "INTEGER NOT NULL"),
    ("timestamp", "INTEGER NOT NULL"),
    ("probe_status", "TEXT NOT NULL"),
    ("open_ports", "TEXT NOT NULL"),
    ("fetch_status", "TEXT NOT NULL"),
    ("url", "TEXT"),
    ("status_code", "INTEGER"),
    ("content_type", "TEXT"),
    ("headers", "TEXT"),
    ("body", "TEXT"),
    ("error", "TEXT"),
    ("error_class", "TEXT"),
    ("probe_error_class", "TEXT"),
    ("powered_by", "TEXT"),
    ("description", "TEXT"),
    ("header_string", "TEXT"),
    ("html_length", "INTEGER"),
    ("title", "TEXT"),
    ("template", "TEXT"),
    ("server", "TEXT"),
    ("keywords", "TEXT"),
    ("analytics_id", "TEXT"),
    ("simhash", "TEXT"),
    ("ssh_banner", "TEXT"),
)

COLUMN_NAMES = tuple(name for name, _ in COLUMNS)

#: The light columns the per-IP-history read model carries — everything
#: the WhoWas lookup endpoint serves, nothing it doesn't (no bodies).
IP_HISTORY_COLUMNS = (
    "ip", "round_id", "timestamp", "open_ports", "fetch_status",
    "status_code", "server", "title", "template",
)


def shard_checksum(rows: Iterable[Mapping]) -> str:
    """Digest of one shard's rows (insertion order): blake2b over each
    row's canonical JSON (:meth:`RoundRecord.to_row` dicts with sorted
    keys).  Journaled at commit time and recomputed by
    :meth:`StoreBackend.verify_round` and the partition-journal merge."""
    digest = hashlib.blake2b(digest_size=16)
    for row in rows:
        digest.update(
            json.dumps(
                dict(row), sort_keys=True, separators=(",", ":"),
                ensure_ascii=False,
            ).encode("utf-8")
        )
        digest.update(b"\x00")
    return digest.hexdigest()


def rows_checksum(rows: Iterable[Mapping]) -> str:
    """Order-insensitive digest over a set of dict rows — the view
    audit's checksum (view row order is an implementation detail)."""
    blobs = sorted(
        json.dumps(dict(row), sort_keys=True, separators=(",", ":"),
                   ensure_ascii=False)
        for row in rows
    )
    digest = hashlib.blake2b(digest_size=16)
    for blob in blobs:
        digest.update(blob.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


@dataclass(frozen=True)
class RoundInfo:
    """Metadata about one round of scanning."""

    round_id: int
    timestamp: int          # day index when the round started
    targets_probed: int
    responsive_count: int
    #: True when the round blew its error budget (too many classified
    #: transport failures): the data is persisted but suspect.
    degraded: bool = False
    #: Classified transport errors observed during the round.
    error_count: int = 0
    #: Journal state: ``in_progress`` while shards are still being
    #: written, ``complete``/``degraded`` once finalized.
    status: str = ROUND_COMPLETE
    #: Shard size the round was written with (0 = single-shot write);
    #: a resumed round must reuse it so shard indices line up.
    shard_size: int = 0

    #: Wall-clock seconds the round engine spent producing the round
    #: (the finalizing invocation's time; a crash-resumed round reports
    #: the resuming run's duration — earlier attempts' clocks died with
    #: their process).
    duration_seconds: float = 0.0

    @property
    def table_name(self) -> str:
        return f"round_{self.timestamp:05d}"

    @property
    def in_progress(self) -> bool:
        return self.status == ROUND_IN_PROGRESS


@dataclass(frozen=True)
class ShardPayload:
    """One shard's worth of data queued for the store writer.

    The batch API (:meth:`StoreBackend.write_shards`) takes a sequence
    of these and commits them in a single transaction.
    """

    shard_index: int
    records: tuple[RoundRecord, ...]
    errors: int = 0
    operations: int = 0
    quarantine: tuple[QuarantineRecord, ...] = ()


@dataclass(frozen=True)
class ShardJournalEntry:
    """One row of the committed-shard journal."""

    round_id: int
    shard_index: int
    record_count: int
    errors: int = 0
    operations: int = 0
    #: blake2b digest of the shard's rows ('' for pre-checksum shards).
    checksum: str = ""
    #: Quarantine entries committed with the shard.
    quarantine_count: int = 0


@dataclass
class RoundVerification:
    """Result of :meth:`StoreBackend.verify_round`: the round journal
    walked, per-shard checksums recomputed, read models audited."""

    round_id: int
    timestamp: int
    status: str
    #: Shards present in the journal.
    shards: int = 0
    #: Shards whose recomputed digest matched the journaled one.
    verified: int = 0
    #: Expected shard indices with no journal entry (finalized rounds).
    missing: list[int] = field(default_factory=list)
    #: Shards whose rows no longer match their journaled checksum or
    #: record count.
    corrupt: list[int] = field(default_factory=list)
    #: Shards written before checksums existed (nothing to verify).
    unverifiable: list[int] = field(default_factory=list)
    #: Rows in the round table not attributed to any journaled shard.
    orphan_rows: int = 0
    #: Quarantine entries not attributed to any journaled shard.
    orphan_quarantine: int = 0
    #: Materialized read models whose recomputed checksum no longer
    #: matches the maintained table (empty for clean or view-less
    #: legacy databases).
    view_issues: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            not self.missing and not self.corrupt
            and self.orphan_rows == 0 and self.orphan_quarantine == 0
            and not self.view_issues
        )

    def describe(self) -> str:
        """One human-readable line for ``repro verify``."""
        parts = [f"{self.verified}/{self.shards} shards verified"]
        if self.unverifiable:
            parts.append(f"{len(self.unverifiable)} unverifiable (legacy)")
        if self.missing:
            parts.append(f"MISSING shards {self.missing}")
        if self.corrupt:
            parts.append(f"CORRUPT shards {self.corrupt}")
        if self.orphan_rows:
            parts.append(f"{self.orphan_rows} orphan rows")
        if self.orphan_quarantine:
            parts.append(f"{self.orphan_quarantine} orphan quarantine entries")
        if self.view_issues:
            parts.append(f"STALE views {self.view_issues}")
        state = "ok" if self.ok else "FAIL"
        return (
            f"round {self.round_id} (day {self.timestamp}, {self.status}): "
            f"{state} — " + ", ".join(parts)
        )


def summarize_rows(row_dicts: Sequence[Mapping]) -> dict[str, int]:
    """Fold one shard's rows into the round-summary increments shared
    by every backend's view maintenance (and by the audits)."""
    available = sum(
        1 for row in row_dicts
        if row["fetch_status"] == "ok" and row["status_code"] is not None
    )
    fetched = sum(
        1 for row in row_dicts if row["fetch_status"] != "not-attempted"
    )
    return {
        "responsive": len(row_dicts),
        "available": available,
        "fetched": fetched,
    }


def light_row(row: Mapping) -> dict:
    """Project one full record row onto the per-IP-history read model.

    Rows without stored page content carry serialised *default*
    feature values (``"unknown"``); the read model nulls those out so
    a view read reports exactly what a full-record read would (a
    record with no body deserialises with ``features=None``)."""
    projected = {name: row[name] for name in IP_HISTORY_COLUMNS}
    if row["body"] is None:
        projected["server"] = None
        projected["title"] = None
        projected["template"] = None
    return projected


class StoreBackend(ABC):
    """Abstract measurement store: the seam the platform, the worker
    merge path, the serving layer, and the analyses all program against.

    Concrete engines subclass this and implement the abstract methods;
    the base class carries the protocol dataclasses (above), the legacy
    one-shot :meth:`write_round` template, writer-flush telemetry, and
    default implementations that hold for any compliant backend.
    """

    #: Class-level alias kept for callers that historically reached the
    #: allowlist through ``MeasurementStore.AGGREGATE_COLUMNS``.
    AGGREGATE_COLUMNS = AGGREGATE_COLUMNS

    #: Backend identifier ("sqlite", "columnar") — what
    #: :func:`repro.core.store.open_store` selects on.
    BACKEND = "abstract"

    def __init__(self) -> None:
        #: Writer telemetry, fed into PipelineStats by the platform.
        self._writer_stats = {
            "shard_commits": 0,
            "flush_count": 0,
            "flush_seconds": 0.0,
            "max_flush_seconds": 0.0,
            "max_batch_shards": 0,
        }
        tel = _telemetry.get()
        self._m_commits = tel.counter(
            "repro_store_commits_total",
            "Shard-write transactions committed by the store",
        )
        self._m_commit_seconds = tel.histogram(
            "repro_store_commit_seconds",
            "Wall-clock per shard-write transaction (incl. fsync)",
        )
        self._m_view_folds = tel.counter(
            "repro_view_folds_total",
            "Shards folded into each materialized read model",
            labels=("view",),
        )

    # ------------------------------------------------------------------
    # shared plumbing

    def _note_flush(self, batch_shards: int, seconds: float) -> None:
        stats = self._writer_stats
        stats["shard_commits"] += batch_shards
        stats["flush_count"] += 1
        stats["flush_seconds"] += seconds
        stats["max_flush_seconds"] = max(stats["max_flush_seconds"], seconds)
        stats["max_batch_shards"] = max(stats["max_batch_shards"],
                                        batch_shards)
        self._m_commits.inc()
        self._m_commit_seconds.observe(seconds)

    def _note_view_fold(self) -> None:
        for view in VIEW_NAMES:
            self._m_view_folds.labels(view=view).inc()

    def writer_stats_snapshot(self) -> dict[str, float]:
        """Lifetime writer-flush telemetry (commit counts/latency) —
        the platform diffs two snapshots to attribute flushes to one
        round's :class:`~repro.core.records.PipelineStats`."""
        return dict(self._writer_stats)

    @contextmanager
    def read_deadline(self, deadline: float | None, *, tick: int = 64):
        """Bound reads on this store by a monotonic *deadline*
        (``time.monotonic()`` seconds; ``None`` disables).  The base
        implementation is a no-op context manager — engines that can
        abort statements mid-flight (sqlite's progress handler)
        override it."""
        yield self

    # ------------------------------------------------------------------
    # journaled writes (abstract protocol)

    @abstractmethod
    def begin_round(
        self,
        round_id: int,
        timestamp: int,
        targets_probed: int,
        *,
        shard_size: int = 0,
        fresh: bool = False,
    ) -> RoundInfo:
        """Open a round for shard-by-shard writing; returns its info.
        Re-opening an ``in_progress`` round is the resume path (shards
        and the journaled shard size are kept); ``fresh=True`` discards
        any previous incarnation first.  Raises :class:`ValueError`
        when *timestamp* already belongs to a different round."""

    @abstractmethod
    def write_shard(
        self,
        round_id: int,
        shard_index: int,
        records: Iterable[RoundRecord],
        *,
        errors: int = 0,
        operations: int = 0,
        quarantine: Iterable[QuarantineRecord] = (),
    ) -> bool:
        """Commit one shard atomically and idempotently (False for an
        already-committed shard index).  The rows, the shard's
        quarantine entries, the journal entry, and the read-model fold
        land as one atomic unit."""

    def write_shards(
        self, round_id: int, shards: Sequence[ShardPayload]
    ) -> int:
        """Commit a batch of shards; engines that can amortise the
        commit (one transaction, one fsync) override this.  Returns the
        number of shards actually committed."""
        committed = 0
        for shard in shards:
            committed += self.write_shard(
                round_id, shard.shard_index, shard.records,
                errors=shard.errors, operations=shard.operations,
                quarantine=shard.quarantine,
            )
        return committed

    @abstractmethod
    def finalize_round(
        self,
        round_id: int,
        *,
        degraded: bool = False,
        error_count: int | None = None,
        duration_seconds: float = 0.0,
    ) -> RoundInfo:
        """Seal an open round and flip its status to
        ``complete``/``degraded``."""

    def write_round(
        self,
        round_id: int,
        timestamp: int,
        targets_probed: int,
        records: Iterable[RoundRecord],
        *,
        degraded: bool = False,
        error_count: int = 0,
    ) -> RoundInfo:
        """Persist one complete round in a single shard (legacy API).

        Rewriting the *same* round_id replaces the round; reusing a
        timestamp under a *different* round_id raises ValueError (the
        two rounds would silently drop each other's data otherwise).
        """
        self.begin_round(round_id, timestamp, targets_probed, fresh=True)
        self.write_shard(round_id, 0, records, errors=error_count)
        return self.finalize_round(
            round_id, degraded=degraded, error_count=error_count
        )

    # ------------------------------------------------------------------
    # recovery / journal / integrity (abstract)

    @abstractmethod
    def open_rounds(self) -> list[RoundInfo]:
        """Rounds a crash (or abort) left ``in_progress``, in
        chronological order — the resume entry point."""

    @abstractmethod
    def completed_shards(self, round_id: int) -> set[int]:
        """Shard indices that already committed for *round_id*."""

    @abstractmethod
    def shard_stats(self, round_id: int) -> tuple[int, int]:
        """Summed (errors, operations) journaled across the round's
        committed shards — survives a crash, unlike process counters."""

    @abstractmethod
    def shard_journal(self, round_id: int) -> list[ShardJournalEntry]:
        """The round's committed-shard journal, ascending shard index."""

    @abstractmethod
    def shard_records(
        self, round_id: int, shard_index: int
    ) -> list[RoundRecord]:
        """One committed shard's rows in insertion order (works on
        rounds of any status — the merge path reads partition journals
        that are still ``in_progress``)."""

    @abstractmethod
    def shard_quarantine(
        self, round_id: int, shard_index: int
    ) -> list[QuarantineRecord]:
        """Quarantine entries committed with one shard, oldest first."""

    @abstractmethod
    def verify_round(self, round_id: int) -> RoundVerification:
        """Walk one round's shard journal, recompute every shard's
        checksum, and audit the materialized read models against the
        base data."""

    @abstractmethod
    def delete_partial(self, round_id: int) -> None:
        """Discard an ``in_progress`` round entirely (rows, journal,
        metadata, view rows).  Finalized rounds are protected:
        ValueError."""

    @abstractmethod
    def max_round_id(self) -> int:
        """Highest round_id ever assigned (0 for an empty store),
        including open rounds — the durable round-ID watermark."""

    # ------------------------------------------------------------------
    # quarantine (dead-letter)

    @abstractmethod
    def add_quarantine(self, entry: QuarantineRecord) -> int:
        """Insert one quarantine entry outside the shard protocol
        (used by tools and tests); returns its entry_id."""

    @abstractmethod
    def quarantine_rows(
        self,
        round_id: int | None = None,
        *,
        include_replayed: bool = True,
    ) -> list[QuarantineRecord]:
        """Quarantine entries, oldest first; optionally one round's,
        optionally only the ones not yet replayed."""

    @abstractmethod
    def quarantine_count(self, round_id: int | None = None) -> int:
        """Number of quarantine entries (optionally one round's)."""

    @abstractmethod
    def mark_quarantine_replayed(self, entry_id: int) -> None:
        """Flip one entry's replayed flag."""

    @abstractmethod
    def update_features(
        self, round_id: int, ip: int, features: PageFeatures
    ) -> bool:
        """Overwrite one row's feature columns — the ``repro quarantine
        replay`` path.  Returns False when the IP has no row in the
        round.  The owning shard's journaled checksum is recomputed and
        the read models are re-folded for the row, so a legitimate
        replay stays distinguishable from silent corruption."""

    # ------------------------------------------------------------------
    # campaign metadata

    @abstractmethod
    def set_meta(self, key: str, value: str) -> None:
        """Persist one campaign-level key/value pair (upsert)."""

    @abstractmethod
    def get_meta(self, key: str, default: str | None = None) -> str | None:
        """One campaign-level value, or *default*."""

    @abstractmethod
    def meta(self) -> dict[str, str]:
        """All campaign-level key/value pairs."""

    # ------------------------------------------------------------------
    # reads

    @abstractmethod
    def rounds(self) -> list[RoundInfo]:
        """All *finalized* rounds in chronological order (round_id
        breaks timestamp ties); partial rounds are visible through
        :meth:`open_rounds` instead."""

    @abstractmethod
    def round_info(self, round_id: int) -> RoundInfo:
        """One finalized round's info; KeyError for unknown or
        in-progress rounds."""

    @abstractmethod
    def round_stats(self, round_id: int) -> dict[str, int]:
        """Aggregate row counts for one round (any status):
        ``responsive``, ``available``, ``fetched`` and ``quarantined``.
        Served from the round-summary read model when it is
        maintained."""

    @abstractmethod
    def aggregate_column(
        self, round_id: int, column: str, *, limit: int = 20
    ) -> list[tuple[str, int]]:
        """Top values of one feature *column* in one round with their
        row counts, descending — the per-round cluster-aggregate read
        behind ``repro serve``.  *column* must be in
        :data:`AGGREGATE_COLUMNS`.  Served from the cluster-aggregate
        read model when it is maintained."""

    @abstractmethod
    def records(self, round_id: int) -> Iterator[RoundRecord]:
        """All records of one round."""

    @abstractmethod
    def record(self, round_id: int, ip: int) -> RoundRecord | None:
        """One IP's record in one round, or None if unresponsive then."""

    @abstractmethod
    def history(self, ip: int) -> list[RoundRecord]:
        """The WhoWas lookup: the full status/content history of an IP,
        in chronological order (absent rounds = unresponsive)."""

    def ip_history_rows(self, ip: int) -> list[dict]:
        """The *light* WhoWas lookup: one dict per finalized round the
        IP was responsive in, carrying only :data:`IP_HISTORY_COLUMNS`
        — what the serving layer renders, without dragging page bodies
        off disk.  Engines answer this from the per-IP-history read
        model; the base fallback projects :meth:`history`."""
        return [light_row(record.to_row()) for record in self.history(ip)]

    @abstractmethod
    def responsive_ips(self, round_id: int) -> set[int]:
        """IPs with a row in one finalized round."""

    # ------------------------------------------------------------------
    # read models

    @abstractmethod
    def rebuild_views(self) -> int:
        """Drop and refold every materialized read model from the base
        data (the ``repro rebuild-views`` escape hatch); returns the
        number of rounds refolded."""

    # ------------------------------------------------------------------
    # lifecycle

    @classmethod
    @abstractmethod
    def open_readonly(cls, path: str, **kwargs) -> "StoreBackend":
        """Open an existing database strictly for reading; never
        creates or mutates files."""

    @abstractmethod
    def close(self) -> None:
        """Release the backing resources (idempotent reads may fail
        afterwards)."""

    def __enter__(self) -> "StoreBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
