"""Round-partitioned columnar analytical engine.

The second :class:`~repro.core.store.base.StoreBackend` implementation:
a campaign is a **directory**, partitioned by round, with each shard
stored column-major — the layout analytical reads want (aggregate one
column without deserialising page bodies), in the spirit of
parquet/feather but built on the stdlib only (pyarrow/pandas are
optional elsewhere and deliberately not required here; numpy is used
opportunistically for count folds when present).

Layout::

    campaign.whowas/
      manifest.json              # backend marker, rounds, campaign meta
      replayed.json              # quarantine entry ids marked replayed
      quarantine_extra.jsonl     # entries added outside the shard protocol
      rounds/r00001/
        s00000.json              # one shard, column-major + quarantine
        journal.jsonl            # committed-shard journal (append-only)
        views.json               # materialized read models for the round

Commit protocol
---------------
Every mutation is either an atomic whole-file replace (write to a temp
file, fsync, ``os.replace``) or an fsync'd append to ``journal.jsonl``.
One shard commits in three steps:

1. the shard file is atomically replaced;
2. the round's read models are folded and ``views.json`` atomically
   replaced (skipped when the shard index is already in the views'
   ``folded`` list — that makes the fold idempotent);
3. one line is appended to ``journal.jsonl`` — **the commit point**.

A crash before step 3 leaves an orphan shard file and possibly folded
views; the resumed (deterministic) round rewrites the identical shard
file, skips the already-recorded fold, and appends the journal line.
A torn final journal line (crash mid-append) is ignored on read, which
is exactly the SQLite engine's "rolled back" semantics.
:meth:`verify_round` audits both the shard checksums and the views, so
any violation of the determinism assumption is detectable offline.
"""

from __future__ import annotations

import json
import math
import os
import shutil
import threading
import time
from pathlib import Path
from typing import Iterable, Iterator

try:
    import numpy as _np
except ImportError:          # pragma: no cover - numpy is baked in here
    _np = None

from ..records import PageFeatures, QuarantineRecord, RoundRecord
from .base import (
    AGGREGATE_COLUMNS,
    COLUMN_NAMES,
    IP_HISTORY_COLUMNS,
    ROUND_COMPLETE,
    ROUND_DEGRADED,
    ROUND_IN_PROGRESS,
    RoundInfo,
    RoundVerification,
    ShardJournalEntry,
    StoreBackend,
    light_row,
    shard_checksum,
    summarize_rows,
)

__all__ = ["ColumnarStore", "MANIFEST_NAME"]

MANIFEST_NAME = "manifest.json"
_FORMAT_VERSION = 1

#: Fields of one round's manifest entry (mirrors RoundInfo).
_ROUND_FIELDS = (
    "round_id", "timestamp", "targets_probed", "responsive_count",
    "degraded", "error_count", "status", "shard_size", "duration_seconds",
)


def _atomic_write_json(path: Path, payload) -> None:
    """Durable whole-file replace: temp file + fsync + os.replace."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, separators=(",", ":"), ensure_ascii=False)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _read_json(path: Path, default):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (FileNotFoundError, json.JSONDecodeError):
        return default


def _read_jsonl(path: Path) -> list[dict]:
    """Read an append-only journal, tolerating a torn final line (a
    crash mid-append truncates to the last durable entry)."""
    entries: list[dict] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entries.append(json.loads(line))
                except json.JSONDecodeError:
                    break
    except FileNotFoundError:
        pass
    return entries


def _append_jsonl(path: Path, payload: dict) -> None:
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(payload, separators=(",", ":"),
                            ensure_ascii=False) + "\n")
        fh.flush()
        os.fsync(fh.fileno())


def _columns_from_rows(row_dicts: list[dict]) -> dict[str, list]:
    return {
        name: [row[name] for row in row_dicts] for name in COLUMN_NAMES
    }


def _rows_from_columns(columns: dict[str, list]) -> list[dict]:
    count = len(columns["ip"]) if columns.get("ip") else 0
    return [
        {name: columns[name][i] for name in COLUMN_NAMES}
        for i in range(count)
    ]


def _count_summary(columns: dict[str, list]) -> dict[str, int]:
    """Round-summary increments straight off the column arrays —
    vectorised with numpy when available, pure python otherwise."""
    fetch_status = columns.get("fetch_status", [])
    status_code = columns.get("status_code", [])
    if _np is not None and fetch_status:
        status = _np.asarray(fetch_status, dtype=object)
        has_code = _np.asarray(
            [code is not None for code in status_code], dtype=bool
        )
        return {
            "responsive": int(status.size),
            "available": int(((status == "ok") & has_code).sum()),
            "fetched": int((status != "not-attempted").sum()),
        }
    rows = [
        {"fetch_status": fs, "status_code": sc}
        for fs, sc in zip(fetch_status, status_code)
    ]
    return summarize_rows(rows)


class ColumnarStore(StoreBackend):
    """Directory-backed columnar store partitioned by round."""

    BACKEND = "columnar"

    def __init__(self, path: str, *, readonly: bool = False):
        super().__init__()
        if path == ":memory:":
            raise ValueError(
                "the columnar backend is directory-backed; ':memory:' "
                "stores are sqlite-only"
            )
        self.path = path
        self.readonly = readonly
        self._root = Path(path)
        self._lock = threading.RLock()
        #: mtime-keyed caches for readers (writers mutate in memory and
        #: persist synchronously, so their caches are authoritative).
        self._cache: dict[Path, tuple[tuple, object]] = {}
        manifest_path = self._root / MANIFEST_NAME
        if readonly:
            if not manifest_path.is_file():
                raise FileNotFoundError(
                    f"no columnar store at {path!r} (missing "
                    f"{MANIFEST_NAME})"
                )
        else:
            self._root.mkdir(parents=True, exist_ok=True)
            (self._root / "rounds").mkdir(exist_ok=True)
            if not manifest_path.exists():
                _atomic_write_json(manifest_path, {
                    "backend": self.BACKEND,
                    "version": _FORMAT_VERSION,
                    "rounds": {},
                    "meta": {},
                })
        manifest = self._manifest()
        if manifest.get("backend") != self.BACKEND:
            raise ValueError(
                f"{path!r} is not a columnar store "
                f"(backend={manifest.get('backend')!r})"
            )
        self._next_quarantine_id = self._scan_max_quarantine_id() + 1

    @classmethod
    def open_readonly(cls, path: str, **kwargs) -> "ColumnarStore":
        """Open an existing store strictly for reading; raises
        :class:`FileNotFoundError` when *path* holds no manifest
        (read-only mode never creates files)."""
        return cls(path, readonly=True, **kwargs)

    # ------------------------------------------------------------------
    # file plumbing

    def _round_dir(self, round_id: int) -> Path:
        return self._root / "rounds" / f"r{round_id:05d}"

    def _shard_path(self, round_id: int, shard_index: int) -> Path:
        return self._round_dir(round_id) / f"s{shard_index:05d}.json"

    def _journal_path(self, round_id: int) -> Path:
        return self._round_dir(round_id) / "journal.jsonl"

    def _views_path(self, round_id: int) -> Path:
        return self._round_dir(round_id) / "views.json"

    def _cached(self, path: Path, loader):
        """Load *path* through the mtime/size cache (readers see writer
        updates because every mutation replaces the file)."""
        try:
            stat = os.stat(path)
            key = (stat.st_mtime_ns, stat.st_size)
        except FileNotFoundError:
            key = None
        hit = self._cache.get(path)
        if hit is not None and hit[0] == key:
            return hit[1]
        value = loader()
        self._cache[path] = (key, value)
        return value

    def _invalidate(self, path: Path) -> None:
        self._cache.pop(path, None)

    def _manifest(self) -> dict:
        path = self._root / MANIFEST_NAME
        return self._cached(
            path, lambda: _read_json(path, {"backend": self.BACKEND,
                                            "rounds": {}, "meta": {}})
        )

    def _write_manifest(self, manifest: dict) -> None:
        path = self._root / MANIFEST_NAME
        _atomic_write_json(path, manifest)
        self._invalidate(path)

    def _journal(self, round_id: int) -> list[ShardJournalEntry]:
        path = self._journal_path(round_id)

        def load():
            return [
                ShardJournalEntry(
                    round_id=round_id,
                    shard_index=entry["shard_index"],
                    record_count=entry["record_count"],
                    errors=entry.get("errors", 0),
                    operations=entry.get("operations", 0),
                    checksum=entry.get("checksum", ""),
                    quarantine_count=entry.get("quarantine_count", 0),
                )
                for entry in _read_jsonl(path)
            ]

        return self._cached(path, load)

    def _views(self, round_id: int) -> dict:
        path = self._views_path(round_id)
        return self._cached(
            path,
            lambda: _read_json(path, {
                "folded": [],
                "summary": {"responsive": 0, "available": 0,
                            "fetched": 0, "quarantined": 0},
                "ip": {},
                "agg": {column: [] for column in sorted(AGGREGATE_COLUMNS)},
            }),
        )

    def _shard_file(self, round_id: int, shard_index: int) -> dict | None:
        path = self._shard_path(round_id, shard_index)
        return self._cached(path, lambda: _read_json(path, None))

    def _round_entry(self, round_id: int) -> dict | None:
        return self._manifest()["rounds"].get(str(round_id))

    @staticmethod
    def _entry_info(entry: dict) -> RoundInfo:
        return RoundInfo(
            entry["round_id"], entry["timestamp"], entry["targets_probed"],
            entry["responsive_count"], degraded=bool(entry["degraded"]),
            error_count=entry["error_count"], status=entry["status"],
            shard_size=entry["shard_size"],
            duration_seconds=entry["duration_seconds"],
        )

    def _any_round(self, round_id: int) -> RoundInfo:
        entry = self._round_entry(round_id)
        if entry is None:
            raise KeyError(f"no such round: {round_id}")
        return self._entry_info(entry)

    def _open_round(self, round_id: int) -> RoundInfo:
        info = self._any_round(round_id)
        if info.status != ROUND_IN_PROGRESS:
            raise ValueError(f"round {round_id} is not open for writing")
        return info

    def _require_writer(self) -> None:
        if self.readonly:
            raise ValueError("store is read-only")

    def _scan_max_quarantine_id(self) -> int:
        highest = 0
        for entry in _read_jsonl(self._root / "quarantine_extra.jsonl"):
            highest = max(highest, int(entry.get("entry_id", 0)))
        manifest = self._manifest()
        for key in manifest.get("rounds", {}):
            round_id = int(key)
            for journal_entry in self._journal(round_id):
                shard = self._shard_file(
                    round_id, journal_entry.shard_index
                )
                if shard is None:
                    continue
                for row in shard.get("quarantine", []):
                    highest = max(highest, int(row.get("entry_id", 0)))
        return highest

    # ------------------------------------------------------------------
    # journaled writes

    def begin_round(
        self,
        round_id: int,
        timestamp: int,
        targets_probed: int,
        *,
        shard_size: int = 0,
        fresh: bool = False,
    ) -> RoundInfo:
        with self._lock:
            self._require_writer()
            manifest = dict(self._manifest())
            rounds = dict(manifest.get("rounds", {}))
            for key, entry in rounds.items():
                if (entry["timestamp"] == timestamp
                        and entry["round_id"] != round_id):
                    raise ValueError(
                        f"timestamp {timestamp} already used by round "
                        f"{entry['round_id']}; refusing to clobber its data"
                    )
            existing = rounds.get(str(round_id))
            if existing is not None:
                if fresh:
                    self._drop_round_files(round_id)
                    rounds.pop(str(round_id))
                elif existing["status"] == ROUND_IN_PROGRESS:
                    return self._entry_info(existing)
                else:
                    raise ValueError(f"round {round_id} is already finalized")
            self._round_dir(round_id).mkdir(parents=True, exist_ok=True)
            rounds[str(round_id)] = {
                "round_id": round_id,
                "timestamp": timestamp,
                "targets_probed": targets_probed,
                "responsive_count": 0,
                "degraded": 0,
                "error_count": 0,
                "status": ROUND_IN_PROGRESS,
                "shard_size": shard_size,
                "duration_seconds": 0.0,
            }
            manifest["rounds"] = rounds
            self._write_manifest(manifest)
            return self._any_round(round_id)

    def _drop_round_files(self, round_id: int) -> None:
        round_dir = self._round_dir(round_id)
        for path in (self._journal_path(round_id),
                     self._views_path(round_id)):
            self._invalidate(path)
        if round_dir.is_dir():
            for path in round_dir.iterdir():
                self._invalidate(path)
            shutil.rmtree(round_dir)

    def write_shard(
        self,
        round_id: int,
        shard_index: int,
        records: Iterable[RoundRecord],
        *,
        errors: int = 0,
        operations: int = 0,
        quarantine: Iterable[QuarantineRecord] = (),
    ) -> bool:
        with self._lock:
            self._require_writer()
            self._open_round(round_id)
            if shard_index in self.completed_shards(round_id):
                return False
            started = time.perf_counter()
            row_dicts = [record.to_row() for record in records]
            checksum = shard_checksum(row_dicts)
            entries = list(quarantine)
            quarantine_rows = []
            for entry in entries:
                row = entry.to_row()
                row["entry_id"] = self._next_quarantine_id
                self._next_quarantine_id += 1
                quarantine_rows.append(row)
            shard_path = self._shard_path(round_id, shard_index)
            _atomic_write_json(shard_path, {
                "shard_index": shard_index,
                "columns": _columns_from_rows(row_dicts),
                "quarantine": quarantine_rows,
            })
            self._invalidate(shard_path)
            self._fold_shard(round_id, shard_index, row_dicts,
                             len(quarantine_rows))
            _append_jsonl(self._journal_path(round_id), {
                "shard_index": shard_index,
                "record_count": len(row_dicts),
                "errors": errors,
                "operations": operations,
                "checksum": checksum,
                "quarantine_count": len(quarantine_rows),
            })
            self._invalidate(self._journal_path(round_id))
            self._note_flush(1, time.perf_counter() - started)
            return True

    def _fold_shard(
        self,
        round_id: int,
        shard_index: int,
        row_dicts: list[dict],
        quarantined: int,
    ) -> None:
        """Fold one shard into the round's read models and atomically
        replace ``views.json``.  The ``folded`` list makes this
        idempotent across the crash window between the views replace
        and the journal append."""
        views = json.loads(json.dumps(self._views(round_id)))
        if shard_index in views["folded"]:
            return
        counts = _count_summary(_columns_from_rows(row_dicts))
        summary = views["summary"]
        summary["responsive"] += counts["responsive"]
        summary["available"] += counts["available"]
        summary["fetched"] += counts["fetched"]
        summary["quarantined"] += quarantined
        for row in row_dicts:
            views["ip"][str(row["ip"])] = light_row(row)
        for column in sorted(AGGREGATE_COLUMNS):
            tally: dict = {}
            for value, count in views["agg"].get(column, []):
                tally[_agg_key(value)] = [value, count]
            for row in row_dicts:
                value = row[column]
                if value is None:
                    continue
                slot = tally.setdefault(_agg_key(value), [value, 0])
                slot[1] += 1
            views["agg"][column] = list(tally.values())
        views["folded"] = sorted(set(views["folded"]) | {shard_index})
        path = self._views_path(round_id)
        _atomic_write_json(path, views)
        self._invalidate(path)
        self._note_view_fold()

    def finalize_round(
        self,
        round_id: int,
        *,
        degraded: bool = False,
        error_count: int | None = None,
        duration_seconds: float = 0.0,
    ) -> RoundInfo:
        with self._lock:
            self._require_writer()
            self._open_round(round_id)
            journal = self._journal(round_id)
            if error_count is None:
                error_count = sum(entry.errors for entry in journal)
            responsive = sum(entry.record_count for entry in journal)
            manifest = dict(self._manifest())
            rounds = dict(manifest["rounds"])
            entry = dict(rounds[str(round_id)])
            entry.update(
                responsive_count=responsive,
                degraded=int(degraded),
                error_count=error_count,
                status=ROUND_DEGRADED if degraded else ROUND_COMPLETE,
                duration_seconds=float(duration_seconds),
            )
            rounds[str(round_id)] = entry
            manifest["rounds"] = rounds
            self._write_manifest(manifest)
            return self._any_round(round_id)

    # ------------------------------------------------------------------
    # recovery

    def open_rounds(self) -> list[RoundInfo]:
        infos = [
            self._entry_info(entry)
            for entry in self._manifest()["rounds"].values()
            if entry["status"] == ROUND_IN_PROGRESS
        ]
        return sorted(infos, key=lambda i: (i.timestamp, i.round_id))

    def completed_shards(self, round_id: int) -> set[int]:
        return {entry.shard_index for entry in self._journal(round_id)}

    def shard_stats(self, round_id: int) -> tuple[int, int]:
        journal = self._journal(round_id)
        return (
            sum(entry.errors for entry in journal),
            sum(entry.operations for entry in journal),
        )

    def shard_journal(self, round_id: int) -> list[ShardJournalEntry]:
        return sorted(
            self._journal(round_id), key=lambda entry: entry.shard_index
        )

    def _shard_rows(self, round_id: int, shard_index: int) -> list[dict]:
        shard = self._shard_file(round_id, shard_index)
        if shard is None:
            return []
        return _rows_from_columns(shard.get("columns", {}))

    def shard_records(
        self, round_id: int, shard_index: int
    ) -> list[RoundRecord]:
        self._any_round(round_id)
        return [
            RoundRecord.from_row(row)
            for row in self._shard_rows(round_id, shard_index)
        ]

    def shard_quarantine(
        self, round_id: int, shard_index: int
    ) -> list[QuarantineRecord]:
        shard = self._shard_file(round_id, shard_index)
        if shard is None:
            return []
        replayed = self._replayed_ids()
        rows = sorted(
            shard.get("quarantine", []),
            key=lambda row: row.get("entry_id", 0),
        )
        return [self._quarantine_record(row, replayed) for row in rows]

    @staticmethod
    def _quarantine_record(
        row: dict, replayed: set[int]
    ) -> QuarantineRecord:
        record = QuarantineRecord.from_row(row)
        if record.entry_id in replayed and not record.replayed:
            record = QuarantineRecord(
                ip=record.ip, round_id=record.round_id,
                timestamp=record.timestamp, stage=record.stage,
                verdict=record.verdict, error_class=record.error_class,
                error=record.error, payload=record.payload,
                entry_id=record.entry_id, replayed=True,
            )
        return record

    def verify_round(self, round_id: int) -> RoundVerification:
        with self._lock:
            info = self._any_round(round_id)
            entries = self.shard_journal(round_id)
            report = RoundVerification(
                round_id=round_id, timestamp=info.timestamp,
                status=info.status, shards=len(entries),
            )
            present = {entry.shard_index for entry in entries}
            if info.status != ROUND_IN_PROGRESS:
                if info.shard_size > 0:
                    expected = max(
                        1, math.ceil(info.targets_probed / info.shard_size)
                    )
                    report.missing = sorted(set(range(expected)) - present)
                elif entries and 0 not in present:
                    report.missing = [0]
            attributed_rows = 0
            attributed_quarantine = 0
            for entry in entries:
                rows = self._shard_rows(round_id, entry.shard_index)
                shard = self._shard_file(round_id, entry.shard_index)
                attributed_rows += len(rows)
                attributed_quarantine += len(
                    (shard or {}).get("quarantine", [])
                )
                if not entry.checksum:
                    report.unverifiable.append(entry.shard_index)
                    continue
                if (
                    len(rows) != entry.record_count
                    or shard_checksum(rows) != entry.checksum
                ):
                    report.corrupt.append(entry.shard_index)
                else:
                    report.verified += 1
            # Orphans: shard files (and their quarantine entries) not
            # covered by any journal entry — an interrupted commit, or
            # tampering.  Counted but never read by queries.
            round_dir = self._round_dir(round_id)
            if round_dir.is_dir():
                for path in sorted(round_dir.glob("s*.json")):
                    index = int(path.stem[1:])
                    if index in present:
                        continue
                    shard = _read_json(path, None) or {}
                    report.orphan_rows += len(
                        shard.get("columns", {}).get("ip", [])
                    )
                    report.orphan_quarantine += len(
                        shard.get("quarantine", [])
                    )
            self._audit_views(round_id, entries, report)
            return report

    def _audit_views(
        self,
        round_id: int,
        entries: list[ShardJournalEntry],
        report: RoundVerification,
    ) -> None:
        """Recompute the round's read models from its journaled shards
        and compare against ``views.json``."""
        views = self._views(round_id)
        expected_summary = {"responsive": 0, "available": 0, "fetched": 0,
                            "quarantined": 0}
        expected_ip: dict[str, dict] = {}
        expected_agg: dict[str, dict] = {
            column: {} for column in sorted(AGGREGATE_COLUMNS)
        }
        for entry in entries:
            rows = self._shard_rows(round_id, entry.shard_index)
            counts = summarize_rows(rows)
            for key in ("responsive", "available", "fetched"):
                expected_summary[key] += counts[key]
            expected_summary["quarantined"] += entry.quarantine_count
            for row in rows:
                expected_ip[str(row["ip"])] = light_row(row)
                for column in expected_agg:
                    value = row[column]
                    if value is None:
                        continue
                    slot = expected_agg[column].setdefault(
                        _agg_key(value), [value, 0]
                    )
                    slot[1] += 1
        if views["summary"] != expected_summary:
            report.view_issues.append("round_summary")
        if views["ip"] != expected_ip:
            report.view_issues.append("ip_history")
        actual_agg = {
            column: {
                _agg_key(value): [value, count]
                for value, count in views["agg"].get(column, [])
            }
            for column in expected_agg
        }
        if actual_agg != expected_agg:
            report.view_issues.append("cluster_agg")

    def delete_partial(self, round_id: int) -> None:
        with self._lock:
            self._require_writer()
            info = self._any_round(round_id)
            if info.status != ROUND_IN_PROGRESS:
                raise ValueError(
                    f"round {round_id} is {info.status}, not a partial round"
                )
            self._drop_round_files(round_id)
            manifest = dict(self._manifest())
            rounds = dict(manifest["rounds"])
            rounds.pop(str(round_id), None)
            manifest["rounds"] = rounds
            self._write_manifest(manifest)

    def max_round_id(self) -> int:
        rounds = self._manifest()["rounds"]
        return max((int(key) for key in rounds), default=0)

    # ------------------------------------------------------------------
    # quarantine (dead-letter)

    def _replayed_ids(self) -> set[int]:
        path = self._root / "replayed.json"
        return set(self._cached(path, lambda: _read_json(path, [])))

    def _extra_quarantine(self) -> list[dict]:
        path = self._root / "quarantine_extra.jsonl"
        return self._cached(path, lambda: _read_jsonl(path))

    def add_quarantine(self, entry: QuarantineRecord) -> int:
        with self._lock:
            self._require_writer()
            row = entry.to_row()
            row["entry_id"] = self._next_quarantine_id
            self._next_quarantine_id += 1
            path = self._root / "quarantine_extra.jsonl"
            _append_jsonl(path, row)
            self._invalidate(path)
            return row["entry_id"]

    def _all_quarantine(
        self, round_id: int | None = None
    ) -> list[QuarantineRecord]:
        replayed = self._replayed_ids()
        rows: list[dict] = []
        for key in self._manifest()["rounds"]:
            rid = int(key)
            if round_id is not None and rid != round_id:
                continue
            for entry in self._journal(rid):
                shard = self._shard_file(rid, entry.shard_index)
                if shard is not None:
                    rows.extend(shard.get("quarantine", []))
        for row in self._extra_quarantine():
            if round_id is None or row.get("round_id") == round_id:
                rows.append(row)
        rows.sort(key=lambda row: row.get("entry_id", 0))
        return [self._quarantine_record(row, replayed) for row in rows]

    def quarantine_rows(
        self,
        round_id: int | None = None,
        *,
        include_replayed: bool = True,
    ) -> list[QuarantineRecord]:
        records = self._all_quarantine(round_id)
        if not include_replayed:
            records = [r for r in records if not r.replayed]
        return records

    def quarantine_count(self, round_id: int | None = None) -> int:
        return len(self._all_quarantine(round_id))

    def mark_quarantine_replayed(self, entry_id: int) -> None:
        with self._lock:
            self._require_writer()
            ids = self._replayed_ids()
            ids.add(int(entry_id))
            path = self._root / "replayed.json"
            _atomic_write_json(path, sorted(ids))
            self._invalidate(path)

    def update_features(
        self, round_id: int, ip: int, features: PageFeatures
    ) -> bool:
        """Rewrite the owning shard with the new feature columns, then
        atomically rewrite the journal (updated checksum) and refold
        the views.  Unlike sqlite's single transaction this is a
        three-file sequence; :meth:`verify_round` detects a torn state
        (checksum or view mismatch) if a crash lands between steps."""
        with self._lock:
            self._require_writer()
            self._any_round(round_id)
            journal = self.shard_journal(round_id)
            for entry in journal:
                shard = self._shard_file(round_id, entry.shard_index)
                if shard is None or ip not in shard["columns"]["ip"]:
                    continue
                index = shard["columns"]["ip"].index(ip)
                shard = json.loads(json.dumps(shard))
                columns = shard["columns"]
                old_row = {
                    name: columns[name][index] for name in COLUMN_NAMES
                }
                for name, value in (
                    ("powered_by", features.powered_by),
                    ("description", features.description),
                    ("header_string", features.header_string),
                    ("html_length", features.html_length),
                    ("title", features.title),
                    ("template", features.template),
                    ("server", features.server),
                    ("keywords", features.keywords),
                    ("analytics_id", features.analytics_id),
                    ("simhash", f"{features.simhash:024x}"),
                ):
                    columns[name][index] = value
                shard_path = self._shard_path(round_id, entry.shard_index)
                _atomic_write_json(shard_path, shard)
                self._invalidate(shard_path)
                rows = _rows_from_columns(columns)
                self._rewrite_journal_checksum(
                    round_id, entry.shard_index, shard_checksum(rows)
                )
                new_row = {
                    name: columns[name][index] for name in COLUMN_NAMES
                }
                self._refold_replayed_row(round_id, old_row, new_row)
                return True
            return False

    def _rewrite_journal_checksum(
        self, round_id: int, shard_index: int, checksum: str
    ) -> None:
        path = self._journal_path(round_id)
        entries = _read_jsonl(path)
        for entry in entries:
            if (entry["shard_index"] == shard_index
                    and entry.get("checksum")):
                entry["checksum"] = checksum
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            for entry in entries:
                fh.write(json.dumps(entry, separators=(",", ":"),
                                    ensure_ascii=False) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self._invalidate(path)

    def _refold_replayed_row(
        self, round_id: int, old_row: dict, new_row: dict
    ) -> None:
        views = json.loads(json.dumps(self._views(round_id)))
        views["ip"][str(new_row["ip"])] = light_row(new_row)
        for column in sorted(AGGREGATE_COLUMNS):
            tally = {
                _agg_key(value): [value, count]
                for value, count in views["agg"].get(column, [])
            }
            old_value, new_value = old_row[column], new_row[column]
            if old_value == new_value:
                continue
            if old_value is not None:
                key = _agg_key(old_value)
                if key in tally:
                    tally[key][1] -= 1
                    if tally[key][1] <= 0:
                        del tally[key]
            if new_value is not None:
                slot = tally.setdefault(_agg_key(new_value), [new_value, 0])
                slot[1] += 1
            views["agg"][column] = list(tally.values())
        path = self._views_path(round_id)
        _atomic_write_json(path, views)
        self._invalidate(path)

    # ------------------------------------------------------------------
    # campaign metadata

    def set_meta(self, key: str, value: str) -> None:
        with self._lock:
            self._require_writer()
            manifest = dict(self._manifest())
            meta = dict(manifest.get("meta", {}))
            meta[key] = value
            manifest["meta"] = meta
            self._write_manifest(manifest)

    def get_meta(self, key: str, default: str | None = None) -> str | None:
        return self._manifest().get("meta", {}).get(key, default)

    def meta(self) -> dict[str, str]:
        return dict(self._manifest().get("meta", {}))

    # ------------------------------------------------------------------
    # reads

    def rounds(self) -> list[RoundInfo]:
        infos = [
            self._entry_info(entry)
            for entry in self._manifest()["rounds"].values()
            if entry["status"] != ROUND_IN_PROGRESS
        ]
        return sorted(infos, key=lambda i: (i.timestamp, i.round_id))

    def round_info(self, round_id: int) -> RoundInfo:
        info = self._any_round(round_id)
        if info.status == ROUND_IN_PROGRESS:
            raise KeyError(f"round {round_id} is still in progress")
        return info

    def round_stats(self, round_id: int) -> dict[str, int]:
        self._any_round(round_id)
        summary = self._views(round_id)["summary"]
        return {
            key: int(summary[key])
            for key in ("responsive", "available", "fetched", "quarantined")
        }

    def aggregate_column(
        self, round_id: int, column: str, *, limit: int = 20
    ) -> list[tuple[str, int]]:
        if column not in AGGREGATE_COLUMNS:
            raise ValueError(f"cannot aggregate by column {column!r}")
        if limit <= 0:
            raise ValueError("limit must be positive")
        self.round_info(round_id)
        pairs = self._views(round_id)["agg"].get(column, [])
        ordered = sorted(pairs, key=lambda pair: (-pair[1], pair[0]))
        return [
            (str(value), int(count)) for value, count in ordered[:limit]
        ]

    def records(self, round_id: int) -> Iterator[RoundRecord]:
        self.round_info(round_id)
        for entry in self.shard_journal(round_id):
            for row in self._shard_rows(round_id, entry.shard_index):
                yield RoundRecord.from_row(row)

    def record(self, round_id: int, ip: int) -> RoundRecord | None:
        self.round_info(round_id)
        for entry in self.shard_journal(round_id):
            shard = self._shard_file(round_id, entry.shard_index)
            if shard is None:
                continue
            ips = shard["columns"]["ip"]
            if ip in ips:
                index = ips.index(ip)
                row = {
                    name: shard["columns"][name][index]
                    for name in COLUMN_NAMES
                }
                return RoundRecord.from_row(row)
        return None

    def history(self, ip: int) -> list[RoundRecord]:
        history: list[RoundRecord] = []
        for info in self.rounds():
            record = self.record(info.round_id, ip)
            if record is not None:
                history.append(record)
        return history

    def ip_history_rows(self, ip: int) -> list[dict]:
        """Per-round dictionary lookups in ``views.json`` — no shard
        decode at all on the serving layer's hot path."""
        rows: list[dict] = []
        key = str(ip)
        for info in self.rounds():
            row = self._views(info.round_id)["ip"].get(key)
            if row is not None:
                rows.append(dict(row))
        return rows

    def responsive_ips(self, round_id: int) -> set[int]:
        self.round_info(round_id)
        ips: set[int] = set()
        for entry in self.shard_journal(round_id):
            shard = self._shard_file(round_id, entry.shard_index)
            if shard is not None:
                ips.update(shard["columns"]["ip"])
        return ips

    # ------------------------------------------------------------------
    # read models

    def rebuild_views(self) -> int:
        """Refold every round's ``views.json`` from its journaled
        shards (one atomic replace per round)."""
        with self._lock:
            self._require_writer()
            refolded = 0
            for key in sorted(self._manifest()["rounds"], key=int):
                round_id = int(key)
                views = {
                    "folded": [],
                    "summary": {"responsive": 0, "available": 0,
                                "fetched": 0, "quarantined": 0},
                    "ip": {},
                    "agg": {
                        column: [] for column in sorted(AGGREGATE_COLUMNS)
                    },
                }
                path = self._views_path(round_id)
                _atomic_write_json(path, views)
                self._invalidate(path)
                for entry in self.shard_journal(round_id):
                    self._fold_shard(
                        round_id, entry.shard_index,
                        self._shard_rows(round_id, entry.shard_index),
                        entry.quarantine_count,
                    )
                refolded += 1
            return refolded

    # ------------------------------------------------------------------
    # lifecycle

    def close(self) -> None:
        """All state is persisted synchronously; just drop the caches."""
        self._cache.clear()


def _agg_key(value) -> str:
    """Hashable dict key for an aggregate value that keeps ints and
    strings distinct (JSON object keys must be strings)."""
    return f"{type(value).__name__}:{value}"
