"""The SQLite reference engine of the WhoWas measurement database (§4).

Mirrors the paper's storage layout: **each round of scanning uses a
distinct table**, with the round's timestamp in the table name, plus a
``rounds`` metadata table.  Backed by sqlite3 (file or ``:memory:``)
instead of MySQL; the schema and the programmatic lookup API — "give me
the history of status and content for this IP address over time" — are
the same.

Only *responsive* IPs produce rows (the target list is known, so
unresponsiveness is encoded by absence), which keeps a campaign's
database proportional to cloud usage rather than address-space size.

Crash safety
------------
The paper's campaigns run for months; losing one to a mid-round crash
is unacceptable.  File-backed stores therefore run sqlite in WAL mode,
and writes follow the **journaled round protocol** of
:class:`~repro.core.store.base.StoreBackend`: ``begin_round`` /
idempotent ``write_shard`` / ``finalize_round``.  A crash between
shards leaves a resumable partial round that :meth:`open_rounds`
surfaces and :meth:`completed_shards` describes.

Shard integrity
---------------
Every committed shard journals a **checksum** (see
:func:`~repro.core.store.base.shard_checksum`); each row carries the
``shard_index`` it was committed under, so rows can be attributed to
their journal entry regardless of the order shards landed in.

Materialized read models
------------------------
Three views are folded incrementally, **inside the same transaction**
that commits each shard, so they can never drift from the base data
across a crash:

* ``view_ip_history`` — one light row per (ip, round): the WhoWas
  lookup without dragging page bodies off disk.  Its ``(ip, round_id)``
  WITHOUT-ROWID primary key doubles as the covering index for per-IP
  record lookups.
* ``view_round_summary`` — per-round responsive/available/fetched/
  quarantined counters (``repro stats`` and ``/rounds/<id>``).
* ``view_cluster_agg`` — per-round ``(column, value) → count`` for
  every :data:`~repro.core.store.base.AGGREGATE_COLUMNS` column
  (``/clusters/<id>``), replacing per-request GROUP-BY scans.

``rebuild_views()`` refolds everything from the base tables (the
``repro rebuild-views`` escape hatch); :meth:`verify_round` audits the
views against the base data with the same checksum discipline as the
shards.  Reads fall back to base-table scans for rounds written before
the views existed (no summary row = unfolded round).
"""

from __future__ import annotations

import math
import random
import sqlite3
import threading
import time
from collections import Counter
from contextlib import contextmanager
from typing import Iterable, Iterator, Sequence

from ..backoff import backoff_delay
from ..records import PageFeatures, QuarantineRecord, RoundRecord
from . import base as _base
from .base import (
    AGGREGATE_COLUMNS,
    COLUMN_NAMES,
    COLUMNS,
    IP_HISTORY_COLUMNS,
    ROUND_COMPLETE,
    ROUND_DEGRADED,
    ROUND_IN_PROGRESS,
    RoundInfo,
    RoundVerification,
    ShardJournalEntry,
    ShardPayload,
    StoreBackend,
    rows_checksum,
    shard_checksum,
)

__all__ = ["MeasurementStore"]

#: The feature columns ``update_features`` may change that also feed
#: ``view_cluster_agg`` — the delta set the replay path re-folds.
_REPLAYED_AGG_COLUMNS = ("powered_by", "title", "template", "server")

_VIEW_TABLES = ("view_ip_history", "view_round_summary", "view_cluster_agg")

#: SQL projection of a base-table row onto the per-IP-history read
#: model — mirrors :func:`~repro.core.store.base.light_row` (feature
#: columns are nulled for rows without stored page content).
_LIGHT_SELECT = (
    "ip, round_id, timestamp, open_ports, fetch_status, status_code,"
    " CASE WHEN body IS NULL THEN NULL ELSE server END,"
    " CASE WHEN body IS NULL THEN NULL ELSE title END,"
    " CASE WHEN body IS NULL THEN NULL ELSE template END"
)


def _connect(
    path: str, *, readonly: bool = False, busy_timeout_ms: int = 5_000
) -> sqlite3.Connection:
    """Open one sqlite connection with the store's pragma/URI dance.

    Writers get WAL + ``synchronous=NORMAL`` (committed shards stay
    durable across a crash, readers can inspect a live campaign);
    read-only connections use sqlite's ``mode=ro`` URI *plus* the
    ``query_only`` pragma, so they can never take a write lock or
    mutate anything, even by accident — and never create files.
    Both shapes share ``Row`` factory, ``busy_timeout``, and
    ``check_same_thread=False`` (the store serialises access with its
    own lock, and the pipeline may commit from a worker thread).
    """
    if readonly:
        if path == ":memory:":
            raise ValueError("cannot open an in-memory store read-only")
        conn = sqlite3.connect(
            f"file:{path}?mode=ro", uri=True, check_same_thread=False
        )
    else:
        conn = sqlite3.connect(path, check_same_thread=False)
    conn.row_factory = sqlite3.Row
    conn.execute(f"PRAGMA busy_timeout={int(busy_timeout_ms)}")
    if readonly:
        conn.execute("PRAGMA query_only=ON")
    else:
        # sqlite silently keeps the "memory" journal for :memory: stores.
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
    return conn


class MeasurementStore(StoreBackend):
    """sqlite3-backed store with one table per scan round — the
    reference :class:`StoreBackend` implementation."""

    BACKEND = "sqlite"

    def __init__(
        self,
        path: str = ":memory:",
        *,
        busy_timeout_ms: int = 5_000,
        busy_retries: int = 5,
        busy_backoff_base: float = 0.05,
        busy_backoff_max: float = 1.0,
        readonly: bool = False,
    ):
        super().__init__()
        #: The database file this store is backed by (":memory:" for
        #: ephemeral stores) — the coordinator derives partition-journal
        #: paths from it.
        self.path = path
        #: True for stores opened through :meth:`open_readonly` — the
        #: connection can never take a write lock on the database.
        self.readonly = readonly
        # Contended writers (coordinator merge vs. a live reader, or
        # two processes sharing a file) surface as SQLITE_BUSY; the
        # busy_timeout handles intra-transaction waits and _commit()
        # adds a bounded jittered retry loop on top.
        self._busy_retries = busy_retries
        self._busy_backoff_base = busy_backoff_base
        self._busy_backoff_max = busy_backoff_max
        self._busy_random = random.Random()  # jitter only, never data
        self._m_busy_retries = _base._telemetry.get().counter(
            "repro_store_busy_retries_total",
            "Commits re-issued after SQLITE_BUSY/locked",
        )
        # The pipeline's writer stage may run batch commits in a worker
        # thread (PipelineConfig.writer_offload) so fsync never blocks
        # the event loop; the RLock serialises all connection access.
        self._conn = _connect(
            path, readonly=readonly, busy_timeout_ms=busy_timeout_ms
        )
        self._lock = threading.RLock()
        if readonly:
            # No schema DDL or migration runs on a reader; view-backed
            # read paths are available only when the writer (or a
            # migration) created the tables.
            self._has_views = self._table_exists("view_round_summary")
            return
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS rounds ("
            "  round_id INTEGER PRIMARY KEY,"
            "  timestamp INTEGER NOT NULL,"
            "  targets_probed INTEGER NOT NULL,"
            "  responsive_count INTEGER NOT NULL,"
            "  degraded INTEGER NOT NULL DEFAULT 0,"
            "  error_count INTEGER NOT NULL DEFAULT 0,"
            f"  round_status TEXT NOT NULL DEFAULT '{ROUND_COMPLETE}',"
            "  shard_size INTEGER NOT NULL DEFAULT 0,"
            "  duration_seconds REAL NOT NULL DEFAULT 0"
            ")"
        )
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS round_shards ("
            "  round_id INTEGER NOT NULL,"
            "  shard_index INTEGER NOT NULL,"
            "  record_count INTEGER NOT NULL,"
            "  errors INTEGER NOT NULL DEFAULT 0,"
            "  operations INTEGER NOT NULL DEFAULT 0,"
            "  checksum TEXT NOT NULL DEFAULT '',"
            "  quarantine_count INTEGER NOT NULL DEFAULT 0,"
            "  PRIMARY KEY (round_id, shard_index)"
            ")"
        )
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS campaign_meta ("
            "  key TEXT PRIMARY KEY,"
            "  value TEXT NOT NULL"
            ")"
        )
        # Dead-letter quarantine: pages the supervision layer had to
        # neutralise (deadline kills, trapped exceptions, hostile
        # content).  Journaled with the shard that produced them so a
        # resumed round never duplicates entries.
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS quarantine ("
            "  entry_id INTEGER PRIMARY KEY AUTOINCREMENT,"
            "  round_id INTEGER NOT NULL,"
            "  ip INTEGER NOT NULL,"
            "  timestamp INTEGER NOT NULL,"
            "  stage TEXT NOT NULL,"
            "  verdict TEXT NOT NULL,"
            "  error_class TEXT,"
            "  error TEXT,"
            "  payload TEXT NOT NULL DEFAULT '',"
            "  replayed INTEGER NOT NULL DEFAULT 0,"
            "  shard_index INTEGER NOT NULL DEFAULT 0"
            ")"
        )
        # Materialized read models.  The (ip, round_id) WITHOUT-ROWID
        # primary key IS the per-IP covering index: a history lookup is
        # one clustered B-tree range scan over light rows.  Creating
        # these on an existing database is the schema migration — old
        # rounds simply have no summary row until `repro rebuild-views`.
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS view_ip_history ("
            "  ip INTEGER NOT NULL,"
            "  round_id INTEGER NOT NULL,"
            "  timestamp INTEGER NOT NULL,"
            "  open_ports TEXT NOT NULL,"
            "  fetch_status TEXT NOT NULL,"
            "  status_code INTEGER,"
            "  server TEXT,"
            "  title TEXT,"
            "  template TEXT,"
            "  PRIMARY KEY (ip, round_id)"
            ") WITHOUT ROWID"
        )
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS view_round_summary ("
            "  round_id INTEGER PRIMARY KEY,"
            "  responsive INTEGER NOT NULL DEFAULT 0,"
            "  available INTEGER NOT NULL DEFAULT 0,"
            "  fetched INTEGER NOT NULL DEFAULT 0,"
            "  quarantined INTEGER NOT NULL DEFAULT 0"
            ")"
        )
        # `value` is declared without a type on purpose: no affinity,
        # so integer values (status_code) keep integer ordering and
        # text values keep text ordering — matching the base tables.
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS view_cluster_agg ("
            "  round_id INTEGER NOT NULL,"
            "  column_name TEXT NOT NULL,"
            "  value,"
            "  n INTEGER NOT NULL DEFAULT 0,"
            "  PRIMARY KEY (round_id, column_name, value)"
            ") WITHOUT ROWID"
        )
        self._has_views = True
        self._migrate_rounds_table()
        self._migrate_shard_tables()
        self._migrate_round_indexes()
        self._commit()

    def _migrate_rounds_table(self) -> None:
        """Upgrade databases written before the resilience/journal
        columns existed (older files lack ``degraded``, ``error_count``
        and ``round_status``)."""
        existing = {
            row["name"]
            for row in self._conn.execute("PRAGMA table_info(rounds)")
        }
        for name in ("degraded", "error_count"):
            if name not in existing:
                self._conn.execute(
                    f"ALTER TABLE rounds ADD COLUMN {name} "
                    "INTEGER NOT NULL DEFAULT 0"
                )
        if "round_status" not in existing:
            self._conn.execute(
                "ALTER TABLE rounds ADD COLUMN round_status "
                f"TEXT NOT NULL DEFAULT '{ROUND_COMPLETE}'"
            )
            # Pre-journal rounds were only ever written whole, so they
            # are complete; carry the degraded flag into the status.
            self._conn.execute(
                "UPDATE rounds SET round_status = ? WHERE degraded = 1",
                (ROUND_DEGRADED,),
            )
        if "shard_size" not in existing:
            self._conn.execute(
                "ALTER TABLE rounds ADD COLUMN shard_size "
                "INTEGER NOT NULL DEFAULT 0"
            )
        if "duration_seconds" not in existing:
            self._conn.execute(
                "ALTER TABLE rounds ADD COLUMN duration_seconds "
                "REAL NOT NULL DEFAULT 0"
            )

    def _migrate_round_indexes(self) -> None:
        """Backfill the per-round ``(ip)`` index.  Finalize creates it,
        so only tables from runs that crashed between their last shard
        and finalize (then resumed on older code) can lack it — but a
        missing one turns every record/history lookup into a full
        table scan, so opening a writer repairs it unconditionally."""
        for row in self._conn.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table'"
        ).fetchall():
            table = row["name"]
            if not (table.startswith("round_") and
                    table[len("round_"):].isdigit()):
                continue
            self._conn.execute(
                f"CREATE INDEX IF NOT EXISTS idx_{table}_ip "
                f"ON {table} (ip)"
            )

    def _migrate_shard_tables(self) -> None:
        """Upgrade databases written before shard checksums existed.
        Legacy shards keep an empty checksum — :meth:`verify_round`
        reports them *unverifiable* rather than corrupt."""
        existing = {
            row["name"]
            for row in self._conn.execute("PRAGMA table_info(round_shards)")
        }
        if "checksum" not in existing:
            self._conn.execute(
                "ALTER TABLE round_shards ADD COLUMN checksum "
                "TEXT NOT NULL DEFAULT ''"
            )
        if "quarantine_count" not in existing:
            self._conn.execute(
                "ALTER TABLE round_shards ADD COLUMN quarantine_count "
                "INTEGER NOT NULL DEFAULT 0"
            )
        quarantine_cols = {
            row["name"]
            for row in self._conn.execute("PRAGMA table_info(quarantine)")
        }
        if quarantine_cols and "shard_index" not in quarantine_cols:
            self._conn.execute(
                "ALTER TABLE quarantine ADD COLUMN shard_index "
                "INTEGER NOT NULL DEFAULT 0"
            )

    @classmethod
    def open_readonly(cls, path: str, **kwargs) -> "MeasurementStore":
        """Open an existing database strictly for reading (see
        :func:`_connect` for the connection shape).  Raises
        :class:`sqlite3.OperationalError` when *path* does not exist
        (read-only mode never creates files)."""
        return cls(path, readonly=True, **kwargs)

    @contextmanager
    def read_deadline(self, deadline: float | None, *, tick: int = 64):
        """Bound every statement on this connection by a monotonic
        *deadline* (``time.monotonic()`` seconds; ``None`` disables).

        Implemented with sqlite's progress handler: once the deadline
        passes, the running statement is aborted and sqlite raises
        ``OperationalError('interrupted')`` — classify it with
        :func:`~repro.core.store.base.is_interrupted`.  This is how the
        serving layer's per-request deadline budget propagates *into*
        store reads, so a pathological query fails at its budget
        instead of piling up behind the connection."""
        if deadline is None:
            yield self
            return

        def _expired():
            return 1 if time.monotonic() >= deadline else 0

        self._conn.set_progress_handler(_expired, tick)
        try:
            yield self
        finally:
            self._conn.set_progress_handler(None, 0)

    def _table_has_column(self, table: str, column: str) -> bool:
        return any(
            row["name"] == column
            for row in self._conn.execute(f"PRAGMA table_info({table})")
        )

    def _table_exists(self, table: str) -> bool:
        return self._conn.execute(
            "SELECT 1 FROM sqlite_master WHERE type = 'table' AND name = ?",
            (table,),
        ).fetchone() is not None

    def _commit(self) -> None:
        """Commit with a bounded jittered-backoff retry on SQLITE_BUSY.

        ``busy_timeout`` already makes sqlite wait inside one attempt;
        this loop covers writers that keep losing the race (e.g. the
        coordinator merging a partition while a reporting tool holds
        the database).  A failed commit leaves the transaction open, so
        re-issuing it is safe; anything but a busy/locked error — and
        the final exhausted attempt — propagates."""
        for attempt in range(self._busy_retries + 1):
            try:
                self._conn.commit()
                return
            except sqlite3.OperationalError as exc:
                message = str(exc).lower()
                if "locked" not in message and "busy" not in message:
                    raise
                if attempt == self._busy_retries:
                    raise
                self._m_busy_retries.inc()
                time.sleep(backoff_delay(
                    attempt,
                    base=self._busy_backoff_base,
                    cap=self._busy_backoff_max,
                    rng=self._busy_random,
                ))

    # ------------------------------------------------------------------
    # journaled writes

    def begin_round(
        self,
        round_id: int,
        timestamp: int,
        targets_probed: int,
        *,
        shard_size: int = 0,
        fresh: bool = False,
    ) -> RoundInfo:
        with self._lock:
            clash = self._conn.execute(
                "SELECT round_id FROM rounds "
                "WHERE timestamp = ? AND round_id != ?",
                (timestamp, round_id),
            ).fetchone()
            if clash is not None:
                raise ValueError(
                    f"timestamp {timestamp} already used by round "
                    f"{clash['round_id']}; refusing to clobber its table"
                )
            row = self._conn.execute(
                "SELECT round_status FROM rounds WHERE round_id = ?",
                (round_id,),
            ).fetchone()
            table = f"round_{timestamp:05d}"
            if row is not None:
                if fresh:
                    self._conn.execute(f"DROP TABLE IF EXISTS {table}")
                    self._conn.execute(
                        "DELETE FROM round_shards WHERE round_id = ?",
                        (round_id,),
                    )
                    self._conn.execute(
                        "DELETE FROM rounds WHERE round_id = ?", (round_id,)
                    )
                    self._delete_view_rows(round_id)
                elif row["round_status"] == ROUND_IN_PROGRESS:
                    # Resume: keep shards.  Tables written before the
                    # shard_index bookkeeping column gain it here so
                    # the remaining shards insert cleanly.
                    if not self._table_has_column(table, "shard_index"):
                        self._conn.execute(
                            f"ALTER TABLE {table} ADD COLUMN shard_index "
                            "INTEGER NOT NULL DEFAULT 0"
                        )
                        self._commit()
                    return self._any_round(round_id)
                else:
                    raise ValueError(f"round {round_id} is already finalized")
            columns_sql = ", ".join(f"{name} {sql}" for name, sql in COLUMNS)
            self._conn.execute(
                f"CREATE TABLE IF NOT EXISTS {table} "
                f"({columns_sql}, shard_index INTEGER NOT NULL DEFAULT 0)"
            )
            self._conn.execute(
                "INSERT INTO rounds VALUES (?, ?, ?, 0, 0, 0, ?, ?, 0)",
                (round_id, timestamp, targets_probed, ROUND_IN_PROGRESS,
                 shard_size),
            )
            self._commit()
            return self._any_round(round_id)

    def write_shard(
        self,
        round_id: int,
        shard_index: int,
        records: Iterable[RoundRecord],
        *,
        errors: int = 0,
        operations: int = 0,
        quarantine: Iterable[QuarantineRecord] = (),
    ) -> bool:
        """Commit one shard of a round atomically.

        Idempotent: a shard index that already committed is skipped
        (returns False).  The rows, the shard's *quarantine* entries,
        the shard journal entry, and the read-model fold land in one
        transaction — a crash mid-write rolls the whole shard back,
        and the committed-shard skip covers quarantine entries and the
        fold too (no duplicates on resume)."""
        with self._lock:
            info = self._open_round(round_id)
            started = time.perf_counter()
            try:
                committed = self._insert_shard(
                    info, shard_index, records,
                    errors=errors, operations=operations,
                    quarantine=quarantine,
                )
                self._commit()
            except BaseException:
                self._conn.rollback()
                raise
            if committed:
                self._note_flush(1, time.perf_counter() - started)
            return committed

    def write_shards(
        self, round_id: int, shards: Sequence[ShardPayload]
    ) -> int:
        """Commit a batch of shards in **one** transaction.

        The pipeline's store-writer stage uses this to amortise commit
        (fsync) cost: begin / executemany per shard / single commit.
        Per-shard idempotence is preserved — already-committed shard
        indices inside the batch are skipped, exactly as in
        :meth:`write_shard` — and an error rolls the whole batch back,
        so a crash mid-batch loses at most the batch, never half a
        shard.  Returns the number of shards actually committed."""
        with self._lock:
            info = self._open_round(round_id)
            started = time.perf_counter()
            committed = 0
            try:
                for shard in shards:
                    committed += self._insert_shard(
                        info, shard.shard_index, shard.records,
                        errors=shard.errors, operations=shard.operations,
                        quarantine=shard.quarantine,
                    )
                self._commit()
            except BaseException:
                self._conn.rollback()
                raise
            if committed:
                self._note_flush(committed, time.perf_counter() - started)
            return committed

    def _insert_shard(
        self,
        info: RoundInfo,
        shard_index: int,
        records: Iterable[RoundRecord],
        *,
        errors: int,
        operations: int,
        quarantine: Iterable[QuarantineRecord],
    ) -> bool:
        """Stage one shard's inserts on the open transaction (no
        commit); returns False for an already-committed shard index."""
        already = self._conn.execute(
            "SELECT 1 FROM round_shards WHERE round_id = ? AND shard_index = ?",
            (info.round_id, shard_index),
        ).fetchone()
        if already is not None:
            return False
        row_dicts = [record.to_row() for record in records]
        checksum = shard_checksum(row_dicts)
        entries = list(quarantine)
        placeholders = ", ".join("?" for _ in COLUMN_NAMES)
        # Each row carries the shard index it was committed under so
        # verification/merge can attribute rows to journal entries in
        # any landing order (resume, partition merge, salvage).
        self._conn.executemany(
            f"INSERT INTO {info.table_name} "
            f"({', '.join(COLUMN_NAMES)}, shard_index) "
            f"VALUES ({placeholders}, ?)",
            (
                tuple(row[name] for name in COLUMN_NAMES) + (shard_index,)
                for row in row_dicts
            ),
        )
        self._conn.executemany(
            "INSERT INTO quarantine "
            "(round_id, ip, timestamp, stage, verdict, error_class,"
            " error, payload, replayed, shard_index) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                (entry.round_id, entry.ip, entry.timestamp, entry.stage,
                 entry.verdict, entry.error_class, entry.error,
                 entry.payload, int(entry.replayed), shard_index)
                for entry in entries
            ),
        )
        self._conn.execute(
            "INSERT INTO round_shards VALUES (?, ?, ?, ?, ?, ?, ?)",
            (info.round_id, shard_index, len(row_dicts), errors, operations,
             checksum, len(entries)),
        )
        self._fold_rows(info.round_id, row_dicts, len(entries))
        return True

    def _fold_rows(
        self, round_id: int, row_dicts: Sequence[dict], quarantined: int
    ) -> None:
        """Stage one committed shard's fold into the three read models
        on the open transaction (the shard and its fold are one atomic
        unit).  Always upserts the summary — even for an empty shard —
        so summary-row presence marks the round as view-maintained."""
        self._conn.executemany(
            "INSERT OR REPLACE INTO view_ip_history "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                tuple(_base.light_row(row)[name]
                      for name in IP_HISTORY_COLUMNS)
                for row in row_dicts
            ),
        )
        counts = _base.summarize_rows(row_dicts)
        self._conn.execute(
            "INSERT INTO view_round_summary VALUES (?, ?, ?, ?, ?) "
            "ON CONFLICT(round_id) DO UPDATE SET"
            " responsive = responsive + excluded.responsive,"
            " available = available + excluded.available,"
            " fetched = fetched + excluded.fetched,"
            " quarantined = quarantined + excluded.quarantined",
            (round_id, counts["responsive"], counts["available"],
             counts["fetched"], quarantined),
        )
        for column in sorted(AGGREGATE_COLUMNS):
            tally = Counter(
                row[column] for row in row_dicts if row[column] is not None
            )
            self._conn.executemany(
                "INSERT INTO view_cluster_agg VALUES (?, ?, ?, ?) "
                "ON CONFLICT(round_id, column_name, value) "
                "DO UPDATE SET n = n + excluded.n",
                (
                    (round_id, column, value, count)
                    for value, count in tally.items()
                ),
            )
        self._note_view_fold()

    def _delete_view_rows(self, round_id: int) -> None:
        for table in _VIEW_TABLES:
            self._conn.execute(
                f"DELETE FROM {table} WHERE round_id = ?", (round_id,)
            )

    def finalize_round(
        self,
        round_id: int,
        *,
        degraded: bool = False,
        error_count: int | None = None,
        duration_seconds: float = 0.0,
    ) -> RoundInfo:
        """Seal an open round: count its rows, build the IP index, and
        flip the status to ``complete``/``degraded``.  *error_count*
        defaults to the sum journaled by :meth:`write_shard`;
        *duration_seconds* records the producing run's wall clock."""
        with self._lock:
            info = self._open_round(round_id)
            if error_count is None:
                error_count = self.shard_stats(round_id)[0]
            responsive = self._conn.execute(
                f"SELECT COUNT(*) FROM {info.table_name}"
            ).fetchone()[0]
            table = info.table_name
            self._conn.execute(
                f"CREATE INDEX IF NOT EXISTS idx_{table}_ip ON {table} (ip)"
            )
            status = ROUND_DEGRADED if degraded else ROUND_COMPLETE
            self._conn.execute(
                "UPDATE rounds SET responsive_count = ?, degraded = ?,"
                " error_count = ?, round_status = ?, duration_seconds = ?"
                " WHERE round_id = ?",
                (responsive, int(degraded), error_count, status,
                 float(duration_seconds), round_id),
            )
            self._commit()
            return RoundInfo(
                round_id, info.timestamp, info.targets_probed, responsive,
                degraded=degraded, error_count=error_count, status=status,
                shard_size=info.shard_size,
                duration_seconds=float(duration_seconds),
            )

    # ------------------------------------------------------------------
    # recovery

    def open_rounds(self) -> list[RoundInfo]:
        cursor = self._conn.execute(
            f"SELECT {self._ROUND_COLUMNS} FROM rounds "
            "WHERE round_status = ? ORDER BY timestamp, round_id",
            (ROUND_IN_PROGRESS,),
        )
        return [self._round_info(row) for row in cursor.fetchall()]

    def completed_shards(self, round_id: int) -> set[int]:
        cursor = self._conn.execute(
            "SELECT shard_index FROM round_shards WHERE round_id = ?",
            (round_id,),
        )
        return {row[0] for row in cursor.fetchall()}

    def shard_stats(self, round_id: int) -> tuple[int, int]:
        row = self._conn.execute(
            "SELECT COALESCE(SUM(errors), 0), COALESCE(SUM(operations), 0) "
            "FROM round_shards WHERE round_id = ?",
            (round_id,),
        ).fetchone()
        return int(row[0]), int(row[1])

    # ------------------------------------------------------------------
    # shard journal & integrity

    def shard_journal(self, round_id: int) -> list[ShardJournalEntry]:
        cursor = self._conn.execute(
            "SELECT round_id, shard_index, record_count, errors,"
            " operations, checksum, quarantine_count"
            " FROM round_shards WHERE round_id = ? ORDER BY shard_index",
            (round_id,),
        )
        return [
            ShardJournalEntry(
                round_id=row["round_id"], shard_index=row["shard_index"],
                record_count=row["record_count"], errors=row["errors"],
                operations=row["operations"], checksum=row["checksum"],
                quarantine_count=row["quarantine_count"],
            )
            for row in cursor.fetchall()
        ]

    def shard_records(
        self, round_id: int, shard_index: int
    ) -> list[RoundRecord]:
        info = self._any_round(round_id)
        cursor = self._conn.execute(
            f"SELECT * FROM {info.table_name} WHERE shard_index = ? "
            "ORDER BY rowid",
            (shard_index,),
        )
        return [RoundRecord.from_row(row) for row in cursor.fetchall()]

    def shard_quarantine(
        self, round_id: int, shard_index: int
    ) -> list[QuarantineRecord]:
        cursor = self._conn.execute(
            "SELECT * FROM quarantine "
            "WHERE round_id = ? AND shard_index = ? ORDER BY entry_id",
            (round_id, shard_index),
        )
        return [QuarantineRecord.from_row(row) for row in cursor.fetchall()]

    def verify_round(self, round_id: int) -> RoundVerification:
        """Walk one round's shard journal and recompute every shard's
        checksum: reports missing shards (journal gaps in a finalized
        round), corrupt shards (digest or row-count mismatch), legacy
        shards with no digest, orphaned rows/quarantine entries not
        attributed to any journaled shard, and read models whose
        contents no longer match a refold of the base data."""
        with self._lock:
            info = self._any_round(round_id)
            entries = self.shard_journal(round_id)
            report = RoundVerification(
                round_id=round_id, timestamp=info.timestamp,
                status=info.status, shards=len(entries),
            )
            present = {entry.shard_index for entry in entries}
            if info.status != ROUND_IN_PROGRESS:
                if info.shard_size > 0:
                    expected = max(
                        1, math.ceil(info.targets_probed / info.shard_size)
                    )
                    report.missing = sorted(set(range(expected)) - present)
                elif entries and 0 not in present:
                    report.missing = [0]
            if not self._table_has_column(info.table_name, "shard_index"):
                # Pre-checksum table: rows cannot be attributed.
                report.unverifiable = sorted(present)
                return report
            attributed_rows = 0
            attributed_quarantine = 0
            for entry in entries:
                rows = [
                    record.to_row()
                    for record in self.shard_records(
                        round_id, entry.shard_index
                    )
                ]
                attributed_rows += len(rows)
                attributed_quarantine += self._conn.execute(
                    "SELECT COUNT(*) FROM quarantine "
                    "WHERE round_id = ? AND shard_index = ?",
                    (round_id, entry.shard_index),
                ).fetchone()[0]
                if not entry.checksum:
                    report.unverifiable.append(entry.shard_index)
                    continue
                if (
                    len(rows) != entry.record_count
                    or shard_checksum(rows) != entry.checksum
                ):
                    report.corrupt.append(entry.shard_index)
                else:
                    report.verified += 1
            total_rows = self._conn.execute(
                f"SELECT COUNT(*) FROM {info.table_name}"
            ).fetchone()[0]
            total_quarantine = self.quarantine_count(round_id)
            report.orphan_rows = total_rows - attributed_rows
            report.orphan_quarantine = (
                total_quarantine - attributed_quarantine
            )
            self._audit_views(info, report)
            return report

    def _audit_views(
        self, info: RoundInfo, report: RoundVerification
    ) -> None:
        """Audit the three read models for one round against a refold
        of its base table, appending stale view names to
        ``report.view_issues``.  Rounds with no summary row (written
        before the views existed, or awaiting ``repro rebuild-views``)
        are skipped — absence is legacy, not corruption."""
        if not self._has_views or not self._folded(info.round_id):
            return
        table = info.table_name
        summary = self._conn.execute(
            "SELECT responsive, available, fetched, quarantined "
            "FROM view_round_summary WHERE round_id = ?",
            (info.round_id,),
        ).fetchone()
        expected = self._scan_counts(table)
        expected["quarantined"] = self._journal_quarantine(info.round_id)
        actual = {key: int(summary[key]) for key in expected}
        if actual != expected:
            report.view_issues.append("round_summary")
        expected_rows = [
            dict(zip(IP_HISTORY_COLUMNS, row))
            for row in self._conn.execute(
                f"SELECT {_LIGHT_SELECT} FROM {table}"
            )
        ]
        actual_rows = [
            dict(zip(IP_HISTORY_COLUMNS, row))
            for row in self._conn.execute(
                f"SELECT {', '.join(IP_HISTORY_COLUMNS)} "
                "FROM view_ip_history WHERE round_id = ?",
                (info.round_id,),
            )
        ]
        if rows_checksum(expected_rows) != rows_checksum(actual_rows):
            report.view_issues.append("ip_history")
        expected_agg = []
        for column in sorted(AGGREGATE_COLUMNS):
            expected_agg.extend(
                {"column_name": column, "value": row[0], "n": int(row[1])}
                for row in self._conn.execute(
                    f"SELECT {column}, COUNT(*) FROM {table} "
                    f"WHERE {column} IS NOT NULL GROUP BY {column}"
                )
            )
        actual_agg = [
            {"column_name": row[0], "value": row[1], "n": int(row[2])}
            for row in self._conn.execute(
                "SELECT column_name, value, n FROM view_cluster_agg "
                "WHERE round_id = ?",
                (info.round_id,),
            )
        ]
        if rows_checksum(expected_agg) != rows_checksum(actual_agg):
            report.view_issues.append("cluster_agg")

    def delete_partial(self, round_id: int) -> None:
        info = self._any_round(round_id)
        if info.status != ROUND_IN_PROGRESS:
            raise ValueError(
                f"round {round_id} is {info.status}, not a partial round"
            )
        self._conn.execute(f"DROP TABLE IF EXISTS {info.table_name}")
        self._conn.execute(
            "DELETE FROM round_shards WHERE round_id = ?", (round_id,)
        )
        self._conn.execute(
            "DELETE FROM rounds WHERE round_id = ?", (round_id,)
        )
        self._delete_view_rows(round_id)
        self._commit()

    def max_round_id(self) -> int:
        row = self._conn.execute(
            "SELECT COALESCE(MAX(round_id), 0) FROM rounds"
        ).fetchone()
        return int(row[0])

    # ------------------------------------------------------------------
    # quarantine (dead-letter)

    def add_quarantine(self, entry: QuarantineRecord) -> int:
        cursor = self._conn.execute(
            "INSERT INTO quarantine "
            "(round_id, ip, timestamp, stage, verdict, error_class,"
            " error, payload, replayed) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (entry.round_id, entry.ip, entry.timestamp, entry.stage,
             entry.verdict, entry.error_class, entry.error,
             entry.payload, int(entry.replayed)),
        )
        self._commit()
        return int(cursor.lastrowid)

    def quarantine_rows(
        self,
        round_id: int | None = None,
        *,
        include_replayed: bool = True,
    ) -> list[QuarantineRecord]:
        sql = "SELECT * FROM quarantine"
        clauses, params = [], []
        if round_id is not None:
            clauses.append("round_id = ?")
            params.append(round_id)
        if not include_replayed:
            clauses.append("replayed = 0")
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY entry_id"
        cursor = self._conn.execute(sql, params)
        return [QuarantineRecord.from_row(row) for row in cursor.fetchall()]

    def quarantine_count(self, round_id: int | None = None) -> int:
        if round_id is None:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM quarantine"
            ).fetchone()
        else:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM quarantine WHERE round_id = ?",
                (round_id,),
            ).fetchone()
        return int(row[0])

    def mark_quarantine_replayed(self, entry_id: int) -> None:
        self._conn.execute(
            "UPDATE quarantine SET replayed = 1 WHERE entry_id = ?",
            (entry_id,),
        )
        self._commit()

    def update_features(
        self, round_id: int, ip: int, features: PageFeatures
    ) -> bool:
        with self._lock:
            info = self._any_round(round_id)
            old = self._conn.execute(
                f"SELECT {', '.join(_REPLAYED_AGG_COLUMNS)} "
                f"FROM {info.table_name} WHERE ip = ?",
                (ip,),
            ).fetchone()
            cursor = self._conn.execute(
                f"UPDATE {info.table_name} SET"
                " powered_by = ?, description = ?, header_string = ?,"
                " html_length = ?, title = ?, template = ?, server = ?,"
                " keywords = ?, analytics_id = ?, simhash = ?"
                " WHERE ip = ?",
                (features.powered_by, features.description,
                 features.header_string, features.html_length, features.title,
                 features.template, features.server, features.keywords,
                 features.analytics_id, f"{features.simhash:024x}", ip),
            )
            if (
                cursor.rowcount > 0
                and self._table_has_column(info.table_name, "shard_index")
            ):
                owner = self._conn.execute(
                    f"SELECT shard_index FROM {info.table_name} WHERE ip = ?",
                    (ip,),
                ).fetchone()
                if owner is not None:
                    rows = [
                        record.to_row()
                        for record in self.shard_records(round_id, owner[0])
                    ]
                    self._conn.execute(
                        "UPDATE round_shards SET checksum = ? "
                        "WHERE round_id = ? AND shard_index = ? "
                        "AND checksum != ''",
                        (shard_checksum(rows), round_id, owner[0]),
                    )
            if cursor.rowcount > 0 and old is not None:
                self._refold_replayed_row(info, ip, old)
            self._commit()
            return cursor.rowcount > 0

    def _refold_replayed_row(
        self, info: RoundInfo, ip: int, old: sqlite3.Row
    ) -> None:
        """Re-fold the read models after ``update_features`` changed a
        row in place: replace the IP's light history row and shift the
        cluster-aggregate counts from the old feature values to the new
        ones (the round summary is unaffected — replay never changes
        fetch_status or status_code)."""
        if not self._folded(info.round_id):
            return
        row = self._conn.execute(
            f"SELECT {_LIGHT_SELECT} FROM {info.table_name} WHERE ip = ?",
            (ip,),
        ).fetchone()
        if row is None:
            return
        self._conn.execute(
            "INSERT OR REPLACE INTO view_ip_history "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            tuple(row),
        )
        new_row = self._conn.execute(
            f"SELECT {', '.join(_REPLAYED_AGG_COLUMNS)} "
            f"FROM {info.table_name} WHERE ip = ?",
            (ip,),
        ).fetchone()
        for column in _REPLAYED_AGG_COLUMNS:
            old_value, new_value = old[column], new_row[column]
            if old_value == new_value:
                continue
            if old_value is not None:
                self._conn.execute(
                    "UPDATE view_cluster_agg SET n = n - 1 WHERE"
                    " round_id = ? AND column_name = ? AND value = ?",
                    (info.round_id, column, old_value),
                )
                self._conn.execute(
                    "DELETE FROM view_cluster_agg WHERE round_id = ?"
                    " AND column_name = ? AND value = ? AND n <= 0",
                    (info.round_id, column, old_value),
                )
            if new_value is not None:
                self._conn.execute(
                    "INSERT INTO view_cluster_agg VALUES (?, ?, ?, 1) "
                    "ON CONFLICT(round_id, column_name, value) "
                    "DO UPDATE SET n = n + 1",
                    (info.round_id, column, new_value),
                )

    # ------------------------------------------------------------------
    # campaign metadata

    def set_meta(self, key: str, value: str) -> None:
        with self._lock:
            self._conn.execute(
                "INSERT INTO campaign_meta VALUES (?, ?) "
                "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                (key, value),
            )
            self._commit()

    def get_meta(self, key: str, default: str | None = None) -> str | None:
        row = self._conn.execute(
            "SELECT value FROM campaign_meta WHERE key = ?", (key,)
        ).fetchone()
        return default if row is None else row["value"]

    def meta(self) -> dict[str, str]:
        cursor = self._conn.execute("SELECT key, value FROM campaign_meta")
        return {row["key"]: row["value"] for row in cursor.fetchall()}

    # ------------------------------------------------------------------
    # reads

    _ROUND_COLUMNS = (
        "round_id, timestamp, targets_probed, responsive_count, "
        "degraded, error_count, round_status, shard_size, duration_seconds"
    )

    @staticmethod
    def _round_info(row) -> RoundInfo:
        return RoundInfo(
            row["round_id"], row["timestamp"], row["targets_probed"],
            row["responsive_count"],
            degraded=bool(row["degraded"]), error_count=row["error_count"],
            status=row["round_status"], shard_size=row["shard_size"],
            duration_seconds=row["duration_seconds"],
        )

    def rounds(self) -> list[RoundInfo]:
        cursor = self._conn.execute(
            f"SELECT {self._ROUND_COLUMNS} FROM rounds "
            "WHERE round_status != ? ORDER BY timestamp, round_id",
            (ROUND_IN_PROGRESS,),
        )
        return [self._round_info(row) for row in cursor.fetchall()]

    def round_info(self, round_id: int) -> RoundInfo:
        info = self._any_round(round_id)
        if info.status == ROUND_IN_PROGRESS:
            raise KeyError(f"round {round_id} is still in progress")
        return info

    def _any_round(self, round_id: int) -> RoundInfo:
        cursor = self._conn.execute(
            f"SELECT {self._ROUND_COLUMNS} FROM rounds WHERE round_id = ?",
            (round_id,),
        )
        row = cursor.fetchone()
        if row is None:
            raise KeyError(f"no such round: {round_id}")
        return self._round_info(row)

    def _open_round(self, round_id: int) -> RoundInfo:
        info = self._any_round(round_id)
        if info.status != ROUND_IN_PROGRESS:
            raise ValueError(f"round {round_id} is not open for writing")
        return info

    def _folded(self, round_id: int) -> bool:
        """True when the round has a summary row — i.e. its read models
        are being maintained (rounds written before the views existed
        have none until ``repro rebuild-views``)."""
        return self._conn.execute(
            "SELECT 1 FROM view_round_summary WHERE round_id = ?",
            (round_id,),
        ).fetchone() is not None

    def _all_finalized_folded(self) -> bool:
        """True when every finalized round has a summary row, so the
        cross-round ``view_ip_history`` read is complete (a mixed
        legacy/new database must fall back to base scans)."""
        total = self._conn.execute(
            "SELECT COUNT(*) FROM rounds WHERE round_status != ?",
            (ROUND_IN_PROGRESS,),
        ).fetchone()[0]
        folded = self._conn.execute(
            "SELECT COUNT(*) FROM view_round_summary s"
            " JOIN rounds r ON r.round_id = s.round_id"
            " WHERE r.round_status != ?",
            (ROUND_IN_PROGRESS,),
        ).fetchone()[0]
        return int(folded) == int(total)

    def _scan_counts(self, table: str) -> dict[str, int]:
        row = self._conn.execute(
            "SELECT COUNT(*),"
            " COALESCE(SUM(CASE WHEN fetch_status = 'ok'"
            "   AND status_code IS NOT NULL THEN 1 ELSE 0 END), 0),"
            " COALESCE(SUM(CASE WHEN fetch_status != 'not-attempted'"
            "   THEN 1 ELSE 0 END), 0) "
            f"FROM {table}"
        ).fetchone()
        return {
            "responsive": int(row[0]),
            "available": int(row[1]),
            "fetched": int(row[2]),
        }

    def _journal_quarantine(self, round_id: int) -> int:
        """Quarantine entries journaled with the round's shards (the
        summary's ``quarantined`` semantics — tool-added entries live
        outside the shard protocol)."""
        if not self._table_exists("round_shards"):
            return 0
        row = self._conn.execute(
            "SELECT COALESCE(SUM(quarantine_count), 0) FROM round_shards "
            "WHERE round_id = ?",
            (round_id,),
        ).fetchone()
        return int(row[0])

    def round_stats(self, round_id: int) -> dict[str, int]:
        with self._lock:
            info = self._any_round(round_id)
            if self._has_views:
                row = self._conn.execute(
                    "SELECT responsive, available, fetched, quarantined "
                    "FROM view_round_summary WHERE round_id = ?",
                    (round_id,),
                ).fetchone()
                if row is not None:
                    return {
                        key: int(row[key])
                        for key in ("responsive", "available", "fetched",
                                    "quarantined")
                    }
            stats = self._scan_counts(info.table_name)
            stats["quarantined"] = self._journal_quarantine(round_id)
            return stats

    def aggregate_column(
        self, round_id: int, column: str, *, limit: int = 20
    ) -> list[tuple[str, int]]:
        if column not in AGGREGATE_COLUMNS:
            raise ValueError(f"cannot aggregate by column {column!r}")
        if limit <= 0:
            raise ValueError("limit must be positive")
        with self._lock:
            info = self.round_info(round_id)
            if self._has_views and self._folded(round_id):
                cursor = self._conn.execute(
                    "SELECT value, n FROM view_cluster_agg "
                    "WHERE round_id = ? AND column_name = ? "
                    "ORDER BY n DESC, value LIMIT ?",
                    (round_id, column, limit),
                )
                return [(str(row[0]), int(row[1])) for row in cursor]
            cursor = self._conn.execute(
                f"SELECT {column}, COUNT(*) AS n FROM {info.table_name} "
                f"WHERE {column} IS NOT NULL "
                f"GROUP BY {column} ORDER BY n DESC, {column} LIMIT ?",
                (limit,),
            )
            return [(str(row[0]), int(row[1])) for row in cursor.fetchall()]

    def records(self, round_id: int) -> Iterator[RoundRecord]:
        info = self.round_info(round_id)
        cursor = self._conn.execute(f"SELECT * FROM {info.table_name}")
        for row in cursor:
            yield RoundRecord.from_row(row)

    def record(self, round_id: int, ip: int) -> RoundRecord | None:
        info = self.round_info(round_id)
        cursor = self._conn.execute(
            f"SELECT * FROM {info.table_name} WHERE ip = ?", (ip,)
        )
        row = cursor.fetchone()
        return RoundRecord.from_row(row) if row else None

    def history(self, ip: int) -> list[RoundRecord]:
        history: list[RoundRecord] = []
        for info in self.rounds():
            cursor = self._conn.execute(
                f"SELECT * FROM {info.table_name} WHERE ip = ?", (ip,)
            )
            row = cursor.fetchone()
            if row is not None:
                history.append(RoundRecord.from_row(row))
        return history

    def ip_history_rows(self, ip: int) -> list[dict]:
        """One clustered-index range scan over ``view_ip_history``
        (finalized rounds only, chronological order) instead of a
        per-round full-row lookup — the serving layer's hot path."""
        with self._lock:
            if self._has_views and self._all_finalized_folded():
                columns = ", ".join(f"h.{n}" for n in IP_HISTORY_COLUMNS)
                cursor = self._conn.execute(
                    f"SELECT {columns} FROM view_ip_history h"
                    " JOIN rounds r ON r.round_id = h.round_id"
                    " WHERE h.ip = ? AND r.round_status != ?"
                    " ORDER BY h.timestamp, h.round_id",
                    (ip, ROUND_IN_PROGRESS),
                )
                return [
                    dict(zip(IP_HISTORY_COLUMNS, row)) for row in cursor
                ]
            return super().ip_history_rows(ip)

    def responsive_ips(self, round_id: int) -> set[int]:
        info = self.round_info(round_id)
        cursor = self._conn.execute(f"SELECT ip FROM {info.table_name}")
        return {row[0] for row in cursor.fetchall()}

    # ------------------------------------------------------------------
    # read models

    def rebuild_views(self) -> int:
        """Drop and refold every read model from the base tables — the
        ``repro rebuild-views`` escape hatch, and the migration path
        for databases written before the views existed.  Covers open
        rounds too (folding tracks writing, not finalization).  One
        transaction: a crash mid-rebuild rolls back to the old views."""
        with self._lock:
            if self.readonly:
                raise ValueError("store is read-only")
            try:
                for table in _VIEW_TABLES:
                    self._conn.execute(f"DELETE FROM {table}")
                rows = self._conn.execute(
                    f"SELECT {self._ROUND_COLUMNS} FROM rounds "
                    "ORDER BY timestamp, round_id"
                ).fetchall()
                refolded = 0
                for row in rows:
                    info = self._round_info(row)
                    if not self._table_exists(info.table_name):
                        continue
                    self._refold_round(info)
                    refolded += 1
                self._commit()
            except BaseException:
                self._conn.rollback()
                raise
            return refolded

    def _refold_round(self, info: RoundInfo) -> None:
        table = info.table_name
        self._conn.execute(
            f"INSERT OR REPLACE INTO view_ip_history "
            f"SELECT {_LIGHT_SELECT} FROM {table}"
        )
        counts = self._scan_counts(table)
        self._conn.execute(
            "INSERT OR REPLACE INTO view_round_summary "
            "VALUES (?, ?, ?, ?, ?)",
            (info.round_id, counts["responsive"], counts["available"],
             counts["fetched"], self._journal_quarantine(info.round_id)),
        )
        for column in sorted(AGGREGATE_COLUMNS):
            self._conn.execute(
                f"INSERT OR REPLACE INTO view_cluster_agg "
                f"SELECT ?, ?, {column}, COUNT(*) FROM {table} "
                f"WHERE {column} IS NOT NULL GROUP BY {column}",
                (info.round_id, column),
            )
        self._note_view_fold()

    # ------------------------------------------------------------------
    # lifecycle

    def close(self) -> None:
        self._conn.close()
