"""Pluggable measurement-store package.

``repro.core.store`` keeps its historical import surface (the package
replaces the old single-module store): :class:`MeasurementStore` is the
SQLite reference engine, and the protocol types live in :mod:`.base`.
New code programs against :class:`StoreBackend` and opens stores with
:func:`open_store`, which selects an engine explicitly, by inspecting
what is on disk, or from the ``REPRO_STORE_BACKEND`` environment
variable (the CI backend matrix's knob).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from .base import (
    AGGREGATE_COLUMNS,
    ROUND_COMPLETE,
    ROUND_DEGRADED,
    ROUND_IN_PROGRESS,
    RoundInfo,
    RoundVerification,
    ShardJournalEntry,
    ShardPayload,
    StoreBackend,
    is_interrupted,
    shard_checksum,
)
from .columnar import MANIFEST_NAME, ColumnarStore
from .sqlite import MeasurementStore

__all__ = [
    "ROUND_IN_PROGRESS",
    "ROUND_COMPLETE",
    "ROUND_DEGRADED",
    "AGGREGATE_COLUMNS",
    "BACKENDS",
    "RoundInfo",
    "ShardPayload",
    "ShardJournalEntry",
    "RoundVerification",
    "StoreBackend",
    "MeasurementStore",
    "ColumnarStore",
    "shard_checksum",
    "is_interrupted",
    "default_backend",
    "detect_backend",
    "open_store",
]

#: Engines :func:`open_store` can select.
BACKENDS = {
    "sqlite": MeasurementStore,
    "columnar": ColumnarStore,
}


def default_backend() -> str:
    """The backend used for *new* stores when nothing else decides:
    ``REPRO_STORE_BACKEND`` (the CI matrix knob), else sqlite."""
    return os.environ.get("REPRO_STORE_BACKEND", "sqlite")


def detect_backend(path: str) -> str | None:
    """Identify the engine behind an *existing* store path, or None
    when nothing (recognisable) is there: a directory carrying a
    columnar manifest is columnar, any existing file is sqlite, and
    ``:memory:`` is always sqlite."""
    if path == ":memory:":
        return "sqlite"
    target = Path(path)
    if target.is_dir():
        manifest = target / MANIFEST_NAME
        if manifest.is_file():
            try:
                data = json.loads(manifest.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                return None
            if data.get("backend") == ColumnarStore.BACKEND:
                return "columnar"
        return None
    if target.exists():
        return "sqlite"
    return None


def open_store(
    path: str,
    *,
    backend: str | None = None,
    readonly: bool = False,
    **kwargs,
) -> StoreBackend:
    """Open a measurement store, resolving the engine as: explicit
    *backend* argument > what's on disk (:func:`detect_backend`) >
    :func:`default_backend`.  Read-only opens never create files and
    raise the engine's missing-store error (sqlite:
    ``sqlite3.OperationalError``; columnar: ``FileNotFoundError``)."""
    resolved = backend or detect_backend(path) or default_backend()
    engine = BACKENDS.get(resolved)
    if engine is None:
        raise ValueError(
            f"unknown store backend {resolved!r}; "
            f"expected one of {sorted(BACKENDS)}"
        )
    if readonly:
        return engine.open_readonly(path, **kwargs)
    return engine(path, **kwargs)
