"""Depth-limited site crawler — the paper's §9 "deeper crawling"
extension.

WhoWas's fetcher deliberately stops at the top-level page (§4).  The
authors list "deeper crawling of websites by following links in HTML"
as future work; :class:`Crawler` implements it conservatively: starting
from a fetched home page it follows *same-host* links only, breadth
first, to a configurable depth and page budget, re-using the fetcher's
robots handling, content-type gating and body cap.  External links are
never followed and active content is never executed.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Sequence

from .config import FetchConfig
from .features import extract_internal_links
from .fetcher import Fetcher
from .records import FetchResult, FetchStatus, ProbeOutcome
from .transport import Transport, TransportError

__all__ = ["CrawlResult", "Crawler"]


@dataclass(frozen=True)
class CrawlResult:
    """All pages fetched from one IP, keyed by path."""

    ip: int
    pages: dict[str, FetchResult] = field(default_factory=dict)

    @property
    def root(self) -> FetchResult | None:
        return self.pages.get("/")

    @property
    def page_count(self) -> int:
        return len(self.pages)

    def combined_text(self) -> str:
        """Concatenated bodies — richer input for content clustering."""
        return "\n".join(
            result.body for _, result in sorted(self.pages.items())
            if result.body
        )


class Crawler:
    """Breadth-first, same-host crawler on top of the fetcher."""

    def __init__(
        self,
        transport: Transport,
        config: FetchConfig | None = None,
        *,
        max_depth: int = 1,
        max_pages: int = 5,
    ):
        if max_depth < 0:
            raise ValueError("max_depth must be non-negative")
        if max_pages < 1:
            raise ValueError("max_pages must be at least 1")
        self.config = config or FetchConfig()
        self.fetcher = Fetcher(transport, self.config)
        self.transport = transport
        self.max_depth = max_depth
        self.max_pages = max_pages

    async def crawl_ip(self, outcome: ProbeOutcome) -> CrawlResult:
        """Crawl one IP: home page first, then linked internal paths."""
        root = await self.fetcher.fetch_ip(outcome)
        pages: dict[str, FetchResult] = {"/": root}
        if root.status is not FetchStatus.OK or not root.body:
            return CrawlResult(outcome.ip, pages)
        scheme = outcome.scheme or "http"
        frontier = extract_internal_links(root.body)
        depth = 1
        while frontier and depth <= self.max_depth and \
                len(pages) < self.max_pages:
            next_frontier: list[str] = []
            for path in frontier:
                if len(pages) >= self.max_pages:
                    break
                if path in pages:
                    continue
                result = await self._fetch_path(outcome.ip, scheme, path)
                pages[path] = result
                if result.body:
                    next_frontier.extend(
                        p for p in extract_internal_links(result.body)
                        if p not in pages
                    )
            frontier = next_frontier
            depth += 1
        return CrawlResult(outcome.ip, pages)

    async def crawl(self, outcomes: Sequence[ProbeOutcome]) -> list[CrawlResult]:
        semaphore = asyncio.Semaphore(self.config.workers)

        async def bounded(outcome: ProbeOutcome) -> CrawlResult:
            async with semaphore:
                return await self.crawl_ip(outcome)

        return list(await asyncio.gather(*(bounded(o) for o in outcomes)))

    def crawl_sync(self, outcomes: Sequence[ProbeOutcome]) -> list[CrawlResult]:
        return asyncio.run(self.crawl(outcomes))

    async def _fetch_path(self, ip: int, scheme: str, path: str) -> FetchResult:
        try:
            response = await self.transport.get(
                ip,
                scheme,
                path,
                timeout=self.config.timeout,
                max_body=self.config.max_body_bytes,
                headers={"User-Agent": self.config.user_agent},
            )
        except TransportError as exc:
            return FetchResult(
                ip=ip, status=FetchStatus.ERROR,
                url=f"{scheme}://{ip}{path}", error=str(exc),
            )
        body = None
        if self.config.should_download(response.content_type):
            body = response.body[: self.config.max_body_bytes].decode(
                "utf-8", errors="replace"
            )
        return FetchResult(
            ip=ip,
            status=FetchStatus.OK,
            url=f"{scheme}://{ip}{path}",
            status_code=response.status_code,
            headers=dict(response.headers),
            body=body,
        )
