"""The WhoWas platform orchestrator.

Wires together the pipeline of Figure 1: scanner → fetcher → feature
generator → database.  One :meth:`WhoWas.run_round` call performs one
complete round of scanning over the target list, and the store exposes
the programmatic lookup interface analyses are built on.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Sequence

from .config import PlatformConfig
from .features import FeatureExtractor
from .fetcher import Fetcher
from .records import (
    FetchResult,
    FetchStatus,
    ProbeStatus,
    RoundRecord,
)
from .scanner import Scanner
from .store import MeasurementStore, RoundInfo
from .transport import Transport

__all__ = ["RoundSummary", "WhoWas"]


@dataclass(frozen=True)
class RoundSummary:
    """Aggregate results of one round (convenience for callers)."""

    info: RoundInfo
    responsive: int
    available: int
    fetched: int
    #: Classified transport errors observed this round (probes + GETs).
    errors: int = 0

    @property
    def round_id(self) -> int:
        return self.info.round_id

    @property
    def degraded(self) -> bool:
        """True when this round blew the platform's error budget."""
        return self.info.degraded


class WhoWas:
    """The measurement platform: repeatedly scans a target list.

    Parameters
    ----------
    transport:
        Network implementation (real sockets or the cloud simulator).
    store:
        Round database; defaults to an in-memory store.
    config:
        Scanner/fetcher parameters; defaults follow the paper.
    """

    def __init__(
        self,
        transport: Transport,
        store: MeasurementStore | None = None,
        config: PlatformConfig | None = None,
    ):
        self.config = config or PlatformConfig()
        self.transport = transport
        self.store = store or MeasurementStore()
        self.scanner = Scanner(
            transport, self.config.scan, blacklist=self.config.blacklist
        )
        self.fetcher = Fetcher(transport, self.config.fetch)
        self.features = FeatureExtractor()
        self._next_round_id = 1

    async def run_round_async(
        self, targets: Sequence[int], timestamp: int
    ) -> RoundSummary:
        """Perform one round: probe every target, fetch pages from IPs
        with open web ports, extract features, persist the results.

        The round always completes: classified transport failures are
        recorded on the per-IP records, and a round whose failure ratio
        exceeds ``PlatformConfig.round_error_budget`` is marked
        *degraded* in its :class:`RoundInfo` instead of raising."""
        round_id = self._next_round_id
        self._next_round_id += 1
        round_hook = getattr(self.transport, "on_round_start", None)
        if callable(round_hook):
            round_hook(round_id)

        probes_before = self.scanner.probes_sent
        probe_errors_before = self.scanner.probe_errors
        fetch_errors_before = self.fetcher.fetch_errors

        outcomes = await self.scanner.scan(targets)
        to_fetch = [o for o in outcomes if o.responsive and o.wants_fetch]
        fetch_results = await self.fetcher.fetch(to_fetch)
        fetch_by_ip = {result.ip: result for result in fetch_results}
        banners: dict[int, str] = {}
        if self.config.grab_ssh_banners:
            banners = await self._grab_banners(outcomes)

        records: list[RoundRecord] = []
        available = 0
        for outcome in outcomes:
            if outcome.status is not ProbeStatus.RESPONSIVE:
                continue
            fetch = fetch_by_ip.get(
                outcome.ip,
                FetchResult(ip=outcome.ip, status=FetchStatus.NOT_ATTEMPTED),
            )
            features = self.features.extract(fetch) if fetch.body else None
            record = RoundRecord(
                ip=outcome.ip,
                round_id=round_id,
                timestamp=timestamp,
                probe=outcome,
                fetch=fetch,
                features=features,
                ssh_banner=banners.get(outcome.ip),
            )
            if record.available:
                available += 1
            records.append(record)

        errors = (
            (self.scanner.probe_errors - probe_errors_before)
            + (self.fetcher.fetch_errors - fetch_errors_before)
        )
        operations = (
            (self.scanner.probes_sent - probes_before) + len(to_fetch)
        )
        budget = self.config.round_error_budget
        degraded = (
            budget < 1.0
            and operations > 0
            and errors / operations > budget
        )

        info = self.store.write_round(
            round_id, timestamp, len(targets), records,
            degraded=degraded, error_count=errors,
        )
        return RoundSummary(
            info=info,
            responsive=len(records),
            available=available,
            fetched=len(fetch_results),
            errors=errors,
        )

    def run_round(self, targets: Sequence[int], timestamp: int) -> RoundSummary:
        """Synchronous wrapper around :meth:`run_round_async`."""
        return asyncio.run(self.run_round_async(targets, timestamp))

    async def _grab_banners(
        self, outcomes: Sequence[ProbeOutcome]
    ) -> dict[int, str]:
        """Read SSH banners from responsive IPs with port 22 open."""
        from .records import Port
        from .transport import TransportError

        targets = [
            o.ip for o in outcomes
            if o.responsive and Port.SSH in o.open_ports
        ]
        semaphore = asyncio.Semaphore(self.config.scan.concurrency)
        timeout = self.config.scan.probe_timeout

        async def grab(ip: int) -> tuple[int, str | None]:
            async with semaphore:
                try:
                    return ip, await self.transport.banner(ip, 22, timeout)
                except TransportError:
                    return ip, None

        results = await asyncio.gather(*(grab(ip) for ip in targets))
        return {ip: banner for ip, banner in results if banner}

    def history(self, ip: int) -> list[RoundRecord]:
        """Lookup: history of status and content for an IP over time."""
        return self.store.history(ip)
