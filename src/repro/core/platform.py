"""The WhoWas platform orchestrator.

Wires together the pipeline of Figure 1: scanner → fetcher → feature
generator → database.  One :meth:`WhoWas.run_round` call performs one
complete round of scanning over the target list, and the store exposes
the programmatic lookup interface analyses are built on.

Rounds are processed in **shards** of ``PlatformConfig.shard_size``
targets, each committed to the store as it completes (the journaled
protocol of :class:`~repro.core.store.MeasurementStore`).  A crash or a
cooperative abort (``abort_event``) therefore loses at most one shard
of work; the round stays ``in_progress`` in the store and a later call
with ``resume_round_id`` finishes exactly the shards that are missing.
Round IDs are durable: they continue from ``max(round_id) + 1`` in the
store rather than resetting to 1 on process start.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Sequence

from .config import PlatformConfig
from .features import FeatureExtractor
from .fetcher import Fetcher
from .guard import Supervisor
from .records import (
    FetchResult,
    FetchStatus,
    ProbeOutcome,
    ProbeStatus,
    RoundRecord,
)
from .scanner import Scanner
from .store import MeasurementStore, RoundInfo
from .transport import Transport

__all__ = ["RoundSummary", "RoundInterrupted", "WhoWas"]


class RoundInterrupted(Exception):
    """A round stopped cooperatively after checkpointing its current
    shard; the store holds a resumable partial round."""

    def __init__(
        self, round_id: int, timestamp: int,
        shards_done: int, shards_total: int,
    ):
        self.round_id = round_id
        self.timestamp = timestamp
        self.shards_done = shards_done
        self.shards_total = shards_total
        super().__init__(
            f"round {round_id} (day {timestamp}) interrupted after "
            f"{shards_done}/{shards_total} shards; resumable"
        )


@dataclass(frozen=True)
class RoundSummary:
    """Aggregate results of one round (convenience for callers)."""

    info: RoundInfo
    responsive: int
    available: int
    fetched: int
    #: Classified transport errors observed this round (probes + GETs).
    errors: int = 0
    #: Targets skipped because their /24's circuit breaker was open.
    circuit_open: int = 0
    #: Dead-letter entries the supervision layer wrote this round.
    quarantined: int = 0

    @property
    def round_id(self) -> int:
        return self.info.round_id

    @property
    def degraded(self) -> bool:
        """True when this round blew the platform's error budget."""
        return self.info.degraded


class WhoWas:
    """The measurement platform: repeatedly scans a target list.

    Parameters
    ----------
    transport:
        Network implementation (real sockets or the cloud simulator).
    store:
        Round database; defaults to an in-memory store.  Round IDs
        continue from the store's high-water mark, so reopening a
        campaign database never reuses an ID.
    config:
        Scanner/fetcher parameters; defaults follow the paper.
    """

    def __init__(
        self,
        transport: Transport,
        store: MeasurementStore | None = None,
        config: PlatformConfig | None = None,
    ):
        self.config = config or PlatformConfig()
        self.transport = transport
        self.store = store or MeasurementStore()
        self.scanner = Scanner(
            transport, self.config.scan, blacklist=self.config.blacklist
        )
        # One supervisor spans fetch and extract so both stages feed the
        # same AIMD controller and dead-letter quarantine.
        self.guard = Supervisor(
            self.config.guard, concurrency=self.config.fetch.workers
        )
        self.fetcher = Fetcher(transport, self.config.fetch, guard=self.guard)
        self.features = FeatureExtractor()
        self._next_round_id = self.store.max_round_id() + 1

    async def run_round_async(
        self,
        targets: Sequence[int],
        timestamp: int,
        *,
        abort_event: asyncio.Event | None = None,
        resume_round_id: int | None = None,
    ) -> RoundSummary:
        """Perform one round: probe every target, fetch pages from IPs
        with open web ports, extract features, persist the results.

        The round always completes: classified transport failures are
        recorded on the per-IP records, and a round whose failure ratio
        exceeds ``PlatformConfig.round_error_budget`` is marked
        *degraded* in its :class:`RoundInfo` instead of raising.

        Targets are processed in shards checkpointed as they commit.
        When *abort_event* is set, the in-flight shard finishes and the
        round is left ``in_progress`` behind a :class:`RoundInterrupted`.
        Passing *resume_round_id* re-enters such a round: committed
        shards are skipped, so no row is ever duplicated.
        """
        if resume_round_id is not None:
            round_id = resume_round_id
            info = self.store.begin_round(
                round_id, timestamp, len(targets),
                shard_size=self.config.shard_size,
            )
            done = self.store.completed_shards(round_id)
            # Shard indices must line up with the committed ones, so a
            # resumed round keeps the shard size it started with.
            shard_size = info.shard_size or self.config.shard_size
        else:
            round_id = self._next_round_id
            self.store.begin_round(
                round_id, timestamp, len(targets),
                shard_size=self.config.shard_size,
            )
            done = set()
            shard_size = self.config.shard_size
        self._next_round_id = max(self._next_round_id, round_id + 1)
        round_hook = getattr(self.transport, "on_round_start", None)
        if callable(round_hook):
            round_hook(round_id)
        self.scanner.breaker.reset()
        self.guard.start_round(round_id, timestamp)

        shards = [
            targets[start:start + shard_size]
            for start in range(0, len(targets), shard_size)
        ] or [targets]
        circuit_before = self.scanner.circuit_open_skips
        for index, shard in enumerate(shards):
            if index in done:
                continue
            if abort_event is not None and abort_event.is_set():
                raise RoundInterrupted(
                    round_id, timestamp,
                    len(self.store.completed_shards(round_id)), len(shards),
                )
            records, errors, operations = await self._run_shard(
                shard, round_id, timestamp
            )
            self.store.write_shard(
                round_id, index, records,
                errors=errors, operations=operations,
                quarantine=self.guard.drain_quarantine(),
            )

        errors, operations = self.store.shard_stats(round_id)
        budget = self.config.round_error_budget
        degraded = (
            budget < 1.0
            and operations > 0
            and errors / operations > budget
        )
        info = self.store.finalize_round(
            round_id, degraded=degraded, error_count=errors
        )
        stats = self.store.round_stats(round_id)
        return RoundSummary(
            info=info,
            responsive=stats["responsive"],
            available=stats["available"],
            fetched=stats["fetched"],
            errors=errors,
            circuit_open=self.scanner.circuit_open_skips - circuit_before,
            quarantined=self.store.quarantine_count(round_id),
        )

    async def _run_shard(
        self, shard: Sequence[int], round_id: int, timestamp: int
    ) -> tuple[list[RoundRecord], int, int]:
        """Scan/fetch/extract one shard; returns its records plus the
        shard's classified-error and network-operation counts."""
        scan_before = self.scanner.stats_snapshot()
        fetch_before = self.fetcher.stats_snapshot()

        outcomes = await self.scanner.scan(shard)
        to_fetch = [o for o in outcomes if o.responsive and o.wants_fetch]
        fetch_results = await self.fetcher.fetch(to_fetch)
        fetch_by_ip = {result.ip: result for result in fetch_results}
        banners: dict[int, str] = {}
        if self.config.grab_ssh_banners:
            banners = await self._grab_banners(outcomes)

        records: list[RoundRecord] = []
        for outcome in outcomes:
            if outcome.status is not ProbeStatus.RESPONSIVE:
                continue
            fetch = fetch_by_ip.get(
                outcome.ip,
                FetchResult(ip=outcome.ip, status=FetchStatus.NOT_ATTEMPTED),
            )
            features = None
            if fetch.body:
                # Guarded extraction: a poison page yields sentinel
                # features plus a quarantine entry, never a crash.
                features = await self.guard.extract_features(
                    self.features, fetch
                )
            records.append(RoundRecord(
                ip=outcome.ip,
                round_id=round_id,
                timestamp=timestamp,
                probe=outcome,
                fetch=fetch,
                features=features,
                ssh_banner=banners.get(outcome.ip),
            ))

        scan_after = self.scanner.stats_snapshot()
        fetch_after = self.fetcher.stats_snapshot()
        errors = (
            (scan_after["probe_errors"] - scan_before["probe_errors"])
            + (fetch_after["fetch_errors"] - fetch_before["fetch_errors"])
        )
        operations = (
            (scan_after["probes_sent"] - scan_before["probes_sent"])
            + len(to_fetch)
        )
        return records, errors, operations

    def run_round(
        self,
        targets: Sequence[int],
        timestamp: int,
        *,
        abort_event: asyncio.Event | None = None,
        resume_round_id: int | None = None,
    ) -> RoundSummary:
        """Synchronous wrapper around :meth:`run_round_async`."""
        return asyncio.run(self.run_round_async(
            targets, timestamp,
            abort_event=abort_event, resume_round_id=resume_round_id,
        ))

    async def _grab_banners(
        self, outcomes: Sequence[ProbeOutcome]
    ) -> dict[int, str]:
        """Read SSH banners from responsive IPs with port 22 open."""
        from .records import Port
        from .transport import TransportError

        targets = [
            o.ip for o in outcomes
            if o.responsive and Port.SSH in o.open_ports
        ]
        semaphore = asyncio.Semaphore(self.config.scan.concurrency)
        timeout = self.config.scan.probe_timeout

        async def grab(ip: int) -> tuple[int, str | None]:
            async with semaphore:
                try:
                    return ip, await self.transport.banner(ip, 22, timeout)
                except TransportError:
                    return ip, None

        results = await asyncio.gather(*(grab(ip) for ip in targets))
        return {ip: banner for ip, banner in results if banner}

    def history(self, ip: int) -> list[RoundRecord]:
        """Lookup: history of status and content for an IP over time."""
        return self.store.history(ip)
