"""The WhoWas platform orchestrator.

Wires together the pipeline of Figure 1: scanner → fetcher → feature
generator → database.  One :meth:`WhoWas.run_round` call performs one
complete round of scanning over the target list, and the store exposes
the programmatic lookup interface analyses are built on.

Rounds are processed in **shards** of ``PlatformConfig.shard_size``
targets, each committed to the store as it completes (the journaled
protocol of :class:`~repro.core.store.StoreBackend`, regardless of
which engine — sqlite or columnar — backs it).  A crash or a
cooperative abort (``abort_event``) therefore loses at most one shard
of work; the round stays ``in_progress`` in the store and a later call
with ``resume_round_id`` finishes exactly the shards that are missing.
Round IDs are durable: they continue from ``max(round_id) + 1`` in the
store rather than resetting to 1 on process start.

With ``PipelineConfig.overlap`` (the default) the shard stages run as
a streaming pipeline (:mod:`repro.core.pipeline`): shard *N+1* scans
while *N* fetches and *N−1* extracts, and a writer stage batches
commits off the hot path.  ``pipeline.overlap=False`` reproduces the
strictly serial engine; both modes produce identical store contents.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass
from typing import Sequence

from .config import PlatformConfig
from .features import FeatureExtractor
from .fetcher import Fetcher
from .guard import GuardVerdict, StageDeadlineExceeded, Supervisor
from .pipeline import RoundPipeline, ShardWork
from .records import (
    FetchResult,
    FetchStatus,
    PipelineStats,
    Port,
    ProbeOutcome,
    ProbeStatus,
    QuarantineRecord,
    RoundRecord,
)
from .scanner import Scanner
from .store import MeasurementStore, RoundInfo, ShardPayload, StoreBackend
from .transport import Transport, TransportError
from . import telemetry as _telemetry

__all__ = ["RoundSummary", "RoundInterrupted", "WhoWas"]

#: ``campaign_meta`` key prefix under which per-round pipeline stats
#: are persisted as JSON (read back by ``repro stats``).
PIPELINE_STATS_META_PREFIX = "pipeline_stats:"


class RoundInterrupted(Exception):
    """A round stopped cooperatively after checkpointing its current
    shard; the store holds a resumable partial round."""

    def __init__(
        self, round_id: int, timestamp: int,
        shards_done: int, shards_total: int,
    ):
        self.round_id = round_id
        self.timestamp = timestamp
        self.shards_done = shards_done
        self.shards_total = shards_total
        super().__init__(
            f"round {round_id} (day {timestamp}) interrupted after "
            f"{shards_done}/{shards_total} shards; resumable"
        )


@dataclass(frozen=True)
class RoundSummary:
    """Aggregate results of one round (convenience for callers)."""

    info: RoundInfo
    responsive: int
    available: int
    fetched: int
    #: Classified transport errors observed this round (probes + GETs).
    errors: int = 0
    #: Targets skipped because their /24's circuit breaker was open.
    circuit_open: int = 0
    #: Dead-letter entries the supervision layer wrote this round.
    quarantined: int = 0
    #: Per-stage pipeline telemetry for the run that produced the
    #: round (None for summaries rebuilt from the store alone).
    pipeline: PipelineStats | None = None

    @property
    def round_id(self) -> int:
        return self.info.round_id

    @property
    def degraded(self) -> bool:
        """True when this round blew the platform's error budget."""
        return self.info.degraded

    @property
    def duration_seconds(self) -> float:
        """Wall-clock seconds the producing run spent on the round."""
        return self.info.duration_seconds


class WhoWas:
    """The measurement platform: repeatedly scans a target list.

    Parameters
    ----------
    transport:
        Network implementation (real sockets or the cloud simulator).
    store:
        Round database; defaults to an in-memory store.  Round IDs
        continue from the store's high-water mark, so reopening a
        campaign database never reuses an ID.
    config:
        Scanner/fetcher parameters; defaults follow the paper.
    transport_factory:
        Picklable ``factory(timestamp) -> Transport`` that rebuilds the
        network from parameters alone; required when
        ``config.workers.count > 1`` (each spawned partition worker
        builds its own transport from it).
    proc_chaos:
        Process-level fault plan for the multi-process engine (chaos
        tier only).
    """

    def __init__(
        self,
        transport: Transport,
        store: StoreBackend | None = None,
        config: PlatformConfig | None = None,
        *,
        transport_factory=None,
        proc_chaos=None,
    ):
        self.config = config or PlatformConfig()
        # Activate telemetry before any instrumented component caches
        # its metric handles (spawned partition workers light up here
        # too, from the TelemetryConfig pickled inside their config).
        _telemetry.activate_from(self.config.telemetry)
        self.transport = transport
        self.transport_factory = transport_factory
        self.proc_chaos = proc_chaos
        self.store = store or MeasurementStore()
        self.scanner = Scanner(
            transport, self.config.scan, blacklist=self.config.blacklist
        )
        # One supervisor spans fetch and extract so both stages feed the
        # same AIMD controller and dead-letter quarantine.
        self.guard = Supervisor(
            self.config.guard, concurrency=self.config.fetch.workers
        )
        self.fetcher = Fetcher(transport, self.config.fetch, guard=self.guard)
        self.features = FeatureExtractor()
        self._next_round_id = self.store.max_round_id() + 1
        #: Partition index when running as a spawned worker (span
        #: attribution only); None in single-process engines.
        self._worker_index: int | None = None
        # run_round's reusable event loop (created on first use); a
        # fresh loop per round would tear down and rebuild every
        # loop-bound primitive each round.
        self._loop: asyncio.AbstractEventLoop | None = None

    async def run_round_async(
        self,
        targets: Sequence[int],
        timestamp: int,
        *,
        abort_event: asyncio.Event | None = None,
        resume_round_id: int | None = None,
    ) -> RoundSummary:
        """Perform one round: probe every target, fetch pages from IPs
        with open web ports, extract features, persist the results.

        The round always completes: classified transport failures are
        recorded on the per-IP records, and a round whose failure ratio
        exceeds ``PlatformConfig.round_error_budget`` is marked
        *degraded* in its :class:`RoundInfo` instead of raising.

        Targets are processed in shards checkpointed as they commit.
        When *abort_event* is set, the in-flight shards finish and the
        round is left ``in_progress`` behind a :class:`RoundInterrupted`.
        Passing *resume_round_id* re-enters such a round: committed
        shards are skipped, so no row is ever duplicated.
        """
        if self.config.workers.count > 1:
            raise RuntimeError(
                "multi-process rounds (workers.count > 1) must go through "
                "the synchronous run_round(), which owns the worker pool"
            )
        started = time.perf_counter()
        if resume_round_id is not None:
            round_id = resume_round_id
            info = self.store.begin_round(
                round_id, timestamp, len(targets),
                shard_size=self.config.shard_size,
            )
            done = self.store.completed_shards(round_id)
            # Shard indices must line up with the committed ones, so a
            # resumed round keeps the shard size it started with.
            shard_size = info.shard_size or self.config.shard_size
        else:
            round_id = self._next_round_id
            self.store.begin_round(
                round_id, timestamp, len(targets),
                shard_size=self.config.shard_size,
            )
            done = set()
            shard_size = self.config.shard_size
        self._next_round_id = max(self._next_round_id, round_id + 1)
        round_hook = getattr(self.transport, "on_round_start", None)
        if callable(round_hook):
            round_hook(round_id)
        self.scanner.breaker.reset()
        self.guard.start_round(round_id, timestamp)

        shards = [
            targets[start:start + shard_size]
            for start in range(0, len(targets), shard_size)
        ] or [targets]
        circuit_before = self.scanner.circuit_open_skips
        work_items = (
            ShardWork(index=index, targets=shard)
            for index, shard in enumerate(shards)
            if index not in done
        )

        if self.config.pipeline.overlap:
            stats, aborted = await self._run_overlapped(
                work_items, round_id, abort_event
            )
        else:
            stats, aborted = await self._run_serial(
                work_items, round_id, abort_event
            )
        if aborted:
            raise RoundInterrupted(
                round_id, timestamp,
                len(self.store.completed_shards(round_id)), len(shards),
            )

        errors, operations = self.store.shard_stats(round_id)
        budget = self.config.round_error_budget
        degraded = (
            budget < 1.0
            and operations > 0
            and errors / operations > budget
        )
        info = self.store.finalize_round(
            round_id, degraded=degraded, error_count=errors,
            duration_seconds=time.perf_counter() - started,
        )
        self._note_round_finalized(info)
        # Persist the run's pipeline telemetry so `repro stats` can
        # show it after the process is gone.
        self.store.set_meta(
            f"{PIPELINE_STATS_META_PREFIX}{round_id}",
            json.dumps(stats.to_dict(), sort_keys=True),
        )
        round_stats = self.store.round_stats(round_id)
        return RoundSummary(
            info=info,
            responsive=round_stats["responsive"],
            available=round_stats["available"],
            fetched=round_stats["fetched"],
            errors=errors,
            circuit_open=self.scanner.circuit_open_skips - circuit_before,
            quarantined=self.store.quarantine_count(round_id),
            pipeline=stats,
        )

    # ------------------------------------------------------------------
    # round engines: overlapped (streaming pipeline) and serial

    async def _run_overlapped(
        self,
        work_items,
        round_id: int,
        abort_event: asyncio.Event | None,
    ) -> tuple[PipelineStats, bool]:
        """Stream the shards through :class:`RoundPipeline`."""
        offload = self.config.pipeline.writer_offload

        async def write_batch(works: list[ShardWork]) -> tuple[int, int]:
            payloads = [
                ShardPayload(
                    work.index, tuple(work.records),
                    errors=work.errors, operations=work.operations,
                    quarantine=tuple(work.quarantine),
                )
                for work in works
            ]
            if offload:
                committed = await asyncio.to_thread(
                    self.store.write_shards, round_id, payloads
                )
            else:
                committed = self.store.write_shards(round_id, payloads)
            return committed, sum(len(p.records) for p in payloads)

        pipeline = RoundPipeline(
            config=self.config.pipeline,
            scan=self._scan_shard,
            fetch=self._fetch_shard,
            extract=self._extract_shard,
            write_batch=write_batch,
            controller=self.guard.controller,
            abort_event=abort_event,
            round_id=round_id,
            worker=self._worker_index,
        )
        stats = await pipeline.run(work_items)
        return stats, pipeline.aborted

    async def _run_serial(
        self,
        work_items,
        round_id: int,
        abort_event: asyncio.Event | None,
    ) -> tuple[PipelineStats, bool]:
        """The escape-hatch engine: one shard at a time, one commit per
        shard — behaviourally identical to the pre-pipeline platform.
        Runs the same stage bodies as the overlapped engine so the two
        can only differ in scheduling, never in measurement semantics.
        """
        stats = PipelineStats(mode="serial")
        tel = _telemetry.get()
        begun_round = time.perf_counter()
        aborted = False
        for work in work_items:
            if abort_event is not None and abort_event.is_set():
                aborted = True
                break
            for name, fn in (
                ("scan", self._scan_shard),
                ("fetch", self._fetch_shard),
                ("extract", self._extract_shard),
            ):
                stage = stats.stage(name)
                begun = time.perf_counter()
                with tel.span(name, round_id=round_id, shard=work.index,
                              worker=self._worker_index):
                    items = await fn(work)
                stage.busy_seconds += time.perf_counter() - begun
                stage.shards += 1
                stage.items += items
            stage = stats.stage("write")
            begun = time.perf_counter()
            committed = self.store.write_shard(
                round_id, work.index, work.records,
                errors=work.errors, operations=work.operations,
                quarantine=work.quarantine,
            )
            elapsed = time.perf_counter() - begun
            stage.busy_seconds += elapsed
            if committed:
                stage.shards += 1
                stage.items += len(work.records)
                stats.shards_written += 1
                stats.records_written += len(work.records)
                stats.writer_flushes += 1
                stats.writer_flush_seconds += elapsed
                stats.writer_max_flush_seconds = max(
                    stats.writer_max_flush_seconds, elapsed
                )
                stats.writer_max_batch = max(stats.writer_max_batch, 1)
        stats.wall_seconds = time.perf_counter() - begun_round
        return stats, aborted

    # ------------------------------------------------------------------
    # multi-process engine

    async def run_partition_async(
        self,
        work_items,
        *,
        round_id: int,
        timestamp: int,
        worker: int | None = None,
    ) -> PipelineStats:
        """Run a subset of a round's shards into this platform's store
        — the partition-worker entry point (:mod:`repro.core.workers`).
        The caller owns the round lifecycle: ``begin_round`` must
        already have run against this platform's store, and nothing is
        finalized here."""
        self._worker_index = worker
        round_hook = getattr(self.transport, "on_round_start", None)
        if callable(round_hook):
            round_hook(round_id)
        self.scanner.breaker.reset()
        self.guard.start_round(round_id, timestamp)
        if self.config.pipeline.overlap:
            stats, _ = await self._run_overlapped(work_items, round_id, None)
        else:
            stats, _ = await self._run_serial(work_items, round_id, None)
        return stats

    def _run_round_multiprocess(
        self,
        targets: Sequence[int],
        timestamp: int,
        *,
        abort_event: asyncio.Event | None,
        resume_round_id: int | None,
    ) -> RoundSummary:
        """Coordinator for ``workers.count > 1``: partition the round's
        shards across spawned workers under a
        :class:`~repro.core.workers.WorkerSupervisor`, then finalize
        from the merged canonical journal exactly as the in-process
        engines would."""
        from .workers import WorkerSupervisor

        if self.transport_factory is None:
            raise ValueError(
                "workers.count > 1 requires a picklable transport_factory"
            )
        started = time.perf_counter()
        if resume_round_id is not None:
            round_id = resume_round_id
            info = self.store.begin_round(
                round_id, timestamp, len(targets),
                shard_size=self.config.shard_size,
            )
            shard_size = info.shard_size or self.config.shard_size
        else:
            round_id = self._next_round_id
            self.store.begin_round(
                round_id, timestamp, len(targets),
                shard_size=self.config.shard_size,
            )
            shard_size = self.config.shard_size
        self._next_round_id = max(self._next_round_id, round_id + 1)

        shards = [
            targets[start:start + shard_size]
            for start in range(0, len(targets), shard_size)
        ] or [targets]
        done = self.store.completed_shards(round_id)
        remaining = [
            (index, tuple(shard))
            for index, shard in enumerate(shards)
            if index not in done
        ]
        writer_before = self.store.writer_stats_snapshot()
        supervisor = WorkerSupervisor(
            self.store, self.config, self.transport_factory,
            chaos=self.proc_chaos,
        )
        report = supervisor.run(
            remaining, round_id=round_id, timestamp=timestamp,
            abort_event=abort_event,
        )
        if report.aborted:
            raise RoundInterrupted(
                round_id, timestamp,
                len(self.store.completed_shards(round_id)), len(shards),
            )
        stats = report.stats
        writer_after = self.store.writer_stats_snapshot()
        stats.writer_flushes = (
            writer_after["flush_count"] - writer_before["flush_count"]
        )
        stats.writer_flush_seconds = (
            writer_after["flush_seconds"] - writer_before["flush_seconds"]
        )
        stats.writer_max_flush_seconds = writer_after["max_flush_seconds"]
        stats.writer_max_batch = max(stats.writer_max_batch, 1)
        stats.wall_seconds = time.perf_counter() - started

        errors, operations = self.store.shard_stats(round_id)
        budget = self.config.round_error_budget
        degraded = (
            budget < 1.0
            and operations > 0
            and errors / operations > budget
        ) or report.forced_degraded
        info = self.store.finalize_round(
            round_id, degraded=degraded, error_count=errors,
            duration_seconds=time.perf_counter() - started,
        )
        self._note_round_finalized(info)
        self.store.set_meta(
            f"{PIPELINE_STATS_META_PREFIX}{round_id}",
            json.dumps(stats.to_dict(), sort_keys=True),
        )
        round_stats = self.store.round_stats(round_id)
        return RoundSummary(
            info=info,
            responsive=round_stats["responsive"],
            available=round_stats["available"],
            fetched=round_stats["fetched"],
            errors=errors,
            quarantined=self.store.quarantine_count(round_id),
            pipeline=stats,
        )

    @staticmethod
    def _note_round_finalized(info: RoundInfo) -> None:
        tel = _telemetry.get()
        tel.counter(
            "repro_rounds_total", "Rounds finalized, by status",
            labels=("status",),
        ).labels(status=info.status).inc()
        tel.histogram(
            "repro_round_seconds", "Wall-clock per finalized round",
        ).observe(info.duration_seconds)

    # ------------------------------------------------------------------
    # shard stages (shared by both engines)

    async def _scan_shard(self, work: ShardWork) -> int:
        """Probe the shard's targets; charges probe errors/operations
        to the shard.  Counter diffs are safe under overlap because the
        scan stage processes one shard at a time and no other stage
        touches the scanner."""
        before = self.scanner.stats_snapshot()
        work.outcomes = list(await self.scanner.scan(work.targets))
        after = self.scanner.stats_snapshot()
        work.errors += after["probe_errors"] - before["probe_errors"]
        work.operations += after["probes_sent"] - before["probes_sent"]
        return len(work.targets)

    async def _fetch_shard(self, work: ShardWork) -> int:
        """Fetch pages (and SSH banners) for the shard's responsive
        IPs; dead letters go to the shard's own quarantine sink."""
        to_fetch = [
            o for o in work.outcomes if o.responsive and o.wants_fetch
        ]
        before = self.fetcher.stats_snapshot()
        work.fetch_results = await self.fetcher.fetch(
            to_fetch, quarantine=work.quarantine
        )
        after = self.fetcher.stats_snapshot()
        if self.config.grab_ssh_banners:
            work.banners = await self._grab_banners(
                work.outcomes, quarantine=work.quarantine
            )
        work.errors += after["fetch_errors"] - before["fetch_errors"]
        work.operations += len(to_fetch)
        return len(to_fetch)

    async def _extract_shard(self, work: ShardWork) -> int:
        """Build the shard's records, extracting page features under
        the supervision layer."""
        fetch_by_ip = {result.ip: result for result in work.fetch_results}
        records: list[RoundRecord] = []
        for outcome in work.outcomes:
            if outcome.status is not ProbeStatus.RESPONSIVE:
                continue
            fetch = fetch_by_ip.get(
                outcome.ip,
                FetchResult(ip=outcome.ip, status=FetchStatus.NOT_ATTEMPTED),
            )
            features = None
            if fetch.body:
                # Guarded extraction: a poison page yields sentinel
                # features plus a quarantine entry, never a crash.
                features = await self.guard.extract_features(
                    self.features, fetch, sink=work.quarantine
                )
            records.append(RoundRecord(
                ip=outcome.ip,
                round_id=self.guard.round_id,
                timestamp=self.guard.timestamp,
                probe=outcome,
                fetch=fetch,
                features=features,
                ssh_banner=work.banners.get(outcome.ip),
            ))
        work.records = records
        return len(records)

    # ------------------------------------------------------------------

    def run_round(
        self,
        targets: Sequence[int],
        timestamp: int,
        *,
        abort_event: asyncio.Event | None = None,
        resume_round_id: int | None = None,
    ) -> RoundSummary:
        """Synchronous wrapper around :meth:`run_round_async`.

        Reuses one event loop across rounds (``asyncio.run`` per round
        would rebuild every loop-bound primitive each time); call
        :meth:`close` — or use the platform as a context manager — to
        release it.

        With ``config.workers.count > 1`` the round instead runs on the
        multi-process engine: shards are partitioned across spawned
        workers and merged back through the checksum-verified journal
        protocol — byte-identical results, supervised execution.
        """
        if self.config.workers.count > 1:
            return self._run_round_multiprocess(
                targets, timestamp,
                abort_event=abort_event, resume_round_id=resume_round_id,
            )
        try:
            asyncio.get_running_loop()
        except RuntimeError:
            pass
        else:
            raise RuntimeError(
                "run_round called from a running event loop; "
                "await run_round_async instead"
            )
        if self._loop is None or self._loop.is_closed():
            self._loop = asyncio.new_event_loop()
        return self._loop.run_until_complete(self.run_round_async(
            targets, timestamp,
            abort_event=abort_event, resume_round_id=resume_round_id,
        ))

    def close(self) -> None:
        """Release the reusable event loop (idempotent)."""
        if self._loop is not None and not self._loop.is_closed():
            self._loop.close()
        self._loop = None

    def __enter__(self) -> "WhoWas":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort; close() is the real API
        try:
            self.close()
        except Exception:
            pass

    async def _grab_banners(
        self,
        outcomes: Sequence[ProbeOutcome],
        *,
        quarantine: list[QuarantineRecord] | None = None,
    ) -> dict[int, str]:
        """Read SSH banners from responsive IPs with port 22 open.

        Runs through the supervisor's bounded work queue under the
        fetch deadline, so a hung banner read is killed and quarantined
        instead of stalling the round (the old path was a bare
        ``asyncio.gather`` with no deadline)."""
        targets = [
            o.ip for o in outcomes
            if o.responsive and Port.SSH in o.open_ports
        ]
        timeout = self.config.scan.probe_timeout

        async def grab(ip: int) -> tuple[int, str | None]:
            try:
                return ip, await self.transport.banner(ip, 22, timeout)
            except TransportError:
                return ip, None

        def fallback(ip: int, exc: BaseException) -> tuple[int, str | None]:
            verdict = (
                GuardVerdict.STAGE_DEADLINE
                if isinstance(exc, StageDeadlineExceeded)
                else GuardVerdict.TASK_ERROR
            )
            self.guard.quarantine(
                ip=ip, stage=Supervisor.BANNER, verdict=verdict, exc=exc,
                sink=quarantine,
            )
            return ip, None

        results = await self.guard.map(
            targets,
            grab,
            stage=Supervisor.BANNER,
            deadline=self.guard.config.fetch_deadline,
            fallback=fallback,
        )
        return {ip: banner for ip, banner in results if banner}

    def history(self, ip: int) -> list[RoundRecord]:
        """Lookup: history of status and content for an IP over time."""
        return self.store.history(ip)
