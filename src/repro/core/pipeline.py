"""Streaming stage-parallel round pipeline.

One round of scanning used to process shards strictly serially: scan
shard *N*, fetch it, extract it, commit it, then start shard *N+1*.
Every stage idled while the others worked.  This module runs the stages
as concurrent coroutines connected by bounded FIFO queues, so shard
*N+1* scans while *N* fetches and *N−1* extracts, and a dedicated
store-writer stage commits completed shards off the hot path in small
batched transactions.

Invariants the pipeline preserves relative to the serial engine:

* **Commit order.** Queues are FIFO and every stage consumes one shard
  at a time, so shards reach the writer — and therefore the store — in
  shard-index order, exactly like the serial checkpoint loop.
* **Crash equivalence.** When any stage fails on shard *k*, the
  pipeline stops feeding, lets shards *< k* already downstream drain
  through the writer, discards shards *> k*, and re-raises the first
  error.  The set of committed shards is exactly what the serial
  engine would have committed before crashing on *k*.
* **Abort semantics.** A set ``abort_event`` stops the feeder; every
  shard already in flight drains and commits, then the platform raises
  :class:`~repro.core.platform.RoundInterrupted` with a resumable
  partial round.
* **Backpressure.** The scan→fetch queue's *effective* capacity is
  scaled by the supervisor's AIMD controller
  (``depth × limit / max_limit``), so a fetch-side error storm
  throttles scanning instead of piling up probed-but-unfetched shards.
"""

from __future__ import annotations

import asyncio
import math
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Iterable, Sequence

from .config import PipelineConfig
from .records import PipelineStats
from . import telemetry as _telemetry

__all__ = ["ShardWork", "BoundedShardQueue", "RoundPipeline"]

#: End-of-stream marker passed through every queue exactly once.
_DONE = object()
#: ``try_get`` result when the queue is momentarily empty.
_EMPTY = object()


@dataclass
class ShardWork:
    """One shard's state as it moves through the stages.

    Each stage fills in its slice: scan produces ``outcomes``, fetch
    produces ``fetch_results`` (and SSH ``banners``), extract produces
    ``records`` plus the shard's dead-letter ``quarantine`` entries and
    its journaled ``errors``/``operations`` counts.
    """

    index: int
    targets: Sequence[int]
    outcomes: list = field(default_factory=list)
    fetch_results: list = field(default_factory=list)
    banners: dict = field(default_factory=dict)
    records: list = field(default_factory=list)
    quarantine: list = field(default_factory=list)
    errors: int = 0
    operations: int = 0


class BoundedShardQueue:
    """Bounded FIFO between two stages with a *dynamic* capacity.

    Plain ``asyncio.Queue`` has a fixed ``maxsize``; this queue instead
    recomputes its capacity on every ``put`` so an AIMD *limiter* (the
    supervisor's fetch-concurrency controller) can modulate how far the
    producer may run ahead: ``max(1, ceil(depth × limit / max_limit))``.
    Tracks occupancy peaks and producer blocking for telemetry.
    """

    def __init__(self, depth: int, *, limiter=None,
                 depth_gauge=None, wait_counter=None):
        self._depth = depth
        self._limiter = limiter
        self._items: deque = deque()
        self._cond = asyncio.Condition()
        #: Highest occupancy ever observed.
        self.peak = 0
        #: Number of ``put`` calls that had to wait for space.
        self.put_waits = 0
        # Live telemetry children (None while telemetry is disabled, so
        # the hot path pays one None-check per operation).
        self._depth_gauge = depth_gauge
        self._wait_counter = wait_counter

    def capacity(self) -> int:
        """Current effective capacity (AIMD-scaled when a limiter is
        attached; the control marker ending the stream is exempt)."""
        if self._limiter is None:
            return self._depth
        scaled = self._depth * self._limiter.limit / self._limiter.max_limit
        return max(1, math.ceil(scaled))

    def __len__(self) -> int:
        return len(self._items)

    async def put(self, item) -> None:
        async with self._cond:
            # _DONE is flow control, not work: it must never deadlock
            # behind a full queue.
            if item is not _DONE and len(self._items) >= self.capacity():
                self.put_waits += 1
                if self._wait_counter is not None:
                    self._wait_counter.inc()
                while len(self._items) >= self.capacity():
                    await self._cond.wait()
            self._items.append(item)
            if item is not _DONE:
                self.peak = max(self.peak, len(self._items))
            if self._depth_gauge is not None:
                self._depth_gauge.set(len(self._items))
            self._cond.notify_all()

    async def get(self):
        async with self._cond:
            while not self._items:
                await self._cond.wait()
            item = self._items.popleft()
            if self._depth_gauge is not None:
                self._depth_gauge.set(len(self._items))
            self._cond.notify_all()
            return item

    async def try_get(self):
        """Pop the head item if one is ready, else ``_EMPTY`` — the
        writer uses this to batch whatever is already queued without
        waiting for more."""
        async with self._cond:
            if not self._items:
                return _EMPTY
            item = self._items.popleft()
            if self._depth_gauge is not None:
                self._depth_gauge.set(len(self._items))
            self._cond.notify_all()
            return item


#: A stage body: processes one :class:`ShardWork` in place and returns
#: the number of items (targets / fetches / records) it handled.
StageFn = Callable[[ShardWork], Awaitable[int]]
#: The writer body: commits a batch and returns
#: ``(shards_committed, records_written)``.
WriteFn = Callable[[list], Awaitable[tuple[int, int]]]


class RoundPipeline:
    """Drives one round's shards through scan → fetch → extract →
    write as overlapping stages.

    The stage bodies are injected by the platform (they close over the
    scanner, fetcher, extractor and store), keeping this module free of
    measurement semantics: it owns only ordering, backpressure,
    failure/abort draining, and telemetry.
    """

    def __init__(
        self,
        *,
        config: PipelineConfig,
        scan: StageFn,
        fetch: StageFn,
        extract: StageFn,
        write_batch: WriteFn,
        controller=None,
        abort_event: asyncio.Event | None = None,
        round_id: int | None = None,
        worker: int | None = None,
    ):
        self.config = config
        self._scan_fn = scan
        self._fetch_fn = fetch
        self._extract_fn = extract
        self._write_batch = write_batch
        self._abort_event = abort_event
        self.stats = PipelineStats(mode="overlapped")
        #: True when the feeder stopped early because of ``abort_event``.
        self.aborted = False
        self._error: BaseException | None = None
        #: Span attribution (round id; partition index under --workers).
        self.round_id = round_id
        self.worker = worker
        self._tel = _telemetry.get()
        # scan pulls from a depth-1 feed queue; the scan→fetch queue is
        # the AIMD coupling point (see BoundedShardQueue.capacity).
        self._feed_q = BoundedShardQueue(1)
        self._fetch_q = BoundedShardQueue(
            config.scan_queue_depth, limiter=controller,
            **self._queue_metrics("scan_fetch", "scan"),
        )
        self._extract_q = BoundedShardQueue(
            config.extract_queue_depth,
            **self._queue_metrics("fetch_extract", "fetch"),
        )
        self._write_q = BoundedShardQueue(
            config.write_queue_depth,
            **self._queue_metrics("extract_write", "extract"),
        )

    def _queue_metrics(self, queue_name: str, producer: str) -> dict:
        """Live depth gauge + backpressure counter for one inter-stage
        queue (both None while telemetry is disabled)."""
        if not self._tel.enabled:
            return {"depth_gauge": None, "wait_counter": None}
        return {
            "depth_gauge": self._tel.gauge(
                "repro_queue_depth",
                "Shards buffered in each inter-stage queue",
                labels=("queue",),
            ).labels(queue=queue_name),
            "wait_counter": self._tel.counter(
                "repro_backpressure_waits_total",
                "Producer stalls on a full output queue, by stage",
                labels=("stage",),
            ).labels(stage=producer),
        }

    async def run(self, work_items: Iterable[ShardWork]) -> PipelineStats:
        """Run the round; returns the populated stats.  Raises the
        first stage error after draining (see module docstring)."""
        started = time.perf_counter()
        tasks = [
            asyncio.create_task(self._feeder(work_items)),
            asyncio.create_task(
                self._stage("scan", self._feed_q, self._fetch_q,
                            self._scan_fn)
            ),
            asyncio.create_task(
                self._stage("fetch", self._fetch_q, self._extract_q,
                            self._fetch_fn)
            ),
            asyncio.create_task(
                self._stage("extract", self._extract_q, self._write_q,
                            self._extract_fn)
            ),
        ]
        writer = asyncio.create_task(self._writer(self._write_q))
        try:
            await writer
        finally:
            # On failure, upstream stages may be parked on a queue whose
            # consumer died; everything that must commit already has.
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            # Queue telemetry is charged to the *producing* stage: a
            # stage's peak/waits describe its output queue.
            for name, queue in (
                ("scan", self._fetch_q),
                ("fetch", self._extract_q),
                ("extract", self._write_q),
            ):
                stage = self.stats.stage(name)
                stage.queue_peak = queue.peak
                stage.backpressure_waits = queue.put_waits
            self.stats.wall_seconds = time.perf_counter() - started
        if self._error is not None:
            raise self._error
        return self.stats

    # ------------------------------------------------------------------

    async def _feeder(self, work_items: Iterable[ShardWork]) -> None:
        for work in work_items:
            if self._error is not None:
                break
            if self._abort_event is not None and self._abort_event.is_set():
                self.aborted = True
                break
            await self._feed_q.put(work)
        await self._feed_q.put(_DONE)

    async def _stage(
        self,
        name: str,
        inq: BoundedShardQueue,
        outq: BoundedShardQueue,
        fn: StageFn,
    ) -> None:
        stats = self.stats.stage(name)
        tel = self._tel
        enabled = tel.enabled
        m_shards = tel.counter(
            "repro_stage_shards_total", "Shards processed per stage",
            labels=("stage",),
        ).labels(stage=name)
        m_items = tel.counter(
            "repro_stage_items_total",
            "Stage work items (targets/fetches/records) per stage",
            labels=("stage",),
        ).labels(stage=name)
        m_wait = tel.histogram(
            "repro_stage_wait_seconds",
            "Time a stage idled on its input queue per shard",
            labels=("stage",),
        ).labels(stage=name)
        while True:
            waited = time.perf_counter() if enabled else 0.0
            item = await inq.get()
            if enabled:
                m_wait.observe(time.perf_counter() - waited)
            if item is _DONE:
                await outq.put(_DONE)
                return
            # Note there is deliberately no early-exit on self._error
            # here: when stage S fails on shard k, shards < k already
            # past S must still drain and commit (serial crash
            # equivalence), while shards > k die in S's input queue
            # because S stopped consuming.
            begun = time.perf_counter()
            try:
                with tel.span(name, round_id=self.round_id,
                              shard=item.index, worker=self.worker):
                    items = await fn(item)
            except asyncio.CancelledError:
                raise
            except BaseException as exc:
                stats.busy_seconds += time.perf_counter() - begun
                if self._error is None:
                    self._error = exc
                await outq.put(_DONE)
                return
            stats.busy_seconds += time.perf_counter() - begun
            stats.shards += 1
            stats.items += items
            m_shards.inc()
            m_items.inc(items)
            await outq.put(item)

    async def _writer(self, inq: BoundedShardQueue) -> None:
        stats = self.stats.stage("write")
        tel = self._tel
        m_shards = tel.counter(
            "repro_stage_shards_total", "Shards processed per stage",
            labels=("stage",),
        ).labels(stage="write")
        m_records = tel.counter(
            "repro_records_written_total",
            "Measurement records committed to the store",
        )
        done = False
        while not done:
            item = await inq.get()
            batch: list[ShardWork] = []
            if item is _DONE:
                done = True
            else:
                batch.append(item)
                # Adaptive batching: absorb whatever is already queued
                # (up to the ceiling) without waiting — a healthy
                # pipeline still checkpoints nearly every shard, a
                # write-bound one amortises commits.
                while len(batch) < self.config.writer_batch_shards:
                    extra = await inq.try_get()
                    if extra is _EMPTY:
                        break
                    if extra is _DONE:
                        done = True
                        break
                    batch.append(extra)
            if not batch:
                continue
            begun = time.perf_counter()
            with tel.span("write", round_id=self.round_id,
                          shard=batch[0].index, worker=self.worker):
                shards, records = await self._write_batch(batch)
            elapsed = time.perf_counter() - begun
            stats.busy_seconds += elapsed
            stats.shards += shards
            stats.items += records
            m_shards.inc(shards)
            m_records.inc(records)
            self.stats.writer_flushes += 1
            self.stats.writer_flush_seconds += elapsed
            self.stats.writer_max_flush_seconds = max(
                self.stats.writer_max_flush_seconds, elapsed
            )
            self.stats.writer_max_batch = max(
                self.stats.writer_max_batch, len(batch)
            )
            self.stats.shards_written += shards
            self.stats.records_written += records
