"""The WhoWas scanner: lightweight TCP probing of cloud IP ranges (§4).

For every target IP the scanner sends a probe to port 80 first, then to
443; only if both fail does it probe port 22 — identifying live instances
that are not public web servers.  Probes time out (2 s default) and are
never retried, and a global token-bucket rate limiter caps the probe
rate (250 pps default), keeping the measurement polite (§7).

The scanner accepts a do-not-scan blacklist so operators can exclude
tenants who opted out.
"""

from __future__ import annotations

import asyncio
import time
from typing import Iterable, Sequence

from .config import ScanConfig
from .records import ProbeOutcome, ProbeStatus
from .transport import Transport, TransportError

__all__ = ["RateLimiter", "SubnetCircuitBreaker", "Scanner"]


class SubnetCircuitBreaker:
    """Per-/24-subnet breaker guarding the probe budget.

    Pathological subnets (null-routed, fully firewalled) make every
    probe burn the full timeout.  The breaker counts *consecutive*
    per-IP classified probe failures within each /24; once a subnet
    accumulates ``threshold`` of them, the rest of its addresses are
    skipped for the round with :attr:`ProbeStatus.CIRCUIT_OPEN`.  Any
    clean outcome (responsive, or unresponsive without a classified
    error) resets the subnet's streak.  ``threshold <= 0`` disables
    the breaker entirely; the platform resets it every round.
    """

    def __init__(self, threshold: int = 0):
        self.threshold = threshold
        self._streak: dict[int, int] = {}
        self._open: set[int] = set()

    @staticmethod
    def subnet(ip: int) -> int:
        return ip >> 8

    def is_open(self, ip: int) -> bool:
        return self.threshold > 0 and (ip >> 8) in self._open

    def record(self, ip: int, errored: bool) -> None:
        """Feed one finished probe outcome into the breaker."""
        if self.threshold <= 0:
            return
        net = ip >> 8
        if not errored:
            self._streak[net] = 0
            return
        streak = self._streak.get(net, 0) + 1
        self._streak[net] = streak
        if streak >= self.threshold:
            self._open.add(net)

    def reset(self) -> None:
        """Close every breaker (called at the start of each round)."""
        self._streak.clear()
        self._open.clear()

    @property
    def open_subnets(self) -> frozenset[int]:
        return frozenset(self._open)


class RateLimiter:
    """Token-bucket limiter shared by all in-flight probes.

    Runs on the event loop's clock; at simulator speeds (rate set very
    high) ``acquire`` returns without ever sleeping.
    """

    def __init__(self, rate_per_second: float, burst: float | None = None):
        if rate_per_second <= 0:
            raise ValueError("rate must be positive")
        self._rate = rate_per_second
        self._capacity = burst if burst is not None else max(1.0, rate_per_second / 10)
        self._tokens = self._capacity
        self._updated: float | None = None
        self._lock = asyncio.Lock()

    async def acquire(self) -> None:
        """Block until one probe token is available."""
        async with self._lock:
            loop = asyncio.get_running_loop()
            now = loop.time()
            if self._updated is None:
                self._updated = now
            self._tokens = min(
                self._capacity, self._tokens + (now - self._updated) * self._rate
            )
            self._updated = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return
            deficit = 1.0 - self._tokens
            self._tokens = 0.0
            await asyncio.sleep(deficit / self._rate)
            self._updated = loop.time()


class Scanner:
    """Probes a set of IPs and reports which ports are open on each."""

    def __init__(
        self,
        transport: Transport,
        config: ScanConfig | None = None,
        *,
        blacklist: Iterable[int] = (),
    ):
        self.transport = transport
        self.config = config or ScanConfig()
        self.blacklist = frozenset(blacklist)
        self._limiter = RateLimiter(self.config.probes_per_second)
        #: Per-/24 circuit breaker (disabled unless
        #: :attr:`ScanConfig.subnet_error_threshold` is set).
        self.breaker = SubnetCircuitBreaker(self.config.subnet_error_threshold)
        #: Total probes sent across the scanner's lifetime (ethics audit).
        self.probes_sent = 0
        #: Probes that failed with a *classified* transport error across
        #: the scanner's lifetime (feeds the platform's error budget).
        self.probe_errors = 0
        #: Targets skipped because their subnet's breaker was open.
        self.circuit_open_skips = 0
        #: Wall-clock seconds spent inside :meth:`scan` calls (feeds
        #: the pipeline's per-stage throughput telemetry).
        self.scan_busy_seconds = 0.0

    async def scan_ip(self, ip: int) -> ProbeOutcome:
        """Probe one IP: web ports first, SSH fallback (§4).

        At most ``len(web_ports) + len(fallback_ports)`` probes are sent;
        the SSH probe is skipped as soon as any web port answers.  A
        probe that raises a classified :class:`TransportError` counts as
        a failed probe; the last error class seen is recorded on the
        outcome.
        """
        if ip in self.blacklist:
            return ProbeOutcome(ip=ip, status=ProbeStatus.SKIPPED)
        if self.breaker.is_open(ip):
            self.circuit_open_skips += 1
            return ProbeOutcome(ip=ip, status=ProbeStatus.CIRCUIT_OPEN)
        open_ports: set[int] = set()
        error_class: str | None = None
        for port in self.config.web_ports:
            opened, error_class = await self._probe_once(ip, port, error_class)
            if opened:
                open_ports.add(port)
        if not open_ports:
            for port in self.config.fallback_ports:
                opened, error_class = await self._probe_once(
                    ip, port, error_class
                )
                if opened:
                    open_ports.add(port)
        status = ProbeStatus.RESPONSIVE if open_ports else ProbeStatus.UNRESPONSIVE
        self.breaker.record(ip, not open_ports and error_class is not None)
        return ProbeOutcome(
            ip=ip,
            status=status,
            open_ports=frozenset(open_ports),
            error_class=None if open_ports else error_class,
        )

    async def scan(self, ips: Sequence[int]) -> list[ProbeOutcome]:
        """Probe many IPs concurrently under the global rate limit.

        Results are returned in input order.  Each IP is treated exactly
        once per call — the platform invokes one call per round, matching
        the "at most three probes per IP per day" budget.
        """
        semaphore = asyncio.Semaphore(self.config.concurrency)

        async def bounded(ip: int) -> ProbeOutcome:
            async with semaphore:
                return await self.scan_ip(ip)

        started = time.perf_counter()
        try:
            return list(await asyncio.gather(*(bounded(ip) for ip in ips)))
        finally:
            self.scan_busy_seconds += time.perf_counter() - started

    def scan_sync(self, ips: Sequence[int]) -> list[ProbeOutcome]:
        """Convenience wrapper running :meth:`scan` on a fresh event loop."""
        return asyncio.run(self.scan(ips))

    def stats_snapshot(self) -> dict[str, int]:
        """Lifetime counters, snapshotted — the platform diffs two
        snapshots to attribute errors/operations to one shard."""
        return {
            "probes_sent": self.probes_sent,
            "probe_errors": self.probe_errors,
            "circuit_open_skips": self.circuit_open_skips,
        }

    async def _probe_once(
        self, ip: int, port: int, error_class: str | None = None
    ) -> tuple[bool, str | None]:
        """One probe (plus configured retries); returns (opened, last
        classified error seen — *error_class* carried through unchanged
        when this probe fails without raising)."""
        opened, kind = await self._guarded_probe(ip, port)
        error_class = kind or error_class
        for _ in range(self.config.retries):
            if opened:
                break
            opened, kind = await self._guarded_probe(ip, port)
            error_class = kind or error_class
        return opened, error_class

    async def _guarded_probe(self, ip: int, port: int) -> tuple[bool, str | None]:
        """Send one rate-limited probe; a classified failure comes back
        as (False, taxonomy label)."""
        await self._limiter.acquire()
        self.probes_sent += 1
        try:
            return (
                await self.transport.probe(ip, port, self.config.probe_timeout),
                None,
            )
        except TransportError as exc:
            self.probe_errors += 1
            return False, exc.kind
