"""The WhoWas scanner: lightweight TCP probing of cloud IP ranges (§4).

For every target IP the scanner sends a probe to port 80 first, then to
443; only if both fail does it probe port 22 — identifying live instances
that are not public web servers.  Probes time out (2 s default) and are
never retried, and a global token-bucket rate limiter caps the probe
rate (250 pps default), keeping the measurement polite (§7).

The scanner accepts a do-not-scan blacklist so operators can exclude
tenants who opted out.
"""

from __future__ import annotations

import asyncio
from typing import Iterable, Sequence

from .config import ScanConfig
from .records import ProbeOutcome, ProbeStatus
from .transport import Transport, TransportError

__all__ = ["RateLimiter", "Scanner"]


class RateLimiter:
    """Token-bucket limiter shared by all in-flight probes.

    Runs on the event loop's clock; at simulator speeds (rate set very
    high) ``acquire`` returns without ever sleeping.
    """

    def __init__(self, rate_per_second: float, burst: float | None = None):
        if rate_per_second <= 0:
            raise ValueError("rate must be positive")
        self._rate = rate_per_second
        self._capacity = burst if burst is not None else max(1.0, rate_per_second / 10)
        self._tokens = self._capacity
        self._updated: float | None = None
        self._lock = asyncio.Lock()

    async def acquire(self) -> None:
        """Block until one probe token is available."""
        async with self._lock:
            loop = asyncio.get_running_loop()
            now = loop.time()
            if self._updated is None:
                self._updated = now
            self._tokens = min(
                self._capacity, self._tokens + (now - self._updated) * self._rate
            )
            self._updated = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return
            deficit = 1.0 - self._tokens
            self._tokens = 0.0
            await asyncio.sleep(deficit / self._rate)
            self._updated = loop.time()


class Scanner:
    """Probes a set of IPs and reports which ports are open on each."""

    def __init__(
        self,
        transport: Transport,
        config: ScanConfig | None = None,
        *,
        blacklist: Iterable[int] = (),
    ):
        self.transport = transport
        self.config = config or ScanConfig()
        self.blacklist = frozenset(blacklist)
        self._limiter = RateLimiter(self.config.probes_per_second)
        #: Total probes sent across the scanner's lifetime (ethics audit).
        self.probes_sent = 0
        #: Probes that failed with a *classified* transport error across
        #: the scanner's lifetime (feeds the platform's error budget).
        self.probe_errors = 0

    async def scan_ip(self, ip: int) -> ProbeOutcome:
        """Probe one IP: web ports first, SSH fallback (§4).

        At most ``len(web_ports) + len(fallback_ports)`` probes are sent;
        the SSH probe is skipped as soon as any web port answers.  A
        probe that raises a classified :class:`TransportError` counts as
        a failed probe; the last error class seen is recorded on the
        outcome.
        """
        if ip in self.blacklist:
            return ProbeOutcome(ip=ip, status=ProbeStatus.SKIPPED)
        open_ports: set[int] = set()
        error_class: str | None = None
        for port in self.config.web_ports:
            opened, error_class = await self._probe_once(ip, port, error_class)
            if opened:
                open_ports.add(port)
        if not open_ports:
            for port in self.config.fallback_ports:
                opened, error_class = await self._probe_once(
                    ip, port, error_class
                )
                if opened:
                    open_ports.add(port)
        status = ProbeStatus.RESPONSIVE if open_ports else ProbeStatus.UNRESPONSIVE
        return ProbeOutcome(
            ip=ip,
            status=status,
            open_ports=frozenset(open_ports),
            error_class=None if open_ports else error_class,
        )

    async def scan(self, ips: Sequence[int]) -> list[ProbeOutcome]:
        """Probe many IPs concurrently under the global rate limit.

        Results are returned in input order.  Each IP is treated exactly
        once per call — the platform invokes one call per round, matching
        the "at most three probes per IP per day" budget.
        """
        semaphore = asyncio.Semaphore(self.config.concurrency)

        async def bounded(ip: int) -> ProbeOutcome:
            async with semaphore:
                return await self.scan_ip(ip)

        return list(await asyncio.gather(*(bounded(ip) for ip in ips)))

    def scan_sync(self, ips: Sequence[int]) -> list[ProbeOutcome]:
        """Convenience wrapper running :meth:`scan` on a fresh event loop."""
        return asyncio.run(self.scan(ips))

    async def _probe_once(
        self, ip: int, port: int, error_class: str | None = None
    ) -> tuple[bool, str | None]:
        """One probe (plus configured retries); returns (opened, last
        classified error seen — *error_class* carried through unchanged
        when this probe fails without raising)."""
        opened, kind = await self._guarded_probe(ip, port)
        error_class = kind or error_class
        for _ in range(self.config.retries):
            if opened:
                break
            opened, kind = await self._guarded_probe(ip, port)
            error_class = kind or error_class
        return opened, error_class

    async def _guarded_probe(self, ip: int, port: int) -> tuple[bool, str | None]:
        """Send one rate-limited probe; a classified failure comes back
        as (False, taxonomy label)."""
        await self._limiter.acquire()
        self.probes_sent += 1
        try:
            return (
                await self.transport.probe(ip, port, self.config.probe_timeout),
                None,
            )
        except TransportError as exc:
            self.probe_errors += 1
            return False, exc.kind
