"""Deterministic fault injection for chaos-testing the pipeline.

WhoWas's measurement quality hinges on surviving a hostile network: the
paper's scanner and fetcher tolerate timeouts, refused connections, and
malformed responses without retries (§4, §7).  This module makes that
hostility *testable*: :class:`FaultyTransport` decorates any
:class:`~repro.core.transport.Transport` and injects seeded,
reproducible faults — connect timeouts, resets, slow responses,
truncated bodies, garbage headers, 5xx storms — scoped per-IP, per-port,
and per-round by a :class:`FaultPlan`.

Every decision is a pure function of ``(plan seed, rule index,
operation, ip, port, round, attempt)``, so a failing chaos test replays
byte-for-byte from its seed alone.
"""

from __future__ import annotations

import asyncio
import enum
import random
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Mapping

from .transport import (
    BodyTruncated,
    ConnectionRefused,
    ConnectTimeout,
    HttpResponse,
    ProtocolError,
    Transport,
)

__all__ = [
    "FaultKind",
    "FaultRule",
    "FaultPlan",
    "FaultyTransport",
    "chaos_plan",
    "hostile_plan",
    "HOSTILE_CONTENT_KINDS",
    "ProcFaultKind",
    "ProcFaultRule",
    "ProcessChaosPlan",
    "proc_chaos_plan",
]


class FaultKind(enum.Enum):
    """The fault classes the injector can produce.

    Connection-level kinds apply to probes, banner reads, and GETs;
    response-level kinds (truncated body, garbage headers, 5xx storm)
    only make sense once a connection succeeded, so they apply to GETs
    alone.
    """

    #: SYN (or whole request) exceeds the caller's timeout.
    CONNECT_TIMEOUT = "connect-timeout"
    #: RST on connect: the host actively refuses.
    CONNECTION_REFUSED = "connection-refused"
    #: RST mid-stream, after the handshake succeeded.
    RESET = "connection-reset"
    #: Response delayed by ``delay`` seconds; if the delay exceeds the
    #: caller's timeout the request times out instead.
    SLOW_RESPONSE = "slow-response"
    #: Connection dies before the advertised body arrives.
    TRUNCATED_BODY = "truncated-body"
    #: The peer answers with bytes that do not parse as HTTP.
    GARBAGE_HEADERS = "garbage-headers"
    #: The service is up but melting down: every request returns 503.
    STATUS_STORM = "5xx-storm"
    # -- hostile content: the request *succeeds* but the page is a trap
    #    aimed at the pipeline stages behind the transport.
    #: Hundreds of junk response headers (header-string feature bomb).
    HEADER_BOMB = "header-bomb"
    #: Deeply nested, unterminated markup (parser/regex bomb).
    MARKUP_BOMB = "markup-bomb"
    #: Null bytes and multi-encoding garbage posing as text/html.
    ENCODING_GARBAGE = "encoding-garbage"
    #: A ``<title>`` megabytes long and never closed.
    TITLE_BOMB = "title-bomb"


#: Kinds that affect the TCP handshake and therefore probes/banners too.
_CONNECTION_KINDS = frozenset({
    FaultKind.CONNECT_TIMEOUT,
    FaultKind.CONNECTION_REFUSED,
    FaultKind.RESET,
    FaultKind.SLOW_RESPONSE,
})

#: Hostile-content kinds, in enum-definition order.  Plans are built
#: from this tuple, not the frozenset below: iterating a frozenset of
#: enum members is not order-deterministic across processes, and rule
#: order feeds the seeded draw.
_HOSTILE_KINDS_ORDERED = (
    FaultKind.HEADER_BOMB,
    FaultKind.MARKUP_BOMB,
    FaultKind.ENCODING_GARBAGE,
    FaultKind.TITLE_BOMB,
)

#: Kinds that deliver a well-formed 200 response with a booby-trapped
#: payload; they target the extractor rather than the transport.
HOSTILE_CONTENT_KINDS = frozenset(_HOSTILE_KINDS_ORDERED)


@dataclass(frozen=True)
class FaultRule:
    """One scoped fault: *kind* fires with *probability* wherever the
    scope matches.  ``None`` scope fields match everything."""

    kind: FaultKind
    probability: float = 1.0
    ips: frozenset[int] | None = None
    ports: frozenset[int] | None = None
    rounds: frozenset[int] | None = None
    #: Seconds of injected latency for :attr:`FaultKind.SLOW_RESPONSE`.
    delay: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.delay < 0:
            raise ValueError("delay must be non-negative")
        # Accept any iterable for the scope fields.
        for name in ("ips", "ports", "rounds"):
            value = getattr(self, name)
            if value is not None and not isinstance(value, frozenset):
                object.__setattr__(self, name, frozenset(value))

    def matches(self, ip: int, port: int, round_id: int) -> bool:
        if self.ips is not None and ip not in self.ips:
            return False
        if self.ports is not None and port not in self.ports:
            return False
        if self.rounds is not None and round_id not in self.rounds:
            return False
        return True


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered set of fault rules.

    Rules are consulted in order; the first matching rule whose seeded
    coin-flip lands wins.  The draw is independent per (operation, ip,
    port, round, attempt), so retries of the same request may see
    different outcomes — deterministically.
    """

    seed: int = 0
    rules: tuple[FaultRule, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.rules, tuple):
            object.__setattr__(self, "rules", tuple(self.rules))

    def fault_for(
        self, op: str, ip: int, port: int, round_id: int, attempt: int
    ) -> FaultRule | None:
        """The rule that fires for this operation, or None."""
        connection_only = op != "get"
        for index, rule in enumerate(self.rules):
            if connection_only and rule.kind not in _CONNECTION_KINDS:
                continue
            if not rule.matches(ip, port, round_id):
                continue
            if rule.probability >= 1.0 or self._draw(
                index, op, ip, port, round_id, attempt
            ) < rule.probability:
                return rule
        return None

    def _draw(
        self, index: int, op: str, ip: int, port: int, round_id: int,
        attempt: int,
    ) -> float:
        # random.Random seeded with a str hashes it through sha512, so
        # the draw is stable across processes and PYTHONHASHSEED values.
        key = f"{self.seed}:{index}:{op}:{ip}:{port}:{round_id}:{attempt}"
        return random.Random(key).random()


_NETWORK_KINDS_ORDERED = tuple(
    kind for kind in FaultKind if kind not in HOSTILE_CONTENT_KINDS
)


def chaos_plan(
    seed: int = 0,
    *,
    rate: float = 0.2,
    kinds: Iterable[FaultKind] = _NETWORK_KINDS_ORDERED,
    ips: Iterable[int] | None = None,
    ports: Iterable[int] | None = None,
    rounds: Iterable[int] | None = None,
    delay: float = 0.01,
) -> FaultPlan:
    """A plan firing every *kind* at the same per-request *rate* —
    the one-liner the CLI and the chaos suite build their storms from."""
    scope = {
        "ips": frozenset(ips) if ips is not None else None,
        "ports": frozenset(ports) if ports is not None else None,
        "rounds": frozenset(rounds) if rounds is not None else None,
    }
    rules = tuple(
        FaultRule(kind=kind, probability=rate, delay=delay, **scope)
        for kind in kinds
    )
    return FaultPlan(seed=seed, rules=rules)


def hostile_plan(
    seed: int = 0,
    *,
    rate: float = 0.1,
    ips: Iterable[int] | None = None,
    rounds: Iterable[int] | None = None,
) -> FaultPlan:
    """A plan that poisons *rate* of GETs with hostile content (header
    bombs, markup bombs, encoding garbage, megabyte titles) and leaves
    the transport layer otherwise healthy — the acceptance storm for
    the supervision layer's quarantine."""
    scope = {
        "ips": frozenset(ips) if ips is not None else None,
        "rounds": frozenset(rounds) if rounds is not None else None,
    }
    rules = tuple(
        FaultRule(kind=kind, probability=rate, **scope)
        for kind in _HOSTILE_KINDS_ORDERED
    )
    return FaultPlan(seed=seed, rules=rules)


def _hostile_response(kind: FaultKind, max_body: int) -> HttpResponse:
    """Build the booby-trapped 200 response for one hostile kind."""
    headers = {"Content-Type": "text/html"}
    if kind is FaultKind.HEADER_BOMB:
        headers.update(
            (f"X-Trap-{n:04d}", "x" * 64) for n in range(512)
        )
        body = b"<html><title>ok</title></html>"
    elif kind is FaultKind.MARKUP_BOMB:
        body = (
            "<html>" + "<div class='d'>" * 20_000 + "<p unterminated"
        ).encode("ascii")
    elif kind is FaultKind.ENCODING_GARBAGE:
        headers["Content-Type"] = "text/html; charset=utf-8"
        # NULs survive errors="replace" decoding; the invalid UTF-8 and
        # latin-1 runs exercise the replacement path.
        body = (
            b"\x00" * 400
            + "café-�-".encode("latin-1", "replace")
            + b"\xff\xfe\xc3\x28" * 50
            + b"<html><title>garbage</title></html>"
        )
    else:  # TITLE_BOMB
        body = b"<html><title>" + b"A" * 1_048_576
    body = body[:max_body]
    headers["Content-Length"] = str(len(body))
    return HttpResponse(200, headers, body)


class ProcFaultKind(enum.Enum):
    """Process-level fault classes for the multi-process round engine.

    Worker-side kinds fire inside a spawned partition worker (the plan
    travels to it pickled with the task); journal kinds fire in the
    coordinator, damaging a completed partition journal before its
    checksum verification — exactly the torn-file failure a host crash
    or disk fault would produce.
    """

    #: Worker SIGKILLs itself at a shard boundary, mid-partition —
    #: the journal keeps the shards committed so far.
    KILL_MID_SHARD = "kill-mid-shard"
    #: Worker blocks its event loop (a wedged syscall): heartbeats
    #: stop and the supervisor must notice and SIGKILL it.
    FREEZE = "freeze"
    #: Scribble bytes over the partition journal before merge.
    CORRUPT_JOURNAL = "corrupt-journal"
    #: Truncate the partition journal file before merge.
    TRUNCATE_JOURNAL = "truncate-journal"


#: Kinds injected inside the worker process (at shard boundaries).
WORKER_PROC_KINDS = frozenset({
    ProcFaultKind.KILL_MID_SHARD,
    ProcFaultKind.FREEZE,
})

#: Kinds applied by the coordinator to a completed partition journal.
JOURNAL_PROC_KINDS = frozenset({
    ProcFaultKind.CORRUPT_JOURNAL,
    ProcFaultKind.TRUNCATE_JOURNAL,
})


@dataclass(frozen=True)
class ProcFaultRule:
    """One scoped process fault: *kind* fires with *probability* where
    the (round, partition, attempt, shard) scope matches.  ``None``
    scope fields match everything.  Scoping ``attempts={0}`` is the
    usual pattern: the first execution of a partition dies and the
    supervised retry must heal it."""

    kind: ProcFaultKind
    probability: float = 1.0
    rounds: frozenset[int] | None = None
    partitions: frozenset[int] | None = None
    attempts: frozenset[int] | None = None
    #: Local shard ordinal (within the partition) the worker-side fault
    #: triggers at; ignored by journal kinds.
    shard_ordinal: int = 1
    #: Seconds a FREEZE blocks the worker's loop.
    freeze_seconds: float = 30.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.shard_ordinal < 0:
            raise ValueError("shard_ordinal must be non-negative")
        if self.freeze_seconds < 0:
            raise ValueError("freeze_seconds must be non-negative")
        for name in ("rounds", "partitions", "attempts"):
            value = getattr(self, name)
            if value is not None and not isinstance(value, frozenset):
                object.__setattr__(self, name, frozenset(value))

    def matches(self, round_id: int, partition: int, attempt: int) -> bool:
        if self.rounds is not None and round_id not in self.rounds:
            return False
        if self.partitions is not None and partition not in self.partitions:
            return False
        if self.attempts is not None and attempt not in self.attempts:
            return False
        return True


@dataclass(frozen=True)
class ProcessChaosPlan:
    """A seeded, ordered set of process-fault rules.

    Like :class:`FaultPlan`, every decision is a pure function of
    ``(seed, rule index, scope, round, partition, attempt)``, so a
    chaos run replays identically from its seed — in the coordinator
    *and* in every spawned worker the plan is pickled into.
    """

    seed: int = 0
    rules: tuple[ProcFaultRule, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.rules, tuple):
            object.__setattr__(self, "rules", tuple(self.rules))

    def fault_for(
        self,
        scope: str,
        round_id: int,
        partition: int,
        attempt: int,
    ) -> ProcFaultRule | None:
        """The rule that fires in *scope* (``"worker"`` at a shard
        boundary or ``"journal"`` before merge), or None."""
        wanted = WORKER_PROC_KINDS if scope == "worker" else JOURNAL_PROC_KINDS
        for index, rule in enumerate(self.rules):
            if rule.kind not in wanted:
                continue
            if not rule.matches(round_id, partition, attempt):
                continue
            if rule.probability >= 1.0 or self._draw(
                index, scope, round_id, partition, attempt
            ) < rule.probability:
                return rule
        return None

    def _draw(
        self, index: int, scope: str, round_id: int, partition: int,
        attempt: int,
    ) -> float:
        # Same idiom as FaultPlan._draw: str seeds hash through sha512,
        # stable across processes and PYTHONHASHSEED values.
        key = f"{self.seed}:{index}:{scope}:{round_id}:{partition}:{attempt}"
        return random.Random(key).random()


def proc_chaos_plan(
    seed: int = 0,
    *,
    rate: float = 1.0,
    kinds: Iterable[ProcFaultKind] = (ProcFaultKind.KILL_MID_SHARD,),
    rounds: Iterable[int] | None = None,
    partitions: Iterable[int] | None = None,
    attempts: Iterable[int] | None = (0,),
    shard_ordinal: int = 1,
    freeze_seconds: float = 30.0,
) -> ProcessChaosPlan:
    """One-liner the chaos suite builds process storms from.  The
    default scope (``attempts={0}``) kills the first execution of every
    matched partition and lets the supervised retry complete it."""
    scope = {
        "rounds": frozenset(rounds) if rounds is not None else None,
        "partitions": frozenset(partitions) if partitions is not None else None,
        "attempts": frozenset(attempts) if attempts is not None else None,
    }
    rules = tuple(
        ProcFaultRule(
            kind=kind, probability=rate, shard_ordinal=shard_ordinal,
            freeze_seconds=freeze_seconds, **scope,
        )
        for kind in kinds
    )
    return ProcessChaosPlan(seed=seed, rules=rules)


class FaultyTransport:
    """Transport decorator injecting the faults a :class:`FaultPlan`
    prescribes; everything else passes through to the wrapped transport.

    Implements the :class:`~repro.core.transport.RoundAware` hook so the
    platform can scope rules per round, and keeps audit counters
    (:attr:`injected`, :attr:`passthrough`) so chaos tests can assert
    how much damage was actually done.
    """

    def __init__(self, inner: Transport, plan: FaultPlan):
        self.inner = inner
        self.plan = plan
        self.round_id = 0
        #: Injected faults by kind label (audit/assertions).
        self.injected: Counter[str] = Counter()
        #: Operations forwarded untouched, by operation name.
        self.passthrough: Counter[str] = Counter()
        #: Probe calls per (round, ip) — lets tests assert the
        #: once-per-round probe budget survives fault storms.
        self.probe_calls: Counter[tuple[int, int]] = Counter()
        #: Every hostile-content payload served, as (round_id, ip, path,
        #: kind) — lets tests assert each poisoned page fetch landed in
        #: the quarantine (filter on ``path == "/"``; robots.txt GETs
        #: can be poisoned too, but those never reach the extractor).
        self.hostile_hits: list[tuple[int, int, str, FaultKind]] = []
        self._attempts: Counter[tuple[str, int, int, int]] = Counter()

    # ------------------------------------------------------------------
    # RoundAware

    def on_round_start(self, round_id: int) -> None:
        self.round_id = round_id
        inner_hook = getattr(self.inner, "on_round_start", None)
        if callable(inner_hook):
            inner_hook(round_id)

    # ------------------------------------------------------------------
    # Transport protocol

    async def probe(self, ip: int, port: int, timeout: float) -> bool:
        self.probe_calls[(self.round_id, ip)] += 1
        rule = self._next_fault("probe", ip, port)
        if rule is not None:
            await self._connection_fault(rule, timeout)
            # SLOW_RESPONSE below the timeout: fall through, delayed.
        else:
            self.passthrough["probe"] += 1
        return await self.inner.probe(ip, port, timeout)

    async def banner(self, ip: int, port: int, timeout: float) -> str:
        rule = self._next_fault("banner", ip, port)
        if rule is not None:
            await self._connection_fault(rule, timeout)
        else:
            self.passthrough["banner"] += 1
        return await self.inner.banner(ip, port, timeout)

    async def get(
        self,
        ip: int,
        scheme: str,
        path: str,
        *,
        timeout: float,
        max_body: int,
        headers: Mapping[str, str] | None = None,
    ) -> HttpResponse:
        port = 443 if scheme == "https" else 80
        rule = self._next_fault("get", ip, port)
        if rule is None:
            self.passthrough["get"] += 1
            return await self.inner.get(
                ip, scheme, path,
                timeout=timeout, max_body=max_body, headers=headers,
            )
        if rule.kind in _CONNECTION_KINDS:
            await self._connection_fault(rule, timeout)
            return await self.inner.get(
                ip, scheme, path,
                timeout=timeout, max_body=max_body, headers=headers,
            )
        if rule.kind in HOSTILE_CONTENT_KINDS:
            self.hostile_hits.append((self.round_id, ip, path, rule.kind))
            return _hostile_response(rule.kind, max_body)
        if rule.kind is FaultKind.TRUNCATED_BODY:
            raise BodyTruncated(
                f"body truncated fetching {scheme}://{ip}{path}"
            )
        if rule.kind is FaultKind.GARBAGE_HEADERS:
            raise ProtocolError(
                "malformed status line: b'\\x16\\x03\\x01\\x02\\x00garbage'"
            )
        # STATUS_STORM: a well-formed but useless 503 response.
        body = b"<html><title>503 Service Unavailable</title></html>"
        return HttpResponse(
            503,
            {
                "Content-Type": "text/html",
                "Content-Length": str(len(body)),
                "Retry-After": "120",
                "Connection": "close",
            },
            body,
        )

    # ------------------------------------------------------------------

    def _next_fault(self, op: str, ip: int, port: int) -> FaultRule | None:
        key = (op, ip, port, self.round_id)
        attempt = self._attempts[key]
        self._attempts[key] += 1
        rule = self.plan.fault_for(op, ip, port, self.round_id, attempt)
        if rule is not None and not (
            rule.kind is FaultKind.SLOW_RESPONSE
        ):
            self.injected[rule.kind.value] += 1
        return rule

    async def _connection_fault(self, rule: FaultRule, timeout: float) -> None:
        """Raise the connection-level error *rule* prescribes.

        SLOW_RESPONSE sleeps; if the injected latency reaches the
        caller's timeout it becomes a connect timeout instead, exactly
        as a real slow host would look to this client."""
        if rule.kind is FaultKind.CONNECT_TIMEOUT:
            raise ConnectTimeout("injected: connect timed out")
        if rule.kind is FaultKind.CONNECTION_REFUSED:
            raise ConnectionRefused("injected: connection refused")
        if rule.kind is FaultKind.RESET:
            raise ProtocolError("injected: connection reset by peer")
        # SLOW_RESPONSE
        if rule.delay >= timeout:
            self.injected[FaultKind.CONNECT_TIMEOUT.value] += 1
            raise ConnectTimeout("injected: response slower than timeout")
        self.injected[FaultKind.SLOW_RESPONSE.value] += 1
        await asyncio.sleep(rule.delay)
