"""The WhoWas platform core: scanner, fetcher, features, store.

This is the paper's primary contribution (§4): a pipeline that probes
cloud IP ranges, fetches top-level pages, extracts content features and
persists per-round records behind a programmatic lookup API.
"""

from .config import FetchConfig, PlatformConfig, ScanConfig
from .crawler import Crawler, CrawlResult
from .features import FeatureExtractor, extract_internal_links, extract_links
from .fetcher import Fetcher, parse_robots
from .platform import RoundSummary, WhoWas
from .records import (
    UNKNOWN,
    FetchResult,
    FetchStatus,
    PageFeatures,
    Port,
    ProbeOutcome,
    ProbeStatus,
    RoundRecord,
)
from .scanner import RateLimiter, Scanner
from .simhash import HASH_BITS, hamming_distance, simhash
from .store import MeasurementStore, RoundInfo
from .transport import HttpResponse, SocketTransport, Transport, TransportError

__all__ = [
    "FetchConfig",
    "PlatformConfig",
    "ScanConfig",
    "Crawler",
    "CrawlResult",
    "FeatureExtractor",
    "extract_internal_links",
    "extract_links",
    "Fetcher",
    "parse_robots",
    "RoundSummary",
    "WhoWas",
    "UNKNOWN",
    "FetchResult",
    "FetchStatus",
    "PageFeatures",
    "Port",
    "ProbeOutcome",
    "ProbeStatus",
    "RoundRecord",
    "RateLimiter",
    "Scanner",
    "HASH_BITS",
    "hamming_distance",
    "simhash",
    "MeasurementStore",
    "RoundInfo",
    "HttpResponse",
    "SocketTransport",
    "Transport",
    "TransportError",
]
